//! Case study 2: play the malicious enclave writer — inject explicit and
//! implicit leakage logic into Kmeans, then catch it with PrivacyScope.
//!
//! ```sh
//! cargo run --release --example inject_and_detect
//! ```

use privacyscope::{Analyzer, AnalyzerOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let options = AnalyzerOptions {
        max_paths: 16,
        ..AnalyzerOptions::default()
    };

    // Baseline: the clean module passes.
    let clean = mlcorpus::kmeans::module();
    let analyzer = Analyzer::from_sources(clean.source, clean.edl, options.clone())?;
    let report = analyzer.analyze(clean.entry)?;
    println!(
        "clean Kmeans: {} finding(s) — {}",
        report.findings.len(),
        if report.is_secure() {
            "nonreversibility holds"
        } else {
            "unexpected!"
        }
    );
    println!();

    for injection in mlcorpus::inject::kmeans_injections()? {
        println!("── payload `{}` ──", injection.name);
        println!("    {}", injection.payload);
        let module = injection.module;
        let analyzer = Analyzer::from_sources(module.source, module.edl, options.clone())?;
        let report = analyzer.analyze(module.entry)?;
        println!("{report}");

        // The attested measurement also changes — the *host* can notice a
        // tampered build even before analysis.
        let clean_measure = sgx_sim::Enclave::load(clean.source, clean.edl)?.measurement();
        let evil_measure = sgx_sim::Enclave::load(module.source, module.edl)?.measurement();
        println!("measurement: clean {clean_measure:#018x} vs injected {evil_measure:#018x}\n");
    }
    Ok(())
}
