//! Run the full TEE workflow on the simulated enclave: attest, run the ML
//! modules on synthetic private data, seal the model.
//!
//! ```sh
//! cargo run --release --example enclave_run
//! ```

use mlcorpus::datasets;
use sgx_sim::attest::{self, PlatformKey};
use sgx_sim::enclave::{EcallArg, Enclave};
use sgx_sim::interp::Word;

fn float_buffer(values: &[f64]) -> Vec<Word> {
    values.iter().map(|v| Word::Float(*v)).collect()
}

fn floats(words: &[Word]) -> Vec<f64> {
    words
        .iter()
        .map(|w| match w {
            Word::Float(v) => *v,
            Word::Int(v) => *v as f64,
            Word::Uninit => f64::NAN,
        })
        .collect()
}

/// Fetches an `[out]` buffer by name, checking it holds at least `len`
/// elements — a typed error instead of a panicking index when the enclave
/// returns less than expected.
fn out_floats(result: &sgx_sim::EcallResult, param: &str, len: usize) -> Result<Vec<f64>, String> {
    let words = result
        .outs
        .get(param)
        .ok_or_else(|| format!("enclave returned no `{param}` buffer"))?;
    if words.len() < len {
        return Err(format!(
            "`{param}` holds {} element(s), expected at least {len}",
            words.len()
        ));
    }
    Ok(floats(words))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let platform = PlatformKey::from_seed(b"demo-machine");

    // ── 1. Load + attest the LinearRegression enclave ──
    let module = mlcorpus::linear_regression::module();
    let enclave = Enclave::load(module.source, module.edl)?;
    let quote = enclave.quote(&platform, b"session-1");
    attest::verify(&platform, &quote, Some(enclave.measurement()))?;
    println!(
        "attested LinearRegression enclave, measurement {:#018x}",
        enclave.measurement()
    );

    // ── 2. Train on private data inside the enclave ──
    let data = datasets::regression(42);
    let result = enclave.ecall(
        module.entry,
        &[
            EcallArg::In(float_buffer(&data.xs)),
            EcallArg::In(float_buffer(&data.ys)),
            EcallArg::Out(7),
        ],
    )?;
    let model = out_floats(&result, "model", 6)?;
    println!(
        "trained model: w = [{:.3}, {:.3}, {:.3}], b = {:.3} (truth: {:?}, {})",
        model[0], model[1], model[2], model[3], data.true_weights, data.true_bias
    );
    println!("mse = {:.4}, r² = {:.4}", model[4], model[5]);

    // ── 3. Seal the model under the enclave identity ──
    let serialized: Vec<u8> = model.iter().flat_map(|v| v.to_le_bytes()).collect();
    let blob = enclave.seal(1, &serialized);
    println!("sealed {} bytes of model state", blob.len());
    assert_eq!(enclave.unseal(&blob)?, serialized);

    // ── 4. Kmeans on two blobs ──
    let kmeans = mlcorpus::kmeans::module();
    let enclave = Enclave::load(kmeans.source, kmeans.edl)?;
    let points = datasets::kmeans_points(7);
    let result = enclave.ecall(
        kmeans.entry,
        &[EcallArg::In(float_buffer(&points)), EcallArg::Out(7)],
    )?;
    let out = out_floats(&result, "result", 3)?;
    println!(
        "kmeans: centroids ({:.2}, {:.2}), inertia {:.2}",
        out[0], out[1], out[2]
    );

    // ── 5. The recommender — and why analysis matters ──
    let rec = mlcorpus::recommender_vulnerable();
    let enclave = Enclave::load(rec.source, rec.edl)?;
    let ratings = datasets::ratings(3);
    let result = enclave.ecall(
        rec.entry,
        &[EcallArg::In(float_buffer(&ratings)), EcallArg::Out(9)],
    )?;
    let out = out_floats(&result, "out", 6)?;
    println!(
        "recommender predictions for user 0: {:?}",
        &out[..5]
            .iter()
            .map(|v| (v * 100.0).round() / 100.0)
            .collect::<Vec<_>>()
    );
    // the host can invert the leaked slot — exactly what PrivacyScope flags
    let recovered = (out[5] - 7.0) / 2.0;
    let actual = ratings
        .get(1)
        .copied()
        .ok_or("ratings dataset is unexpectedly short")?;
    println!("…but out[5] lets the host recover rating[0][1] = {recovered} (actual {actual})");
    Ok(())
}
