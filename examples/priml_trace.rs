//! The PRIML formal plane: run the paper's Examples 1 and 2 through the
//! PrivacyScope semantics and print the Tables II and III simulations.
//!
//! ```sh
//! cargo run --example priml_trace
//! ```

use priml::analysis::{analyze, render_table2, render_table3};
use priml::examples::{EXAMPLE1, EXAMPLE2, EXAMPLE2_SECURE};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("── Example 1 (explicit leakage) ──");
    println!("{EXAMPLE1}\n");
    let program = priml::parse(EXAMPLE1)?;
    let outcome = analyze(&program);
    println!("Table II simulation:\n{}", render_table2(&outcome));
    for violation in &outcome.violations {
        println!("verdict: {violation}");
    }

    // Run it concretely too: the attacker's arithmetic works.
    let run = priml::concrete::run(&program, &[10, 20])?;
    println!(
        "\nconcrete run with secrets (10, 20): declassified {:?}",
        run.declassified
    );
    let leaked = run
        .declassified
        .get(1)
        .ok_or("Example 1 should declassify two values")?;
    println!(
        "attacker inverts the second output: {leaked} / 2 = {}\n",
        leaked / 2
    );

    println!("── Example 2 (implicit leakage) ──");
    println!("{EXAMPLE2}\n");
    let program = priml::parse(EXAMPLE2)?;
    let outcome = analyze(&program);
    println!("Table III simulation:\n{}", render_table3(&outcome));
    for violation in &outcome.violations {
        println!("verdict: {violation}");
    }

    println!("\n── The repaired variant ──");
    println!("{EXAMPLE2_SECURE}\n");
    let outcome = analyze(&priml::parse(EXAMPLE2_SECURE)?);
    println!(
        "violations: {} — {}",
        outcome.violations.len(),
        if outcome.is_secure() {
            "nonreversibility holds"
        } else {
            "leaky"
        }
    );
    Ok(())
}
