//! Analyze the three ported ML modules (the paper's §VI evaluation):
//! Table V timings plus the case-study findings.
//!
//! ```sh
//! cargo run --release --example analyze_ml
//! ```

use std::time::Instant;

use privacyscope::{Analyzer, AnalyzerOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("Open Source ML Code | Size (LoCs) | Execution Time (sec.) | Violations");
    println!("--------------------+-------------+-----------------------+-----------");

    for module in mlcorpus::modules() {
        let options = AnalyzerOptions {
            max_paths: 64,
            ..AnalyzerOptions::default()
        };
        let analyzer = Analyzer::from_sources(module.source, module.edl, options)?;
        let started = Instant::now();
        let report = analyzer.analyze(module.entry)?;
        let elapsed = started.elapsed();
        println!(
            "{:19} | {:11} | {:21.3} | {}",
            module.name,
            report.stats.loc,
            elapsed.as_secs_f64(),
            report.findings.len(),
        );
        assert_eq!(
            report.findings.len(),
            module.expected_violations,
            "ground truth mismatch for {}",
            module.name
        );
    }

    println!();
    println!("── Case study 1: Recommender findings in detail ──");
    let module = mlcorpus::recommender_vulnerable();
    let analyzer = Analyzer::from_sources(module.source, module.edl, AnalyzerOptions::default())?;
    let report = analyzer.analyze(module.entry)?;
    println!("{report}");

    println!("── After the fix ──");
    let fixed = mlcorpus::recommender::fixed();
    let analyzer = Analyzer::from_sources(fixed.source, fixed.edl, AnalyzerOptions::default())?;
    println!("{}", analyzer.analyze(fixed.entry)?);
    Ok(())
}
