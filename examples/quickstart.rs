//! Quickstart: analyze the paper's Listing 1 and print the Box 1 report.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use privacyscope::{Analyzer, AnalyzerOptions};

const LISTING1: &str = r#"int enclave_process_data(char *secrets, char *output)
{
    int temporary = secrets[0] + 100;
    output[0] = temporary + 1;
    if (secrets[1] == 0)
        return 0;
    else
        return 1;
}
"#;

const LISTING1_EDL: &str = r#"
enclave {
    trusted {
        public int enclave_process_data([in, count=2] char *secrets,
                                        [out, count=1] char *output);
    };
};
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("── Listing 1 (the paper's illustrative enclave module) ──");
    println!("{LISTING1}");

    let analyzer = Analyzer::from_sources(LISTING1, LISTING1_EDL, AnalyzerOptions::default())?;
    let report = analyzer.analyze("enclave_process_data")?;

    // Box 1: the warning report.
    println!("{report}");

    // Table IV: the symbolic exploration behind it.
    println!("── Symbolic exploration (Table IV) ──");
    println!("{}", analyzer.trace_table("enclave_process_data")?);

    // Machine-readable export for CI pipelines.
    println!("── JSON export ──");
    println!("{}", report.to_json());
    Ok(())
}
