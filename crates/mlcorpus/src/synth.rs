//! Seeded generator of synthetic Mini-C enclave modules (soundness
//! fuzzing, ROADMAP item 3).
//!
//! [`generate`] derives a whole enclave — deep helper call chains, nested
//! constant-bound loops, pointer aliasing of the `[out]` buffer, public
//! branching, an auxiliary ECALL and two OCALLs — deterministically from a
//! 64-bit seed: the same seed always produces the byte-identical module.
//! A seeded leak-taxonomy injector then splices zero or more defects from
//! [`LeakSite`] into the module and records a ground-truth
//! [`Expectation`] for each, so the differential oracle
//! (`privacyscope::oracle`) can tell *missed leaks* from *false alarms*
//! without any hand-written per-module knowledge.
//!
//! Design constraints that keep the ground truth trustworthy:
//!
//! * **Benign observables are single-valued per channel.** The analyzer's
//!   implicit check fires when one secret-guarded π yields two distinct
//!   observable values on a channel, so generated benign code never lets
//!   an observable depend on a branch: public `if`s only touch a dead
//!   `scratch` local, and every `out[...]`/OCALL/return value is the same
//!   expression on every path. A clean generated module is therefore
//!   provably clean under nonreversibility.
//! * **Secret mixing is always multi-source.** Benign code folds *all*
//!   secret bytes into one accumulator (⊤ taint), which nonreversibility
//!   deliberately accepts — exercising the property's weaker-than-
//!   noninterference core.
//! * **Integer-only arithmetic, no division, no `rand()`.** Every
//!   generated expression has identical semantics in the symbolic engine
//!   (`symexec`), the pure evaluator (`symexec::concrete`) and the SGX
//!   simulator (`sgx_sim::interp`), so cross-interpreter drift means a
//!   real bug, not a modelling gap.
//! * **Bounded path count.** Branch conditions are either concrete (loop
//!   counters) or on public scalars; at most a handful fork, so the
//!   analyzer exhausts the path space under small budgets and a clean
//!   verdict is never a budget artifact.
//! * **Some modules are deliberately branch-heavy with contradictory
//!   guards.** Roughly a quarter of seeds splice in a contradiction
//!   cluster: nested comparisons over the public scalars whose inner
//!   guards are concretely unsatisfiable (affine-multiplication, residue,
//!   and variable-order contradictions). The cluster only touches the
//!   dead `scratch` local, so ground truth is unaffected — but the
//!   feasibility pruning tiers (`--feasibility=intervals|full`)
//!   measurably diverge from the syntactic baseline on these modules,
//!   which is what the differential soundness gate and the
//!   `feasibility` benchmark exercise. When a cluster is present the
//!   plain public branches are capped so the syntactic path count still
//!   fits the default soundfuzz budget. [`generate_branch_heavy`] forces
//!   the shape for benchmarking.

use crate::expect::{Expectation, LeakKind};
use crate::CorpusError;
use std::fmt;

/// Number of secret bytes every synthetic enclave receives.
pub const SECRET_LEN: usize = 8;
/// Number of `[out]` slots; benign code writes `0..=3`, leaks `4..=7`.
pub const OUT_LEN: usize = 8;
/// The entry ECALL every synthetic module exposes.
pub const ENTRY: &str = "synth_main";

/// One injectable defect from the leak taxonomy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LeakSite {
    /// `out[j] = secret[i] + c;` — explicit leak through the out buffer.
    ExplicitOut,
    /// `ocall_sink(secret[i] * m);` — explicit leak through an OCALL.
    ExplicitOcall,
    /// `return secret[i] * 3 + 7;` — explicit leak through the return.
    ExplicitReturn,
    /// Secret-guarded OCALL argument — implicit leak through an OCALL.
    ImplicitOcall,
    /// Secret-guarded early return — implicit leak through the return.
    ImplicitReturn,
}

impl LeakSite {
    /// All sites, in injection order.
    pub const ALL: [LeakSite; 5] = [
        LeakSite::ExplicitOut,
        LeakSite::ExplicitOcall,
        LeakSite::ExplicitReturn,
        LeakSite::ImplicitOcall,
        LeakSite::ImplicitReturn,
    ];

    /// Whether the injected flow is explicit or implicit.
    #[must_use]
    pub fn kind(self) -> LeakKind {
        match self {
            LeakSite::ExplicitOut | LeakSite::ExplicitOcall | LeakSite::ExplicitReturn => {
                LeakKind::Explicit
            }
            LeakSite::ImplicitOcall | LeakSite::ImplicitReturn => LeakKind::Implicit,
        }
    }

    /// Whether the leak declassifies through the return value.
    fn uses_return(self) -> bool {
        matches!(self, LeakSite::ExplicitReturn | LeakSite::ImplicitReturn)
    }

    fn id(self) -> &'static str {
        match self {
            LeakSite::ExplicitOut => "synth-explicit-out",
            LeakSite::ExplicitOcall => "synth-explicit-ocall",
            LeakSite::ExplicitReturn => "synth-explicit-return",
            LeakSite::ImplicitOcall => "synth-implicit-ocall",
            LeakSite::ImplicitReturn => "synth-implicit-return",
        }
    }
}

/// A requested leak plan that cannot be injected coherently.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SynthError {
    /// The same [`LeakSite`] was requested twice.
    DuplicateSite(LeakSite),
    /// Two leaks would share the return channel, so the analyzer could
    /// only ever report one of them — the ground truth would lie.
    ReturnChannelConflict,
    /// More than one implicit leak: after the first secret-guarded fork,
    /// π carries that secret on every subsequent path, so a second
    /// implicit expectation could be masked by multi-source π taint.
    MultipleImplicit,
}

impl fmt::Display for SynthError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SynthError::DuplicateSite(site) => {
                write!(f, "leak site {site:?} requested more than once")
            }
            SynthError::ReturnChannelConflict => {
                write!(
                    f,
                    "explicit and implicit return leaks are mutually exclusive"
                )
            }
            SynthError::MultipleImplicit => {
                write!(f, "at most one implicit leak can be injected per module")
            }
        }
    }
}

impl std::error::Error for SynthError {}

/// A generated synthetic enclave module with its ground-truth labels.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SynthModule {
    /// `Synth-<seed as 16 hex digits>`.
    pub name: String,
    /// Mini-C source, a pure function of the seed and leak plan.
    pub source: String,
    /// The EDL interface (fixed shape, shared by all synthetic modules).
    pub edl: String,
    /// The entry ECALL ([`ENTRY`]).
    pub entry: &'static str,
    /// The seed the module was generated from.
    pub seed: u64,
    /// Ground truth: exactly the findings the analyzer must produce.
    pub expectations: Vec<Expectation>,
}

impl SynthModule {
    /// Checks that the generated source and EDL parse.
    ///
    /// # Errors
    ///
    /// Returns the first [`CorpusError`] found — a generator bug.
    pub fn validate(&self) -> Result<(), CorpusError> {
        minic::parse(&self.source).map_err(|error| CorpusError::Parse {
            module: self.name.clone(),
            error,
        })?;
        edl::parse_edl(&self.edl).map_err(|error| CorpusError::Edl {
            module: self.name.clone(),
            error,
        })?;
        Ok(())
    }
}

/// SplitMix64 — tiny, seedable, and stable across platforms; the corpus
/// must not depend on any external RNG's stream staying fixed.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform-enough value in `0..n` (n > 0).
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    /// A small positive constant for generated arithmetic.
    fn small(&mut self) -> i64 {
        1 + self.below(9) as i64
    }
}

/// Generates the module for `seed`, leaks chosen by the seed itself:
/// roughly a third of seeds are clean, the rest carry one or two defects.
#[must_use]
pub fn generate(seed: u64) -> SynthModule {
    let mut rng = SplitMix64(seed ^ 0xa076_1d64_78bd_642f);
    let leak_count = rng.below(3) as usize;
    // Deterministic Fisher-Yates over the taxonomy, then take the first
    // `leak_count` sites that keep the plan coherent.
    let mut pool = LeakSite::ALL;
    for i in (1..pool.len()).rev() {
        pool.swap(i, rng.below(i as u64 + 1) as usize);
    }
    let mut plan: Vec<LeakSite> = Vec::new();
    for site in pool {
        if plan.len() == leak_count {
            break;
        }
        let return_clash = site.uses_return() && plan.iter().any(|p| p.uses_return());
        let implicit_clash = site.kind() == LeakKind::Implicit
            && plan.iter().any(|p| p.kind() == LeakKind::Implicit);
        if !return_clash && !implicit_clash {
            plan.push(site);
        }
    }
    plan.sort();
    match generate_with_leaks(seed, &plan) {
        Ok(module) => module,
        // The plan above satisfies every constraint by construction.
        Err(_) => unreachable!("seed-derived leak plan is always coherent"),
    }
}

/// Generates the module for `seed` with an explicit leak plan (used by the
/// oracle's acceptance tests to plant a known defect).
///
/// # Errors
///
/// Returns a [`SynthError`] when the plan is incoherent (duplicate site,
/// two return-channel leaks, or more than one implicit leak).
pub fn generate_with_leaks(seed: u64, leaks: &[LeakSite]) -> Result<SynthModule, SynthError> {
    generate_module(seed, leaks, None)
}

/// Generates a clean module whose entry is dominated by `clusters`
/// contradiction clusters (see the module docs): every cluster multiplies
/// the *syntactic* path count by 36 but the concretely feasible count only
/// by 12, so the feasibility tiers diverge by a known, seed-stable factor.
/// This is the fixed corpus shape behind the `feasibility` benchmark and
/// the tier property tests.
#[must_use]
pub fn generate_branch_heavy(seed: u64, clusters: usize) -> SynthModule {
    match generate_module(seed, &[], Some(clusters)) {
        Ok(module) => module,
        // An empty leak plan satisfies every coherence constraint.
        Err(_) => unreachable!("empty leak plan is always coherent"),
    }
}

fn generate_module(
    seed: u64,
    leaks: &[LeakSite],
    forced_clusters: Option<usize>,
) -> Result<SynthModule, SynthError> {
    for (i, site) in leaks.iter().enumerate() {
        if leaks[..i].contains(site) {
            return Err(SynthError::DuplicateSite(*site));
        }
    }
    if leaks.iter().filter(|s| s.uses_return()).count() > 1 {
        return Err(SynthError::ReturnChannelConflict);
    }
    if leaks
        .iter()
        .filter(|s| s.kind() == LeakKind::Implicit)
        .count()
        > 1
    {
        return Err(SynthError::MultipleImplicit);
    }

    let mut rng = SplitMix64(seed);
    let name = format!("Synth-{seed:016x}");

    // Shape parameters.
    let helpers = 3 + rng.below(4) as usize; // 3..=6: call-chain depth
    let wants_cluster = rng.below(4) == 0; // every ~4th module is branch-heavy
    let clusters = forced_clusters.unwrap_or(usize::from(wants_cluster));
    // A cluster multiplies the syntactic path count by 36, so cap the
    // plain public branches to keep the module inside small path budgets.
    let pub_branches = if clusters > 0 {
        1
    } else {
        1 + rng.below(3) as usize // 1..=3: forks on public data
    };
    let pad_loops = 1 + rng.below(2) as usize; // extra benign accumulation

    // Distinct secret indices, one per planned leak.
    let mut secret_indices: Vec<usize> = (0..SECRET_LEN).collect();
    for i in (1..secret_indices.len()).rev() {
        secret_indices.swap(i, rng.below(i as u64 + 1) as usize);
    }

    let mut expectations = Vec::new();
    let mut prologue = String::new();
    let mut epilogue = String::new();
    let mut leak_return = String::new();
    for (n, site) in leaks.iter().enumerate() {
        let idx = secret_indices[n];
        let secret = format!("secret[{idx}]");
        let (channel, payload) = match site {
            LeakSite::ExplicitOut => {
                let slot = 4 + rng.below((OUT_LEN - 4) as u64) as usize;
                let c = rng.small();
                let payload = format!("    out[{slot}] = secret[{idx}] + {c};\n");
                epilogue.push_str(&payload);
                (format!("out[{slot}]"), payload)
            }
            LeakSite::ExplicitOcall => {
                let m = 2 * rng.small() + 1;
                let payload = format!("    ocall_sink(secret[{idx}] * {m});\n");
                prologue.push_str(&payload);
                ("argument 0 of `ocall_sink`".to_string(), payload)
            }
            LeakSite::ExplicitReturn => {
                let payload = format!("    return secret[{idx}] * 3 + 7;\n");
                leak_return = payload.clone();
                ("return value".to_string(), payload)
            }
            LeakSite::ImplicitOcall => {
                let t = 40 + rng.below(60) as i64;
                let a = rng.small();
                let b = a + rng.small();
                let payload = format!(
                    "    if (secret[{idx}] > {t}) {{ ocall_progress({a}); }} else {{ ocall_progress({b}); }}\n"
                );
                prologue.push_str(&payload);
                ("argument 0 of `ocall_progress`".to_string(), payload)
            }
            LeakSite::ImplicitReturn => {
                let t = 40 + rng.below(60) as i64;
                let r = 900 + rng.below(100) as i64;
                let payload = format!("    if (secret[{idx}] > {t}) {{ return {r}; }}\n");
                prologue.push_str(&payload);
                ("return value".to_string(), payload)
            }
        };
        expectations.push(Expectation {
            id: site.id().to_string(),
            kind: site.kind(),
            secret,
            channel,
            payload: payload.trim().to_string(),
        });
    }

    let mut src = String::new();
    src.push_str(&format!(
        "/* {name}: generated enclave module (mlcorpus::synth). */\n"
    ));
    let bias = rng.small();
    src.push_str(&format!("int GLOBAL_BIAS = {bias};\n\n"));
    src.push_str("void ocall_progress(int step);\nvoid ocall_sink(int value);\n\n");

    // Helper chain: helper<k> calls helper<k-1>, so the entry's call into
    // the top helper exercises an inline stack `helpers` deep.
    for k in 0..helpers {
        let c1 = rng.small();
        let c2 = rng.small();
        src.push_str(&format!("int helper{k}(int a, int b) {{\n"));
        src.push_str(&format!("    int acc = a * {c1} + b;\n"));
        if rng.below(2) == 0 {
            let bound = 2 + rng.below(4);
            src.push_str("    int i = 0;\n");
            src.push_str(&format!(
                "    for (i = 0; i < {bound}; i = i + 1) {{ acc = acc + (a ^ i); }}\n"
            ));
        }
        if k > 0 {
            let lower = rng.below(k as u64);
            src.push_str(&format!("    acc = acc + helper{lower}(acc, b + {c2});\n"));
        } else {
            src.push_str(&format!("    acc = acc + {c2};\n"));
        }
        src.push_str("    return acc;\n}\n\n");
    }

    // Aliased write into the out buffer through a pointer parameter.
    src.push_str(
        "int mix_into(int *buf, int idx, int v) {\n    buf[idx] = v;\n    return buf[idx] + 1;\n}\n\n",
    );

    // Secondary ECALL: same helper chain, no secrets.
    let aux_c = rng.small();
    src.push_str(&format!(
        "int synth_aux(int x) {{\n    return helper{top}(x, {aux_c}) & 1023;\n}}\n\n",
        top = helpers - 1
    ));

    src.push_str(&format!(
        "int {ENTRY}(char *secret, int pub0, int pub1, int *out) {{\n"
    ));
    src.push_str(&prologue);
    let c = rng.small();
    src.push_str(&format!("    int pacc = pub0 * {c} + pub1;\n"));
    src.push_str("    int sacc = 0;\n    int scratch = 0;\n    int i = 0;\n    int j = 0;\n");
    src.push_str("    int *view = out;\n");
    // Mix every secret byte: sacc ends up multi-source (⊤), which
    // nonreversibility accepts on any channel.
    src.push_str(&format!(
        "    for (i = 0; i < {SECRET_LEN}; i = i + 1) {{ sacc = sacc + secret[i]; }}\n"
    ));
    for _ in 0..pad_loops {
        let b1 = 2 + rng.below(3);
        let b2 = 2 + rng.below(3);
        let c = rng.small();
        src.push_str(&format!(
            "    for (i = 0; i < {b1}; i = i + 1) {{\n        for (j = 0; j < {b2}; j = j + 1) {{ scratch = scratch + i * j + {c}; }}\n    }}\n"
        ));
    }
    src.push_str(&format!(
        "    pacc = pacc + helper{top}(pacc, pub1 + {k});\n",
        top = helpers - 1,
        k = rng.small()
    ));
    // Public branches fork paths but only touch `scratch`, so every
    // observable keeps a single value per channel (see module docs).
    for _ in 0..pub_branches {
        let which = if rng.below(2) == 0 { "pub0" } else { "pub1" };
        let t = rng.below(100) as i64;
        let c1 = rng.small();
        let c2 = rng.small();
        src.push_str(&format!(
            "    if ({which} > {t}) {{ scratch = scratch + {c1}; }} else {{ scratch = scratch - {c2}; }}\n"
        ));
    }
    for _ in 0..clusters {
        push_contradiction_cluster(&mut src, &mut rng);
    }
    let c = rng.small();
    src.push_str("    out[0] = pacc;\n");
    src.push_str("    out[1] = sacc;\n");
    src.push_str(&format!(
        "    scratch = scratch + mix_into(out, 2, pacc ^ {c});\n"
    ));
    src.push_str("    out[3] = view[1] + GLOBAL_BIAS;\n");
    src.push_str("    ocall_progress(pacc & 255);\n");
    src.push_str(&epilogue);
    if leak_return.is_empty() {
        src.push_str("    return sacc + GLOBAL_BIAS;\n");
    } else {
        src.push_str(&leak_return);
    }
    src.push_str("}\n");

    let edl = format!(
        "enclave {{\n    trusted {{\n        public int {ENTRY}([in, count={SECRET_LEN}] char *secret,\n                           int pub0, int pub1,\n                           [out, count={OUT_LEN}] int *out);\n        public int synth_aux(int x);\n    }};\n    untrusted {{\n        void ocall_progress(int step);\n        void ocall_sink(int value);\n    }};\n}};\n"
    );

    Ok(SynthModule {
        name,
        source: src,
        edl,
        entry: ENTRY,
        seed,
        expectations,
    })
}

/// Emits one contradiction cluster: three nested guard shapes over the
/// public scalars, each of which forks syntactically but has at least one
/// concretely unsatisfiable side, and each of which only touches the dead
/// `scratch` local so the module stays benign:
///
/// * an affine-multiplication contradiction — `p > t` followed by
///   `p * m < m·(t+1) − gap`, unsatisfiable because `p > t` forces
///   `p * m ≥ m·(t+1)`; refuted by the interval domain (the paper-faithful
///   syntactic check deliberately keeps multiplication feasible);
/// * a residue contradiction under a positive outer bound — `q > 5`, then
///   `q % 4 == r₁` and `q % 4 == r₂` with `r₁ ≠ r₂`; refuted by the
///   congruence (stride) domain, and the positive bound keeps `%` free of
///   negative-dividend convention drift between interpreters;
/// * a variable-order cycle — `pub0 < pub1` then `pub1 < pub0`; invisible
///   to any non-relational domain, refuted by the SAT-lite solver's
///   difference-logic theory under `--feasibility=full`.
fn push_contradiction_cluster(src: &mut String, rng: &mut SplitMix64) {
    let p = if rng.below(2) == 0 { "pub0" } else { "pub1" };
    let t = 20 + rng.below(40) as i64;
    let m = 2 + rng.below(3) as i64; // 2..=4
    let gap = 1 + rng.below(20) as i64;
    let bound = m * (t + 1) - gap;
    src.push_str(&format!(
        "    if ({p} > {t}) {{\n        if ({p} * {m} < {bound}) {{ scratch = scratch + 1; }} else {{ scratch = scratch - 1; }}\n    }}\n"
    ));
    let q = if rng.below(2) == 0 { "pub0" } else { "pub1" };
    let r1 = rng.below(4) as i64;
    let r2 = (r1 + 1 + rng.below(3) as i64) % 4;
    src.push_str(&format!(
        "    if ({q} > 5) {{\n        if ({q} % 4 == {r1}) {{\n            if ({q} % 4 == {r2}) {{ scratch = scratch + 3; }} else {{ scratch = scratch + 1; }}\n        }}\n    }}\n"
    ));
    let c = rng.small();
    src.push_str(&format!(
        "    if (pub0 < pub1) {{\n        if (pub1 < pub0) {{ scratch = scratch + {c}; }} else {{ scratch = scratch - {c}; }}\n    }}\n"
    ));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        for seed in [0u64, 1, 42, 0xdead_beef, u64::MAX] {
            let a = generate(seed);
            let b = generate(seed);
            assert_eq!(a, b, "seed {seed} must be reproducible");
        }
    }

    #[test]
    fn different_seeds_differ() {
        assert_ne!(generate(1).source, generate(2).source);
    }

    #[test]
    fn generated_modules_validate() {
        for seed in 0..32u64 {
            let module = generate(seed);
            module
                .validate()
                .unwrap_or_else(|e| panic!("seed {seed} generated invalid module: {e}"));
        }
    }

    #[test]
    fn seeds_cover_clean_and_leaky_modules() {
        let clean = (0..32u64)
            .filter(|s| generate(*s).expectations.is_empty())
            .count();
        assert!(clean > 0, "some seeds must generate clean modules");
        assert!(clean < 32, "some seeds must generate leaky modules");
    }

    #[test]
    fn leak_plans_respect_taxonomy_constraints() {
        for seed in 0..64u64 {
            let module = generate(seed);
            let implicit = module
                .expectations
                .iter()
                .filter(|e| e.kind == crate::expect::LeakKind::Implicit)
                .count();
            assert!(implicit <= 1, "seed {seed}: at most one implicit leak");
            let returns = module
                .expectations
                .iter()
                .filter(|e| e.channel == "return value")
                .count();
            assert!(returns <= 1, "seed {seed}: at most one return leak");
            let mut secrets: Vec<&str> = module
                .expectations
                .iter()
                .map(|e| e.secret.as_str())
                .collect();
            secrets.sort_unstable();
            secrets.dedup();
            assert_eq!(
                secrets.len(),
                module.expectations.len(),
                "seed {seed}: each leak uses a distinct secret byte"
            );
        }
    }

    #[test]
    fn branch_heavy_modules_validate_and_are_deterministic() {
        for seed in 0..8u64 {
            let a = generate_branch_heavy(seed, 2);
            let b = generate_branch_heavy(seed, 2);
            assert_eq!(a, b, "seed {seed} must be reproducible");
            assert!(a.expectations.is_empty(), "branch-heavy modules are clean");
            a.validate()
                .unwrap_or_else(|e| panic!("seed {seed} generated invalid module: {e}"));
            // All three contradiction shapes are present.
            assert!(a.source.contains("% 4 =="), "residue contradiction");
            assert!(
                a.source
                    .contains("if (pub0 < pub1) {\n        if (pub1 < pub0)"),
                "variable-order cycle"
            );
        }
    }

    #[test]
    fn some_seeds_generate_contradiction_clusters() {
        let heavy = (0..64u64)
            .filter(|s| generate(*s).source.contains("% 4 =="))
            .count();
        assert!(heavy > 0, "some seeds must carry a contradiction cluster");
        assert!(heavy < 64, "not every seed should be branch-heavy");
    }

    #[test]
    fn incoherent_plans_are_rejected() {
        use LeakSite::*;
        assert_eq!(
            generate_with_leaks(1, &[ExplicitOut, ExplicitOut]),
            Err(SynthError::DuplicateSite(ExplicitOut))
        );
        assert_eq!(
            generate_with_leaks(1, &[ExplicitReturn, ImplicitReturn]),
            Err(SynthError::ReturnChannelConflict)
        );
        assert!(generate_with_leaks(1, &[ImplicitOcall, ImplicitReturn]).is_err());
    }

    #[test]
    fn planted_leak_is_labeled() {
        let module = generate_with_leaks(7, &[LeakSite::ImplicitOcall]).expect("coherent plan");
        assert_eq!(module.expectations.len(), 1);
        let e = &module.expectations[0];
        assert_eq!(e.kind, crate::expect::LeakKind::Implicit);
        assert_eq!(e.channel, "argument 0 of `ocall_progress`");
        assert!(module.source.contains(&e.payload));
        module.validate().expect("planted module is valid");
    }
}
