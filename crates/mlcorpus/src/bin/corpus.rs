//! Dumps a corpus module's source and EDL to files, so shell harnesses
//! (CI's kill-and-resume step, manual CLI runs) can analyze the shipped
//! modules without copying their sources into heredocs.
//!
//! ```text
//! corpus <module> <source-out.c> <edl-out.edl>
//! ```
//!
//! `<module>` is one of `linear-regression`, `kmeans`, `recommender`,
//! `recommender-vulnerable`. The module's entry ECALL name is printed on
//! stdout. Exit code 0 on success, 2 on usage or I/O errors.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(entry) => {
            println!("{entry}");
            ExitCode::SUCCESS
        }
        Err(message) => {
            eprintln!("corpus: {message}");
            ExitCode::from(2)
        }
    }
}

fn run(args: &[String]) -> Result<&'static str, String> {
    let [name, source_out, edl_out] = args else {
        return Err(
            "usage: corpus <linear-regression|kmeans|recommender|recommender-vulnerable> \
             <source-out.c> <edl-out.edl>"
                .into(),
        );
    };
    let module = match name.as_str() {
        "linear-regression" => mlcorpus::linear_regression::module(),
        "kmeans" => mlcorpus::kmeans::module(),
        "recommender" => mlcorpus::recommender::module(),
        "recommender-vulnerable" => mlcorpus::recommender_vulnerable(),
        other => return Err(format!("unknown corpus module `{other}`")),
    };
    module.validate().map_err(|e| e.to_string())?;
    std::fs::write(source_out, module.source)
        .map_err(|e| format!("cannot write `{source_out}`: {e}"))?;
    std::fs::write(edl_out, module.edl).map_err(|e| format!("cannot write `{edl_out}`: {e}"))?;
    Ok(module.entry)
}
