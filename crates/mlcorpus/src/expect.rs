//! Machine-readable ground truth for injected leaks.
//!
//! Every payload the corpus injects — into the paper modules via
//! [`crate::inject`] or into synthetic enclaves via [`crate::synth`] —
//! records an [`Expectation`]: which secret should be reported leaking,
//! through which declassification channel, and whether the flow is
//! explicit or implicit. The case-study tests and the differential
//! oracle (`privacyscope::oracle`) both match analyzer findings against
//! these records, so there is exactly one source of truth for "what the
//! analyzer must find".
//!
//! Matching is string-based on the analyzer's stable naming scheme
//! (`"result[2]"`, `` "argument 0 of `ocall_debug`" ``, `"points[0]"`)
//! rather than on `privacyscope` types, keeping `mlcorpus` free of a
//! dependency on the analyzer crate.

use std::fmt;

/// Whether an injected flow is explicit (a secret value reaches an
/// observable channel) or implicit (the observable value depends on a
/// secret through control flow).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LeakKind {
    /// Observable output carries a single-source secret value.
    Explicit,
    /// Observable output differs across branches of a secret-guarded
    /// conditional.
    Implicit,
}

impl fmt::Display for LeakKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LeakKind::Explicit => write!(f, "explicit"),
            LeakKind::Implicit => write!(f, "implicit"),
        }
    }
}

/// Ground truth for one injected leak: the finding the analyzer is
/// expected to produce.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Expectation {
    /// Stable label for this injected defect, unique within its module
    /// (e.g. `explicit-out-copy`, `synth-implicit-ocall`).
    pub id: String,
    /// Explicit or implicit flow.
    pub kind: LeakKind,
    /// The secret the analyzer must name, in its `param[index]` scheme
    /// (e.g. `points[0]`, `secret[3]`).
    pub secret: String,
    /// The channel the analyzer must name: `"return value"`,
    /// `` "argument N of `func`" ``, or an out-region like `"out[2]"`.
    pub channel: String,
    /// The payload text that was spliced in, for reports and repros.
    pub payload: String,
}

impl Expectation {
    /// Whether an analyzer finding (kind/channel/secret triple) satisfies
    /// this expectation.
    #[must_use]
    pub fn matches(&self, explicit: bool, channel: &str, secret: &str) -> bool {
        let kind = if explicit {
            LeakKind::Explicit
        } else {
            LeakKind::Implicit
        };
        kind == self.kind && channel == self.channel && secret == self.secret
    }
}

impl fmt::Display for Expectation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] {} leak of {} via {}",
            self.id, self.kind, self.secret, self.channel
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Expectation {
        Expectation {
            id: "explicit-ocall".to_string(),
            kind: LeakKind::Explicit,
            secret: "points[1]".to_string(),
            channel: "argument 0 of `ocall_debug`".to_string(),
            payload: "ocall_debug((int)points[1]);".to_string(),
        }
    }

    #[test]
    fn matches_requires_kind_channel_and_secret() {
        let e = sample();
        assert!(e.matches(true, "argument 0 of `ocall_debug`", "points[1]"));
        assert!(!e.matches(false, "argument 0 of `ocall_debug`", "points[1]"));
        assert!(!e.matches(true, "argument 1 of `ocall_debug`", "points[1]"));
        assert!(!e.matches(true, "argument 0 of `ocall_debug`", "points[0]"));
    }

    #[test]
    fn display_is_human_readable() {
        let text = sample().to_string();
        assert!(text.contains("explicit"));
        assert!(text.contains("points[1]"));
        assert!(text.contains("ocall_debug"));
    }
}
