//! The LinearRegression module (Table V: 161 LoC).
//!
//! A port of an open-source multivariate linear-regression trainer
//! (3 features + bias, z-score standardization, batch gradient descent,
//! per-epoch loss tracking) into a Mini-C enclave. The module is *clean*:
//! every model coefficient aggregates all training rows, so every
//! observable output carries ⊤ taint and nonreversibility holds.

use crate::Module;

/// The enclave source (161 LoC, matching the paper's Table V).
pub const SOURCE: &str = r#"/* LinearRegression enclave module: multivariate GD trainer. */
int NUM_ROWS = 12;
int NUM_FEATURES = 3;
int EPOCHS = 60;
double LEARNING_RATE = 0.1;

double feature_at(double *xs, int row, int col) {
    return xs[row * 3 + col];
}

double column_mean(double *xs, int col) {
    double total = 0.0;
    int row = 0;
    for (row = 0; row < 12; row++) {
        total = total + feature_at(xs, row, col);
    }
    return total / 12.0;
}

double column_std(double *xs, int col, double mean) {
    double accum = 0.0;
    int row = 0;
    for (row = 0; row < 12; row++) {
        double delta = feature_at(xs, row, col) - mean;
        accum = accum + delta * delta;
    }
    double variance = accum / 12.0;
    return sqrt(variance + 0.000001);
}

void standardize(double *xs, double *mu, double *sigma) {
    int col = 0;
    for (col = 0; col < 3; col++) {
        double mean = column_mean(xs, col);
        double sd = column_std(xs, col, mean);
        mu[col] = mean;
        sigma[col] = sd;
        int row = 0;
        for (row = 0; row < 12; row++) {
            double centered = feature_at(xs, row, col) - mean;
            xs[row * 3 + col] = centered / sd;
        }
    }
}

double predict_row(double *xs, double *weights, double bias, int row) {
    double total = bias;
    int col = 0;
    for (col = 0; col < 3; col++) {
        total = total + weights[col] * feature_at(xs, row, col);
    }
    return total;
}

double mean_squared_error(double *xs, double *ys, double *weights, double bias) {
    double total = 0.0;
    int row = 0;
    for (row = 0; row < 12; row++) {
        double err = predict_row(xs, weights, bias, row) - ys[row];
        total = total + err * err;
    }
    return total / 12.0;
}

void zero_gradients(double *grad_w, double *grad_b) {
    int col = 0;
    for (col = 0; col < 3; col++) {
        grad_w[col] = 0.0;
    }
    grad_b[0] = 0.0;
}

void accumulate_gradients(double *xs, double *ys, double *weights,
                          double bias, double *grad_w, double *grad_b) {
    int row = 0;
    for (row = 0; row < 12; row++) {
        double err = predict_row(xs, weights, bias, row) - ys[row];
        int col = 0;
        for (col = 0; col < 3; col++) {
            double contribution = err * feature_at(xs, row, col);
            grad_w[col] = grad_w[col] + contribution;
        }
        grad_b[0] = grad_b[0] + err;
    }
}

void apply_gradients(double *weights, double *bias_cell,
                     double *grad_w, double *grad_b, double lr) {
    int col = 0;
    for (col = 0; col < 3; col++) {
        double step = lr * (2.0 / 12.0) * grad_w[col];
        weights[col] = weights[col] - step;
    }
    double bias_step = lr * (2.0 / 12.0) * grad_b[0];
    bias_cell[0] = bias_cell[0] - bias_step;
}

void scale_gradients(double *grad_w, double *grad_b, double factor) {
    int col = 0;
    for (col = 0; col < 3; col++) {
        grad_w[col] = grad_w[col] * factor;
    }
    grad_b[0] = grad_b[0] * factor;
}

double total_sum_squares(double *ys) {
    double mean_y = 0.0;
    int row = 0;
    for (row = 0; row < 12; row++) {
        mean_y = mean_y + ys[row];
    }
    mean_y = mean_y / 12.0;
    double total = 0.0;
    for (row = 0; row < 12; row++) {
        double dev = ys[row] - mean_y;
        total = total + dev * dev;
    }
    return total;
}

double r_squared(double *xs, double *ys, double *weights, double bias) {
    double tss = total_sum_squares(ys);
    double rss = mean_squared_error(xs, ys, weights, bias) * 12.0;
    double denom = tss + 0.000001;
    double ratio = rss / denom;
    return 1.0 - ratio;
}

void train_epochs(double *xs, double *ys, double *weights,
                  double *bias_cell, double *loss_cell) {
    double grad_w[3];
    double grad_b[1];
    int epoch = 0;
    for (epoch = 0; epoch < 60; epoch++) {
        zero_gradients(grad_w, grad_b);
        accumulate_gradients(xs, ys, weights, bias_cell[0], grad_w, grad_b);
        scale_gradients(grad_w, grad_b, 1.0);
        apply_gradients(weights, bias_cell, grad_w, grad_b, 0.1);
    }
    loss_cell[0] = mean_squared_error(xs, ys, weights, bias_cell[0]);
}

void denormalize(double *weights, double *bias_cell, double *mu, double *sigma) {
    double shift = 0.0;
    int col = 0;
    for (col = 0; col < 3; col++) {
        double scaled = weights[col] / sigma[col];
        shift = shift + scaled * mu[col];
        weights[col] = scaled;
    }
    bias_cell[0] = bias_cell[0] - shift;
}

int enclave_train_lr(double *xs, double *ys, double *model) {
    double mu[3];
    double sigma[3];
    double weights[3];
    double bias_cell[1];
    double loss_cell[1];
    int col = 0;
    for (col = 0; col < 3; col++) {
        weights[col] = 0.0;
    }
    bias_cell[0] = 0.0;
    loss_cell[0] = 0.0;
    standardize(xs, mu, sigma);
    train_epochs(xs, ys, weights, bias_cell, loss_cell);
    model[5] = r_squared(xs, ys, weights, bias_cell[0]);
    denormalize(weights, bias_cell, mu, sigma);
    model[0] = weights[0];
    model[1] = weights[1];
    model[2] = weights[2];
    model[3] = bias_cell[0];
    model[4] = loss_cell[0];
    model[6] = 12.0;
    return 0;
}
"#;

/// The enclave interface.
pub const EDL: &str = r#"
enclave {
    trusted {
        public int enclave_train_lr([in, count=36] double *xs,
                                    [in, count=12] double *ys,
                                    [out, count=7] double *model);
    };
};
"#;

/// The corpus entry for Table V.
pub fn module() -> Module {
    Module {
        name: "LinearRegression",
        source: SOURCE,
        edl: EDL,
        entry: "enclave_train_lr",
        expected_violations: 0,
    }
}
