//! Malicious-logic injection (case study 2, §VI-D-2).
//!
//! The paper mimics a malicious enclave writer by embedding explicit and
//! implicit leakage logic into the Kmeans module and verifying PrivacyScope
//! detects it. The corpus sources carry `/* inject: prologue */` and
//! `/* inject: epilogue */` anchor comments; this module splices payloads
//! at those anchors (comments are invisible to the clean build and to the
//! LoC metric).

use crate::expect::{Expectation, LeakKind};
use crate::{CorpusError, Module};

/// Where a payload is spliced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Site {
    /// At function entry, before any benign branching (implicit payloads
    /// must fire while π still depends on a single secret).
    Prologue,
    /// Just before the final `return`.
    Epilogue,
}

/// A ready-to-analyze injected variant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Injection {
    /// Payload label, e.g. `explicit-out-copy`.
    pub name: &'static str,
    /// `true` for explicit payloads, `false` for implicit ones.
    pub explicit: bool,
    /// The modified module (same EDL, same entry).
    pub module: Module,
    /// The payload text, for reports.
    pub payload: &'static str,
    /// Ground truth: the findings the analyzer must produce for this
    /// variant, shared by the case-study tests and the differential
    /// oracle.
    pub expectations: Vec<Expectation>,
}

fn splice(
    module: &str,
    source: &'static str,
    site: Site,
    payload: &'static str,
) -> Result<String, CorpusError> {
    let anchor = match site {
        Site::Prologue => "/* inject: prologue */",
        Site::Epilogue => "/* inject: epilogue */",
    };
    if !source.contains(anchor) {
        return Err(CorpusError::MissingAnchor {
            module: module.to_string(),
            anchor,
        });
    }
    Ok(source.replace(anchor, payload))
}

/// Leaked sources live here so tests can name them.
pub const EXPLICIT_OUT_PAYLOAD: &str = "result[2] = points[0] * 2.0;";
/// An explicit leak through the debug OCALL.
pub const EXPLICIT_OCALL_PAYLOAD: &str = "ocall_debug((int)points[1]);";
/// An implicit leak: which progress code is sent depends on one point.
pub const IMPLICIT_OCALL_PAYLOAD: &str =
    "if (points[0] > 50.0) { ocall_progress(1); } else { ocall_progress(0); }";

/// The three injected Kmeans variants of case study 2.
///
/// # Errors
///
/// Returns [`CorpusError::MissingAnchor`] if the corpus source lost its
/// anchors (a corpus bug) — never panics, so harnesses can report it.
pub fn kmeans_injections() -> Result<Vec<Injection>, CorpusError> {
    let base = crate::kmeans::module();
    let mk = |name: &'static str,
              site,
              payload: &'static str,
              kind,
              secret: &str,
              channel: &str|
     -> Result<Injection, CorpusError> {
        let source = splice(base.name, base.source, site, payload)?;
        Ok(Injection {
            name,
            explicit: kind == LeakKind::Explicit,
            module: Module {
                name: "Kmeans(injected)",
                // leak the modified source; Module.source is &'static str,
                // so injected variants carry owned sources via Box::leak —
                // they are created once per process in practice.
                source: Box::leak(source.into_boxed_str()),
                edl: base.edl,
                entry: base.entry,
                expected_violations: 1,
            },
            payload,
            expectations: vec![Expectation {
                id: name.to_string(),
                kind,
                secret: secret.to_string(),
                channel: channel.to_string(),
                payload: payload.to_string(),
            }],
        })
    };
    Ok(vec![
        mk(
            "explicit-out-copy",
            Site::Epilogue,
            EXPLICIT_OUT_PAYLOAD,
            LeakKind::Explicit,
            "points[0]",
            "result[2]",
        )?,
        mk(
            "explicit-ocall",
            Site::Prologue,
            EXPLICIT_OCALL_PAYLOAD,
            LeakKind::Explicit,
            "points[1]",
            "argument 0 of `ocall_debug`",
        )?,
        mk(
            "implicit-ocall",
            Site::Prologue,
            IMPLICIT_OCALL_PAYLOAD,
            LeakKind::Implicit,
            "points[0]",
            "argument 0 of `ocall_progress`",
        )?,
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn injected_variants_validate() {
        for injection in kmeans_injections().expect("corpus anchors intact") {
            injection
                .module
                .validate()
                .expect("injected variant is valid");
        }
    }

    #[test]
    fn payloads_are_spliced_at_anchors() {
        let injections = kmeans_injections().expect("corpus anchors intact");
        assert_eq!(injections.len(), 3);
        for injection in &injections {
            assert!(injection.module.source.contains(injection.payload));
        }
        // epilogue payload lands after the clustering, prologue before it
        let explicit = &injections[0];
        let idx_payload = explicit.module.source.find(explicit.payload).unwrap();
        let idx_init = explicit.module.source.find("init_centroids(").unwrap();
        assert!(idx_payload > idx_init);
    }

    #[test]
    fn missing_anchor_is_a_typed_error() {
        let err = splice("Kmeans", "int f() { return 0; }", Site::Prologue, "x;")
            .expect_err("anchorless source must be rejected");
        assert!(matches!(
            err,
            CorpusError::MissingAnchor {
                anchor: "/* inject: prologue */",
                ..
            }
        ));
        assert!(err.to_string().contains("anchor"));
    }
}
