//! The Recommender module (Table V: 117 LoC) — case study 1.
//!
//! A port of an open-source user-user collaborative-filtering library into
//! a Mini-C enclave. The port reproduces **six nonreversibility
//! violations** analogous to the preexisting leaks the paper reported in
//! the real project (§VI-D-1):
//!
//! | # | Kind | Site | What leaks |
//! |---|---|---|---|
//! | 1 | explicit | `out[5] = ratings[1] * 2 + 7` | a raw rating through an affine debug leftover |
//! | 2 | explicit | `out[6] = ratings[2]²` | a single rating through a square |
//! | 3 | explicit | `ocall_log_rating(ratings[3] + 1)` | a rating through a logging OCALL |
//! | 4 | explicit | `out[7] = scale_rating(ratings[4])` | a rating through a helper (×3) |
//! | 5 | implicit | `if (ratings[0] > 3) rc = 1 else rc = 0` | the return code pins a branch over one rating |
//! | 6 | implicit | `if (ratings[0] == 0) out[8] = 1 else out[8] = 0` | a cold-start flag pins the same rating |
//!
//! [`fixed`] is the repaired variant (all six sites removed/aggregated),
//! used by the no-false-positive tests.

use crate::Module;

/// The as-ported (leaky) enclave source — what the paper analyzed.
pub const SOURCE: &str = r#"/* Recommender enclave module: user-user collaborative filtering. */
int NUM_USERS = 4;
int NUM_ITEMS = 5;

void ocall_log_rating(double value);

double rating_at(double *ratings, int user, int item) {
    int index = user * 5 + item;
    return ratings[index];
}

double dot_users(double *ratings, int a, int b) {
    double total = 0.0;
    int item = 0;
    for (item = 0; item < 5; item++) {
        double ra = rating_at(ratings, a, item);
        double rb = rating_at(ratings, b, item);
        total = total + ra * rb;
    }
    return total;
}

double norm_user(double *ratings, int user) {
    double self_dot = dot_users(ratings, user, user);
    return sqrt(self_dot + 0.000001);
}

double cosine_similarity(double *ratings, int a, int b) {
    double numerator = dot_users(ratings, a, b);
    double na = norm_user(ratings, a);
    double nb = norm_user(ratings, b);
    double denominator = na * nb;
    return numerator / denominator;
}

double user_mean(double *ratings, int user) {
    double total = 0.0;
    int item = 0;
    for (item = 0; item < 5; item++) {
        total = total + rating_at(ratings, user, item);
    }
    double mean = total / 5.0;
    return mean;
}

void compute_user_means(double *ratings, double *means) {
    int user = 0;
    for (user = 0; user < 4; user++) {
        means[user] = user_mean(ratings, user);
    }
}

double centered_rating(double *ratings, double *means, int user, int item) {
    double raw = rating_at(ratings, user, item);
    return raw - means[user];
}

double dot_centered(double *ratings, double *means, int a, int b) {
    double total = 0.0;
    int item = 0;
    for (item = 0; item < 5; item++) {
        double ca = centered_rating(ratings, means, a, item);
        double cb = centered_rating(ratings, means, b, item);
        total = total + ca * cb;
    }
    return total;
}

double norm_centered(double *ratings, double *means, int user) {
    double self_dot = dot_centered(ratings, means, user, user);
    return sqrt(self_dot + 0.000001);
}

double pearson_similarity(double *ratings, double *means, int a, int b) {
    double numerator = dot_centered(ratings, means, a, b);
    double na = norm_centered(ratings, means, a);
    double nb = norm_centered(ratings, means, b);
    double denominator = na * nb + 0.000001;
    return numerator / denominator;
}

double scale_rating(double value) {
    return value * 3.0;
}

double predict_item(double *ratings, double *means, double *sims, int item) {
    double weighted = 0.0;
    double sim_total = 0.0;
    int user = 1;
    for (user = 1; user < 4; user++) {
        double sim = sims[user];
        double centered = centered_rating(ratings, means, user, item);
        weighted = weighted + sim * centered;
        sim_total = sim_total + sim * sim;
    }
    double denom = sim_total + 0.000001;
    return means[0] + weighted / denom;
}

int enclave_recommend(double *ratings, double *out) {
    double sims[4];
    double means[4];
    int user = 0;
    int item = 0;
    int rc = 0;
    sims[0] = 1.0;
    compute_user_means(ratings, means);
    for (user = 1; user < 4; user++) {
        sims[user] = pearson_similarity(ratings, means, 0, user);
    }
    for (item = 0; item < 5; item++) {
        out[item] = predict_item(ratings, means, sims, item);
    }
    double debug_value = ratings[1] * 2.0;
    out[5] = debug_value + 7.0;
    double squared = ratings[2] * ratings[2];
    out[6] = squared;
    double log_value = ratings[3] + 1.0;
    ocall_log_rating(log_value);
    out[7] = scale_rating(ratings[4]);
    if (ratings[0] > 3.0) {
        rc = 1;
    } else {
        rc = 0;
    }
    if (ratings[0] == 0.0) {
        out[8] = 1.0;
    } else {
        out[8] = 0.0;
    }
    return rc;
}
"#;

/// The repaired variant: every observable is an aggregate over all users.
pub const FIXED_SOURCE: &str = r#"/* Recommender enclave module, repaired after disclosure. */
int NUM_USERS = 4;
int NUM_ITEMS = 5;

void ocall_log_rating(double value);

double rating_at(double *ratings, int user, int item) {
    return ratings[user * 5 + item];
}

double dot_users(double *ratings, int a, int b) {
    double total = 0.0;
    int item = 0;
    for (item = 0; item < 5; item++) {
        double ra = rating_at(ratings, a, item);
        double rb = rating_at(ratings, b, item);
        total = total + ra * rb;
    }
    return total;
}

double norm_user(double *ratings, int user) {
    double self_dot = dot_users(ratings, user, user);
    return sqrt(self_dot + 0.000001);
}

double cosine_similarity(double *ratings, int a, int b) {
    double numerator = dot_users(ratings, a, b);
    double denominator = norm_user(ratings, a) * norm_user(ratings, b);
    return numerator / denominator;
}

double predict_item(double *ratings, double *sims, int item) {
    double weighted = 0.0;
    double sim_total = 0.0;
    int user = 1;
    for (user = 1; user < 4; user++) {
        double sim = sims[user];
        double rating = rating_at(ratings, user, item);
        weighted = weighted + sim * rating;
        sim_total = sim_total + sim;
    }
    return weighted / (sim_total + 0.000001);
}

double mean_prediction(double *out) {
    double total = 0.0;
    int item = 0;
    for (item = 0; item < 5; item++) {
        total = total + out[item];
    }
    return total / 5.0;
}

int enclave_recommend(double *ratings, double *out) {
    double sims[4];
    int user = 0;
    int item = 0;
    sims[0] = 1.0;
    for (user = 1; user < 4; user++) {
        sims[user] = cosine_similarity(ratings, 0, user);
    }
    for (item = 0; item < 5; item++) {
        out[item] = predict_item(ratings, sims, item);
    }
    double mean = mean_prediction(out);
    out[5] = mean;
    out[6] = mean * mean;
    out[7] = sims[1] + sims[2] + sims[3];
    out[8] = 0.0;
    return 0;
}
"#;

/// The enclave interface (shared by both variants).
pub const EDL: &str = r#"
enclave {
    trusted {
        public int enclave_recommend([in, count=20] double *ratings,
                                     [out, count=9] double *out);
    };
    untrusted {
        void ocall_log_rating(double value);
    };
};
"#;

/// The corpus entry for Table V — the as-ported, leaky variant.
pub fn module() -> Module {
    Module {
        name: "Recommender",
        source: SOURCE,
        edl: EDL,
        entry: "enclave_recommend",
        expected_violations: 6,
    }
}

/// The leaky variant under its case-study name.
pub fn vulnerable() -> Module {
    module()
}

/// The repaired variant (zero violations expected).
pub fn fixed() -> Module {
    Module {
        name: "Recommender(fixed)",
        source: FIXED_SOURCE,
        edl: EDL,
        entry: "enclave_recommend",
        expected_violations: 0,
    }
}
