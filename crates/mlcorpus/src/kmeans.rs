//! The Kmeans module (Table V: 179 LoC).
//!
//! A port of an open-source 1-D k-means clusterer (k = 2, smoothed
//! centroid updates, inertia reporting) into a Mini-C enclave. The module
//! is *clean*: centroids are smoothed aggregates over the whole batch plus
//! the previous (already-mixed) centroid, so every observable output
//! carries ⊤ taint. The `/* inject: … */` markers are the anchor points
//! used by [`crate::inject`] for case study 2 (the clean build treats them
//! as comments).

use crate::Module;

/// The enclave source (179 LoC, matching the paper's Table V).
pub const SOURCE: &str = r#"/* Kmeans enclave module: 1-D clustering with smoothed updates. */
int NUM_POINTS = 10;
int NUM_CLUSTERS = 2;
int MAX_ITERS = 3;

void ocall_progress(int step);
void ocall_debug(int value);

double point_at(double *points, int index) {
    return points[index];
}

double batch_mean(double *points) {
    double total = 0.0;
    int i = 0;
    for (i = 0; i < 10; i++) {
        total = total + point_at(points, i);
    }
    return total / 10.0;
}

double batch_spread(double *points, double mean) {
    double accum = 0.0;
    int i = 0;
    for (i = 0; i < 10; i++) {
        double delta = point_at(points, i) - mean;
        accum = accum + delta * delta;
    }
    double variance = accum / 10.0;
    return sqrt(variance + 0.000001);
}

void init_centroids(double *points, double *centroids) {
    double mean = batch_mean(points);
    double spread = batch_spread(points, mean);
    double half_spread = spread * 0.5;
    centroids[0] = mean - half_spread;
    centroids[1] = mean + half_spread;
}

double safe_divide(double num, double den) {
    double guarded = den + 0.000001;
    return num / guarded;
}

double squared_distance(double a, double b) {
    double diff = a - b;
    return diff * diff;
}

double absolute_value(double x) {
    double squared = x * x;
    return sqrt(squared);
}

void copy_centroids(double *src, double *dst) {
    int k = 0;
    for (k = 0; k < 2; k++) {
        dst[k] = src[k];
    }
}

double centroid_shift(double *old_c, double *new_c) {
    double shift = 0.0;
    int k = 0;
    for (k = 0; k < 2; k++) {
        double delta = new_c[k] - old_c[k];
        shift = shift + absolute_value(delta);
    }
    return shift;
}

double smaller_of(double a, double b) {
    double mid = (a + b) * 0.5;
    double gap = a - b;
    double half_gap = absolute_value(gap) * 0.5;
    return mid - half_gap;
}

double larger_of(double a, double b) {
    double mid = (a + b) * 0.5;
    double gap = a - b;
    double half_gap = absolute_value(gap) * 0.5;
    return mid + half_gap;
}

int nearest_centroid(double value, double *centroids) {
    double d0 = squared_distance(value, centroids[0]);
    double d1 = squared_distance(value, centroids[1]);
    if (d1 < d0) {
        return 1;
    }
    return 0;
}

void assign_points(double *points, double *centroids, int *assignments) {
    int i = 0;
    for (i = 0; i < 10; i++) {
        double value = point_at(points, i);
        assignments[i] = nearest_centroid(value, centroids);
    }
}

void zero_accumulators(double *sums, double *counts) {
    int k = 0;
    for (k = 0; k < 2; k++) {
        sums[k] = 0.0;
        counts[k] = 0.0;
    }
}

void accumulate_clusters(double *points, int *assignments,
                         double *sums, double *counts) {
    int i = 0;
    for (i = 0; i < 10; i++) {
        int cluster = assignments[i];
        double value = point_at(points, i);
        sums[cluster] = sums[cluster] + value;
        counts[cluster] = counts[cluster] + 1.0;
    }
}

void update_centroids(double *centroids, double *sums, double *counts) {
    int k = 0;
    for (k = 0; k < 2; k++) {
        double smoothed_sum = sums[k] + centroids[k];
        double smoothed_count = counts[k] + 1.0;
        centroids[k] = safe_divide(smoothed_sum, smoothed_count);
    }
}

double compute_inertia(double *points, double *centroids, int *assignments) {
    double total = 0.0;
    int i = 0;
    for (i = 0; i < 10; i++) {
        double value = point_at(points, i);
        int cluster = assignments[i];
        double centroid = centroids[cluster];
        total = total + squared_distance(value, centroid);
    }
    return total;
}

double cluster_inertia(double *points, double *centroids,
                       int *assignments, int target) {
    double total = 0.0;
    int i = 0;
    for (i = 0; i < 10; i++) {
        int cluster = assignments[i];
        double value = point_at(points, i);
        double centroid = centroids[cluster];
        double offset = (double)(cluster - target);
        double match = 1.0 - absolute_value(offset);
        total = total + match * squared_distance(value, centroid);
    }
    return total;
}

double cluster_balance(double *counts) {
    double larger = counts[0];
    double smaller = counts[1];
    double numerator = smaller + 1.0;
    double denominator = larger + 1.0;
    return safe_divide(numerator, denominator);
}

void run_iterations(double *points, double *centroids, int *assignments,
                    double *sums, double *counts, double *shift_cell) {
    double previous[2];
    int iter = 0;
    shift_cell[0] = 0.0;
    for (iter = 0; iter < 3; iter++) {
        copy_centroids(centroids, previous);
        assign_points(points, centroids, assignments);
        zero_accumulators(sums, counts);
        accumulate_clusters(points, assignments, sums, counts);
        update_centroids(centroids, sums, counts);
        shift_cell[0] = centroid_shift(previous, centroids);
    }
}

int enclave_kmeans(double *points, double *result) {
    double centroids[2];
    int assignments[10];
    double sums[2];
    double counts[2];
    double shift_cell[1];
    /* inject: prologue */
    init_centroids(points, centroids);
    run_iterations(points, centroids, assignments, sums, counts, shift_cell);
    double inertia = compute_inertia(points, centroids, assignments);
    double balance = cluster_balance(counts);
    double inertia_low = cluster_inertia(points, centroids, assignments, 0);
    double inertia_high = cluster_inertia(points, centroids, assignments, 1);
    result[0] = smaller_of(centroids[0], centroids[1]);
    result[1] = larger_of(centroids[0], centroids[1]);
    result[2] = inertia;
    result[3] = balance;
    result[4] = inertia_low;
    result[5] = inertia_high;
    result[6] = shift_cell[0];
    /* inject: epilogue */
    return 0;
}
"#;

/// The enclave interface (the OCALLs exist for the injected variants; the
/// clean build never calls them).
pub const EDL: &str = r#"
enclave {
    trusted {
        public int enclave_kmeans([in, count=10] double *points,
                                  [out, count=7] double *result);
    };
    untrusted {
        void ocall_progress(int step);
        void ocall_debug(int value);
    };
};
"#;

/// The corpus entry for Table V.
pub fn module() -> Module {
    Module {
        name: "Kmeans",
        source: SOURCE,
        edl: EDL,
        entry: "enclave_kmeans",
        expected_violations: 0,
    }
}
