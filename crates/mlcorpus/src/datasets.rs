//! Deterministic synthetic datasets for running the corpus modules inside
//! the simulated enclave (examples, end-to-end tests, benches).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Linear-regression training data: `NUM_ROWS`×`NUM_FEATURES` features
/// (row-major) and targets generated from known ground-truth weights plus
/// bounded noise.
#[derive(Debug, Clone, PartialEq)]
pub struct RegressionData {
    /// Row-major features, `rows × 3`.
    pub xs: Vec<f64>,
    /// Targets, one per row.
    pub ys: Vec<f64>,
    /// The generating weights (for checking the trainer recovers them).
    pub true_weights: [f64; 3],
    /// The generating bias.
    pub true_bias: f64,
}

/// Generates regression data for the corpus LR module (12 rows × 3
/// features).
pub fn regression(seed: u64) -> RegressionData {
    let mut rng = StdRng::seed_from_u64(seed);
    let true_weights = [2.0, -1.0, 0.5];
    let true_bias = 3.0;
    let mut xs = Vec::with_capacity(12 * 3);
    let mut ys = Vec::with_capacity(12);
    for _ in 0..12 {
        let row: [f64; 3] = [
            rng.gen_range(-5.0..5.0),
            rng.gen_range(-5.0..5.0),
            rng.gen_range(-5.0..5.0),
        ];
        let noise: f64 = rng.gen_range(-0.05..0.05);
        let y = true_bias
            + row
                .iter()
                .zip(true_weights)
                .map(|(x, w)| x * w)
                .sum::<f64>()
            + noise;
        xs.extend(row);
        ys.push(y);
    }
    RegressionData {
        xs,
        ys,
        true_weights,
        true_bias,
    }
}

/// 1-D k-means points: two well-separated Gaussian-ish blobs (10 points,
/// matching the corpus module).
pub fn kmeans_points(seed: u64) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut points = Vec::with_capacity(10);
    for i in 0..10 {
        let center = if i % 2 == 0 { 10.0 } else { 90.0 };
        points.push(center + rng.gen_range(-3.0..3.0));
    }
    points
}

/// A 4-user × 5-item rating matrix (flat, row-major) with correlated
/// users, values in 0..=5.
pub fn ratings(seed: u64) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    let base: [f64; 5] = [5.0, 3.0, 4.0, 1.0, 2.0];
    let mut matrix = Vec::with_capacity(20);
    for user in 0..4 {
        for item_base in base {
            let drift = rng.gen_range(-1.0..1.0) + user as f64 * 0.25;
            let value: f64 = (item_base + drift).clamp(0.0, 5.0);
            matrix.push((value * 2.0).round() / 2.0);
        }
    }
    matrix
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regression_shapes_and_determinism() {
        let a = regression(7);
        let b = regression(7);
        assert_eq!(a, b);
        assert_eq!(a.xs.len(), 36);
        assert_eq!(a.ys.len(), 12);
        // targets follow the generating model up to noise
        for row in 0..12 {
            let predicted: f64 = a.true_bias
                + (0..3)
                    .map(|c| a.xs[row * 3 + c] * a.true_weights[c])
                    .sum::<f64>();
            assert!((predicted - a.ys[row]).abs() < 0.1);
        }
    }

    #[test]
    fn kmeans_points_form_two_blobs() {
        let points = kmeans_points(1);
        assert_eq!(points.len(), 10);
        let low = points.iter().filter(|p| **p < 50.0).count();
        let high = points.iter().filter(|p| **p >= 50.0).count();
        assert_eq!(low, 5);
        assert_eq!(high, 5);
    }

    #[test]
    fn ratings_are_bounded() {
        let matrix = ratings(3);
        assert_eq!(matrix.len(), 20);
        assert!(matrix.iter().all(|r| (0.0..=5.0).contains(r)));
        assert_ne!(ratings(3), ratings(4));
    }
}
