//! The evaluation corpus: the three open-source ML modules the paper
//! ported into SGX enclaves (§VI-C), as Mini-C source with EDL interfaces,
//! plus the malicious-logic injector of case study 2 (§VI-D).
//!
//! | Module | Paper LoC | Here |
//! |---|---|---|
//! | LinearRegression | 161 | [`linear_regression`] |
//! | Kmeans | 179 | [`kmeans`] |
//! | Recommender (collaborative filtering) | 117 | [`recommender`] |
//!
//! Each module ships a *clean* variant and (for the case studies) a
//! *vulnerable* variant; the Recommender's vulnerable variant reproduces
//! the six nonreversibility violations the paper reported. [`inject`]
//! mechanically inserts explicit/implicit leakage payloads into any module,
//! mimicking the paper's malicious-enclave-writer experiment.

pub mod datasets;
pub mod inject;
pub mod kmeans;
pub mod linear_regression;
pub mod recommender;

/// A corpus module: source, interface, and ground truth for the harness.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Module {
    /// Short name (`LinearRegression`, `Kmeans`, `Recommender`).
    pub name: &'static str,
    /// Mini-C source of the enclave code.
    pub source: &'static str,
    /// The EDL interface for the enclave.
    pub edl: &'static str,
    /// The entry ECALL the paper analyzes.
    pub entry: &'static str,
    /// Number of nonreversibility violations the clean variant contains.
    pub expected_violations: usize,
}

/// All three clean modules, in the paper's Table V order.
pub fn modules() -> Vec<Module> {
    vec![
        linear_regression::module(),
        kmeans::module(),
        recommender::module(),
    ]
}

/// The vulnerable Recommender used by case study 1 (six violations).
///
/// This is the same source as [`recommender::module`] — the paper analyzed
/// the as-ported project and found the leaks pre-existing.
pub fn recommender_vulnerable() -> Module {
    recommender::vulnerable()
}

#[cfg(test)]
mod tests {
    #[test]
    fn all_modules_parse() {
        for module in super::modules() {
            minic::parse(module.source).unwrap_or_else(|e| {
                panic!("{} does not parse: {e}", module.name);
            });
            edl::parse_edl(module.edl).unwrap_or_else(|e| {
                panic!("{} EDL does not parse: {e}", module.name);
            });
        }
    }

    #[test]
    fn loc_matches_paper_table5() {
        // Table V: LinearRegression 161, Kmeans 179, Recommender 117.
        let expected = [161usize, 179, 117];
        for (module, expected) in super::modules().iter().zip(expected) {
            let loc = minic::count_loc(module.source);
            assert_eq!(
                loc, expected,
                "{} LoC {loc} != paper's {expected}",
                module.name
            );
        }
    }
}
