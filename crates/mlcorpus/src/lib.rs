//! The evaluation corpus: the three open-source ML modules the paper
//! ported into SGX enclaves (§VI-C), as Mini-C source with EDL interfaces,
//! plus the malicious-logic injector of case study 2 (§VI-D).
//!
//! | Module | Paper LoC | Here |
//! |---|---|---|
//! | LinearRegression | 161 | [`linear_regression`] |
//! | Kmeans | 179 | [`kmeans`] |
//! | Recommender (collaborative filtering) | 117 | [`recommender`] |
//!
//! Each module ships a *clean* variant and (for the case studies) a
//! *vulnerable* variant; the Recommender's vulnerable variant reproduces
//! the six nonreversibility violations the paper reported. [`inject`]
//! mechanically inserts explicit/implicit leakage payloads into any module,
//! mimicking the paper's malicious-enclave-writer experiment.

use std::fmt;

pub mod datasets;
pub mod expect;
pub mod inject;
pub mod kmeans;
pub mod linear_regression;
pub mod recommender;
pub mod synth;

/// A defect in the shipped corpus itself: a module whose source or EDL no
/// longer parses, or one that lost an injection anchor. Library paths
/// report these as values — a broken corpus must never panic the harness
/// that consumes it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CorpusError {
    /// The module's Mini-C source does not parse.
    Parse {
        /// Module name.
        module: String,
        /// The underlying parse error.
        error: minic::Error,
    },
    /// The module's EDL interface does not parse.
    Edl {
        /// Module name.
        module: String,
        /// The underlying EDL error.
        error: edl::EdlError,
    },
    /// The module's source lost an `/* inject: … */` anchor comment, so a
    /// payload has nowhere to go.
    MissingAnchor {
        /// Module name.
        module: String,
        /// The anchor comment that was expected.
        anchor: &'static str,
    },
}

impl fmt::Display for CorpusError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CorpusError::Parse { module, error } => {
                write!(f, "corpus module `{module}` does not parse: {error}")
            }
            CorpusError::Edl { module, error } => {
                write!(f, "corpus module `{module}` has a bad EDL: {error}")
            }
            CorpusError::MissingAnchor { module, anchor } => {
                write!(f, "corpus module `{module}` lacks the `{anchor}` anchor")
            }
        }
    }
}

impl std::error::Error for CorpusError {}

/// A corpus module: source, interface, and ground truth for the harness.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Module {
    /// Short name (`LinearRegression`, `Kmeans`, `Recommender`).
    pub name: &'static str,
    /// Mini-C source of the enclave code.
    pub source: &'static str,
    /// The EDL interface for the enclave.
    pub edl: &'static str,
    /// The entry ECALL the paper analyzes.
    pub entry: &'static str,
    /// Number of nonreversibility violations the clean variant contains.
    pub expected_violations: usize,
}

impl Module {
    /// Checks that the module's source and EDL still parse.
    ///
    /// # Errors
    ///
    /// Returns the first [`CorpusError`] found.
    pub fn validate(&self) -> Result<(), CorpusError> {
        minic::parse(self.source).map_err(|error| CorpusError::Parse {
            module: self.name.to_string(),
            error,
        })?;
        edl::parse_edl(self.edl).map_err(|error| CorpusError::Edl {
            module: self.name.to_string(),
            error,
        })?;
        Ok(())
    }
}

/// All three clean modules, in the paper's Table V order.
pub fn modules() -> Vec<Module> {
    vec![
        linear_regression::module(),
        kmeans::module(),
        recommender::module(),
    ]
}

/// The vulnerable Recommender used by case study 1 (six violations).
///
/// This is the same source as [`recommender::module`] — the paper analyzed
/// the as-ported project and found the leaks pre-existing.
pub fn recommender_vulnerable() -> Module {
    recommender::vulnerable()
}

#[cfg(test)]
mod tests {
    #[test]
    fn all_modules_validate() {
        for module in super::modules() {
            module.validate().expect("shipped corpus module is valid");
        }
    }

    #[test]
    fn validate_reports_typed_errors() {
        let mut broken = super::recommender::module();
        broken.source = "int f( {";
        assert!(matches!(
            broken.validate(),
            Err(super::CorpusError::Parse { .. })
        ));
        let mut bad_edl = super::recommender::module();
        bad_edl.edl = "enclave { trusted {";
        assert!(matches!(
            bad_edl.validate(),
            Err(super::CorpusError::Edl { .. })
        ));
    }

    #[test]
    fn loc_matches_paper_table5() {
        // Table V: LinearRegression 161, Kmeans 179, Recommender 117.
        let expected = [161usize, 179, 117];
        for (module, expected) in super::modules().iter().zip(expected) {
            let loc = minic::count_loc(module.source);
            assert_eq!(
                loc, expected,
                "{} LoC {loc} != paper's {expected}",
                module.name
            );
        }
    }
}
