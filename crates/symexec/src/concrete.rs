//! Concrete evaluation of symbolic expressions under a full assignment.
//!
//! Used to validate the simplifier and the constraint manager: a symbolic
//! expression evaluated under an assignment must agree with its simplified
//! form, and a model produced for a path condition must satisfy it.
//!
//! Two evaluators live here. [`eval`] is the original integer-only one the
//! feasibility logic uses. [`ceval`] is the full numeric evaluator behind
//! the differential oracle's cross-interpreter pre-flight: it mirrors the
//! SGX simulator's semantics (`sgx_sim::interp`) — wrapping integer
//! arithmetic, `& 63` shift masks, float contamination, and the same math
//! builtins — so a symbolic value replayed under a concrete assignment can
//! be compared against what the simulator actually computed.

use std::collections::BTreeMap;

use minic::ast::{BinOp, UnOp};

use crate::simplify::fold_ints;
use crate::value::SVal;

/// Maps symbol ids to concrete integer values.
pub type Assignment = BTreeMap<u32, i64>;

/// Evaluates `sval` under `assignment`.
///
/// Returns `None` when the expression contains [`SVal::Unknown`], a pointer
/// value, an uninterpreted call, floats (the checker's feasibility logic is
/// integer-only), or an unassigned symbol — i.e. whenever no unique concrete
/// integer is denoted.
pub fn eval(sval: &SVal, assignment: &Assignment) -> Option<i64> {
    match sval {
        SVal::Int(v) => Some(*v),
        SVal::Float(_) => None,
        SVal::Sym(sym) => assignment.get(&sym.id).copied(),
        SVal::Loc(_) => None,
        SVal::Binary { op, lhs, rhs } => {
            // && and || short-circuit, but with both sides total this is
            // observationally the same as strict evaluation.
            let a = eval(lhs, assignment)?;
            let b = eval(rhs, assignment)?;
            match fold_ints(*op, a, b)? {
                SVal::Int(v) => Some(v),
                _ => None, // division by zero
            }
        }
        SVal::Unary { op, arg } => {
            let v = eval(arg, assignment)?;
            Some(match op {
                UnOp::Neg => v.wrapping_neg(),
                UnOp::Plus => v,
                UnOp::Not => i64::from(v == 0),
                UnOp::BitNot => !v,
            })
        }
        SVal::Call { .. } | SVal::Unknown => None,
    }
}

/// Evaluates `sval` as a branch condition: `Some(true)` if non-zero.
pub fn eval_bool(sval: &SVal, assignment: &Assignment) -> Option<bool> {
    eval(sval, assignment).map(|v| v != 0)
}

/// A tiny helper for tests: builds an assignment from pairs.
pub fn assignment<I: IntoIterator<Item = (u32, i64)>>(pairs: I) -> Assignment {
    pairs.into_iter().collect()
}

/// A concrete numeric value: what one run of the program computes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CVal {
    /// A 64-bit integer.
    Int(i64),
    /// An IEEE double.
    Float(f64),
}

impl CVal {
    /// The value as a float, coercing integers (the simulator's
    /// `Value::as_float` rule).
    #[must_use]
    pub fn as_float(self) -> f64 {
        match self {
            CVal::Int(v) => v as f64,
            CVal::Float(v) => v,
        }
    }

    /// C truthiness: non-zero is true.
    #[must_use]
    pub fn truthy(self) -> bool {
        match self {
            CVal::Int(v) => v != 0,
            CVal::Float(v) => v != 0.0,
        }
    }

    /// Numeric agreement for differential comparison: exact on integers,
    /// numeric (`-0.0 == 0.0`) on floats with both-NaN counting as
    /// agreement, cross-width by float coercion.
    #[must_use]
    pub fn same_number(self, other: CVal) -> bool {
        match (self, other) {
            (CVal::Int(a), CVal::Int(b)) => a == b,
            (a, b) => {
                let (a, b) = (a.as_float(), b.as_float());
                a == b || (a.is_nan() && b.is_nan())
            }
        }
    }
}

/// Maps symbol ids to concrete numeric values.
pub type CAssignment = BTreeMap<u32, CVal>;

fn cfold(op: BinOp, a: CVal, b: CVal) -> Option<CVal> {
    // Float contamination first, exactly as `sgx_sim::interp::binop`.
    if matches!(a, CVal::Float(_)) || matches!(b, CVal::Float(_)) {
        let (x, y) = (a.as_float(), b.as_float());
        return Some(match op {
            BinOp::Add => CVal::Float(x + y),
            BinOp::Sub => CVal::Float(x - y),
            BinOp::Mul => CVal::Float(x * y),
            BinOp::Div => CVal::Float(x / y),
            BinOp::Rem => CVal::Float(x % y),
            BinOp::Lt => CVal::Int(i64::from(x < y)),
            BinOp::Le => CVal::Int(i64::from(x <= y)),
            BinOp::Gt => CVal::Int(i64::from(x > y)),
            BinOp::Ge => CVal::Int(i64::from(x >= y)),
            BinOp::Eq => CVal::Int(i64::from(x == y)),
            BinOp::Ne => CVal::Int(i64::from(x != y)),
            BinOp::LogAnd => CVal::Int(i64::from(x != 0.0 && y != 0.0)),
            BinOp::LogOr => CVal::Int(i64::from(x != 0.0 || y != 0.0)),
            // The simulator faults on these; there is no number to agree on.
            BinOp::Shl | BinOp::Shr | BinOp::BitAnd | BinOp::BitXor | BinOp::BitOr => return None,
        });
    }
    let (CVal::Int(x), CVal::Int(y)) = (a, b) else {
        return None;
    };
    // Integer division by zero faults in the simulator and is `Unknown`
    // symbolically — either way, not a unique number.
    match fold_ints(op, x, y)? {
        SVal::Int(v) => Some(CVal::Int(v)),
        _ => None,
    }
}

/// Evaluates `sval` to a concrete number under `assignment`, mirroring the
/// SGX simulator's runtime semantics.
///
/// Returns `None` for pointers, [`SVal::Unknown`], unassigned symbols,
/// integer division by zero, and calls the simulator does not model as
/// pure math — whenever symbolic and concrete semantics could diverge for
/// reasons that are not analyzer bugs.
pub fn ceval(sval: &SVal, assignment: &CAssignment) -> Option<CVal> {
    match sval {
        SVal::Int(v) => Some(CVal::Int(*v)),
        SVal::Float(v) => Some(CVal::Float(v.0)),
        SVal::Sym(sym) => assignment.get(&sym.id).copied(),
        SVal::Loc(_) => None,
        SVal::Binary { op, lhs, rhs } => {
            // && and || short-circuit at runtime, but both sides are total
            // here, so strict evaluation is observationally identical.
            let a = ceval(lhs, assignment)?;
            let b = ceval(rhs, assignment)?;
            cfold(*op, a, b)
        }
        SVal::Unary { op, arg } => {
            let v = ceval(arg, assignment)?;
            Some(match (op, v) {
                (UnOp::Neg, CVal::Int(i)) => CVal::Int(i.wrapping_neg()),
                (UnOp::Neg, CVal::Float(f)) => CVal::Float(-f),
                (UnOp::Plus, v) => v,
                (UnOp::Not, v) => CVal::Int(i64::from(!v.truthy())),
                (UnOp::BitNot, CVal::Int(i)) => CVal::Int(!i),
                (UnOp::BitNot, CVal::Float(_)) => return None,
            })
        }
        SVal::Call { func, args } => {
            if func == "ite" {
                // The engine's non-forking ternary: `ite(cond, then, else)`.
                // The simulator evaluates only the taken arm, so the untaken
                // arm is allowed to be unevaluable without disagreement.
                let cond = ceval(args.first()?, assignment)?;
                let chosen = if cond.truthy() {
                    args.get(1)?
                } else {
                    args.get(2)?
                };
                return ceval(chosen, assignment);
            }
            let vals: Vec<CVal> = args
                .iter()
                .map(|a| ceval(a, assignment))
                .collect::<Option<_>>()?;
            let f1 = || vals.first().map(|v| v.as_float());
            Some(match func.as_str() {
                "sqrt" | "sqrtf" => CVal::Float(f1()?.sqrt()),
                "fabs" | "fabsf" => CVal::Float(f1()?.abs()),
                "exp" => CVal::Float(f1()?.exp()),
                "log" => CVal::Float(f1()?.ln()),
                "floor" => CVal::Float(f1()?.floor()),
                "ceil" => CVal::Float(f1()?.ceil()),
                "sin" => CVal::Float(f1()?.sin()),
                "cos" => CVal::Float(f1()?.cos()),
                "pow" => CVal::Float(f1()?.powf(vals.get(1)?.as_float())),
                "abs" => match vals.first()? {
                    CVal::Int(i) => CVal::Int(i.abs()),
                    CVal::Float(f) => CVal::Int((*f as i64).abs()),
                },
                // `rand`/`srand`/IO are stateful in the simulator; an
                // uninterpreted symbolic call has no pure denotation.
                _ => return None,
            })
        }
        SVal::Unknown => None,
    }
}

/// Evaluates `sval` as a branch condition under a numeric assignment.
pub fn ceval_bool(sval: &SVal, assignment: &CAssignment) -> Option<bool> {
    ceval(sval, assignment).map(CVal::truthy)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Symbol;
    use minic::ast::BinOp;

    fn x() -> SVal {
        SVal::Sym(Symbol::new(1, "x"))
    }

    #[test]
    fn evaluates_expressions() {
        let e = SVal::binary(
            BinOp::Add,
            SVal::binary(BinOp::Mul, SVal::Int(2), x()),
            SVal::Int(5),
        );
        assert_eq!(eval(&e, &assignment([(1, 10)])), Some(25));
    }

    #[test]
    fn unassigned_symbol_is_none() {
        assert_eq!(eval(&x(), &assignment([])), None);
    }

    #[test]
    fn division_by_zero_is_none() {
        let e = SVal::binary(BinOp::Div, SVal::Int(1), x());
        assert_eq!(eval(&e, &assignment([(1, 0)])), None);
        assert_eq!(eval(&e, &assignment([(1, 2)])), Some(0));
    }

    #[test]
    fn bool_evaluation() {
        let e = SVal::binary(BinOp::Gt, x(), SVal::Int(3));
        assert_eq!(eval_bool(&e, &assignment([(1, 5)])), Some(true));
        assert_eq!(eval_bool(&e, &assignment([(1, 1)])), Some(false));
    }

    #[test]
    fn unknown_and_calls_are_none() {
        assert_eq!(eval(&SVal::Unknown, &assignment([])), None);
        let call = SVal::Call {
            func: "sqrt".into(),
            args: vec![SVal::Int(4)],
        };
        assert_eq!(eval(&call, &assignment([])), None);
    }

    fn cassign<I: IntoIterator<Item = (u32, CVal)>>(pairs: I) -> CAssignment {
        pairs.into_iter().collect()
    }

    #[test]
    fn ceval_mirrors_integer_semantics() {
        let e = SVal::binary(
            BinOp::Shl,
            SVal::Int(1),
            SVal::binary(BinOp::Add, SVal::Int(62), x()),
        );
        // shift counts are masked `& 63`, as in the simulator
        assert_eq!(
            ceval(&e, &cassign([(1, CVal::Int(3))])),
            Some(CVal::Int(1 << 1))
        );
        let div = SVal::binary(BinOp::Div, SVal::Int(1), x());
        assert_eq!(ceval(&div, &cassign([(1, CVal::Int(0))])), None);
    }

    #[test]
    fn ceval_float_contamination() {
        let e = SVal::binary(BinOp::Mul, SVal::Int(3), x());
        assert_eq!(
            ceval(&e, &cassign([(1, CVal::Float(1.5))])),
            Some(CVal::Float(4.5))
        );
        // float comparison yields an int
        let cmp = SVal::binary(BinOp::Gt, x(), SVal::float(2.0));
        assert_eq!(
            ceval(&cmp, &cassign([(1, CVal::Float(2.5))])),
            Some(CVal::Int(1))
        );
        // float division by zero is IEEE, not a fault
        let div = SVal::binary(BinOp::Div, SVal::float(1.0), SVal::float(0.0));
        assert_eq!(ceval(&div, &cassign([])), Some(CVal::Float(f64::INFINITY)));
    }

    #[test]
    fn ceval_math_builtins() {
        let call = SVal::Call {
            func: "sqrt".into(),
            args: vec![SVal::Int(4)],
        };
        assert_eq!(ceval(&call, &cassign([])), Some(CVal::Float(2.0)));
        let call = SVal::Call {
            func: "pow".into(),
            args: vec![SVal::float(2.0), SVal::Int(10)],
        };
        assert_eq!(ceval(&call, &cassign([])), Some(CVal::Float(1024.0)));
        // stateful builtins have no pure denotation
        let call = SVal::Call {
            func: "rand".into(),
            args: vec![],
        };
        assert_eq!(ceval(&call, &cassign([])), None);
    }

    #[test]
    fn ceval_ite_selects_the_taken_arm_lazily() {
        // `out = p > 2 ? a : b` with a symbolic condition becomes
        // `ite(p > 2, a, b)`; the concrete evaluator must pick the arm the
        // simulator would execute.
        let ite = |cond, t, e| SVal::Call {
            func: "ite".into(),
            args: vec![cond, t, e],
        };
        let cond = SVal::binary(BinOp::Gt, x(), SVal::Int(2));
        let e = ite(cond.clone(), SVal::float(1.5), SVal::Int(9));
        assert_eq!(
            ceval(&e, &cassign([(1, CVal::Int(7))])),
            Some(CVal::Float(1.5))
        );
        assert_eq!(ceval(&e, &cassign([(1, CVal::Int(0))])), Some(CVal::Int(9)));
        // Only the taken arm is evaluated, as at runtime: an unevaluable
        // untaken arm does not poison the result.
        let lazy = ite(cond, SVal::Int(4), SVal::Unknown);
        assert_eq!(
            ceval(&lazy, &cassign([(1, CVal::Int(7))])),
            Some(CVal::Int(4))
        );
        assert_eq!(ceval(&lazy, &cassign([(1, CVal::Int(0))])), None);
    }

    #[test]
    fn same_number_is_numeric_not_bitwise() {
        assert!(CVal::Float(0.0).same_number(CVal::Float(-0.0)));
        assert!(CVal::Float(f64::NAN).same_number(CVal::Float(f64::NAN)));
        assert!(CVal::Int(2).same_number(CVal::Float(2.0)));
        assert!(!CVal::Int(2).same_number(CVal::Int(3)));
    }
}
