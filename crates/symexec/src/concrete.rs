//! Concrete evaluation of symbolic expressions under a full assignment.
//!
//! Used to validate the simplifier and the constraint manager: a symbolic
//! expression evaluated under an assignment must agree with its simplified
//! form, and a model produced for a path condition must satisfy it.

use std::collections::BTreeMap;

use minic::ast::UnOp;

use crate::simplify::fold_ints;
use crate::value::SVal;

/// Maps symbol ids to concrete integer values.
pub type Assignment = BTreeMap<u32, i64>;

/// Evaluates `sval` under `assignment`.
///
/// Returns `None` when the expression contains [`SVal::Unknown`], a pointer
/// value, an uninterpreted call, floats (the checker's feasibility logic is
/// integer-only), or an unassigned symbol — i.e. whenever no unique concrete
/// integer is denoted.
pub fn eval(sval: &SVal, assignment: &Assignment) -> Option<i64> {
    match sval {
        SVal::Int(v) => Some(*v),
        SVal::Float(_) => None,
        SVal::Sym(sym) => assignment.get(&sym.id).copied(),
        SVal::Loc(_) => None,
        SVal::Binary { op, lhs, rhs } => {
            // && and || short-circuit, but with both sides total this is
            // observationally the same as strict evaluation.
            let a = eval(lhs, assignment)?;
            let b = eval(rhs, assignment)?;
            match fold_ints(*op, a, b)? {
                SVal::Int(v) => Some(v),
                _ => None, // division by zero
            }
        }
        SVal::Unary { op, arg } => {
            let v = eval(arg, assignment)?;
            Some(match op {
                UnOp::Neg => v.wrapping_neg(),
                UnOp::Plus => v,
                UnOp::Not => i64::from(v == 0),
                UnOp::BitNot => !v,
            })
        }
        SVal::Call { .. } | SVal::Unknown => None,
    }
}

/// Evaluates `sval` as a branch condition: `Some(true)` if non-zero.
pub fn eval_bool(sval: &SVal, assignment: &Assignment) -> Option<bool> {
    eval(sval, assignment).map(|v| v != 0)
}

/// A tiny helper for tests: builds an assignment from pairs.
pub fn assignment<I: IntoIterator<Item = (u32, i64)>>(pairs: I) -> Assignment {
    pairs.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Symbol;
    use minic::ast::BinOp;

    fn x() -> SVal {
        SVal::Sym(Symbol::new(1, "x"))
    }

    #[test]
    fn evaluates_expressions() {
        let e = SVal::binary(
            BinOp::Add,
            SVal::binary(BinOp::Mul, SVal::Int(2), x()),
            SVal::Int(5),
        );
        assert_eq!(eval(&e, &assignment([(1, 10)])), Some(25));
    }

    #[test]
    fn unassigned_symbol_is_none() {
        assert_eq!(eval(&x(), &assignment([])), None);
    }

    #[test]
    fn division_by_zero_is_none() {
        let e = SVal::binary(BinOp::Div, SVal::Int(1), x());
        assert_eq!(eval(&e, &assignment([(1, 0)])), None);
        assert_eq!(eval(&e, &assignment([(1, 2)])), Some(0));
    }

    #[test]
    fn bool_evaluation() {
        let e = SVal::binary(BinOp::Gt, x(), SVal::Int(3));
        assert_eq!(eval_bool(&e, &assignment([(1, 5)])), Some(true));
        assert_eq!(eval_bool(&e, &assignment([(1, 1)])), Some(false));
    }

    #[test]
    fn unknown_and_calls_are_none() {
        assert_eq!(eval(&SVal::Unknown, &assignment([])), None);
        let call = SVal::Call {
            func: "sqrt".into(),
            args: vec![SVal::Int(4)],
        };
        assert_eq!(eval(&call, &assignment([])), None);
    }
}
