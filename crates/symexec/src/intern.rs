//! Hash-consed handles for symbolic values and regions.
//!
//! [`HC<T>`] replaces the `Box<T>` edges inside [`crate::value::SVal`] and
//! [`crate::value::Region`], turning expression trees into `Arc`-shared
//! DAGs: cloning a value (and therefore forking a path state that holds
//! it) is a reference-count bump instead of a deep copy, and structurally
//! equal subtrees built on the same thread collapse onto one allocation
//! through a per-thread weak interner.
//!
//! ## Invariants that keep output byte-identical
//!
//! * `Hash` recurses **structurally** into `T`, exactly as `Box<T>` did —
//!   the cached [`HC::cached_hash`] never reaches a `std::hash::Hasher`,
//!   so persisted probe digests (`checkpoint::probe_key`) are unchanged.
//! * `Ord`/`Eq` agree with `T`'s ordering (pointer comparison is only a
//!   fast path for equality, never an ordering).
//! * `Serialize`/`Deserialize` delegate to `T`, producing the same JSON
//!   shape as a `Box<T>` edge.
//!
//! Interning is per-thread (worker tasks each keep their own table), which
//! can only lose sharing across threads, never correctness: two equal
//! values interned on different threads compare equal through the
//! structural fallback.

use std::cell::RefCell;
use std::cmp::Ordering;
use std::collections::HashMap;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::Deref;
use std::sync::{Arc, Weak};

use serde::{Deserialize, Deserializer, Serialize, Serializer};

/// A node interned by a thread-local table: the precomputed shallow hash
/// plus the value itself.
#[derive(Debug)]
struct HcNode<T> {
    hash: u64,
    value: T,
}

/// A hash-consed, `Arc`-shared handle to a `T`.
pub struct HC<T>(Arc<HcNode<T>>);

/// Types that can be interned: they provide a cheap *shallow* hash (their
/// own fields plus the cached hashes of any [`HC`] children — O(node), not
/// O(subtree)) and a thread-local interner table.
pub trait Intern: Sized + Eq {
    /// Hash of this node computed from its immediate fields, using
    /// [`HC::cached_hash`] for hash-consed children.
    fn shallow_hash(&self) -> u64;
    /// Grants access to the thread-local interner for `Self`.
    fn with_interner<R>(f: impl FnOnce(&mut Interner<Self>) -> R) -> R;
}

/// A weak hash-bucketed interner table. Dead entries (nodes whose last
/// strong reference dropped) are pruned lazily whenever their bucket is
/// visited.
pub struct Interner<T> {
    buckets: HashMap<u64, Vec<Weak<HcNode<T>>>>,
}

impl<T> Interner<T> {
    /// Creates an empty table.
    pub fn new() -> Self {
        Interner {
            buckets: HashMap::new(),
        }
    }

    /// Number of live interned nodes (test/diagnostic helper).
    pub fn live(&self) -> usize {
        self.buckets
            .values()
            .map(|b| b.iter().filter(|w| w.strong_count() > 0).count())
            .sum()
    }
}

impl<T> Default for Interner<T> {
    fn default() -> Self {
        Interner::new()
    }
}

impl<T: Intern> HC<T> {
    /// Interns `value`, returning the canonical handle for its structure
    /// on this thread.
    pub fn new(value: T) -> HC<T> {
        let hash = value.shallow_hash();
        T::with_interner(|table| {
            let bucket = table.buckets.entry(hash).or_default();
            let mut i = 0;
            while i < bucket.len() {
                match bucket[i].upgrade() {
                    Some(node) => {
                        if node.value == value {
                            return HC(node);
                        }
                        i += 1;
                    }
                    None => {
                        bucket.swap_remove(i);
                    }
                }
            }
            let node = Arc::new(HcNode { hash, value });
            bucket.push(Arc::downgrade(&node));
            HC(node)
        })
    }
}

impl<T> HC<T> {
    /// The precomputed shallow hash. Internal fast path only (interner
    /// buckets, feasibility-cache digests); never fed to a `Hasher`.
    pub fn cached_hash(&self) -> u64 {
        self.0.hash
    }

    /// Whether two handles share the same allocation.
    pub fn ptr_eq(a: &HC<T>, b: &HC<T>) -> bool {
        Arc::ptr_eq(&a.0, &b.0)
    }
}

impl<T> Clone for HC<T> {
    fn clone(&self) -> Self {
        HC(Arc::clone(&self.0))
    }
}

impl<T> Deref for HC<T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.0.value
    }
}

impl<T> AsRef<T> for HC<T> {
    fn as_ref(&self) -> &T {
        &self.0.value
    }
}

impl<T: Eq> PartialEq for HC<T> {
    fn eq(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.0, &other.0)
            || (self.0.hash == other.0.hash && self.0.value == other.0.value)
    }
}

impl<T: Eq> Eq for HC<T> {}

impl<T: Ord> PartialOrd for HC<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<T: Ord> Ord for HC<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        if Arc::ptr_eq(&self.0, &other.0) {
            return Ordering::Equal;
        }
        self.0.value.cmp(&other.0.value)
    }
}

impl<T: Hash> Hash for HC<T> {
    fn hash<H: Hasher>(&self, state: &mut H) {
        // Structural, like Box<T>: persisted digests must not see the
        // cached hash.
        self.0.value.hash(state);
    }
}

impl<T: fmt::Debug> fmt::Debug for HC<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.value.fmt(f)
    }
}

impl<T: fmt::Display> fmt::Display for HC<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.value.fmt(f)
    }
}

impl<T: Serialize> Serialize for HC<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        self.0.value.serialize(serializer)
    }
}

impl<'de, T: Deserialize<'de> + Intern> Deserialize<'de> for HC<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        T::deserialize(deserializer).map(HC::new)
    }
}

/// A minimal FNV-1a accumulator for shallow hashes (independent of the
/// checkpoint hasher — this value is never persisted).
#[derive(Clone, Copy)]
pub struct ShallowHasher(u64);

impl ShallowHasher {
    /// Creates the accumulator at the FNV offset basis.
    pub fn new() -> Self {
        ShallowHasher(0xcbf2_9ce4_8422_2325)
    }

    /// Mixes raw bytes.
    pub fn bytes(&mut self, bytes: &[u8]) -> &mut Self {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
        self
    }

    /// Mixes a tag byte (e.g. an enum discriminant).
    pub fn tag(&mut self, t: u8) -> &mut Self {
        self.bytes(&[t])
    }

    /// Mixes a `u64` (e.g. a child's cached hash).
    pub fn u64(&mut self, v: u64) -> &mut Self {
        self.bytes(&v.to_le_bytes())
    }

    /// Finishes the hash.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for ShallowHasher {
    fn default() -> Self {
        ShallowHasher::new()
    }
}

/// Declares the thread-local interner table for a type.
macro_rules! thread_local_interner {
    ($ty:ty, $name:ident) => {
        thread_local! {
            static $name: RefCell<Interner<$ty>> = RefCell::new(Interner::new());
        }
    };
}

use crate::value::{Region, SVal};

thread_local_interner!(SVal, SVAL_INTERNER);
thread_local_interner!(Region, REGION_INTERNER);

impl Intern for SVal {
    fn shallow_hash(&self) -> u64 {
        let mut h = ShallowHasher::new();
        match self {
            SVal::Int(v) => {
                h.tag(0).bytes(&v.to_le_bytes());
            }
            SVal::Float(v) => {
                h.tag(1).bytes(&v.0.to_bits().to_le_bytes());
            }
            SVal::Sym(sym) => {
                h.tag(2)
                    .bytes(&sym.id.to_le_bytes())
                    .bytes(sym.hint.as_bytes());
            }
            SVal::Loc(region) => {
                h.tag(3).u64(region.shallow_hash());
            }
            SVal::Binary { op, lhs, rhs } => {
                h.tag(4)
                    .tag(*op as u8)
                    .u64(lhs.cached_hash())
                    .u64(rhs.cached_hash());
            }
            SVal::Unary { op, arg } => {
                h.tag(5).tag(*op as u8).u64(arg.cached_hash());
            }
            SVal::Call { func, args } => {
                h.tag(6).bytes(func.as_bytes());
                for arg in args {
                    h.u64(arg.shallow_hash());
                }
            }
            SVal::Unknown => {
                h.tag(7);
            }
        }
        h.finish()
    }

    fn with_interner<R>(f: impl FnOnce(&mut Interner<Self>) -> R) -> R {
        SVAL_INTERNER.with(|table| f(&mut table.borrow_mut()))
    }
}

impl Intern for Region {
    fn shallow_hash(&self) -> u64 {
        let mut h = ShallowHasher::new();
        match self {
            Region::Var { frame, name } => {
                h.tag(10).bytes(&frame.to_le_bytes()).bytes(name.as_bytes());
            }
            Region::Global { name } => {
                h.tag(11).bytes(name.as_bytes());
            }
            Region::Element { base, index } => {
                h.tag(12).u64(base.cached_hash()).u64(index.cached_hash());
            }
            Region::Field { base, field } => {
                h.tag(13).u64(base.cached_hash()).bytes(field.as_bytes());
            }
            Region::Sym { symbol } => {
                h.tag(14)
                    .bytes(&symbol.id.to_le_bytes())
                    .bytes(symbol.hint.as_bytes());
            }
            Region::Str { text } => {
                h.tag(15).bytes(text.as_bytes());
            }
        }
        h.finish()
    }

    fn with_interner<R>(f: impl FnOnce(&mut Interner<Self>) -> R) -> R {
        REGION_INTERNER.with(|table| f(&mut table.borrow_mut()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minic::ast::BinOp;

    fn expr(id: u32) -> SVal {
        SVal::binary(
            BinOp::Add,
            SVal::Sym(crate::value::Symbol::new(id, "x")),
            SVal::Int(100),
        )
    }

    #[test]
    fn equal_structures_share_one_allocation() {
        let a = expr(1);
        let b = expr(1);
        let (
            SVal::Binary {
                lhs: la, rhs: ra, ..
            },
            SVal::Binary {
                lhs: lb, rhs: rb, ..
            },
        ) = (&a, &b)
        else {
            panic!("binary expected")
        };
        assert!(HC::ptr_eq(la, lb));
        assert!(HC::ptr_eq(ra, rb));
    }

    #[test]
    fn different_structures_do_not_alias() {
        let a = expr(1);
        let b = expr(2);
        let (SVal::Binary { lhs: la, .. }, SVal::Binary { lhs: lb, .. }) = (&a, &b) else {
            panic!("binary expected")
        };
        assert!(!HC::ptr_eq(la, lb));
        assert_ne!(a, b);
    }

    #[test]
    fn hc_hash_is_structural() {
        // HC<T> must feed the hasher the same stream Box<T> would: T's own
        // structural hash, nothing else.
        #[derive(Default)]
        struct Collect(Vec<u8>);
        impl std::hash::Hasher for Collect {
            fn finish(&self) -> u64 {
                0
            }
            fn write(&mut self, bytes: &[u8]) {
                self.0.extend_from_slice(bytes);
            }
        }
        let inner = expr(3);
        let hc = HC::new(inner.clone());
        let boxed = Box::new(inner);
        let mut a = Collect::default();
        let mut b = Collect::default();
        use std::hash::Hash as _;
        hc.hash(&mut a);
        boxed.hash(&mut b);
        assert_eq!(a.0, b.0);
    }

    #[test]
    fn ordering_matches_value_ordering() {
        let a = HC::new(SVal::Int(1));
        let b = HC::new(SVal::Int(2));
        assert!(a < b);
        assert_eq!(a.cmp(&a.clone()), Ordering::Equal);
    }

    #[test]
    fn dead_entries_are_pruned_lazily() {
        let before = SVal::with_interner(|t| t.live());
        {
            let _tmp = expr(900_001);
        }
        // The dropped node's weak entry is pruned on the next visit of its
        // bucket; re-interning the same structure lands on a fresh node.
        let again = expr(900_001);
        assert!(matches!(again, SVal::Binary { .. }));
        let after = SVal::with_interner(|t| t.live());
        // No unbounded growth: at most the nodes of `again` were added.
        assert!(after <= before + 3, "before {before} after {after}");
    }
}
