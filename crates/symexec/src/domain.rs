//! Tier-1 feasibility: a relationalless abstract domain of intervals with
//! widening plus congruences (stride/parity) over the integer fragment.
//!
//! Modeled on the abstract-interpreter/widening-strategy split in the kirin
//! exemplar: each symbol carries a [`Fact`] — an [`Interval`] meet a
//! [`Congruence`] — and the domain refines facts as branch assumptions
//! accumulate along a path. The domain is *sound for refutation only*: a
//! [`Feasibility::Infeasible`] answer means no integer assignment satisfies
//! the recorded assumptions; [`Feasibility::Feasible`] means "unknown", and
//! the next tier (the SAT-lite solver, `symexec::solver`) takes over.
//!
//! # Wrapping vs. ideal integers
//!
//! The concrete semantics (`simplify::fold_ints`) wrap at i64. Forward
//! abstract evaluation therefore computes in i128 and degrades to ⊤ whenever
//! a result *could* leave the i64 range — a wrapped value is never assigned
//! a precise fact. Backward guard refinement (solving `a·x + b ⋈ c` for
//! `x`) follows the ideal-integer convention that `ConstraintManager`
//! already uses for its `sym ± const` normalization; DESIGN.md §"Feasibility
//! pruning tiers" records both conventions.
//!
//! # Widening / termination
//!
//! Loop havoc in the engine replaces loop-carried values with *fresh*
//! symbols, which start at ⊤ — that is the widen-to-top step, and it keeps
//! facts for the old symbols sound (they still describe the pre-iteration
//! values). Within a path, each symbol's refinement chain is frozen after
//! [`WIDEN_AFTER`] meets: further refinements still *check* for bottom
//! (refutation power is kept) but no longer narrow the stored fact, so
//! chains are finite even on adversarial guard sequences.

use serde::{Deserialize, Serialize};

use im::OrdMap;
use minic::ast::{BinOp, UnOp};

use crate::constraints::{const_of, flip_cmp, negate_cmp, Feasibility};
use crate::value::SVal;

/// Per-symbol refinement chains freeze after this many meets (the widening
/// backstop; see module docs).
pub const WIDEN_AFTER: u32 = 64;

/// Modulus cap for congruences: a CRT meet whose lcm exceeds this keeps the
/// finer operand instead (sound: each operand over-approximates the
/// intersection).
const MODULUS_CAP: i128 = 1 << 31;

/// Cap on the number of tracked symbols; refinements for further symbols
/// are dropped (sound).
const MAX_TRACKED: usize = 1 << 16;

const I64_MIN: i128 = i64::MIN as i128;
const I64_MAX: i128 = i64::MAX as i128;

// ── Interval ────────────────────────────────────────────────────────────

/// A closed integer interval `[lo, hi]`, always within the i64 range.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Interval {
    /// Inclusive lower bound.
    pub lo: i128,
    /// Inclusive upper bound.
    pub hi: i128,
}

impl Interval {
    /// The full i64 range (⊤).
    pub fn top() -> Self {
        Interval {
            lo: I64_MIN,
            hi: I64_MAX,
        }
    }

    /// The singleton `[c, c]`.
    pub fn constant(c: i128) -> Self {
        Interval { lo: c, hi: c }
    }

    /// Whether the interval is the full i64 range.
    pub fn is_top(&self) -> bool {
        self.lo == I64_MIN && self.hi == I64_MAX
    }

    /// Whether the interval is a singleton.
    pub fn as_const(&self) -> Option<i128> {
        if self.lo == self.hi {
            Some(self.lo)
        } else {
            None
        }
    }

    /// Intersection; `None` when empty.
    pub fn meet(&self, other: &Interval) -> Option<Interval> {
        let lo = self.lo.max(other.lo);
        let hi = self.hi.min(other.hi);
        if lo <= hi {
            Some(Interval { lo, hi })
        } else {
            None
        }
    }

    /// Classic interval widening: a bound that moved outward jumps to the
    /// respective i64 extreme. Guarantees stabilization of any ascending
    /// chain in one step per side.
    pub fn widen(&self, newer: &Interval) -> Interval {
        Interval {
            lo: if newer.lo < self.lo { I64_MIN } else { self.lo },
            hi: if newer.hi > self.hi { I64_MAX } else { self.hi },
        }
    }

    fn contains(&self, v: i128) -> bool {
        self.lo <= v && v <= self.hi
    }

    fn fits_i64(lo: i128, hi: i128) -> Option<Interval> {
        if lo >= I64_MIN && hi <= I64_MAX {
            Some(Interval { lo, hi })
        } else {
            None
        }
    }
}

// ── Congruence ──────────────────────────────────────────────────────────

/// A congruence fact `x ≡ residue (mod modulus)`.
///
/// Representation: `modulus == 0` means "exactly `residue`" (the constants
/// sit at the bottom of the stride lattice), `modulus == 1` is ⊤, and
/// `modulus > 1` carries `0 <= residue < modulus`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Congruence {
    /// The stride; see type docs for the `0` and `1` conventions.
    pub modulus: i128,
    /// The residue class (an exact value when `modulus == 0`).
    pub residue: i128,
}

impl Congruence {
    /// The ⊤ congruence (`x ≡ 0 (mod 1)`).
    pub fn top() -> Self {
        Congruence {
            modulus: 1,
            residue: 0,
        }
    }

    /// The exact congruence `x == c`.
    pub fn constant(c: i128) -> Self {
        Congruence {
            modulus: 0,
            residue: c,
        }
    }

    /// Whether this is the ⊤ congruence.
    pub fn is_top(&self) -> bool {
        self.modulus == 1
    }

    /// Normalizes `(m, r)` into the representation invariant, capping the
    /// modulus (an over-cap stride degrades to ⊤, which is sound).
    fn normalize(modulus: i128, residue: i128) -> Congruence {
        let m = modulus.abs();
        if m == 0 {
            return Congruence::constant(residue);
        }
        if m == 1 || m > MODULUS_CAP {
            return Congruence::top();
        }
        Congruence {
            modulus: m,
            residue: residue.rem_euclid(m),
        }
    }

    /// Whether a concrete value belongs to the congruence class.
    fn contains(&self, v: i128) -> bool {
        if self.modulus == 0 {
            v == self.residue
        } else {
            (v - self.residue).rem_euclid(self.modulus) == 0
        }
    }

    /// Abstract addition.
    fn add(&self, other: &Congruence) -> Congruence {
        if self.modulus == 0 && other.modulus == 0 {
            return Congruence::constant(self.residue + other.residue);
        }
        Congruence::normalize(
            gcd(self.modulus, other.modulus),
            self.residue + other.residue,
        )
    }

    /// Abstract negation.
    fn neg(&self) -> Congruence {
        if self.modulus == 0 {
            Congruence::constant(-self.residue)
        } else {
            Congruence::normalize(self.modulus, -self.residue)
        }
    }

    /// Abstract multiplication: `gcd(m₁m₂, m₁r₂, m₂r₁)` stride.
    fn mul(&self, other: &Congruence) -> Congruence {
        if self.modulus == 0 && other.modulus == 0 {
            return Congruence::constant(self.residue * other.residue);
        }
        let m = gcd(
            gcd(self.modulus * other.modulus, self.modulus * other.residue),
            other.modulus * self.residue,
        );
        Congruence::normalize(m, self.residue * other.residue)
    }

    /// Intersection of the two congruence classes (CRT); `None` when the
    /// classes are disjoint. When the combined modulus would exceed the
    /// cap, the finer operand is kept (a sound over-approximation).
    pub fn meet(&self, other: &Congruence) -> Option<Congruence> {
        match (self.modulus, other.modulus) {
            (0, 0) => (self.residue == other.residue).then_some(*self),
            (0, _) => other.contains(self.residue).then_some(*self),
            (_, 0) => self.contains(other.residue).then_some(*other),
            (m1, m2) => {
                let g = gcd(m1, m2);
                if (self.residue - other.residue).rem_euclid(g) != 0 {
                    return None;
                }
                let lcm = m1 / g * m2;
                if lcm > MODULUS_CAP {
                    // Keep the finer operand.
                    return Some(if m1 >= m2 { *self } else { *other });
                }
                // CRT: find x ≡ r1 (mod m1), x ≡ r2 (mod m2). Walk the
                // residue ladder of the coarser class; lcm is capped, so
                // the scan is bounded.
                let (big, small) = if m1 >= m2 {
                    (self, other)
                } else {
                    (other, self)
                };
                let mut x = big.residue;
                while !small.contains(x) {
                    x += big.modulus;
                }
                Some(Congruence::normalize(lcm, x))
            }
        }
    }
}

fn gcd(a: i128, b: i128) -> i128 {
    let (mut a, mut b) = (a.abs(), b.abs());
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

// ── Fact ────────────────────────────────────────────────────────────────

/// What the domain knows about one symbol: interval ∧ congruence, plus the
/// refinement-chain length used for the widening freeze.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Fact {
    /// Range component.
    pub interval: Interval,
    /// Stride component.
    pub congruence: Congruence,
    /// How many meets refined this fact (frozen at [`WIDEN_AFTER`]).
    pub meets: u32,
}

impl Default for Fact {
    fn default() -> Self {
        Fact::top()
    }
}

impl Fact {
    /// The ⊤ fact: any i64.
    pub fn top() -> Self {
        Fact {
            interval: Interval::top(),
            congruence: Congruence::top(),
            meets: 0,
        }
    }

    /// The singleton fact `x == c` (⊤ if `c` is outside the i64 range).
    pub fn constant(c: i128) -> Self {
        if !(I64_MIN..=I64_MAX).contains(&c) {
            return Fact::top();
        }
        Fact {
            interval: Interval::constant(c),
            congruence: Congruence::constant(c),
            meets: 0,
        }
    }

    /// Whether the fact carries no information.
    pub fn is_top(&self) -> bool {
        self.interval.is_top() && self.congruence.is_top()
    }

    /// The exact value, when the fact pins one down.
    pub fn as_const(&self) -> Option<i128> {
        if let Some(c) = self.interval.as_const() {
            return Some(c);
        }
        if self.congruence.modulus == 0 {
            return Some(self.congruence.residue);
        }
        None
    }

    /// Whether a concrete value is allowed by the fact.
    pub fn contains(&self, v: i128) -> bool {
        self.interval.contains(v) && self.congruence.contains(v)
    }

    /// Intersection; `None` when the components contradict (bottom).
    pub fn meet(&self, other: &Fact) -> Option<Fact> {
        let interval = self.interval.meet(&other.interval)?;
        let congruence = self.congruence.meet(&other.congruence)?;
        let fact = Fact {
            interval,
            congruence,
            meets: self.meets.max(other.meets),
        };
        fact.check_consistent()
    }

    /// Interval-component widening (the congruence lattice has finite
    /// chains under the modulus cap, so only the interval needs the jump).
    pub fn widen(&self, newer: &Fact) -> Fact {
        Fact {
            interval: self.interval.widen(&newer.interval),
            congruence: if self.congruence == newer.congruence {
                self.congruence
            } else {
                Congruence::top()
            },
            meets: self.meets,
        }
    }

    /// Bottom check: is there any value in the interval that belongs to
    /// the congruence class? Returns the (possibly tightened) fact.
    fn check_consistent(mut self) -> Option<Fact> {
        match self.congruence.modulus {
            0 => self.interval.contains(self.congruence.residue).then(|| {
                self.interval = Interval::constant(self.congruence.residue);
                self
            }),
            1 => Some(self),
            m => {
                let first =
                    self.interval.lo + (self.congruence.residue - self.interval.lo).rem_euclid(m);
                (first <= self.interval.hi).then_some(self)
            }
        }
    }

    /// Truthiness of the fact, when decided: `Some(false)` iff the fact is
    /// exactly zero, `Some(true)` iff zero is excluded.
    pub fn truth(&self) -> Option<bool> {
        if self.as_const() == Some(0) {
            return Some(false);
        }
        if !self.contains(0) {
            return Some(true);
        }
        None
    }

    // ── forward abstract arithmetic (wrap-aware: ⊤ on possible wrap) ──

    fn add(&self, other: &Fact) -> Fact {
        match Interval::fits_i64(
            self.interval.lo + other.interval.lo,
            self.interval.hi + other.interval.hi,
        ) {
            Some(interval) => Fact {
                interval,
                congruence: self.congruence.add(&other.congruence),
                meets: 0,
            },
            None => Fact::top(),
        }
    }

    fn sub(&self, other: &Fact) -> Fact {
        self.add(&other.neg())
    }

    fn neg(&self) -> Fact {
        match Interval::fits_i64(-self.interval.hi, -self.interval.lo) {
            Some(interval) => Fact {
                interval,
                congruence: self.congruence.neg(),
                meets: 0,
            },
            None => Fact::top(),
        }
    }

    fn mul(&self, other: &Fact) -> Fact {
        let products = [
            self.interval.lo * other.interval.lo,
            self.interval.lo * other.interval.hi,
            self.interval.hi * other.interval.lo,
            self.interval.hi * other.interval.hi,
        ];
        let lo = products.iter().copied().min().unwrap_or(0);
        let hi = products.iter().copied().max().unwrap_or(0);
        match Interval::fits_i64(lo, hi) {
            Some(interval) => Fact {
                interval,
                congruence: self.congruence.mul(&other.congruence),
                meets: 0,
            },
            None => Fact::top(),
        }
    }

    /// Truncated division by a *constant* divisor (matching `fold_ints`;
    /// division by zero is `Unknown` concretely, ⊤ here).
    fn div_const(&self, k: i128) -> Fact {
        if k == 0 {
            return Fact::top();
        }
        // Truncated division is monotone in the dividend for either sign
        // of k, with direction flipped for k < 0.
        let (a, b) = (self.interval.lo / k, self.interval.hi / k);
        let (lo, hi) = if k > 0 { (a, b) } else { (b, a) };
        match Interval::fits_i64(lo, hi) {
            Some(interval) => Fact {
                interval,
                congruence: Congruence::top(),
                meets: 0,
            },
            None => Fact::top(),
        }
    }

    /// Truncated remainder by a *constant* divisor. The result has the
    /// sign of the dividend and magnitude below `|k|`.
    fn rem_const(&self, k: i128) -> Fact {
        if k == 0 {
            return Fact::top();
        }
        let bound = k.abs() - 1;
        let lo = if self.interval.lo >= 0 { 0 } else { -bound };
        let hi = if self.interval.hi <= 0 { 0 } else { bound };
        // Tighter when the dividend interval is narrower than the band.
        let lo = lo.max(self.interval.lo.min(0));
        let hi = hi.min(self.interval.hi.max(0));
        let congruence = match self.congruence.modulus {
            0 => {
                return Fact::constant(wrap_rem(self.congruence.residue, k));
            }
            m if self.interval.lo >= 0 && m % k.abs() == 0 => {
                // x = r + t·m with x ≥ 0 and k | m ⇒ x % k == r % k.
                Congruence::normalize(k.abs(), self.congruence.residue)
            }
            _ => Congruence::top(),
        };
        Fact {
            interval: Interval { lo, hi },
            congruence,
            meets: 0,
        }
    }

    fn shl_const(&self, k: i128) -> Fact {
        // fold_ints masks the shift to six bits; only model small shifts.
        if !(0..=32).contains(&k) {
            return Fact::top();
        }
        self.mul(&Fact::constant(1i128 << k))
    }

    fn shr_const(&self, k: i128) -> Fact {
        if !(0..=62).contains(&k) || self.interval.lo < 0 {
            return Fact::top();
        }
        self.div_const(1i128 << k)
    }

    fn bitand(&self, other: &Fact) -> Fact {
        // Nonnegative & nonnegative stays within [0, min(hi)].
        if self.interval.lo < 0 || other.interval.lo < 0 {
            return Fact::top();
        }
        Fact {
            interval: Interval {
                lo: 0,
                hi: self.interval.hi.min(other.interval.hi),
            },
            congruence: Congruence::top(),
            meets: 0,
        }
    }

    /// Decides `lhs op rhs` from the two facts, when possible.
    pub fn cmp(op: BinOp, lhs: &Fact, rhs: &Fact) -> Option<bool> {
        match op {
            BinOp::Lt => {
                if lhs.interval.hi < rhs.interval.lo {
                    Some(true)
                } else if lhs.interval.lo >= rhs.interval.hi {
                    Some(false)
                } else {
                    None
                }
            }
            BinOp::Le => Fact::cmp(BinOp::Lt, rhs, lhs).map(|b| !b),
            BinOp::Gt => Fact::cmp(BinOp::Lt, rhs, lhs),
            BinOp::Ge => Fact::cmp(BinOp::Lt, lhs, rhs).map(|b| !b),
            BinOp::Eq => {
                if let (Some(a), Some(b)) = (lhs.as_const(), rhs.as_const()) {
                    return Some(a == b);
                }
                // Disjoint sets ⇒ definitely unequal; the meet performs
                // both the interval and the congruence (gcd) test.
                if lhs.meet(rhs).is_none() {
                    return Some(false);
                }
                None
            }
            BinOp::Ne => Fact::cmp(BinOp::Eq, lhs, rhs).map(|b| !b),
            _ => None,
        }
    }
}

/// Truncated remainder in i128 (total: zero divisor yields zero, never
/// reached — callers guard).
fn wrap_rem(a: i128, k: i128) -> i128 {
    if k == 0 {
        0
    } else {
        a % k
    }
}

// ── Affine decomposition ────────────────────────────────────────────────

/// Matches `a·x + b` over one symbol with `a != 0`; coefficients are
/// bounded so backward refinement stays in comfortably-exact i128 range.
pub(crate) fn affine_of(v: &SVal) -> Option<(i128, u32, i128)> {
    const A_CAP: i128 = 1 << 32;
    const B_CAP: i128 = 1 << 62;
    let (a, s, b) = affine_rec(v)?;
    if a == 0 || a.abs() > A_CAP || b.abs() > B_CAP {
        return None;
    }
    Some((a, s, b))
}

fn affine_rec(v: &SVal) -> Option<(i128, u32, i128)> {
    match v {
        SVal::Sym(s) => Some((1, s.id, 0)),
        SVal::Unary { op: UnOp::Neg, arg } => {
            let (a, s, b) = affine_rec(arg)?;
            Some((-a, s, -b))
        }
        SVal::Unary {
            op: UnOp::Plus,
            arg,
        } => affine_rec(arg),
        SVal::Binary { op, lhs, rhs } => {
            let lc = const_of(lhs).map(i128::from);
            let rc = const_of(rhs).map(i128::from);
            match op {
                BinOp::Add => match (lc, rc) {
                    (Some(c), None) => {
                        let (a, s, b) = affine_rec(rhs)?;
                        Some((a, s, b + c))
                    }
                    (None, Some(c)) => {
                        let (a, s, b) = affine_rec(lhs)?;
                        Some((a, s, b + c))
                    }
                    _ => None,
                },
                BinOp::Sub => match (lc, rc) {
                    (Some(c), None) => {
                        let (a, s, b) = affine_rec(rhs)?;
                        Some((-a, s, c - b))
                    }
                    (None, Some(c)) => {
                        let (a, s, b) = affine_rec(lhs)?;
                        Some((a, s, b - c))
                    }
                    _ => None,
                },
                BinOp::Mul => match (lc, rc) {
                    (Some(c), None) if c != 0 => {
                        let (a, s, b) = affine_rec(rhs)?;
                        Some((a * c, s, b * c))
                    }
                    (None, Some(c)) if c != 0 => {
                        let (a, s, b) = affine_rec(lhs)?;
                        Some((a * c, s, b * c))
                    }
                    _ => None,
                },
                BinOp::Shl => match rc {
                    Some(c) if (0..=32).contains(&c) => {
                        let (a, s, b) = affine_rec(lhs)?;
                        let f = 1i128 << c;
                        Some((a * f, s, b * f))
                    }
                    _ => None,
                },
                _ => None,
            }
        }
        _ => None,
    }
}

fn div_floor(a: i128, b: i128) -> i128 {
    let q = a / b;
    if (a % b != 0) && ((a < 0) != (b < 0)) {
        q - 1
    } else {
        q
    }
}

fn div_ceil(a: i128, b: i128) -> i128 {
    let q = a / b;
    if (a % b != 0) && ((a < 0) == (b < 0)) {
        q + 1
    } else {
        q
    }
}

// ── AbstractDomain ──────────────────────────────────────────────────────

/// The per-path abstract state: a persistent map from symbol id to
/// [`Fact`]. Forks clone the `im::OrdMap` in O(1); refinements along one
/// branch share structure with the sibling (O(log n) per insert).
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct AbstractDomain {
    facts: OrdMap<u32, Fact>,
}

impl AbstractDomain {
    /// The empty (all-⊤) domain.
    pub fn new() -> Self {
        AbstractDomain::default()
    }

    /// Number of symbols with a non-⊤ fact recorded.
    pub fn len(&self) -> usize {
        self.facts.len()
    }

    /// Whether no facts are recorded.
    pub fn is_empty(&self) -> bool {
        self.facts.is_empty()
    }

    /// The recorded fact for a symbol (⊤ when untracked).
    pub fn fact_of(&self, sym: u32) -> Fact {
        self.facts.get(&sym).copied().unwrap_or_else(Fact::top)
    }

    /// Forward abstract evaluation of a symbolic value.
    pub fn eval(&self, v: &SVal) -> Fact {
        match v {
            SVal::Int(c) => Fact::constant(i128::from(*c)),
            SVal::Sym(s) => self.fact_of(s.id),
            SVal::Unary { op, arg } => {
                let f = self.eval(arg);
                match op {
                    UnOp::Neg => f.neg(),
                    UnOp::Plus => f,
                    UnOp::Not => match f.truth() {
                        Some(b) => Fact::constant(i128::from(!b)),
                        None => bool_fact(),
                    },
                    UnOp::BitNot => Fact::top(),
                }
            }
            SVal::Binary { op, lhs, rhs } => {
                let l = self.eval(lhs);
                let r = self.eval(rhs);
                match op {
                    BinOp::Add => l.add(&r),
                    BinOp::Sub => l.sub(&r),
                    BinOp::Mul => l.mul(&r),
                    BinOp::Div => match r.as_const() {
                        Some(k) => l.div_const(k),
                        None => Fact::top(),
                    },
                    BinOp::Rem => match r.as_const() {
                        Some(k) => l.rem_const(k),
                        None => Fact::top(),
                    },
                    BinOp::Shl => match r.as_const() {
                        Some(k) => l.shl_const(k),
                        None => Fact::top(),
                    },
                    BinOp::Shr => match r.as_const() {
                        Some(k) => l.shr_const(k),
                        None => Fact::top(),
                    },
                    BinOp::BitAnd => l.bitand(&r),
                    BinOp::BitXor | BinOp::BitOr => Fact::top(),
                    BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge | BinOp::Eq | BinOp::Ne => {
                        match Fact::cmp(*op, &l, &r) {
                            Some(b) => Fact::constant(i128::from(b)),
                            None => bool_fact(),
                        }
                    }
                    BinOp::LogAnd => match (l.truth(), r.truth()) {
                        (Some(a), Some(b)) => Fact::constant(i128::from(a && b)),
                        (Some(false), _) | (_, Some(false)) => Fact::constant(0),
                        _ => bool_fact(),
                    },
                    BinOp::LogOr => match (l.truth(), r.truth()) {
                        (Some(a), Some(b)) => Fact::constant(i128::from(a || b)),
                        (Some(true), _) | (_, Some(true)) => Fact::constant(1),
                        _ => bool_fact(),
                    },
                }
            }
            _ => Fact::top(),
        }
    }

    /// Records the assumption `cond == truth` and reports whether the
    /// domain can already refute it. Mirrors the decomposition
    /// `ConstraintManager::assume` performs, but refines interval and
    /// congruence facts instead of ranges/disequalities.
    pub fn assume(&mut self, cond: &SVal, truth: bool) -> Feasibility {
        match cond {
            SVal::Int(v) => {
                if (*v != 0) == truth {
                    Feasibility::Feasible
                } else {
                    Feasibility::Infeasible
                }
            }
            SVal::Float(v) => {
                if (v.0 != 0.0) == truth {
                    Feasibility::Feasible
                } else {
                    Feasibility::Infeasible
                }
            }
            SVal::Unary { op: UnOp::Not, arg } => self.assume(arg, !truth),
            SVal::Binary { op, lhs, rhs } => match (op, truth) {
                (BinOp::LogAnd, true) | (BinOp::LogOr, false) => {
                    if self.assume(lhs, truth) == Feasibility::Infeasible {
                        return Feasibility::Infeasible;
                    }
                    self.assume(rhs, truth)
                }
                _ if op.is_comparison() => self.assume_cmp(*op, lhs, rhs, truth),
                _ => self.assume_other(cond, truth),
            },
            SVal::Sym(sym) => {
                let fact = self.fact_of(sym.id);
                match (fact.truth(), truth) {
                    (Some(b), t) if b != t => Feasibility::Infeasible,
                    (_, false) => self.meet_fact(sym.id, Fact::constant(0)),
                    (_, true) => {
                        // x != 0 trims an interval whose bound sits at 0.
                        let mut refined = fact;
                        if refined.interval.lo == 0 {
                            refined.interval.lo = 1;
                        } else if refined.interval.hi == 0 {
                            refined.interval.hi = -1;
                        } else {
                            return Feasibility::Feasible;
                        }
                        refined.meets = 0;
                        self.meet_fact(sym.id, refined)
                    }
                }
            }
            _ => self.assume_other(cond, truth),
        }
    }

    /// Fallback for shapes with no dedicated refinement: evaluate the
    /// condition and refute only when its truthiness is decided.
    fn assume_other(&mut self, cond: &SVal, truth: bool) -> Feasibility {
        match self.eval(cond).truth() {
            Some(b) if b != truth => Feasibility::Infeasible,
            _ => Feasibility::Feasible,
        }
    }

    fn assume_cmp(&mut self, op: BinOp, lhs: &SVal, rhs: &SVal, truth: bool) -> Feasibility {
        let op = if truth { op } else { negate_cmp(op) };
        // Decide from current facts first: catches var-vs-var and
        // congruence-incompatible equalities with no refinement needed.
        if Fact::cmp(op, &self.eval(lhs), &self.eval(rhs)) == Some(false) {
            return Feasibility::Infeasible;
        }
        if let Some(c) = const_of(rhs) {
            self.refine_vs_const(lhs, op, i128::from(c))
        } else if let Some(c) = const_of(lhs) {
            self.refine_vs_const(rhs, flip_cmp(op), i128::from(c))
        } else {
            Feasibility::Feasible
        }
    }

    /// Backward refinement of `expr op c` (ideal-integer convention; see
    /// module docs).
    fn refine_vs_const(&mut self, expr: &SVal, op: BinOp, c: i128) -> Feasibility {
        // `x % k op c`: congruence refinement and band refutation.
        if let SVal::Binary {
            op: BinOp::Rem,
            lhs,
            rhs,
        } = expr
        {
            if let (Some((1, sym, 0)), Some(k)) = (affine_of(lhs), const_of(rhs).map(i128::from)) {
                if k > 0 {
                    return self.refine_rem(sym, k, op, c);
                }
            }
        }
        let Some((a, sym, b)) = affine_of(expr) else {
            return Feasibility::Feasible;
        };
        let t = c - b;
        let mut refined = Fact::top();
        match op {
            BinOp::Eq => {
                if t % a != 0 {
                    return Feasibility::Infeasible;
                }
                refined = Fact::constant(t / a);
            }
            BinOp::Ne => {
                if t % a == 0 && self.fact_of(sym).as_const() == Some(t / a) {
                    return Feasibility::Infeasible;
                }
                return Feasibility::Feasible;
            }
            BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
                // Reduce to a·x ≤ t or a·x ≥ t, then divide with the
                // correct rounding for the sign of a.
                let (le, bound) = match op {
                    BinOp::Lt => (true, t - 1),
                    BinOp::Le => (true, t),
                    BinOp::Gt => (false, t + 1),
                    _ => (false, t),
                };
                // a·x ≤ bound  ⇔  x ≤ ⌊bound/a⌋ (a>0) | x ≥ ⌈bound/a⌉ (a<0)
                // a·x ≥ bound  ⇔  x ≥ ⌈bound/a⌉ (a>0) | x ≤ ⌊bound/a⌋ (a<0)
                if le == (a > 0) {
                    refined.interval.hi = div_floor(bound, a).min(I64_MAX);
                } else {
                    refined.interval.lo = div_ceil(bound, a).max(I64_MIN);
                }
                if refined.interval.lo > refined.interval.hi {
                    return Feasibility::Infeasible;
                }
            }
            _ => return Feasibility::Feasible,
        }
        self.meet_fact(sym, refined)
    }

    /// Refinement for `x % k op c` with `k > 0`.
    fn refine_rem(&mut self, sym: u32, k: i128, op: BinOp, c: i128) -> Feasibility {
        let fact = self.fact_of(sym);
        match op {
            BinOp::Eq => {
                if c.abs() >= k {
                    // |x % k| < k always.
                    return Feasibility::Infeasible;
                }
                if c < 0 && fact.interval.lo >= 0 {
                    // Nonnegative dividend ⇒ nonnegative remainder.
                    return Feasibility::Infeasible;
                }
                // Congruence refinement is sound when the remainder sign is
                // pinned: r == 0 works for either sign; otherwise require a
                // nonnegative dividend.
                if c == 0 || (c > 0 && fact.interval.lo >= 0) {
                    return self.meet_fact(
                        sym,
                        Fact {
                            interval: Interval::top(),
                            congruence: Congruence::normalize(k, c),
                            meets: 0,
                        },
                    );
                }
                Feasibility::Feasible
            }
            BinOp::Ne => {
                // Definite-equality refutation is already covered by the
                // forward `Fact::cmp` check in `assume_cmp`.
                Feasibility::Feasible
            }
            _ => Feasibility::Feasible,
        }
    }

    /// Meets `refinement` into the fact for `sym`. Bottom ⇒ infeasible.
    /// Past the widening freeze the narrowing is dropped (but the bottom
    /// check still runs, keeping refutation power).
    fn meet_fact(&mut self, sym: u32, refinement: Fact) -> Feasibility {
        let current = self.fact_of(sym);
        match current.meet(&refinement) {
            None => Feasibility::Infeasible,
            Some(mut met) => {
                if current.meets < WIDEN_AFTER
                    && met != current
                    && (self.facts.contains_key(&sym) || self.facts.len() < MAX_TRACKED)
                {
                    met.meets = current.meets + 1;
                    self.facts.insert(sym, met);
                }
                Feasibility::Feasible
            }
        }
    }

    /// Rewrites symbol ids (worklist merge canonicalization).
    pub fn remap_symbols(&mut self, f: impl Fn(u32) -> u32) {
        if self.facts.is_empty() {
            return;
        }
        self.facts = self.facts.iter().map(|(k, v)| (f(*k), *v)).collect();
    }
}

/// The `[0, 1]` fact comparisons and logical operators produce.
fn bool_fact() -> Fact {
    Fact {
        interval: Interval { lo: 0, hi: 1 },
        congruence: Congruence::top(),
        meets: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Symbol;

    fn sym(id: u32) -> SVal {
        SVal::Sym(Symbol::new(id, ""))
    }

    fn int(v: i64) -> SVal {
        SVal::Int(v)
    }

    fn bin(op: BinOp, l: SVal, r: SVal) -> SVal {
        SVal::binary(op, l, r)
    }

    #[test]
    fn interval_meet_and_widen() {
        let a = Interval { lo: 0, hi: 10 };
        let b = Interval { lo: 5, hi: 20 };
        assert_eq!(a.meet(&b), Some(Interval { lo: 5, hi: 10 }));
        assert_eq!(Interval { lo: 11, hi: 20 }.meet(&a), None);
        let w = a.widen(&Interval { lo: -1, hi: 10 });
        assert_eq!(w.lo, I64_MIN);
        assert_eq!(w.hi, 10);
        // Widening stabilizes: widening with itself is the identity.
        assert_eq!(w.widen(&w), w);
    }

    #[test]
    fn congruence_meet_crt() {
        // x ≡ 1 (mod 4) ∧ x ≡ 3 (mod 6): gcd 2 does not divide 1-3 = -2…
        // it does (2 | 2), lcm 12, residue 9.
        let a = Congruence {
            modulus: 4,
            residue: 1,
        };
        let b = Congruence {
            modulus: 6,
            residue: 3,
        };
        let met = a.meet(&b).expect("compatible classes");
        assert_eq!((met.modulus, met.residue), (12, 9));
        // x ≡ 0 (mod 4) ∧ x ≡ 1 (mod 4) is bottom.
        let c = Congruence {
            modulus: 4,
            residue: 0,
        };
        let d = Congruence {
            modulus: 4,
            residue: 1,
        };
        assert!(c.meet(&d).is_none());
    }

    #[test]
    fn affine_multiplication_refutes() {
        // pub0 > 37 ∧ pub0 * 3 < 90 is contradictory (pub0 ≤ 29).
        let mut dom = AbstractDomain::new();
        assert_eq!(
            dom.assume(&bin(BinOp::Gt, sym(0), int(37)), true),
            Feasibility::Feasible
        );
        assert_eq!(
            dom.assume(
                &bin(BinOp::Lt, bin(BinOp::Mul, sym(0), int(3)), int(90)),
                true
            ),
            Feasibility::Infeasible
        );
    }

    #[test]
    fn parity_contradiction_refutes() {
        // x ≥ 0 ∧ x % 4 == 1 ∧ x % 4 == 3 is contradictory.
        let mut dom = AbstractDomain::new();
        let x_mod4 = bin(BinOp::Rem, sym(1), int(4));
        assert_eq!(
            dom.assume(&bin(BinOp::Ge, sym(1), int(0)), true),
            Feasibility::Feasible
        );
        assert_eq!(
            dom.assume(&bin(BinOp::Eq, x_mod4.clone(), int(1)), true),
            Feasibility::Feasible
        );
        assert_eq!(
            dom.assume(&bin(BinOp::Eq, x_mod4, int(3)), true),
            Feasibility::Infeasible
        );
    }

    #[test]
    fn negative_dividend_parity_is_not_refuted() {
        // Without a nonnegative lower bound the truncated-rem sign makes
        // the congruence refinement unsound — the domain must stay ⊤-ish
        // and NOT refute: x = -3 has x % 4 == -3, x = 1 has x % 4 == 1.
        let mut dom = AbstractDomain::new();
        let x_mod4 = bin(BinOp::Rem, sym(2), int(4));
        assert_eq!(
            dom.assume(&bin(BinOp::Eq, x_mod4.clone(), int(1)), true),
            Feasibility::Feasible
        );
        assert_eq!(
            dom.assume(&bin(BinOp::Eq, x_mod4, int(-3)), true),
            Feasibility::Feasible
        );
    }

    #[test]
    fn interval_contradiction_refutes() {
        let mut dom = AbstractDomain::new();
        assert_eq!(
            dom.assume(&bin(BinOp::Lt, sym(0), int(10)), true),
            Feasibility::Feasible
        );
        assert_eq!(
            dom.assume(&bin(BinOp::Gt, sym(0), int(20)), true),
            Feasibility::Infeasible
        );
    }

    #[test]
    fn negated_guard_refutes() {
        // !(x < 10) ∧ x < 5 is contradictory.
        let mut dom = AbstractDomain::new();
        assert_eq!(
            dom.assume(&bin(BinOp::Lt, sym(0), int(10)), false),
            Feasibility::Feasible
        );
        assert_eq!(
            dom.assume(&bin(BinOp::Lt, sym(0), int(5)), true),
            Feasibility::Infeasible
        );
    }

    #[test]
    fn eval_is_wrap_aware() {
        // i64::MAX + 1 wraps concretely; the abstract result must be ⊤,
        // not [i64::MAX + 1, i64::MAX + 1].
        let mut dom = AbstractDomain::new();
        dom.assume(&bin(BinOp::Eq, sym(0), int(i64::MAX)), true);
        let f = dom.eval(&bin(BinOp::Add, sym(0), int(1)));
        assert!(f.is_top());
    }

    #[test]
    fn widening_freeze_terminates_refinement() {
        let mut dom = AbstractDomain::new();
        // An adversarial chain of ever-tighter bounds stops narrowing at
        // the freeze, but bottom checks still fire.
        for i in 0..(WIDEN_AFTER + 20) {
            let f = dom.assume(&bin(BinOp::Le, sym(0), int(1_000_000 - i as i64)), true);
            assert_eq!(f, Feasibility::Feasible);
        }
        let frozen = dom.fact_of(0);
        assert_eq!(frozen.meets, WIDEN_AFTER);
        // The stored bound reflects the first WIDEN_AFTER refinements only.
        assert_eq!(frozen.interval.hi, 1_000_000 - i128::from(WIDEN_AFTER) + 1);
        // Refutation power is retained past the freeze.
        assert_eq!(
            dom.assume(&bin(BinOp::Gt, sym(0), int(2_000_000)), true),
            Feasibility::Infeasible
        );
    }

    #[test]
    fn remap_symbols_moves_facts() {
        let mut dom = AbstractDomain::new();
        dom.assume(&bin(BinOp::Eq, sym(7), int(42)), true);
        dom.remap_symbols(|id| id + 100);
        assert_eq!(dom.fact_of(107).as_const(), Some(42));
        assert!(dom.fact_of(7).is_top());
    }

    #[test]
    fn logical_structure_decomposes() {
        // (x > 5 && x < 3) assumed true is contradictory.
        let mut dom = AbstractDomain::new();
        let c = bin(
            BinOp::LogAnd,
            bin(BinOp::Gt, sym(0), int(5)),
            bin(BinOp::Lt, sym(0), int(3)),
        );
        assert_eq!(dom.assume(&c, true), Feasibility::Infeasible);
    }

    #[test]
    fn division_by_zero_stays_top() {
        let dom = AbstractDomain::new();
        let f = dom.eval(&bin(BinOp::Div, sym(0), int(0)));
        assert!(f.is_top());
        let f = dom.eval(&bin(BinOp::Rem, sym(0), int(0)));
        assert!(f.is_top());
    }
}
