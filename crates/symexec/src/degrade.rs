//! The supervised-runtime vocabulary: typed degradations, the ledger that
//! accumulates them, and cooperative cancellation.
//!
//! PrivacyScope's Algorithm 1 guarantees only hold for the paths the
//! engine actually finished. Every mechanism that makes a run partial —
//! budgets, deadlines, cancellation, a panicking path task, widening — now
//! leaves a typed [`Degradation`] entry in the exploration's [`Ledger`], so
//! a report can state exactly which soundness claim survives:
//!
//! * **path-losing** entries ([`Degradation::loses_paths`]) mean feasible
//!   paths were not explored — the reported leak set is a *lower bound*;
//! * **precision-losing** entries ([`Degradation::loses_precision`]) mean
//!   only value precision was reduced (widening keeps taint, so the leak
//!   set itself is unaffected).
//!
//! The ledger is part of the deterministic exploration result: entries are
//! recorded per task and merged in canonical task order with additive
//! coalescing, so the ledger is byte-identical at every worker count.

use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use serde::{Deserialize, Serialize};

/// One way an exploration degraded instead of failing.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Degradation {
    /// Completed paths beyond `max_paths` were discarded (their return
    /// observations still reach the global event log).
    PathBudget {
        /// Paths dropped by the budget.
        dropped: usize,
    },
    /// Paths abandoned for exceeding the per-path step budget.
    StepBudget {
        /// Paths dropped mid-flight.
        dropped: usize,
    },
    /// The wall-clock deadline expired: exploration stopped at the first
    /// wave boundary after the deadline.
    DeadlineExceeded {
        /// The 0-based wave index at which exploration was cut.
        wave: usize,
        /// In-flight path states discarded at the cut.
        dropped: usize,
    },
    /// The cancellation token fired: exploration stopped at the first
    /// wave boundary after the cancel.
    Cancelled {
        /// The 0-based wave index at which exploration was cut.
        wave: usize,
        /// In-flight path states discarded at the cut.
        dropped: usize,
    },
    /// A path task panicked; its paths were discarded, the rest of the
    /// exploration is unaffected.
    PathPanicked {
        /// The panic payload, when it was a string.
        message: String,
    },
    /// An oversized symbolic value was summarized into a fresh symbol
    /// (taint preserved, value precision lost).
    ValueWidened {
        /// Summarizations applied.
        count: usize,
    },
    /// A loop hit its unrolling bound and was havoc-widened (taint
    /// preserved, value precision lost).
    LoopWidened {
        /// Widenings applied.
        count: usize,
    },
    /// Writing a checkpoint snapshot failed (disk full, permissions, …).
    /// The exploration itself lost nothing — but the run is not resumable
    /// from that boundary, which an operator relying on `--checkpoint`
    /// needs to know.
    CheckpointFailed {
        /// The rendered [`crate::CheckpointError`].
        message: String,
    },
    /// The cooperative yield hook fired: exploration was suspended at a
    /// wave boundary into a resumable snapshot (job migration). The entry
    /// is honest about the *suspended* report — its in-flight paths were
    /// not explored — but a later [`Engine::resume`](crate::Engine::resume)
    /// of the snapshot reconstructs the full, undegraded result.
    Suspended {
        /// The 0-based wave index at which exploration was suspended.
        wave: usize,
        /// In-flight path states parked in the snapshot.
        dropped: usize,
    },
    /// An untrusted-runtime retry loop was cut short (or its backoff sleep
    /// truncated) by the supervision deadline or cancel token. The
    /// exploration result is unaffected — the transient error simply
    /// surfaces earlier than the retry policy alone would have allowed.
    RetryCurtailed {
        /// Retry sleeps truncated or abandoned.
        count: usize,
    },
}

impl Degradation {
    /// Whether this entry means feasible paths were *not* explored — the
    /// leak set is then under-approximate (a lower bound).
    pub fn loses_paths(&self) -> bool {
        matches!(
            self,
            Degradation::PathBudget { .. }
                | Degradation::StepBudget { .. }
                | Degradation::DeadlineExceeded { .. }
                | Degradation::Cancelled { .. }
                | Degradation::PathPanicked { .. }
                | Degradation::Suspended { .. }
        )
    }

    /// Whether this entry only reduced value precision: every feasible
    /// path was still covered and taint (hence the leak set) is intact.
    /// (A failed checkpoint write loses neither paths nor precision — it
    /// only costs resumability.)
    pub fn loses_precision(&self) -> bool {
        matches!(
            self,
            Degradation::ValueWidened { .. } | Degradation::LoopWidened { .. }
        )
    }
}

impl fmt::Display for Degradation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Degradation::PathBudget { dropped } => {
                write!(
                    f,
                    "path budget exhausted: {dropped} completed path(s) dropped"
                )
            }
            Degradation::StepBudget { dropped } => {
                write!(
                    f,
                    "step budget exhausted: {dropped} path(s) abandoned mid-flight"
                )
            }
            Degradation::DeadlineExceeded { wave, dropped } => {
                write!(
                    f,
                    "deadline exceeded at wave {wave}: {dropped} in-flight path(s) dropped"
                )
            }
            Degradation::Cancelled { wave, dropped } => {
                write!(
                    f,
                    "cancelled at wave {wave}: {dropped} in-flight path(s) dropped"
                )
            }
            Degradation::PathPanicked { message } => {
                write!(f, "a path task panicked (isolated): {message}")
            }
            Degradation::ValueWidened { count } => {
                write!(f, "{count} oversized value(s) summarized (taint preserved)")
            }
            Degradation::LoopWidened { count } => {
                write!(f, "{count} loop(s) havoc-widened (taint preserved)")
            }
            Degradation::CheckpointFailed { message } => {
                write!(f, "checkpoint write failed (run not resumable): {message}")
            }
            Degradation::Suspended { wave, dropped } => {
                write!(
                    f,
                    "suspended at wave {wave}: {dropped} in-flight path(s) parked in the snapshot"
                )
            }
            Degradation::RetryCurtailed { count } => {
                write!(
                    f,
                    "{count} retry sleep(s) curtailed by the deadline/cancel supervision"
                )
            }
        }
    }
}

/// The typed degradation ledger of one exploration.
///
/// Countable kinds coalesce additively on [`Ledger::record`]; panic
/// entries deduplicate by message (the drop *count* lives in the stats).
/// Entries keep first-occurrence order, which — recorded per task and
/// absorbed in canonical task order — is worker-count-invariant.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Ledger {
    entries: Vec<Degradation>,
}

impl Ledger {
    /// An empty ledger.
    pub fn new() -> Ledger {
        Ledger::default()
    }

    /// Records one degradation, coalescing with an existing entry of the
    /// same kind where counts are additive.
    pub fn record(&mut self, degradation: Degradation) {
        use Degradation::*;
        for existing in &mut self.entries {
            match (existing, &degradation) {
                (PathBudget { dropped }, PathBudget { dropped: more }) => {
                    *dropped += more;
                    return;
                }
                (StepBudget { dropped }, StepBudget { dropped: more }) => {
                    *dropped += more;
                    return;
                }
                (ValueWidened { count }, ValueWidened { count: more }) => {
                    *count += more;
                    return;
                }
                (LoopWidened { count }, LoopWidened { count: more }) => {
                    *count += more;
                    return;
                }
                (RetryCurtailed { count }, RetryCurtailed { count: more }) => {
                    *count += more;
                    return;
                }
                (PathPanicked { message }, PathPanicked { message: same }) if message == same => {
                    return;
                }
                (CheckpointFailed { message }, CheckpointFailed { message: same })
                    if message == same =>
                {
                    return;
                }
                _ => {}
            }
        }
        self.entries.push(degradation);
    }

    /// Folds another ledger into this one (worklist merge), entry by entry
    /// through [`Ledger::record`] so coalescing stays uniform.
    pub fn absorb(&mut self, other: Ledger) {
        for entry in other.entries {
            self.record(entry);
        }
    }

    /// The recorded entries, in first-occurrence order.
    pub fn entries(&self) -> &[Degradation] {
        &self.entries
    }

    /// Whether nothing degraded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of (coalesced) entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether every feasible path was explored (no path-losing entry);
    /// the leak set is then complete, not merely a lower bound.
    pub fn is_complete(&self) -> bool {
        self.entries.iter().all(|d| !d.loses_paths())
    }
}

impl<'a> IntoIterator for &'a Ledger {
    type Item = &'a Degradation;
    type IntoIter = std::slice::Iter<'a, Degradation>;

    fn into_iter(self) -> Self::IntoIter {
        self.entries.iter()
    }
}

/// A cooperative cancellation handle: clone it into a config, keep one
/// copy, and [`CancelToken::cancel`] stops the exploration at the next
/// wave boundary (recorded as [`Degradation::Cancelled`]).
#[derive(Debug, Clone, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Requests cancellation. Idempotent; safe from any thread.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Relaxed);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Relaxed)
    }
}

/// All tokens compare equal: a token is a control handle, not
/// configuration, so two configs differing only in token wiring are
/// interchangeable (this keeps `EngineConfig: PartialEq` meaningful).
impl PartialEq for CancelToken {
    fn eq(&self, _other: &CancelToken) -> bool {
        true
    }
}

impl Eq for CancelToken {}

/// A cooperative suspension handle: clone it into a config, keep one copy,
/// and [`YieldToken::request`] parks the exploration at the next wave
/// boundary — the frontier is written to the configured checkpoint and the
/// cut is recorded as [`Degradation::Suspended`]. Unlike cancellation a
/// yield is re-armable: [`YieldToken::clear`] resets the token so the same
/// handle can drive the resumed run's next suspension.
#[derive(Debug, Clone, Default)]
pub struct YieldToken(Arc<AtomicBool>);

impl YieldToken {
    /// A fresh, un-requested token.
    pub fn new() -> YieldToken {
        YieldToken::default()
    }

    /// Requests suspension at the next wave boundary. Idempotent; safe
    /// from any thread.
    pub fn request(&self) {
        self.0.store(true, Ordering::Relaxed);
    }

    /// Whether suspension has been requested.
    pub fn is_requested(&self) -> bool {
        self.0.load(Ordering::Relaxed)
    }

    /// Re-arms the token for the next run (a resumed job keeps its handle).
    pub fn clear(&self) {
        self.0.store(false, Ordering::Relaxed);
    }
}

/// Like [`CancelToken`]: a control handle, not configuration — all tokens
/// compare equal so `EngineConfig: PartialEq` stays meaningful and the
/// checkpoint fingerprint is unaffected by token wiring.
impl PartialEq for YieldToken {
    fn eq(&self, _other: &YieldToken) -> bool {
        true
    }
}

impl Eq for YieldToken {}

/// Why the supervisor stopped an exploration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum StopKind {
    Deadline,
    Cancelled,
    Suspended,
}

/// The per-run supervisor: one wall-clock start, an optional deadline, the
/// cancellation token and the cooperative yield hook. Checked at every
/// wave boundary and (cheaply) every few interpreted statements.
#[derive(Debug)]
pub(crate) struct Supervisor {
    start: Instant,
    deadline: Option<Duration>,
    cancel: CancelToken,
    yield_hook: YieldToken,
}

impl Supervisor {
    pub(crate) fn new(
        deadline: Option<Duration>,
        cancel: CancelToken,
        yield_hook: YieldToken,
    ) -> Supervisor {
        Supervisor {
            start: Instant::now(),
            deadline,
            cancel,
            yield_hook,
        }
    }

    /// Whether the run must stop, and why. Cancellation wins over the
    /// deadline, and both terminal stops win over a suspension request —
    /// there is no point parking a job that is already out of budget.
    pub(crate) fn stop(&self) -> Option<StopKind> {
        if self.cancel.is_cancelled() {
            return Some(StopKind::Cancelled);
        }
        if let Some(limit) = self.deadline {
            if self.start.elapsed() >= limit {
                return Some(StopKind::Deadline);
            }
        }
        if self.yield_hook.is_requested() {
            return Some(StopKind::Suspended);
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn countable_entries_coalesce() {
        let mut ledger = Ledger::new();
        ledger.record(Degradation::PathBudget { dropped: 2 });
        ledger.record(Degradation::LoopWidened { count: 1 });
        ledger.record(Degradation::PathBudget { dropped: 3 });
        ledger.record(Degradation::LoopWidened { count: 4 });
        assert_eq!(
            ledger.entries(),
            &[
                Degradation::PathBudget { dropped: 5 },
                Degradation::LoopWidened { count: 5 },
            ]
        );
    }

    #[test]
    fn panics_deduplicate_by_message() {
        let mut ledger = Ledger::new();
        ledger.record(Degradation::PathPanicked {
            message: "boom".into(),
        });
        ledger.record(Degradation::PathPanicked {
            message: "boom".into(),
        });
        ledger.record(Degradation::PathPanicked {
            message: "other".into(),
        });
        assert_eq!(ledger.len(), 2);
    }

    #[test]
    fn absorb_is_record_entrywise() {
        let mut a = Ledger::new();
        a.record(Degradation::StepBudget { dropped: 1 });
        let mut b = Ledger::new();
        b.record(Degradation::StepBudget { dropped: 2 });
        b.record(Degradation::ValueWidened { count: 7 });
        a.absorb(b);
        assert_eq!(
            a.entries(),
            &[
                Degradation::StepBudget { dropped: 3 },
                Degradation::ValueWidened { count: 7 },
            ]
        );
    }

    #[test]
    fn soundness_classification() {
        assert!(Degradation::DeadlineExceeded {
            wave: 0,
            dropped: 1
        }
        .loses_paths());
        assert!(Degradation::PathPanicked {
            message: "x".into()
        }
        .loses_paths());
        assert!(Degradation::LoopWidened { count: 1 }.loses_precision());
        let mut ledger = Ledger::new();
        ledger.record(Degradation::ValueWidened { count: 1 });
        assert!(ledger.is_complete());
        ledger.record(Degradation::PathBudget { dropped: 1 });
        assert!(!ledger.is_complete());
    }

    #[test]
    fn cancel_token_fires_once_for_all_clones() {
        let token = CancelToken::new();
        let clone = token.clone();
        assert!(!clone.is_cancelled());
        token.cancel();
        assert!(clone.is_cancelled());
        // Tokens are control handles, not configuration.
        assert_eq!(token, CancelToken::new());
    }

    #[test]
    fn supervisor_deadline_and_cancel() {
        let sup = Supervisor::new(None, CancelToken::new(), YieldToken::new());
        assert_eq!(sup.stop(), None);
        let sup = Supervisor::new(Some(Duration::ZERO), CancelToken::new(), YieldToken::new());
        assert_eq!(sup.stop(), Some(StopKind::Deadline));
        let token = CancelToken::new();
        token.cancel();
        let sup = Supervisor::new(Some(Duration::ZERO), token, YieldToken::new());
        assert_eq!(sup.stop(), Some(StopKind::Cancelled));
    }

    #[test]
    fn supervisor_yield_is_rearmable_and_loses_to_terminal_stops() {
        let hook = YieldToken::new();
        let sup = Supervisor::new(None, CancelToken::new(), hook.clone());
        assert_eq!(sup.stop(), None);
        hook.request();
        assert_eq!(sup.stop(), Some(StopKind::Suspended));
        hook.clear();
        assert_eq!(sup.stop(), None);
        // A terminal stop always outranks a pending suspension request.
        hook.request();
        let sup = Supervisor::new(Some(Duration::ZERO), CancelToken::new(), hook.clone());
        assert_eq!(sup.stop(), Some(StopKind::Deadline));
        // Tokens are control handles, not configuration.
        assert_eq!(hook, YieldToken::new());
    }

    #[test]
    fn suspension_and_retry_classification() {
        assert!(Degradation::Suspended {
            wave: 2,
            dropped: 3
        }
        .loses_paths());
        let curtailed = Degradation::RetryCurtailed { count: 1 };
        assert!(!curtailed.loses_paths());
        assert!(!curtailed.loses_precision());
        let mut ledger = Ledger::new();
        ledger.record(Degradation::RetryCurtailed { count: 1 });
        ledger.record(Degradation::RetryCurtailed { count: 2 });
        assert_eq!(
            ledger.entries(),
            &[Degradation::RetryCurtailed { count: 3 }]
        );
        assert!(ledger.is_complete());
    }

    #[test]
    fn ledger_serde_round_trip() {
        let mut ledger = Ledger::new();
        ledger.record(Degradation::DeadlineExceeded {
            wave: 3,
            dropped: 9,
        });
        ledger.record(Degradation::PathPanicked {
            message: "boom".into(),
        });
        let json = serde_json::to_string(&ledger).expect("serializes");
        let back: Ledger = serde_json::from_str(&json).expect("deserializes");
        assert_eq!(ledger, back);
    }
}
