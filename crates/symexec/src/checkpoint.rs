//! Crash-safe checkpointing of an exploration at wave boundaries.
//!
//! The worklist engine only mutates its global state (id counters, stats,
//! ledger, event log) at deterministic *wave boundaries* — between two
//! top-level statements every surviving path state is fully merged and the
//! exploration is a pure function of the frontier. A [`Snapshot`] captures
//! exactly that boundary state, so a run killed by a deadline, a
//! cancellation, or the OS can be resumed later and finish **byte-identical**
//! to an uninterrupted run at any worker count.
//!
//! # File layout
//!
//! A checkpoint file is one header line followed by the raw JSON payload:
//!
//! ```text
//! privacyscope-checkpoint v1 fingerprint=<16 hex> checksum=<16 hex> len=<bytes>
//! {"wave": 3, "entries": [...], ...}
//! ```
//!
//! * `fingerprint` — FNV-1a hash of the pretty-printed `TranslationUnit`,
//!   the entry name, the parameter bindings, and every analysis-relevant
//!   [`EngineConfig`] field (worker count, deadline, cancellation and cache
//!   sizing never change the result and are excluded). A snapshot only
//!   resumes against the exact analysis that wrote it.
//! * `checksum` / `len` — FNV-1a hash and byte length of the payload, so a
//!   truncated or bit-flipped file is rejected before deserialization.
//!
//! # Atomic-write protocol
//!
//! Snapshots are written to `<path>.tmp`, fsynced, then renamed over
//! `<path>` — a crash mid-write leaves either the previous snapshot or a
//! stray temp file, never a half-written checkpoint at the published path.
//!
//! Every rejection is a typed [`CheckpointError`]; loading never panics and
//! can never yield a silently wrong exploration (the payload is only
//! trusted after magic, version, length, checksum, and fingerprint all
//! pass).

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::io::Write as _;
use std::path::{Path, PathBuf};

use serde::{Deserialize, Serialize};

use crate::degrade::Ledger;
use crate::engine::{EngineConfig, Flow, ParamBinding, Stats};
use crate::profile::Profile;
use crate::state::{DeclassifyEvent, ExecState};
use crate::value::Region;

/// The checkpoint file-format version this build reads and writes.
pub const FORMAT_VERSION: u32 = 1;

const MAGIC: &str = "privacyscope-checkpoint";

/// Why a checkpoint file was rejected (or could not be produced).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointError {
    /// The file could not be read or written.
    Io {
        /// The path involved.
        path: PathBuf,
        /// The rendered `std::io::Error`.
        message: String,
    },
    /// The file is not a checkpoint, its header is unreadable, or the
    /// payload does not deserialize into a frontier.
    Malformed {
        /// What failed to parse.
        detail: String,
    },
    /// The payload is shorter (or longer) than the header promised — the
    /// classic signature of a file truncated by a crash or a partial copy.
    Truncated {
        /// Payload bytes the header declared.
        expected: usize,
        /// Payload bytes actually present.
        found: usize,
    },
    /// The file was written by an incompatible format version.
    UnsupportedVersion {
        /// Version found in the header.
        found: u32,
        /// Version this build supports.
        supported: u32,
    },
    /// The payload bytes do not hash to the header's checksum (bit rot,
    /// concurrent modification, or a corrupt copy).
    ChecksumMismatch {
        /// Checksum the header declared.
        expected: u64,
        /// Checksum of the bytes on disk.
        found: u64,
    },
    /// The snapshot belongs to a different analysis: source text, entry,
    /// bindings, or an analysis-relevant config knob changed since it was
    /// written. Resuming it would silently explore the wrong program.
    FingerprintMismatch {
        /// Fingerprint of the analysis being resumed.
        expected: u64,
        /// Fingerprint recorded in the snapshot.
        found: u64,
    },
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io { path, message } => {
                write!(f, "checkpoint I/O on `{}`: {message}", path.display())
            }
            CheckpointError::Malformed { detail } => {
                write!(f, "malformed checkpoint: {detail}")
            }
            CheckpointError::Truncated { expected, found } => {
                write!(
                    f,
                    "truncated checkpoint: header promises {expected} payload byte(s), \
                     file has {found}"
                )
            }
            CheckpointError::UnsupportedVersion { found, supported } => {
                write!(
                    f,
                    "unsupported checkpoint version v{found} (this build reads v{supported})"
                )
            }
            CheckpointError::ChecksumMismatch { expected, found } => {
                write!(
                    f,
                    "checkpoint checksum mismatch: header says {expected:016x}, \
                     payload hashes to {found:016x}"
                )
            }
            CheckpointError::FingerprintMismatch { expected, found } => {
                write!(
                    f,
                    "checkpoint fingerprint mismatch: this analysis is {expected:016x}, \
                     the snapshot was written for {found:016x} (source, entry, bindings, \
                     or analysis config changed)"
                )
            }
        }
    }
}

impl std::error::Error for CheckpointError {}

/// The boundary state a snapshot carries: everything `drive_worklist` and
/// the harvest need to continue as if never interrupted.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub(crate) struct Frontier {
    /// The 0-based wave (top-level statement) to execute next.
    pub wave: usize,
    /// Live path states with their control flow, in canonical order.
    pub entries: Vec<(ExecState, Flow)>,
    /// Global symbol-allocator high-water mark.
    pub next_symbol: u32,
    /// Global source-allocator high-water mark.
    pub next_source: u32,
    /// Source id → human-readable name.
    pub source_names: BTreeMap<u32, String>,
    /// Source id → backing symbol id.
    pub source_symbols: BTreeMap<u32, u32>,
    /// Counters accumulated so far.
    pub stats: Stats,
    /// Whether any budget was already exhausted.
    pub exhausted: bool,
    /// Degradations accumulated so far.
    pub ledger: Ledger,
    /// Declassification events observed so far.
    pub events: Vec<DeclassifyEvent>,
    /// `[out]`-marked base regions from parameter binding.
    pub out_bases: Vec<(String, Region)>,
    /// FNV hashes of every feasibility-probe key accounted so far (the
    /// deterministic hit/miss counters in [`Stats`] are classifications
    /// against this set). Persisted so a resumed run counts probe
    /// redundancy exactly like an uninterrupted one. `serde(default)`
    /// keeps pre-telemetry snapshots loadable: they resume with an empty
    /// seen-set and correspondingly conservative hit counts.
    #[serde(default)]
    pub probe_seen: BTreeSet<u64>,
    /// Per-source-site exploration profile accumulated so far. Merged in
    /// canonical wave order, so a resumed run's final profile is
    /// byte-identical to an uninterrupted one. `serde(default)` keeps
    /// pre-profile snapshots loadable: they resume with an empty profile
    /// covering only the remaining waves.
    #[serde(default)]
    pub profile: Profile,
}

/// A validated, resumable exploration snapshot.
///
/// Produced by the engine when [`EngineConfig::checkpoint`] is set; loaded
/// with [`Snapshot::load`] and handed to
/// [`Engine::resume`](crate::Engine::resume), which additionally checks the
/// compatibility fingerprint against the analysis being resumed.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    pub(crate) fingerprint: u64,
    pub(crate) frontier: Frontier,
}

impl Snapshot {
    /// Reads and validates a checkpoint file (magic, version, length,
    /// checksum — the fingerprint is checked at resume time, when the
    /// analysis it must match is known).
    ///
    /// # Errors
    ///
    /// Returns a typed [`CheckpointError`] for unreadable, malformed,
    /// truncated, version-incompatible, or corrupt files. Never panics.
    pub fn load(path: &Path) -> Result<Snapshot, CheckpointError> {
        let text = std::fs::read_to_string(path).map_err(|e| CheckpointError::Io {
            path: path.to_path_buf(),
            message: e.to_string(),
        })?;
        Snapshot::parse(&text)
    }

    /// Reads only the header line of a checkpoint file and returns its
    /// compatibility fingerprint, without parsing (or even reading past)
    /// the payload. Recovery passes use this to detect stale snapshots —
    /// one written for a different analysis than the job on record —
    /// before committing to a full resume.
    ///
    /// # Errors
    ///
    /// Returns a typed [`CheckpointError`] for unreadable files or headers
    /// that are not a supported checkpoint header. Never panics.
    pub fn peek_fingerprint(path: &Path) -> Result<u64, CheckpointError> {
        use std::io::{BufRead, BufReader};
        let file = std::fs::File::open(path).map_err(|e| CheckpointError::Io {
            path: path.to_path_buf(),
            message: e.to_string(),
        })?;
        let mut header = String::new();
        BufReader::new(file)
            .read_line(&mut header)
            .map_err(|e| CheckpointError::Io {
                path: path.to_path_buf(),
                message: e.to_string(),
            })?;
        let header = header.trim_end_matches('\n');
        let mut tokens = header.split(' ');
        if tokens.next() != Some(MAGIC) {
            return Err(CheckpointError::Malformed {
                detail: format!("not a `{MAGIC}` file"),
            });
        }
        match tokens.next().and_then(|t| t.strip_prefix('v')) {
            Some(raw) => {
                let version = raw.parse::<u32>().map_err(|_| CheckpointError::Malformed {
                    detail: format!("unreadable version `{raw}`"),
                })?;
                if version != FORMAT_VERSION {
                    return Err(CheckpointError::UnsupportedVersion {
                        found: version,
                        supported: FORMAT_VERSION,
                    });
                }
            }
            None => {
                return Err(CheckpointError::Malformed {
                    detail: "missing version token".into(),
                })
            }
        }
        for token in tokens {
            if let Some(("fingerprint", raw)) = token.split_once('=') {
                if let Ok(fingerprint) = u64::from_str_radix(raw, 16) {
                    return Ok(fingerprint);
                }
            }
        }
        Err(CheckpointError::Malformed {
            detail: "header lacks a fingerprint".into(),
        })
    }

    /// Parses checkpoint file contents (see the module docs for the layout).
    fn parse(text: &str) -> Result<Snapshot, CheckpointError> {
        let Some((header, payload)) = text.split_once('\n') else {
            return Err(CheckpointError::Malformed {
                detail: "missing header line".into(),
            });
        };
        let mut tokens = header.split(' ');
        if tokens.next() != Some(MAGIC) {
            return Err(CheckpointError::Malformed {
                detail: format!("not a `{MAGIC}` file"),
            });
        }
        let version = match tokens.next().and_then(|t| t.strip_prefix('v')) {
            Some(raw) => raw.parse::<u32>().map_err(|_| CheckpointError::Malformed {
                detail: format!("unreadable version `{raw}`"),
            })?,
            None => {
                return Err(CheckpointError::Malformed {
                    detail: "missing version token".into(),
                })
            }
        };
        if version != FORMAT_VERSION {
            return Err(CheckpointError::UnsupportedVersion {
                found: version,
                supported: FORMAT_VERSION,
            });
        }
        let mut fingerprint = None;
        let mut checksum = None;
        let mut len = None;
        for token in tokens {
            match token.split_once('=') {
                Some(("fingerprint", raw)) => fingerprint = u64::from_str_radix(raw, 16).ok(),
                Some(("checksum", raw)) => checksum = u64::from_str_radix(raw, 16).ok(),
                Some(("len", raw)) => len = raw.parse::<usize>().ok(),
                _ => {}
            }
        }
        let (Some(fingerprint), Some(checksum), Some(len)) = (fingerprint, checksum, len) else {
            return Err(CheckpointError::Malformed {
                detail: "header lacks fingerprint/checksum/len".into(),
            });
        };
        if payload.len() != len {
            return Err(CheckpointError::Truncated {
                expected: len,
                found: payload.len(),
            });
        }
        let found = fnv1a(payload.as_bytes());
        if found != checksum {
            return Err(CheckpointError::ChecksumMismatch {
                expected: checksum,
                found,
            });
        }
        let frontier: Frontier =
            serde_json::from_str(payload).map_err(|e| CheckpointError::Malformed {
                detail: format!("payload does not deserialize: {e}"),
            })?;
        Ok(Snapshot {
            fingerprint,
            frontier,
        })
    }

    /// Writes the snapshot atomically: serialize, write `<path>.tmp`,
    /// fsync, rename over `path`.
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError::Io`] on any filesystem failure and
    /// [`CheckpointError::Malformed`] if serialization fails (which the
    /// engine's own state never does).
    pub(crate) fn write_atomic(&self, path: &Path) -> Result<(), CheckpointError> {
        let payload =
            serde_json::to_string(&self.frontier).map_err(|e| CheckpointError::Malformed {
                detail: format!("frontier does not serialize: {e}"),
            })?;
        let header = format!(
            "{MAGIC} v{FORMAT_VERSION} fingerprint={:016x} checksum={:016x} len={}\n",
            self.fingerprint,
            fnv1a(payload.as_bytes()),
            payload.len(),
        );
        let io_err = |e: std::io::Error| CheckpointError::Io {
            path: path.to_path_buf(),
            message: e.to_string(),
        };
        let mut tmp_name = path.as_os_str().to_owned();
        tmp_name.push(".tmp");
        let tmp = PathBuf::from(tmp_name);
        let mut file = std::fs::File::create(&tmp).map_err(io_err)?;
        file.write_all(header.as_bytes()).map_err(io_err)?;
        file.write_all(payload.as_bytes()).map_err(io_err)?;
        file.sync_all().map_err(io_err)?;
        drop(file);
        std::fs::rename(&tmp, path).map_err(io_err)
    }

    /// Checks the compatibility fingerprint against the analysis about to
    /// be resumed.
    pub(crate) fn verify_fingerprint(&self, expected: u64) -> Result<(), CheckpointError> {
        if self.fingerprint == expected {
            Ok(())
        } else {
            Err(CheckpointError::FingerprintMismatch {
                expected,
                found: self.fingerprint,
            })
        }
    }

    /// The wave the snapshot resumes at (diagnostics).
    pub fn wave(&self) -> usize {
        self.frontier.wave
    }

    /// Live path states the snapshot carries (diagnostics).
    pub fn frontier_len(&self) -> usize {
        self.frontier.entries.len()
    }

    /// Steps already attributed in the carried exploration profile
    /// (diagnostics — nonzero for any snapshot taken past wave 0).
    pub fn profile_steps(&self) -> u64 {
        self.frontier.profile.totals().steps
    }
}

/// The compatibility fingerprint of one analysis: pretty-printed unit,
/// entry, bindings, and every [`EngineConfig`] field that shapes the
/// exploration *result*. Workers, feasibility cache, deadline, cancellation
/// and the checkpoint policy itself only affect wall-clock behaviour and
/// are deliberately excluded — a snapshot from a 4-worker deadline run
/// resumes fine under 1 worker and no deadline.
pub(crate) fn fingerprint(
    unit: &minic::TranslationUnit,
    entry: &str,
    bindings: &[ParamBinding],
    config: &EngineConfig,
) -> u64 {
    let text = format!(
        "{}\u{1f}{entry}\u{1f}{bindings:?}\u{1f}{}|{}|{}|{}|{}|{:?}|{:?}|{}|{}",
        minic::pretty::unit(unit),
        config.loop_bound,
        config.concrete_loop_limit,
        config.max_paths,
        config.max_steps_per_path,
        config.inline_depth,
        config.sink_functions,
        config.source_functions,
        config.record_trace,
        config.max_value_size,
    );
    // The feasibility mode joins the fingerprint only when it deviates
    // from the default: stronger tiers change which branch sides survive,
    // so a snapshot must not resume under a different mode — but every
    // pre-existing (syntactic) checkpoint keeps its fingerprint unchanged.
    let text = if config.feasibility == crate::constraints::FeasibilityMode::Syntactic {
        text
    } else {
        format!("{text}|feasibility={}", config.feasibility.as_str())
    };
    fnv1a(text.as_bytes())
}

/// 64-bit FNV-1a — dependency-free, stable across platforms, good enough
/// to catch truncation/corruption and source drift (not an adversarial
/// integrity check; checkpoints are operator-local files). Public so the
/// service's job journal can checksum its records with the same function
/// the checkpoint header uses.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &byte in bytes {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// [`std::hash::Hasher`] over FNV-1a, for hashing `Hash` types (feasibility
/// probe keys) with a *stable* function — `RandomState` would make the
/// hashes differ between processes, which would break checkpointed probe
/// accounting across a kill/resume boundary.
pub(crate) struct FnvHasher(u64);

impl FnvHasher {
    pub(crate) fn new() -> Self {
        FnvHasher(0xcbf2_9ce4_8422_2325)
    }
}

impl std::hash::Hasher for FnvHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &byte in bytes {
            self.0 ^= u64::from(byte);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
}

/// The stable 64-bit key of one feasibility probe `(constraints, cond,
/// taken)`, as logged by `Explorer::probe` and accumulated in
/// [`Frontier::probe_seen`].
pub(crate) fn probe_key(
    constraints: &crate::constraints::ConstraintManager,
    cond: &crate::value::SVal,
    taken: bool,
) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut hasher = FnvHasher::new();
    constraints.hash(&mut hasher);
    cond.hash(&mut hasher);
    taken.hash(&mut hasher);
    hasher.finish()
}

/// [`probe_key`] extended with whatever extra state the active
/// [`FeasibilityMode`](crate::constraints::FeasibilityMode) reads: the
/// Tier-1 domain for `intervals`, and additionally the path condition for
/// `full`. In syntactic mode this is byte-for-byte the legacy key, so
/// default-mode probe accounting (and resumed `probe_seen` sets) are
/// unchanged.
pub(crate) fn probe_key_tiered(
    mode: crate::constraints::FeasibilityMode,
    constraints: &crate::constraints::ConstraintManager,
    domain: &crate::domain::AbstractDomain,
    path: &crate::path::PathCondition,
    cond: &crate::value::SVal,
    taken: bool,
) -> u64 {
    use crate::constraints::FeasibilityMode;
    use std::hash::{Hash, Hasher};
    if mode == FeasibilityMode::Syntactic {
        return probe_key(constraints, cond, taken);
    }
    let mut hasher = FnvHasher::new();
    constraints.hash(&mut hasher);
    cond.hash(&mut hasher);
    taken.hash(&mut hasher);
    (mode == FeasibilityMode::Full).hash(&mut hasher);
    domain.hash(&mut hasher);
    if mode == FeasibilityMode::Full {
        for a in path.assumptions() {
            a.cond.hash(&mut hasher);
            a.taken.hash(&mut hasher);
        }
        path.len().hash(&mut hasher);
    }
    hasher.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Snapshot {
        Snapshot {
            fingerprint: 0xfeed,
            frontier: Frontier {
                wave: 2,
                entries: vec![(ExecState::new(), Flow::Normal)],
                next_symbol: 5,
                next_source: 3,
                source_names: BTreeMap::from([(1, "s".to_string())]),
                source_symbols: BTreeMap::from([(1, 0)]),
                stats: Stats {
                    forks: 4,
                    ..Stats::default()
                },
                exhausted: false,
                ledger: Ledger::new(),
                events: Vec::new(),
                out_bases: Vec::new(),
                probe_seen: BTreeSet::from([0xfeed_f00d]),
                profile: Profile::new(),
            },
        }
    }

    #[test]
    fn fnv1a_known_vectors() {
        // Standard FNV-1a test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn write_and_load_round_trip() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("ps_ckpt_roundtrip_{}.snap", std::process::id()));
        let snapshot = sample();
        snapshot.write_atomic(&path).expect("writes");
        let back = Snapshot::load(&path).expect("loads");
        assert_eq!(back, snapshot);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn rejects_wrong_magic_and_version() {
        assert!(matches!(
            Snapshot::parse("not-a-checkpoint v1 x=y\n{}"),
            Err(CheckpointError::Malformed { .. })
        ));
        assert!(matches!(
            Snapshot::parse(&format!("{MAGIC} v999 fingerprint=0 checksum=0 len=0\n")),
            Err(CheckpointError::UnsupportedVersion { found: 999, .. })
        ));
        assert!(matches!(
            Snapshot::parse("no newline at all"),
            Err(CheckpointError::Malformed { .. })
        ));
    }

    #[test]
    fn rejects_truncation_and_corruption() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("ps_ckpt_corrupt_{}.snap", std::process::id()));
        sample().write_atomic(&path).expect("writes");
        let text = std::fs::read_to_string(&path).expect("reads");

        // Truncated payload: length check fires before deserialization.
        let cut = &text[..text.len() - 10];
        assert!(matches!(
            Snapshot::parse(cut),
            Err(CheckpointError::Truncated { .. })
        ));

        // Same length, flipped byte: the checksum fires.
        let mut bytes = text.clone().into_bytes();
        let last = bytes.len() - 2;
        bytes[last] = bytes[last].wrapping_add(1);
        let corrupt = String::from_utf8(bytes).expect("still utf-8");
        assert!(matches!(
            Snapshot::parse(&corrupt),
            Err(CheckpointError::ChecksumMismatch { .. })
        ));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn fingerprint_tracks_analysis_relevant_config_only() {
        let unit = minic::parse("int f(int a) { return a; }").expect("parses");
        let base = EngineConfig::default();
        let fp = |config: &EngineConfig| fingerprint(&unit, "f", &[ParamBinding::Scalar], config);
        let reference = fp(&base);

        // Result-shaping knobs change the fingerprint…
        let mut tighter = base.clone();
        tighter.loop_bound = 2;
        assert_ne!(fp(&tighter), reference);

        // …scheduling knobs do not.
        let mut scheduled = base.clone();
        scheduled.workers = 7;
        scheduled.deadline = Some(std::time::Duration::from_millis(1));
        scheduled.feasibility_cache = 0;
        scheduled.checkpoint = Some(PathBuf::from("/tmp/x.snap"));
        scheduled.checkpoint_every = 1;
        assert_eq!(fp(&scheduled), reference);

        // Different entry or bindings: different analysis.
        assert_ne!(
            fingerprint(&unit, "g", &[ParamBinding::Scalar], &base),
            reference
        );
        assert_ne!(
            fingerprint(&unit, "f", &[ParamBinding::SecretScalar], &base),
            reference
        );

        // A non-default feasibility mode shapes which sides survive, so it
        // changes the fingerprint; the default keeps the legacy value.
        let mut tiered = base.clone();
        tiered.feasibility = crate::constraints::FeasibilityMode::Full;
        assert_ne!(fp(&tiered), reference);
        let mut explicit_default = base.clone();
        explicit_default.feasibility = crate::constraints::FeasibilityMode::Syntactic;
        assert_eq!(fp(&explicit_default), reference);
    }

    #[test]
    fn verify_fingerprint_is_typed() {
        let snapshot = sample();
        assert!(snapshot.verify_fingerprint(0xfeed).is_ok());
        assert_eq!(
            snapshot.verify_fingerprint(0xbeef),
            Err(CheckpointError::FingerprintMismatch {
                expected: 0xbeef,
                found: 0xfeed,
            })
        );
    }
}
