//! The per-path execution state: environment, store, path condition, taint.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use minic::ast::ExprId;
use serde::{Deserialize, Serialize};
use taint::{TaintMap, TaintSet};

use crate::constraints::ConstraintManager;
use crate::path::PathCondition;
use crate::value::{Region, SVal};

/// The environment: maps lvalue expressions (by [`ExprId`]) to the memory
/// region they currently denote (§VI-B).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Environment {
    bindings: BTreeMap<ExprId, Region>,
}

impl Environment {
    /// Creates an empty environment.
    pub fn new() -> Self {
        Environment::default()
    }

    /// Records that expression `id` denotes `region`.
    pub fn bind(&mut self, id: ExprId, region: Region) {
        self.bindings.insert(id, region);
    }

    /// The region an expression denotes, if recorded.
    pub fn region_of(&self, id: ExprId) -> Option<&Region> {
        self.bindings.get(&id)
    }

    /// Number of bindings.
    pub fn len(&self) -> usize {
        self.bindings.len()
    }

    /// Whether no bindings exist.
    pub fn is_empty(&self) -> bool {
        self.bindings.is_empty()
    }

    /// Iterates bindings in expression-id order.
    pub fn iter(&self) -> impl Iterator<Item = (&ExprId, &Region)> {
        self.bindings.iter()
    }
}

/// The store σ: maps regions to symbolic values.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Store {
    bindings: BTreeMap<Region, SVal>,
}

impl Store {
    /// Creates an empty store.
    pub fn new() -> Self {
        Store::default()
    }

    /// Binds `region` to `value`, returning the previous binding.
    pub fn bind(&mut self, region: Region, value: SVal) -> Option<SVal> {
        self.bindings.insert(region, value)
    }

    /// The value bound to `region`.
    pub fn lookup(&self, region: &Region) -> Option<&SVal> {
        self.bindings.get(region)
    }

    /// Removes a binding.
    pub fn unbind(&mut self, region: &Region) -> Option<SVal> {
        self.bindings.remove(region)
    }

    /// Iterates bindings in region order.
    pub fn iter(&self) -> impl Iterator<Item = (&Region, &SVal)> {
        self.bindings.iter()
    }

    /// Number of bindings.
    pub fn len(&self) -> usize {
        self.bindings.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.bindings.is_empty()
    }

    /// All regions lying within `base` (itself included) that have bindings.
    pub fn regions_within<'a>(
        &'a self,
        base: &'a Region,
    ) -> impl Iterator<Item = (&'a Region, &'a SVal)> {
        self.bindings.iter().filter(|(r, _)| r.is_within(base))
    }
}

impl fmt::Display for Store {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (region, value)) in self.bindings.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{region} ↦ {value}")?;
        }
        write!(f, "}}")
    }
}

/// Where a declassified value escaped the enclave.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Channel {
    /// The entry function's return value (observable by the host).
    Return,
    /// A write into an `[out]`-marked buffer (read back by the host).
    OutParam {
        /// The region written.
        region: Region,
    },
    /// An argument passed to a configured sink function (e.g. an OCALL).
    SinkCall {
        /// Sink function name.
        func: String,
        /// Zero-based argument index.
        arg: usize,
    },
}

impl fmt::Display for Channel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Channel::Return => write!(f, "return value"),
            Channel::OutParam { region } => write!(f, "[out] write to {region}"),
            Channel::SinkCall { func, arg } => write!(f, "argument {arg} of `{func}`"),
        }
    }
}

/// A declassification event: a value crossed the enclave boundary.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeclassifyEvent {
    /// Through which channel.
    pub channel: Channel,
    /// The value that escaped.
    pub value: SVal,
    /// The value's taint at that moment.
    pub taint: TaintSet,
    /// The taint of the path condition π at that moment (implicit flows).
    pub pi_taint: TaintSet,
    /// The rendered path condition π at that moment.
    pub pi: String,
    /// Source span of the statement responsible.
    pub span: minic::Span,
}

/// One call frame of the interpreted program (the entry function is frame
/// 0; inlined callees push further frames).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Frame {
    /// Unique frame id within the exploration (keys [`Region::Var`]).
    pub id: u32,
    /// The function this frame executes.
    pub func: String,
    /// Lexical scopes, innermost last; each maps a source name to the
    /// region chosen for it at declaration (shadowing-safe).
    pub scopes: Vec<BTreeMap<String, Region>>,
}

impl Frame {
    /// Creates a frame with one empty scope.
    pub fn new(id: u32, func: impl Into<String>) -> Self {
        Frame {
            id,
            func: func.into(),
            scopes: vec![BTreeMap::new()],
        }
    }

    /// Resolves a name through the scope chain.
    pub fn lookup(&self, name: &str) -> Option<&Region> {
        self.scopes.iter().rev().find_map(|s| s.get(name))
    }
}

/// One complete symbolic execution state (a path being explored).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ExecState {
    /// The environment (lvalue expression → region).
    pub env: Environment,
    /// The store σ (region → symbolic value).
    pub store: Store,
    /// The path condition π.
    pub path: PathCondition,
    /// Range constraints backing feasibility checks for π.
    pub constraints: ConstraintManager,
    /// Taint of each region (τΔ restricted to memory).
    pub taints: TaintMap<Region>,
    /// Taint of the path condition (τΔ\[π\] in the paper's semantics).
    pub pi_taint: TaintSet,
    /// Declassification events recorded on this path so far.
    pub events: Vec<DeclassifyEvent>,
    /// Every region written on this path, in order (drives loop widening).
    pub write_log: Vec<Region>,
    /// Statements interpreted so far (budget accounting).
    pub steps: usize,
    /// The call stack (frame 0 = entry function).
    pub frames: Vec<Frame>,
    /// Recorded state snapshots (when tracing is enabled).
    pub trace: Vec<crate::trace::TraceStep>,
    /// Next frame id to hand out for an inlined call on this path.
    ///
    /// Per-state (not global) so frame numbering depends only on the path's
    /// own history — a prerequisite for the worklist engine's determinism
    /// guarantee, since frame ids appear in rendered trace text.
    pub next_frame: u32,
    /// Next shadow-rename counter for re-declared locals on this path.
    pub next_shadow: u32,
    /// Base regions holding secret data on this path (entry parameters
    /// marked secret, plus regions written by configured source functions).
    pub secret_bases: BTreeSet<Region>,
}

impl ExecState {
    /// Creates a pristine state. Frame id 0 is reserved for the entry
    /// function, so inlined callees start at 1.
    pub fn new() -> Self {
        ExecState {
            next_frame: 1,
            ..ExecState::default()
        }
    }

    /// The innermost call frame.
    ///
    /// # Panics
    ///
    /// Panics if no frame has been pushed (engine misuse).
    pub fn frame(&self) -> &Frame {
        self.frames.last().expect("at least one frame")
    }

    /// The innermost call frame, mutably.
    ///
    /// # Panics
    ///
    /// Panics if no frame has been pushed (engine misuse).
    pub fn frame_mut(&mut self) -> &mut Frame {
        self.frames.last_mut().expect("at least one frame")
    }

    /// Binds a region to a value with taint, recording the write.
    pub fn write(&mut self, region: Region, value: SVal, taint: TaintSet) {
        self.write_log.push(region.clone());
        self.taints.set(region.clone(), taint);
        self.store.bind(region, value);
    }

    /// The taint of a region (⊥ if never set).
    pub fn taint_of(&self, region: &Region) -> TaintSet {
        self.taints.get(region)
    }

    /// Whether `region` lies within any base marked secret on this path.
    pub fn is_secret_region(&self, region: &Region) -> bool {
        self.secret_bases.iter().any(|base| region.is_within(base))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Symbol;
    use taint::SourceId;

    fn var(name: &str) -> Region {
        Region::Var {
            frame: 0,
            name: name.into(),
        }
    }

    #[test]
    fn environment_bindings() {
        let mut env = Environment::new();
        env.bind(ExprId(3), var("x"));
        assert_eq!(env.region_of(ExprId(3)), Some(&var("x")));
        assert_eq!(env.region_of(ExprId(4)), None);
        assert_eq!(env.len(), 1);
    }

    #[test]
    fn store_bind_and_lookup() {
        let mut store = Store::new();
        assert!(store.bind(var("x"), SVal::Int(3)).is_none());
        assert_eq!(store.lookup(&var("x")), Some(&SVal::Int(3)));
        assert_eq!(store.bind(var("x"), SVal::Int(4)), Some(SVal::Int(3)));
        assert_eq!(store.unbind(&var("x")), Some(SVal::Int(4)));
        assert!(store.is_empty());
    }

    #[test]
    fn regions_within_filters_subregions() {
        let base = Region::Sym {
            symbol: Symbol::new(0, "buf"),
        };
        let elem0 = Region::Element {
            base: Box::new(base.clone()),
            index: Box::new(SVal::Int(0)),
        };
        let mut store = Store::new();
        store.bind(elem0.clone(), SVal::Int(9));
        store.bind(var("x"), SVal::Int(1));
        let within: Vec<_> = store.regions_within(&base).collect();
        assert_eq!(within.len(), 1);
        assert_eq!(within[0].0, &elem0);
    }

    #[test]
    fn state_write_records_log_and_taint() {
        let mut state = ExecState::new();
        let ts = TaintSet::source(SourceId::new(1));
        state.write(var("h"), SVal::Int(5), ts.clone());
        assert_eq!(state.write_log, vec![var("h")]);
        assert_eq!(state.taint_of(&var("h")), ts);
        assert_eq!(state.store.lookup(&var("h")), Some(&SVal::Int(5)));
    }

    #[test]
    fn store_display_is_deterministic() {
        let mut store = Store::new();
        store.bind(var("b"), SVal::Int(2));
        store.bind(var("a"), SVal::Int(1));
        assert_eq!(store.to_string(), "{a ↦ 1, b ↦ 2}");
    }
}
