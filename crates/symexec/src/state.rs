//! The per-path execution state: environment, store, path condition, taint.
//!
//! Forking a path clones the whole [`ExecState`]. To keep that cheap the
//! bulk containers are *persistent* (structurally shared): the environment,
//! store and taint map sit on `im::OrdMap` (O(1) clone, O(log n) update
//! that shares all untouched tree nodes with the sibling path), and the
//! append-mostly logs (`write_log`, `events`, `trace`) sit on
//! `im::Vector` (frozen `Arc` chunks plus a small mutable tail). Both
//! containers serialize and hash byte-identically to the `std` types they
//! replaced, so reports and checkpoint files do not change.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use im::{OrdMap, Vector};
use minic::ast::ExprId;
use serde::{Deserialize, Deserializer, Serialize, Serializer};
use taint::{TaintMap, TaintSet};

use crate::constraints::ConstraintManager;
use crate::path::PathCondition;
use crate::value::{Region, SVal};

/// The environment: maps lvalue expressions (by [`ExprId`]) to the memory
/// region they currently denote (§VI-B).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Environment {
    bindings: OrdMap<ExprId, Region>,
}

impl Environment {
    /// Creates an empty environment.
    pub fn new() -> Self {
        Environment::default()
    }

    /// Records that expression `id` denotes `region`.
    pub fn bind(&mut self, id: ExprId, region: Region) {
        self.bindings.insert(id, region);
    }

    /// The region an expression denotes, if recorded.
    pub fn region_of(&self, id: ExprId) -> Option<&Region> {
        self.bindings.get(&id)
    }

    /// Number of bindings.
    pub fn len(&self) -> usize {
        self.bindings.len()
    }

    /// Whether no bindings exist.
    pub fn is_empty(&self) -> bool {
        self.bindings.is_empty()
    }

    /// Iterates bindings in expression-id order.
    pub fn iter(&self) -> impl Iterator<Item = (&ExprId, &Region)> {
        self.bindings.iter()
    }

    /// Diagnostic: (shared-with-`other`, total) map-node counts.
    pub fn sharing(&self, other: &Environment) -> (usize, usize) {
        (
            self.bindings.shared_node_count(&other.bindings),
            self.bindings.node_count(),
        )
    }
}

/// The store σ: maps regions to symbolic values.
#[derive(Debug, Clone, Default)]
pub struct Store {
    bindings: OrdMap<Region, SVal>,
    /// Sticky flag: set when a subobject binding was ever created whose
    /// immediate parent region was unbound at that moment (or a parent was
    /// unbound out from under its children). The prefix-window walk of
    /// [`Store::regions_within`] discovers descendants through chains of
    /// *bound* intermediate regions, so such orphans force the slow
    /// full-scan fallback. Conservative (never unset), purely a
    /// performance hint — both paths return the same entries.
    has_orphans: bool,
}

impl Store {
    /// Creates an empty store.
    pub fn new() -> Self {
        Store::default()
    }

    /// Binds `region` to `value`, returning the previous binding.
    pub fn bind(&mut self, region: Region, value: SVal) -> Option<SVal> {
        if !self.has_orphans {
            if let Some(parent) = region.parent() {
                if parent.parent().is_some() && !self.bindings.contains_key(parent) {
                    self.has_orphans = true;
                }
            }
        }
        self.bindings.insert(region, value)
    }

    /// The value bound to `region`.
    pub fn lookup(&self, region: &Region) -> Option<&SVal> {
        self.bindings.get(region)
    }

    /// Removes a binding.
    pub fn unbind(&mut self, region: &Region) -> Option<SVal> {
        let old = self.bindings.remove(region);
        if old.is_some() && !self.has_orphans && !self.children_of(region).is_empty() {
            // Removing an intermediate region orphans its bound children.
            self.has_orphans = true;
        }
        old
    }

    /// Iterates bindings in region order.
    pub fn iter(&self) -> impl Iterator<Item = (&Region, &SVal)> {
        self.bindings.iter()
    }

    /// Number of bindings.
    pub fn len(&self) -> usize {
        self.bindings.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.bindings.is_empty()
    }

    /// Bound regions whose *immediate* parent is `parent`, via two
    /// O(log n + m) prefix-window queries (the derived [`Region`] ordering
    /// keeps all `Element{parent, _}` keys contiguous, and likewise all
    /// `Field{parent, _}` keys).
    fn children_of<'a>(&'a self, parent: &Region) -> Vec<(&'a Region, &'a SVal)> {
        use std::cmp::Ordering;
        // Region variants order as Var < Global < Element < Field < Sym <
        // Str; within Element (resp. Field) keys order by base first. Both
        // comparators below are therefore monotone over the full key order.
        let mut out = self.bindings.range_by(|key| match key {
            Region::Var { .. } | Region::Global { .. } => Ordering::Less,
            Region::Element { base, .. } => base.as_ref().cmp(parent),
            Region::Field { .. } | Region::Sym { .. } | Region::Str { .. } => Ordering::Greater,
        });
        out.extend(self.bindings.range_by(|key| match key {
            Region::Var { .. } | Region::Global { .. } | Region::Element { .. } => Ordering::Less,
            Region::Field { base, .. } => base.as_ref().cmp(parent),
            Region::Sym { .. } | Region::Str { .. } => Ordering::Greater,
        }));
        out
    }

    /// All regions lying within `base` (itself included) that have bindings.
    ///
    /// Fast path: a worklist of prefix-window queries ([`Self::children_of`])
    /// walking the subobject tree downward from `base`, O((log n + m) · d)
    /// for m matches of maximum depth d — instead of scanning the whole
    /// store. The walk only reaches descendants connected to `base` through
    /// bound intermediates, so stores that ever held an orphaned subobject
    /// fall back to the full filter.
    pub fn regions_within<'a>(
        &'a self,
        base: &'a Region,
    ) -> impl Iterator<Item = (&'a Region, &'a SVal)> {
        let mut out: Vec<(&'a Region, &'a SVal)> = Vec::new();
        if self.has_orphans {
            out.extend(self.bindings.iter().filter(|(r, _)| r.is_within(base)));
        } else {
            if let Some(value) = self.bindings.get(base) {
                out.push((base, value));
            }
            let mut frontier = vec![base];
            while let Some(parent) = frontier.pop() {
                for (child, value) in self.children_of(parent) {
                    out.push((child, value));
                    frontier.push(child);
                }
            }
            // Deliver in global region order, exactly like the filter did.
            out.sort_by_key(|(region, _)| *region);
        }
        out.into_iter()
    }

    /// Diagnostic: (shared-with-`other`, total) map-node counts.
    pub fn sharing(&self, other: &Store) -> (usize, usize) {
        (
            self.bindings.shared_node_count(&other.bindings),
            self.bindings.node_count(),
        )
    }
}

impl PartialEq for Store {
    fn eq(&self, other: &Self) -> bool {
        // `has_orphans` is a query-plan hint derived from binding history,
        // not part of the store's meaning.
        self.bindings == other.bindings
    }
}

impl Serialize for Store {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        // Matches the derived shape `{"bindings": …}` — the orphan hint is
        // recomputed on load so checkpoint bytes are unchanged.
        serializer.serialize_value(serde::Value::Object(vec![(
            String::from("bindings"),
            serde::to_value(&self.bindings)?,
        )]))
    }
}

impl<'de> Deserialize<'de> for Store {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let mut obj = serde::expect_object(deserializer.take_value()?, "Store")?;
        let bindings: OrdMap<Region, SVal> =
            serde::from_value(serde::take_field(&mut obj, "bindings", "Store")?)?;
        let has_orphans = bindings.keys().any(|region| {
            region
                .parent()
                .is_some_and(|p| p.parent().is_some() && !bindings.contains_key(p))
        });
        Ok(Store {
            bindings,
            has_orphans,
        })
    }
}

impl fmt::Display for Store {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (region, value)) in self.bindings.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{region} ↦ {value}")?;
        }
        write!(f, "}}")
    }
}

/// Where a declassified value escaped the enclave.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Channel {
    /// The entry function's return value (observable by the host).
    Return,
    /// A write into an `[out]`-marked buffer (read back by the host).
    OutParam {
        /// The region written.
        region: Region,
    },
    /// An argument passed to a configured sink function (e.g. an OCALL).
    SinkCall {
        /// Sink function name.
        func: String,
        /// Zero-based argument index.
        arg: usize,
    },
}

impl fmt::Display for Channel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Channel::Return => write!(f, "return value"),
            Channel::OutParam { region } => write!(f, "[out] write to {region}"),
            Channel::SinkCall { func, arg } => write!(f, "argument {arg} of `{func}`"),
        }
    }
}

/// A declassification event: a value crossed the enclave boundary.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeclassifyEvent {
    /// Through which channel.
    pub channel: Channel,
    /// The value that escaped.
    pub value: SVal,
    /// The value's taint at that moment.
    pub taint: TaintSet,
    /// The taint of the path condition π at that moment (implicit flows).
    pub pi_taint: TaintSet,
    /// The rendered path condition π at that moment.
    pub pi: String,
    /// Source span of the statement responsible.
    pub span: minic::Span,
}

/// One call frame of the interpreted program (the entry function is frame
/// 0; inlined callees push further frames).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Frame {
    /// Unique frame id within the exploration (keys [`Region::Var`]).
    pub id: u32,
    /// The function this frame executes.
    pub func: String,
    /// Lexical scopes, innermost last; each maps a source name to the
    /// region chosen for it at declaration (shadowing-safe).
    pub scopes: Vec<BTreeMap<String, Region>>,
}

impl Frame {
    /// Creates a frame with one empty scope.
    pub fn new(id: u32, func: impl Into<String>) -> Self {
        Frame {
            id,
            func: func.into(),
            scopes: vec![BTreeMap::new()],
        }
    }

    /// Resolves a name through the scope chain.
    pub fn lookup(&self, name: &str) -> Option<&Region> {
        self.scopes.iter().rev().find_map(|s| s.get(name))
    }
}

/// One complete symbolic execution state (a path being explored).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ExecState {
    /// The environment (lvalue expression → region).
    pub env: Environment,
    /// The store σ (region → symbolic value).
    pub store: Store,
    /// The path condition π.
    pub path: PathCondition,
    /// Range constraints backing feasibility checks for π.
    pub constraints: ConstraintManager,
    /// Taint of each region (τΔ restricted to memory).
    pub taints: TaintMap<Region>,
    /// Taint of the path condition (τΔ\[π\] in the paper's semantics).
    pub pi_taint: TaintSet,
    /// Declassification events recorded on this path so far (persistent —
    /// forked siblings share the common prefix).
    pub events: Vector<DeclassifyEvent>,
    /// Every region written on this path, in order (drives loop widening).
    /// Persistent — forked siblings share the common prefix.
    pub write_log: Vector<Region>,
    /// Statements interpreted so far (budget accounting).
    pub steps: usize,
    /// The call stack (frame 0 = entry function).
    pub frames: Vec<Frame>,
    /// Recorded state snapshots (when tracing is enabled). Persistent —
    /// forked siblings share the common prefix.
    pub trace: Vector<crate::trace::TraceStep>,
    /// Next frame id to hand out for an inlined call on this path.
    ///
    /// Per-state (not global) so frame numbering depends only on the path's
    /// own history — a prerequisite for the worklist engine's determinism
    /// guarantee, since frame ids appear in rendered trace text.
    pub next_frame: u32,
    /// Next shadow-rename counter for re-declared locals on this path.
    pub next_shadow: u32,
    /// Base regions holding secret data on this path (entry parameters
    /// marked secret, plus regions written by configured source functions).
    pub secret_bases: BTreeSet<Region>,
    /// Tier-1 feasibility facts (interval/congruence per symbol),
    /// maintained incrementally alongside `constraints` when the run's
    /// [`crate::constraints::FeasibilityMode`] enables them. Empty — and
    /// absent from old checkpoints, hence the default — in syntactic mode.
    #[serde(default)]
    pub domain: crate::domain::AbstractDomain,
}

impl ExecState {
    /// Creates a pristine state. Frame id 0 is reserved for the entry
    /// function, so inlined callees start at 1.
    pub fn new() -> Self {
        ExecState {
            next_frame: 1,
            ..ExecState::default()
        }
    }

    /// The innermost call frame.
    ///
    /// # Panics
    ///
    /// Panics if no frame has been pushed (engine misuse).
    pub fn frame(&self) -> &Frame {
        self.frames.last().expect("at least one frame")
    }

    /// The innermost call frame, mutably.
    ///
    /// # Panics
    ///
    /// Panics if no frame has been pushed (engine misuse).
    pub fn frame_mut(&mut self) -> &mut Frame {
        self.frames.last_mut().expect("at least one frame")
    }

    /// Binds a region to a value with taint, recording the write.
    pub fn write(&mut self, region: Region, value: SVal, taint: TaintSet) {
        self.write_log.push(region.clone());
        self.taints.set(region.clone(), taint);
        self.store.bind(region, value);
    }

    /// The taint of a region (⊥ if never set).
    pub fn taint_of(&self, region: &Region) -> TaintSet {
        self.taints.get(region)
    }

    /// Whether `region` lies within any base marked secret on this path.
    ///
    /// Probes the region's base chain against the set directly —
    /// O(depth · log n) instead of a linear scan over every secret base.
    pub fn is_secret_region(&self, region: &Region) -> bool {
        let mut current = region;
        loop {
            if self.secret_bases.contains(current) {
                return true;
            }
            match current.parent() {
                Some(parent) => current = parent,
                None => return false,
            }
        }
    }

    /// Diagnostic: how much of this state's persistent structure is the
    /// *same allocation* as `other`'s — `(shared, total)` counts over the
    /// store, taint and environment tree nodes plus the frozen elements of
    /// the event/write/trace logs. A fresh fork shares everything
    /// (`shared == total`); each divergent write then unshares only an
    /// O(log n) path. Drives the bytes-shared ratio in `bench_fork_cost`.
    pub fn shared_allocations(&self, other: &ExecState) -> (usize, usize) {
        let mut shared = 0;
        let mut total = 0;
        for (s, t) in [
            self.store.sharing(&other.store),
            self.taints.sharing(&other.taints),
            self.env.sharing(&other.env),
        ] {
            shared += s;
            total += t;
        }
        shared += self.events.shared_len(&other.events)
            + self.write_log.shared_len(&other.write_log)
            + self.trace.shared_len(&other.trace);
        total += self.events.len() + self.write_log.len() + self.trace.len();
        (shared, total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Symbol;
    use taint::SourceId;

    fn var(name: &str) -> Region {
        Region::Var {
            frame: 0,
            name: name.into(),
        }
    }

    #[test]
    fn environment_bindings() {
        let mut env = Environment::new();
        env.bind(ExprId(3), var("x"));
        assert_eq!(env.region_of(ExprId(3)), Some(&var("x")));
        assert_eq!(env.region_of(ExprId(4)), None);
        assert_eq!(env.len(), 1);
    }

    #[test]
    fn store_bind_and_lookup() {
        let mut store = Store::new();
        assert!(store.bind(var("x"), SVal::Int(3)).is_none());
        assert_eq!(store.lookup(&var("x")), Some(&SVal::Int(3)));
        assert_eq!(store.bind(var("x"), SVal::Int(4)), Some(SVal::Int(3)));
        assert_eq!(store.unbind(&var("x")), Some(SVal::Int(4)));
        assert!(store.is_empty());
    }

    #[test]
    fn regions_within_filters_subregions() {
        let base = Region::Sym {
            symbol: Symbol::new(0, "buf"),
        };
        let elem0 = Region::element(base.clone(), SVal::Int(0));
        let mut store = Store::new();
        store.bind(elem0.clone(), SVal::Int(9));
        store.bind(var("x"), SVal::Int(1));
        let within: Vec<_> = store.regions_within(&base).collect();
        assert_eq!(within.len(), 1);
        assert_eq!(within[0].0, &elem0);
    }

    #[test]
    fn state_write_records_log_and_taint() {
        let mut state = ExecState::new();
        let ts = TaintSet::source(SourceId::new(1));
        state.write(var("h"), SVal::Int(5), ts.clone());
        assert_eq!(state.write_log.to_vec(), vec![var("h")]);
        assert_eq!(state.taint_of(&var("h")), ts);
        assert_eq!(state.store.lookup(&var("h")), Some(&SVal::Int(5)));
    }

    #[test]
    fn store_display_is_deterministic() {
        let mut store = Store::new();
        store.bind(var("b"), SVal::Int(2));
        store.bind(var("a"), SVal::Int(1));
        assert_eq!(store.to_string(), "{a ↦ 1, b ↦ 2}");
    }
}
