//! Engine error type.

use std::fmt;

use crate::checkpoint::CheckpointError;

/// Errors reported by the symbolic execution engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// The requested entry function does not exist or has no body.
    UnknownFunction(String),
    /// The number of parameter bindings does not match the signature.
    BindingArity {
        /// Entry function name.
        function: String,
        /// Parameters the function declares.
        expected: usize,
        /// Bindings supplied by the caller.
        got: usize,
    },
    /// A binding is incompatible with the parameter's type (e.g. a pointer
    /// binding for a scalar parameter).
    BindingType {
        /// Entry function name.
        function: String,
        /// Zero-based parameter index.
        index: usize,
        /// Why the binding does not fit.
        reason: String,
    },
    /// The exploration exceeded its path budget before finishing.
    ///
    /// Partial results are still available on the [`crate::Exploration`];
    /// this error is only returned when the caller opted into strict
    /// budgeting.
    PathBudgetExhausted {
        /// The configured budget.
        budget: usize,
    },
    /// A resume snapshot was rejected (stale, truncated, corrupt, or
    /// written for a different analysis). The run never starts — a bad
    /// snapshot must not produce a silently wrong result.
    Checkpoint(CheckpointError),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::UnknownFunction(name) => {
                write!(f, "no function definition named `{name}`")
            }
            EngineError::BindingArity {
                function,
                expected,
                got,
            } => write!(
                f,
                "`{function}` declares {expected} parameter(s) but {got} binding(s) were given"
            ),
            EngineError::BindingType {
                function,
                index,
                reason,
            } => write!(
                f,
                "binding for parameter {index} of `{function}` is invalid: {reason}"
            ),
            EngineError::PathBudgetExhausted { budget } => {
                write!(f, "exploration exceeded the path budget of {budget}")
            }
            EngineError::Checkpoint(e) => write!(f, "checkpoint: {e}"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<CheckpointError> for EngineError {
    fn from(e: CheckpointError) -> Self {
        EngineError::Checkpoint(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(EngineError::UnknownFunction("f".into())
            .to_string()
            .contains("`f`"));
        let err = EngineError::BindingArity {
            function: "g".into(),
            expected: 2,
            got: 1,
        };
        assert!(err.to_string().contains("2 parameter(s)"));
    }
}
