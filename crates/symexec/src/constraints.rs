//! Range-based constraint management and feasibility checking.
//!
//! This deliberately matches the power of Clang Static Analyzer's
//! `RangeConstraintManager` (the engine the paper's prototype runs on)
//! rather than an SMT solver: it tracks per-symbol integer intervals and
//! disequality sets, normalizes `±constant` terms, and answers "is this
//! fork still feasible?". Constraints it cannot represent are simply not
//! recorded — the fork stays feasible, which is sound for a *detector*
//! (never prunes a real path) at the cost of possible extra paths.

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::RwLock;

use minic::ast::{BinOp, UnOp};
use serde::{Deserialize, Serialize};

use crate::concrete::Assignment;
use crate::domain::AbstractDomain;
use crate::path::PathCondition;
use crate::solver::{self, Verdict};
use crate::value::SVal;

/// Outcome of adding an assumption.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Feasibility {
    /// The constraint set remains satisfiable (as far as the manager can
    /// tell).
    Feasible,
    /// The constraint set became contradictory; the path must be dropped.
    Infeasible,
}

/// How much feasibility machinery a run enables (`--feasibility=…`).
///
/// The tiers are strictly layered: each mode runs every cheaper tier
/// first and only escalates on "unknown", so a stronger mode can only
/// refute *more* branch sides, never fewer — and never a concretely
/// satisfiable one (each tier is sound for refutation).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum FeasibilityMode {
    /// Tier 0 only: the Clang-SA-faithful syntactic check above. The
    /// default — probe keys, counters, and reports are byte-identical to
    /// earlier releases.
    #[default]
    Syntactic,
    /// Tier 0 + Tier 1: interval/congruence abstract domain
    /// ([`crate::domain`]).
    Intervals,
    /// Tiers 0–2: also the SAT-lite DPLL solver ([`crate::solver`]) when
    /// the domain answers "unknown".
    Full,
}

impl FeasibilityMode {
    /// Parses a `--feasibility` flag value.
    pub fn parse(s: &str) -> Option<FeasibilityMode> {
        match s {
            "syntactic" => Some(FeasibilityMode::Syntactic),
            "intervals" => Some(FeasibilityMode::Intervals),
            "full" => Some(FeasibilityMode::Full),
            _ => None,
        }
    }

    /// The canonical flag spelling.
    pub fn as_str(&self) -> &'static str {
        match self {
            FeasibilityMode::Syntactic => "syntactic",
            FeasibilityMode::Intervals => "intervals",
            FeasibilityMode::Full => "full",
        }
    }
}

/// Which tier settled a feasibility probe — the unit the per-tier
/// `Stats`/profiler counters are denominated in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProbeOutcome {
    /// No tier could refute the branch side.
    Feasible,
    /// Tier 0 (syntactic range/disequality check) refuted it.
    RefutedSyntactic,
    /// Tier 1 (interval/congruence domain) refuted it.
    RefutedIntervals,
    /// Tier 2 (SAT-lite solver) refuted it.
    RefutedSolver,
    /// Tier 2 ran and exhausted its budget; treated as feasible.
    SolverUnknown,
}

impl ProbeOutcome {
    /// Collapses the outcome to the engine's two-valued answer.
    pub fn feasibility(&self) -> Feasibility {
        match self {
            ProbeOutcome::Feasible | ProbeOutcome::SolverUnknown => Feasibility::Feasible,
            _ => Feasibility::Infeasible,
        }
    }
}

/// The layered feasibility pipeline: syntactic → interval/congruence →
/// SAT-lite → assume-feasible. A pure function of its arguments, so it
/// memoizes and parallelizes freely.
pub fn probe_pipeline(
    mode: FeasibilityMode,
    cm: &ConstraintManager,
    domain: &AbstractDomain,
    path: &PathCondition,
    cond: &SVal,
    truth: bool,
) -> ProbeOutcome {
    // Tier 0: the syntactic check is the cheapest and also what the
    // committed `assume` will replay, so it always runs first.
    if cm.clone().assume(cond, truth) == Feasibility::Infeasible {
        return ProbeOutcome::RefutedSyntactic;
    }
    if mode == FeasibilityMode::Syntactic {
        return ProbeOutcome::Feasible;
    }
    // Tier 1: refine a clone of the per-path abstract domain.
    if domain.clone().assume(cond, truth) == Feasibility::Infeasible {
        return ProbeOutcome::RefutedIntervals;
    }
    if mode == FeasibilityMode::Intervals {
        return ProbeOutcome::Feasible;
    }
    // Tier 2: SAT-lite over π ∧ cond with a deterministic budget.
    match solver::check_path(path, cond, truth, domain, solver::Budget::default()) {
        Verdict::Unsat => ProbeOutcome::RefutedSolver,
        Verdict::Unknown => ProbeOutcome::SolverUnknown,
        Verdict::Sat => ProbeOutcome::Feasible,
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
struct Range {
    lo: i128,
    hi: i128,
}

impl Range {
    fn full() -> Range {
        Range {
            lo: i64::MIN as i128,
            hi: i64::MAX as i128,
        }
    }

    fn is_empty(&self) -> bool {
        self.lo > self.hi
    }
}

/// Tracks per-symbol ranges and disequalities; cloned on every fork.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ConstraintManager {
    ranges: BTreeMap<u32, Range>,
    diseqs: BTreeMap<u32, BTreeSet<i64>>,
}

impl ConstraintManager {
    /// Creates an unconstrained manager.
    pub fn new() -> Self {
        ConstraintManager::default()
    }

    /// Assumes `cond` is non-zero (`truth = true`) or zero (`false`),
    /// returning whether the accumulated constraints remain satisfiable.
    pub fn assume(&mut self, cond: &SVal, truth: bool) -> Feasibility {
        match cond {
            SVal::Int(v) => {
                if (*v != 0) == truth {
                    Feasibility::Feasible
                } else {
                    Feasibility::Infeasible
                }
            }
            SVal::Float(v) => {
                if (v.0 != 0.0) == truth {
                    Feasibility::Feasible
                } else {
                    Feasibility::Infeasible
                }
            }
            SVal::Unary { op: UnOp::Not, arg } => self.assume(arg, !truth),
            SVal::Binary { op, lhs, rhs } => self.assume_binary(*op, lhs, rhs, truth),
            SVal::Sym(sym) => {
                // `if (s)` — s != 0 when taken, s == 0 otherwise.
                if truth {
                    self.add_diseq(sym.id, 0)
                } else {
                    self.add_eq(sym.id, 0)
                }
            }
            // Pointers, calls, unknowns: unconstrained.
            _ => Feasibility::Feasible,
        }
    }

    fn assume_binary(&mut self, op: BinOp, lhs: &SVal, rhs: &SVal, truth: bool) -> Feasibility {
        match (op, truth) {
            (BinOp::LogAnd, true) | (BinOp::LogOr, false) => {
                // conjunction: both sides constrained
                let first = self.assume(lhs, op == BinOp::LogAnd);
                if first == Feasibility::Infeasible {
                    return first;
                }
                self.assume(rhs, op == BinOp::LogAnd)
            }
            (BinOp::LogAnd, false) | (BinOp::LogOr, true) => {
                // disjunction: representable only if one side is constant
                Feasibility::Feasible
            }
            _ if op.is_comparison() => {
                let op = if truth { op } else { negate_cmp(op) };
                // Try `expr cmp const` in both orientations.
                if let Some(c) = const_of(rhs) {
                    if let Some((sym, offset)) = linear_sym(lhs) {
                        return self.apply_cmp(sym, op, c as i128 - offset);
                    }
                }
                if let Some(c) = const_of(lhs) {
                    if let Some((sym, offset)) = linear_sym(rhs) {
                        return self.apply_cmp(sym, flip_cmp(op), c as i128 - offset);
                    }
                }
                Feasibility::Feasible
            }
            _ => Feasibility::Feasible,
        }
    }

    fn apply_cmp(&mut self, sym: u32, op: BinOp, c: i128) -> Feasibility {
        match op {
            BinOp::Lt => self.narrow(sym, i64::MIN as i128, c - 1),
            BinOp::Le => self.narrow(sym, i64::MIN as i128, c),
            BinOp::Gt => self.narrow(sym, c + 1, i64::MAX as i128),
            BinOp::Ge => self.narrow(sym, c, i64::MAX as i128),
            BinOp::Eq => {
                if let Ok(v) = i64::try_from(c) {
                    self.add_eq(sym, v)
                } else {
                    Feasibility::Infeasible
                }
            }
            BinOp::Ne => {
                if let Ok(v) = i64::try_from(c) {
                    self.add_diseq(sym, v)
                } else {
                    Feasibility::Feasible
                }
            }
            _ => Feasibility::Feasible,
        }
    }

    fn narrow(&mut self, sym: u32, lo: i128, hi: i128) -> Feasibility {
        let range = self.ranges.entry(sym).or_insert_with(Range::full);
        range.lo = range.lo.max(lo);
        range.hi = range.hi.min(hi);
        if range.is_empty() {
            return Feasibility::Infeasible;
        }
        self.check_sym(sym)
    }

    fn add_eq(&mut self, sym: u32, v: i64) -> Feasibility {
        if self.diseqs.get(&sym).is_some_and(|set| set.contains(&v)) {
            return Feasibility::Infeasible;
        }
        self.narrow(sym, v as i128, v as i128)
    }

    fn add_diseq(&mut self, sym: u32, v: i64) -> Feasibility {
        self.diseqs.entry(sym).or_default().insert(v);
        self.check_sym(sym)
    }

    /// Re-checks a symbol after an update: a range collapsed onto its
    /// disequalities is contradictory.
    fn check_sym(&mut self, sym: u32) -> Feasibility {
        let Some(range) = self.ranges.get(&sym) else {
            return Feasibility::Feasible;
        };
        if range.is_empty() {
            return Feasibility::Infeasible;
        }
        if let Some(diseqs) = self.diseqs.get(&sym) {
            // Only decidable cheaply when the range is small.
            let width = range.hi - range.lo;
            if width <= diseqs.len() as i128 {
                let all_excluded = (range.lo..=range.hi).all(|v| {
                    i64::try_from(v)
                        .map(|v| diseqs.contains(&v))
                        .unwrap_or(false)
                });
                if all_excluded {
                    return Feasibility::Infeasible;
                }
            }
        }
        Feasibility::Feasible
    }

    /// The currently known value of a symbol, if its range is a singleton.
    pub fn known_value(&self, sym: u32) -> Option<i64> {
        let range = self.ranges.get(&sym)?;
        if range.lo == range.hi {
            i64::try_from(range.lo).ok()
        } else {
            None
        }
    }

    /// Rewrites every constrained symbol id through `f`.
    ///
    /// Used by the worklist engine's deterministic merge to translate
    /// task-local symbol ids into the global numbering. `f` must be
    /// injective over the recorded ids or constraints would collide.
    pub(crate) fn remap_symbols<F: Fn(u32) -> u32>(&mut self, f: &F) {
        self.ranges = std::mem::take(&mut self.ranges)
            .into_iter()
            .map(|(sym, range)| (f(sym), range))
            .collect();
        self.diseqs = std::mem::take(&mut self.diseqs)
            .into_iter()
            .map(|(sym, set)| (f(sym), set))
            .collect();
    }

    /// Produces a concrete assignment satisfying the recorded constraints
    /// for the given symbols (best effort; constraints the manager did not
    /// record are not reflected).
    pub fn model(&self, symbols: &BTreeSet<u32>) -> Assignment {
        let mut out = Assignment::new();
        for &sym in symbols {
            let range = self.ranges.get(&sym).copied().unwrap_or_else(Range::full);
            let empty = BTreeSet::new();
            let diseqs = self.diseqs.get(&sym).unwrap_or(&empty);
            // Prefer small non-negative witnesses.
            let mut candidates = (0..=64).map(i128::from).collect::<Vec<_>>();
            candidates.push(range.lo);
            candidates.push(range.hi);
            let pick = candidates
                .into_iter()
                .filter(|v| *v >= range.lo && *v <= range.hi)
                .find(|v| {
                    i64::try_from(*v)
                        .map(|v64| !diseqs.contains(&v64))
                        .unwrap_or(false)
                })
                .unwrap_or(range.lo.max(i64::MIN as i128));
            out.insert(sym, i64::try_from(pick).unwrap_or(0));
        }
        out
    }
}

/// One memoized probe: the full key (for exact verification on a digest
/// hit) and the tier outcome. `domain`/`path` stay empty in
/// [`FeasibilityMode::Syntactic`] (they are not part of that mode's key).
#[derive(Debug)]
struct CacheEntry {
    cm: ConstraintManager,
    domain: AbstractDomain,
    path: PathCondition,
    cond: SVal,
    truth: bool,
    outcome: ProbeOutcome,
}

#[derive(Debug, Default)]
struct CacheInner {
    /// Probes bucketed by their FNV probe-key digest (the same digest the
    /// engine logs for deterministic hit/miss accounting). Digest
    /// collisions are tolerated: a bucket holds every distinct triple that
    /// hashed to it, and hits verify structurally.
    buckets: HashMap<u64, Vec<CacheEntry>>,
    /// Total entries across all buckets (capacity accounting).
    len: usize,
}

/// Memoizes the tiered feasibility pipeline across path states and worker
/// threads.
///
/// Probes are bucketed by their 64-bit probe-key digest
/// ([`crate::checkpoint::probe_key_tiered`]) — the digest the engine has
/// already computed for its deterministic hit/miss counters, so the common
/// path hashes the constraint set exactly once. A digest hit is verified
/// structurally against the stored key *by reference* — no clone is taken
/// to look up — so a hit can never alias two different probes; the key is
/// cloned only when a miss inserts. The `RwLock`/`HashMap` pair (imported
/// at the top of this file) exists solely for this cache: many engine
/// workers probe concurrently under the read lock, and only misses briefly
/// take the write lock.
///
/// There is no separate syntactic pre-check in front of the cache anymore:
/// the syntactic check is simply tier 0 of [`probe_pipeline`], which runs
/// behind the memo table like every other tier. The engine only consults
/// the cache for *speculative* checks (fork pre-probes, loop concreteness
/// probes) whose constraint sets are discarded afterwards; committed
/// `assume` calls still execute directly so their narrowing is recorded in
/// the path state. Because the pipeline is a pure function of the key,
/// caching never changes results — only wall-clock.
#[derive(Debug)]
pub struct FeasibilityCache {
    entries: RwLock<CacheInner>,
    capacity: usize,
}

impl FeasibilityCache {
    /// Creates a cache holding at most `capacity` memoized probes.
    /// A capacity of 0 disables memoization entirely.
    pub fn new(capacity: usize) -> FeasibilityCache {
        FeasibilityCache {
            entries: RwLock::new(CacheInner::default()),
            capacity,
        }
    }

    /// Returns the feasibility of assuming `cond == truth` under `cm` in
    /// [`FeasibilityMode::Syntactic`], memoizing the (pure) computation.
    ///
    /// Computes the probe digest itself; the engine (which already holds a
    /// digest and a full path state) uses [`Self::check_outcome`].
    pub fn check(&self, cm: &ConstraintManager, cond: &SVal, truth: bool) -> Feasibility {
        let digest = crate::checkpoint::probe_key(cm, cond, truth);
        self.check_outcome(
            digest,
            FeasibilityMode::Syntactic,
            cm,
            &AbstractDomain::new(),
            &PathCondition::new(),
            cond,
            truth,
        )
        .feasibility()
    }

    /// Runs the tiered pipeline for `cond == truth`, with the probe digest
    /// supplied by the caller (avoiding a second hash of the constraint
    /// set), and memoizes the per-tier outcome.
    ///
    /// `domain` and `path` are only part of the key when `mode` enables
    /// the tiers that read them — in [`FeasibilityMode::Syntactic`] the
    /// lookup is byte-compatible with earlier releases.
    #[allow(clippy::too_many_arguments)]
    pub fn check_outcome(
        &self,
        digest: u64,
        mode: FeasibilityMode,
        cm: &ConstraintManager,
        domain: &AbstractDomain,
        path: &PathCondition,
        cond: &SVal,
        truth: bool,
    ) -> ProbeOutcome {
        if self.capacity == 0 {
            return probe_pipeline(mode, cm, domain, path, cond, truth);
        }
        let tiered = mode != FeasibilityMode::Syntactic;
        if let Ok(inner) = self.entries.read() {
            if let Some(bucket) = inner.buckets.get(&digest) {
                for entry in bucket {
                    if entry.truth == truth
                        && entry.cond == *cond
                        && entry.cm == *cm
                        && (!tiered || (entry.domain == *domain && entry.path == *path))
                    {
                        return entry.outcome;
                    }
                }
            }
        }
        let outcome = probe_pipeline(mode, cm, domain, path, cond, truth);
        if let Ok(mut inner) = self.entries.write() {
            if inner.len < self.capacity {
                inner.len += 1;
                inner.buckets.entry(digest).or_default().push(CacheEntry {
                    cm: cm.clone(),
                    domain: if tiered {
                        domain.clone()
                    } else {
                        AbstractDomain::new()
                    },
                    path: if tiered {
                        path.clone()
                    } else {
                        PathCondition::new()
                    },
                    cond: cond.clone(),
                    truth,
                    outcome,
                });
            }
        }
        outcome
    }

    /// Number of memoized probes currently held.
    pub fn len(&self) -> usize {
        self.entries.read().map(|e| e.len).unwrap_or(0)
    }

    /// Whether the cache holds no memoized probes.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

pub(crate) fn negate_cmp(op: BinOp) -> BinOp {
    match op {
        BinOp::Lt => BinOp::Ge,
        BinOp::Le => BinOp::Gt,
        BinOp::Gt => BinOp::Le,
        BinOp::Ge => BinOp::Lt,
        BinOp::Eq => BinOp::Ne,
        BinOp::Ne => BinOp::Eq,
        other => other,
    }
}

pub(crate) fn flip_cmp(op: BinOp) -> BinOp {
    match op {
        BinOp::Lt => BinOp::Gt,
        BinOp::Le => BinOp::Ge,
        BinOp::Gt => BinOp::Lt,
        BinOp::Ge => BinOp::Le,
        other => other,
    }
}

pub(crate) fn const_of(sval: &SVal) -> Option<i64> {
    sval.as_int()
}

/// Matches `sym (± const)*`, returning the symbol id and accumulated offset
/// such that the expression equals `sym + offset`.
///
/// Deliberately *not* handling multiplication: `2·s == 19` must stay
/// unconstrained rather than be refuted by divisibility — the paper's
/// engine explores that branch (Table III) and so do we.
fn linear_sym(sval: &SVal) -> Option<(u32, i128)> {
    match sval {
        SVal::Sym(sym) => Some((sym.id, 0)),
        SVal::Binary { op, lhs, rhs } => match op {
            BinOp::Add => {
                if let Some(c) = const_of(rhs) {
                    let (sym, off) = linear_sym(lhs)?;
                    Some((sym, off + c as i128))
                } else if let Some(c) = const_of(lhs) {
                    let (sym, off) = linear_sym(rhs)?;
                    Some((sym, off + c as i128))
                } else {
                    None
                }
            }
            BinOp::Sub => {
                let c = const_of(rhs)?;
                let (sym, off) = linear_sym(lhs)?;
                Some((sym, off - c as i128))
            }
            _ => None,
        },
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Symbol;

    fn s(id: u32) -> SVal {
        SVal::Sym(Symbol::new(id, format!("s{id}")))
    }

    fn cmp(op: BinOp, lhs: SVal, rhs: SVal) -> SVal {
        SVal::binary(op, lhs, rhs)
    }

    #[test]
    fn contradictory_ranges_are_infeasible() {
        let mut cm = ConstraintManager::new();
        assert_eq!(
            cm.assume(&cmp(BinOp::Gt, s(1), SVal::Int(10)), true),
            Feasibility::Feasible
        );
        assert_eq!(
            cm.assume(&cmp(BinOp::Lt, s(1), SVal::Int(5)), true),
            Feasibility::Infeasible
        );
    }

    #[test]
    fn negation_flips_the_comparison() {
        let mut cm = ConstraintManager::new();
        // !(s < 5)  ⇒  s >= 5
        assert_eq!(
            cm.assume(&cmp(BinOp::Lt, s(1), SVal::Int(5)), false),
            Feasibility::Feasible
        );
        assert_eq!(
            cm.assume(&cmp(BinOp::Eq, s(1), SVal::Int(3)), true),
            Feasibility::Infeasible
        );
    }

    #[test]
    fn equality_then_disequality_conflicts() {
        let mut cm = ConstraintManager::new();
        cm.assume(&cmp(BinOp::Eq, s(1), SVal::Int(7)), true);
        assert_eq!(cm.known_value(1), Some(7));
        assert_eq!(
            cm.assume(&cmp(BinOp::Ne, s(1), SVal::Int(7)), true),
            Feasibility::Infeasible
        );
    }

    #[test]
    fn disequality_then_equality_conflicts() {
        let mut cm = ConstraintManager::new();
        cm.assume(&cmp(BinOp::Ne, s(1), SVal::Int(7)), true);
        assert_eq!(
            cm.assume(&cmp(BinOp::Eq, s(1), SVal::Int(7)), true),
            Feasibility::Infeasible
        );
        assert_eq!(
            cm.assume(&cmp(BinOp::Eq, s(1), SVal::Int(8)), true),
            Feasibility::Feasible
        );
    }

    #[test]
    fn offset_normalization() {
        let mut cm = ConstraintManager::new();
        // (s + 5) == 14  ⇒  s == 9
        let e = cmp(
            BinOp::Eq,
            SVal::binary(BinOp::Add, s(1), SVal::Int(5)),
            SVal::Int(14),
        );
        cm.assume(&e, true);
        assert_eq!(cm.known_value(1), Some(9));
        // (s - 3) > 0  ⇒  s > 3 — consistent
        let e2 = cmp(
            BinOp::Gt,
            SVal::binary(BinOp::Sub, s(1), SVal::Int(3)),
            SVal::Int(0),
        );
        assert_eq!(cm.assume(&e2, true), Feasibility::Feasible);
    }

    #[test]
    fn flipped_orientation() {
        let mut cm = ConstraintManager::new();
        // 5 > s ⇒ s < 5
        cm.assume(&cmp(BinOp::Gt, SVal::Int(5), s(1)), true);
        assert_eq!(
            cm.assume(&cmp(BinOp::Ge, s(1), SVal::Int(5)), true),
            Feasibility::Infeasible
        );
    }

    #[test]
    fn multiplication_is_not_refuted() {
        // 2*s == 19 has no integer solution, but the manager must stay
        // Clang-SA-faithful and keep the branch alive (paper Table III).
        let mut cm = ConstraintManager::new();
        let e = cmp(
            BinOp::Eq,
            SVal::binary(BinOp::Mul, SVal::Int(2), s(1)),
            SVal::Int(19),
        );
        assert_eq!(cm.assume(&e, true), Feasibility::Feasible);
    }

    #[test]
    fn conjunctions_decompose() {
        let mut cm = ConstraintManager::new();
        let e = SVal::binary(
            BinOp::LogAnd,
            cmp(BinOp::Gt, s(1), SVal::Int(0)),
            cmp(BinOp::Lt, s(1), SVal::Int(0)),
        );
        assert_eq!(cm.assume(&e, true), Feasibility::Infeasible);
    }

    #[test]
    fn negated_disjunction_decomposes() {
        let mut cm = ConstraintManager::new();
        // !(s < 0 || s > 10)  ⇒  0 <= s <= 10
        let e = SVal::binary(
            BinOp::LogOr,
            cmp(BinOp::Lt, s(1), SVal::Int(0)),
            cmp(BinOp::Gt, s(1), SVal::Int(10)),
        );
        assert_eq!(cm.assume(&e, false), Feasibility::Feasible);
        assert_eq!(
            cm.assume(&cmp(BinOp::Eq, s(1), SVal::Int(11)), true),
            Feasibility::Infeasible
        );
    }

    #[test]
    fn bare_symbol_condition() {
        let mut cm = ConstraintManager::new();
        assert_eq!(cm.assume(&s(1), false), Feasibility::Feasible); // s == 0
        assert_eq!(cm.known_value(1), Some(0));
        assert_eq!(cm.assume(&s(1), true), Feasibility::Infeasible); // s != 0
    }

    #[test]
    fn constants_decide_immediately() {
        let mut cm = ConstraintManager::new();
        assert_eq!(cm.assume(&SVal::Int(1), true), Feasibility::Feasible);
        assert_eq!(cm.assume(&SVal::Int(0), true), Feasibility::Infeasible);
        assert_eq!(cm.assume(&SVal::Int(0), false), Feasibility::Feasible);
    }

    #[test]
    fn model_respects_constraints() {
        let mut cm = ConstraintManager::new();
        cm.assume(&cmp(BinOp::Ge, s(1), SVal::Int(10)), true);
        cm.assume(&cmp(BinOp::Ne, s(1), SVal::Int(10)), true);
        let mut syms = BTreeSet::new();
        syms.insert(1);
        let model = cm.model(&syms);
        let v = model[&1];
        assert!(v > 10, "bad witness {v}");
    }

    #[test]
    fn remap_symbols_translates_constraint_keys() {
        let mut cm = ConstraintManager::new();
        cm.assume(&cmp(BinOp::Ge, s(7), SVal::Int(3)), true);
        cm.assume(&cmp(BinOp::Ne, s(8), SVal::Int(0)), true);
        cm.remap_symbols(&|id| id + 100);
        assert_eq!(cm.known_value(7), None);
        assert_eq!(
            cm.assume(&cmp(BinOp::Lt, s(107), SVal::Int(3)), true),
            Feasibility::Infeasible
        );
        assert_eq!(
            cm.assume(&cmp(BinOp::Eq, s(108), SVal::Int(0)), true),
            Feasibility::Infeasible
        );
    }

    #[test]
    fn feasibility_cache_agrees_with_direct_assume() {
        let cache = FeasibilityCache::new(64);
        let mut cm = ConstraintManager::new();
        cm.assume(&cmp(BinOp::Gt, s(1), SVal::Int(10)), true);
        let cond = cmp(BinOp::Lt, s(1), SVal::Int(5));
        // Miss, then hit — both must match the uncached answer.
        for _ in 0..2 {
            assert_eq!(cache.check(&cm, &cond, true), Feasibility::Infeasible);
            assert_eq!(cache.check(&cm, &cond, false), Feasibility::Feasible);
        }
        assert_eq!(cache.len(), 2);
        // The probe must not have mutated the manager.
        assert_eq!(cm.clone().assume(&cond, true), Feasibility::Infeasible);
    }

    #[test]
    fn feasibility_cache_capacity_caps_inserts() {
        let cache = FeasibilityCache::new(1);
        let cm = ConstraintManager::new();
        cache.check(&cm, &cmp(BinOp::Gt, s(1), SVal::Int(0)), true);
        cache.check(&cm, &cmp(BinOp::Gt, s(2), SVal::Int(0)), true);
        assert_eq!(cache.len(), 1);
        let disabled = FeasibilityCache::new(0);
        disabled.check(&cm, &cmp(BinOp::Gt, s(1), SVal::Int(0)), true);
        assert!(disabled.is_empty());
    }

    #[test]
    fn small_range_fully_excluded_is_infeasible() {
        let mut cm = ConstraintManager::new();
        cm.assume(&cmp(BinOp::Ge, s(1), SVal::Int(0)), true);
        cm.assume(&cmp(BinOp::Le, s(1), SVal::Int(1)), true);
        cm.assume(&cmp(BinOp::Ne, s(1), SVal::Int(0)), true);
        assert_eq!(
            cm.assume(&cmp(BinOp::Ne, s(1), SVal::Int(1)), true),
            Feasibility::Infeasible
        );
    }
}
