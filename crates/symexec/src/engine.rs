//! The symbolic exploration engine.
//!
//! [`Engine::run`] abstractly interprets one entry function of a Mini-C
//! unit, forking at branches and returning every feasible completed path.
//! Taint is introduced at secret parameters (per the entry's
//! [`ParamBinding`]s) and at configured *source functions* (the paper's
//! predefined decrypt list), propagated per the `taint` crate's policy, and
//! joined into the path-condition taint at every fork (the `P_cond` rule).
//!
//! Exploration is organized as a deterministic *worklist*: the entry body
//! is executed one top-level statement per wave, with every live path state
//! handed to an independent task that may run on a worker thread
//! ([`EngineConfig::workers`]). Tasks mint ids from a private namespace and
//! are merged back in canonical order, so the resulting [`Exploration`] is
//! byte-identical to a sequential run — see the `worklist` module.

use std::collections::{BTreeMap, BTreeSet};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::time::{Duration, Instant};

use minic::ast::{
    BinOp, Expr, ExprKind, Function, Init, Stmt, StmtKind, TranslationUnit, UnOp, VarDecl,
};
use minic::types::Type;
use minic::Span;
use serde::{Deserialize, Serialize};
use taint::{SourceId, TaintSet};
use telemetry::{FieldValue, PendingSpan, Telemetry};

use crate::checkpoint::{self, Frontier, Snapshot};
use crate::constraints::{Feasibility, FeasibilityCache, FeasibilityMode, ProbeOutcome};
use crate::degrade::{CancelToken, Degradation, Ledger, StopKind, Supervisor, YieldToken};
use crate::error::EngineError;
use crate::intern::HC;
use crate::profile::Profile;
use crate::simplify::{fold_binary, fold_unary, simplify};
use crate::state::{Channel, DeclassifyEvent, ExecState, Frame};
use crate::trace::TraceStep;
use crate::value::{Region, SVal, Symbol};
use crate::worklist::{run_tasks, IdRemap, LOCAL_ID_BASE};

/// How an entry-function parameter is bound at the start of exploration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParamBinding {
    /// An unconstrained, non-secret scalar (a *low* input).
    Scalar,
    /// A secret scalar: reads taint with a fresh source (a *high* input).
    SecretScalar,
    /// A pointer to an unknown, non-secret block.
    Pointer,
    /// A pointer to secret data (an `[in]` ECALL buffer): each element read
    /// mints a fresh taint source, matching `get_secret` per element.
    SecretPointer,
    /// A pointer to an observable output buffer (an `[out]` ECALL buffer).
    OutPointer,
    /// Both secret input and observable output (`[in, out]`).
    InOutPointer,
    /// A concrete integer value.
    Concrete(i64),
}

/// Engine tuning knobs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EngineConfig {
    /// Maximum *symbolic* loop unrollings (iterations whose guard truly
    /// forked) before havoc-widening forces an exit.
    pub loop_bound: usize,
    /// Maximum *concrete* loop iterations (guard decided without forking)
    /// before widening — a termination backstop, not a precision knob.
    pub concrete_loop_limit: usize,
    /// Maximum number of completed paths to collect.
    pub max_paths: usize,
    /// Maximum interpreted statements per path.
    pub max_steps_per_path: usize,
    /// Maximum call-inlining depth; deeper calls become uninterpreted.
    pub inline_depth: usize,
    /// Functions whose arguments are observable sinks (e.g. OCALLs).
    pub sink_functions: BTreeSet<String>,
    /// Decrypt-style functions: their result (and first pointed-to buffer)
    /// becomes fresh secret data — the paper's predefined IPP decrypt list.
    pub source_functions: BTreeSet<String>,
    /// Capture per-statement state snapshots (Table IV traces).
    pub record_trace: bool,
    /// Maximum node count of a stored symbolic value; larger values are
    /// *summarized* into a fresh symbol that keeps the original taint.
    /// Bounds expression growth in iterative numeric code (e.g. gradient
    /// descent) at the cost of value precision — taint precision is
    /// unaffected, which is what the nonreversibility policy needs.
    pub max_value_size: usize,
    /// Worker threads for the worklist exploration: `0` selects the
    /// machine's available parallelism, `1` forces a fully sequential run
    /// (the legacy behaviour). The exploration result is byte-identical at
    /// every setting — parallelism only changes wall-clock time.
    pub workers: usize,
    /// Capacity (in memoized probes) of the feasibility cache shared across
    /// workers; `0` disables memoization. Caching never changes results:
    /// only *speculative* probes go through it, and feasibility is a pure
    /// function of the probed constraints.
    pub feasibility_cache: usize,
    /// Which feasibility tiers run at each fork probe
    /// (`--feasibility=syntactic|intervals|full`). Stronger modes refute
    /// more infeasible branch sides before they consume steps; every tier
    /// is sound for refutation and deterministic, so findings are
    /// identical across modes and worker counts. Part of the checkpoint
    /// fingerprint when non-default.
    pub feasibility: FeasibilityMode,
    /// Wall-clock deadline for the whole exploration. When it expires, the
    /// run stops at the first wave boundary after the deadline: every
    /// in-flight path is discarded and recorded in the degradation ledger
    /// ([`Degradation::DeadlineExceeded`]). Only *which wave* is the cut
    /// depends on timing — the result is a pure function of the cut wave,
    /// so a deadline-degraded run is still byte-identical at every worker
    /// count for the same cutoff.
    pub deadline: Option<Duration>,
    /// Cooperative cancellation: keep a clone of this token and call
    /// [`CancelToken::cancel`] to stop the run at the next wave boundary
    /// (recorded as [`Degradation::Cancelled`]).
    pub cancel: CancelToken,
    /// Cooperative suspension: keep a clone of this token and call
    /// [`YieldToken::request`] to park the run at the next wave boundary.
    /// The frontier is snapshotted to [`EngineConfig::checkpoint`] and the
    /// cut is recorded as [`Degradation::Suspended`]; resuming the snapshot
    /// later reconstructs the byte-identical uninterrupted result (job
    /// migration). Like the cancel token this is control plumbing, not
    /// configuration: all handles compare equal and the checkpoint
    /// fingerprint ignores it.
    pub yield_hook: YieldToken,
    /// Test/fault-injection hook: panic on entry to calls of this function,
    /// exercising the per-task panic isolation. `None` in production.
    pub inject_panic_on_call: Option<String>,
    /// Write a resumable [`Snapshot`] to this path when the supervisor
    /// stops the run (deadline/cancel), and — see
    /// [`EngineConfig::checkpoint_every`] — periodically at wave
    /// boundaries. `None` disables checkpointing entirely. A failed write
    /// never aborts the exploration; it lands in the ledger as
    /// [`Degradation::CheckpointFailed`].
    pub checkpoint: Option<PathBuf>,
    /// Additionally write a snapshot at the start of every `N`th wave
    /// (crash insurance against process death, not just clean supervisor
    /// stops). `0` = only on a supervisor stop. Ignored unless
    /// [`EngineConfig::checkpoint`] is set.
    pub checkpoint_every: usize,
    /// Observation channel for spans, events, metrics, and logs. Like the
    /// cancellation token, the handle is control plumbing rather than
    /// configuration: all handles compare equal, the checkpoint fingerprint
    /// ignores it, and instrumentation never feeds wall-clock data back
    /// into the exploration result. The disabled default costs one `None`
    /// check at wave granularity and nothing in the per-step hot loop.
    pub telemetry: Telemetry,
    /// Span id the engine's wave spans are parented under (the analyzer
    /// passes its `explore` phase span). Purely observational.
    pub telemetry_parent: Option<u64>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            loop_bound: 4,
            concrete_loop_limit: 4096,
            max_paths: 4096,
            max_steps_per_path: 200_000,
            inline_depth: 8,
            sink_functions: BTreeSet::new(),
            source_functions: BTreeSet::new(),
            record_trace: false,
            max_value_size: 64,
            workers: 0,
            feasibility_cache: 1 << 16,
            feasibility: FeasibilityMode::default(),
            deadline: None,
            cancel: CancelToken::new(),
            yield_hook: YieldToken::new(),
            inject_panic_on_call: None,
            checkpoint: None,
            checkpoint_every: 0,
            telemetry: Telemetry::disabled(),
            telemetry_parent: None,
        }
    }
}

impl EngineConfig {
    /// The worker-thread count a run will actually use: `0` resolves to
    /// the machine's available parallelism, and explicit requests are
    /// clamped to it — asking for 512 workers on an 8-core box spawns 8.
    pub fn effective_workers(&self) -> usize {
        let available = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        if self.workers == 0 {
            available
        } else {
            self.workers.min(available)
        }
    }
}

/// One completed path.
#[derive(Debug, Clone, PartialEq)]
pub struct PathOutcome {
    /// The final state (store, π, taints, events, trace).
    pub state: ExecState,
    /// The entry function's return value on this path, with its taint.
    pub return_value: Option<(SVal, TaintSet)>,
}

/// Exploration statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Stats {
    /// State forks performed.
    pub forks: usize,
    /// Branches pruned as infeasible.
    pub infeasible: usize,
    /// Completed paths collected.
    pub completed: usize,
    /// Loop widenings applied.
    pub widenings: usize,
    /// Paths dropped for exceeding the per-path step budget.
    pub dropped_steps: usize,
    /// Paths dropped for exceeding the path budget.
    pub dropped_paths: usize,
    /// In-flight path states discarded at a deadline/cancellation cut.
    pub dropped_deadline: usize,
    /// Path tasks whose panic was isolated (their states discarded).
    pub dropped_panics: usize,
    /// Total statements interpreted.
    pub steps: usize,
    /// Feasibility probes answered by the memoized probe set: probes whose
    /// key a prior probe (in canonical merge order) already computed. This
    /// is the redundancy a sequential run would observe — it is accounted
    /// deterministically at wave boundaries and is therefore invariant
    /// under worker count *and* under the real cache's capacity (which is
    /// a scheduling-dependent performance detail; see `Explorer::probe`).
    #[serde(default)]
    pub cache_hits: usize,
    /// Feasibility probes with a first-seen key (the complement of
    /// [`Stats::cache_hits`]).
    #[serde(default)]
    pub cache_misses: usize,
    /// Branch sides refuted by Tier 1 (interval/congruence domain) after
    /// the syntactic tier passed. Always 0 in syntactic mode. Counted
    /// per probe *event* — the tier outcome is a pure function of the
    /// probe key, so the count is worker-count invariant.
    #[serde(default)]
    pub tier1_refuted: usize,
    /// Branch sides refuted by Tier 2 (the SAT-lite solver) after tiers
    /// 0–1 passed. Always 0 outside `full` mode.
    #[serde(default)]
    pub tier2_refuted: usize,
    /// Tier-2 invocations that exhausted their deterministic budget (the
    /// probe then counts as feasible).
    #[serde(default)]
    pub tier2_unknown: usize,
}

impl Stats {
    /// Adds another counter set into this one (worklist merge).
    pub fn absorb(&mut self, other: &Stats) {
        self.forks += other.forks;
        self.infeasible += other.infeasible;
        self.completed += other.completed;
        self.widenings += other.widenings;
        self.dropped_steps += other.dropped_steps;
        self.dropped_paths += other.dropped_paths;
        self.dropped_deadline += other.dropped_deadline;
        self.dropped_panics += other.dropped_panics;
        self.steps += other.steps;
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
        self.tier1_refuted += other.tier1_refuted;
        self.tier2_refuted += other.tier2_refuted;
        self.tier2_unknown += other.tier2_unknown;
    }
}

/// The result of exploring one entry function.
#[derive(Debug, Clone, PartialEq)]
pub struct Exploration {
    /// Entry function name.
    pub entry: String,
    /// Every feasible completed path.
    pub paths: Vec<PathOutcome>,
    /// Whether any budget was exhausted (results are then a subset).
    pub exhausted: bool,
    /// Every degradation the run absorbed, typed and coalesced; empty for
    /// a clean, complete exploration. See [`Ledger::is_complete`] for the
    /// soundness reading.
    pub ledger: Ledger,
    /// Counters.
    pub stats: Stats,
    /// `[out]`-marked base regions, with the parameter name each came from.
    pub out_bases: Vec<(String, Region)>,
    /// Every sink-call declassification event observed during exploration,
    /// including ones on paths later dropped by budgets (Alg. 1 checks at
    /// declassify time).
    pub events: Vec<DeclassifyEvent>,
    /// Human-readable description of every secret source minted.
    pub secret_sources: BTreeMap<SourceId, String>,
    /// The symbolic-variable id backing each secret source (for recovery-
    /// formula synthesis).
    pub source_symbols: BTreeMap<SourceId, u32>,
    /// Path of the last resumable snapshot written during this run (on a
    /// supervisor stop or a periodic boundary), `None` when checkpointing
    /// was disabled or nothing was written. Operators can feed it back via
    /// [`Engine::resume`].
    pub checkpoint: Option<PathBuf>,
    /// Per-source-site exploration profile: where the steps/forks/prunes
    /// were spent. Collected unconditionally (it is deterministic and
    /// observational — see [`crate::profile`]) and merged in canonical wave
    /// order, so it is byte-identical at every worker count.
    pub profile: Profile,
}

impl Exploration {
    /// Per-path traces (empty unless tracing was enabled).
    pub fn traces(&self) -> Vec<Vec<TraceStep>> {
        self.paths.iter().map(|p| p.state.trace.to_vec()).collect()
    }
}

/// A symbolic execution engine over one translation unit.
#[derive(Debug)]
pub struct Engine<'u> {
    unit: &'u TranslationUnit,
    config: EngineConfig,
    source: Option<String>,
}

impl<'u> Engine<'u> {
    /// Creates an engine for `unit` with the given configuration.
    pub fn new(unit: &'u TranslationUnit, config: EngineConfig) -> Self {
        Engine {
            unit,
            config,
            source: None,
        }
    }

    /// Attaches the original source text, enabling readable statement text
    /// in recorded traces.
    pub fn with_source(mut self, source: impl Into<String>) -> Self {
        self.source = Some(source.into());
        self
    }

    /// Explores `entry`, binding its parameters as described.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError`] if the entry function is missing, the
    /// binding list does not match the signature, or a binding is
    /// incompatible with the parameter type.
    pub fn run(&self, entry: &str, bindings: &[ParamBinding]) -> Result<Exploration, EngineError> {
        self.run_from(entry, bindings, None)
    }

    /// Continues an exploration from a [`Snapshot`] written by an earlier
    /// run with [`EngineConfig::checkpoint`] set. The final [`Exploration`]
    /// is byte-identical to an uninterrupted run of the same analysis, at
    /// any worker count.
    ///
    /// # Errors
    ///
    /// All of [`Engine::run`]'s conditions, plus
    /// [`EngineError::Checkpoint`] with
    /// [`CheckpointError::FingerprintMismatch`](crate::CheckpointError::FingerprintMismatch)
    /// when the snapshot was written for a different source, entry,
    /// bindings, or analysis-relevant configuration.
    pub fn resume(
        &self,
        entry: &str,
        bindings: &[ParamBinding],
        snapshot: Snapshot,
    ) -> Result<Exploration, EngineError> {
        self.run_from(entry, bindings, Some(snapshot))
    }

    fn run_from(
        &self,
        entry: &str,
        bindings: &[ParamBinding],
        resume: Option<Snapshot>,
    ) -> Result<Exploration, EngineError> {
        let func = self
            .unit
            .function(entry)
            .filter(|f| f.body.is_some())
            .ok_or_else(|| EngineError::UnknownFunction(entry.to_string()))?;
        if func.params.len() != bindings.len() {
            return Err(EngineError::BindingArity {
                function: entry.to_string(),
                expected: func.params.len(),
                got: bindings.len(),
            });
        }
        let Some(body) = func.body.as_deref() else {
            // Unreachable after the filter above, but a typed error beats
            // an unwrap reachable from user input.
            return Err(EngineError::UnknownFunction(entry.to_string()));
        };

        // Only computed when checkpointing or resuming is in play: the
        // fingerprint pretty-prints the whole unit.
        let fingerprint = (resume.is_some() || self.config.checkpoint.is_some())
            .then(|| checkpoint::fingerprint(self.unit, entry, bindings, &self.config));

        let cache = FeasibilityCache::new(self.config.feasibility_cache);
        let supervisor = Supervisor::new(
            self.config.deadline,
            self.config.cancel.clone(),
            self.config.yield_hook.clone(),
        );
        let mut explorer = Explorer {
            unit: self.unit,
            config: &self.config,
            source: self.source.as_deref(),
            cache: &cache,
            supervisor: &supervisor,
            next_symbol: 0,
            next_source: 1,
            base_forks: 0,
            source_names: BTreeMap::new(),
            source_symbols: BTreeMap::new(),
            stats: Stats::default(),
            exhausted: false,
            interrupted: false,
            ledger: Ledger::new(),
            event_log: Vec::new(),
            probe_log: Vec::new(),
            probe_seen: BTreeSet::new(),
            profile: Profile::new(),
        };

        let (start_wave, start_entries, out_bases) = match resume {
            Some(snapshot) => {
                snapshot
                    .verify_fingerprint(fingerprint.unwrap_or_default())
                    .map_err(EngineError::Checkpoint)?;
                let Frontier {
                    wave,
                    entries,
                    next_symbol,
                    next_source,
                    source_names,
                    source_symbols,
                    stats,
                    exhausted,
                    ledger,
                    events,
                    out_bases,
                    probe_seen,
                    profile,
                } = snapshot.frontier;
                explorer.next_symbol = next_symbol;
                explorer.next_source = next_source;
                explorer.source_names = source_names;
                explorer.source_symbols = source_symbols;
                explorer.stats = stats;
                explorer.base_forks = explorer.stats.forks;
                explorer.exhausted = exhausted;
                explorer.ledger = ledger;
                explorer.event_log = events;
                explorer.probe_seen = probe_seen;
                explorer.profile = profile;
                (wave, entries, out_bases)
            }
            None => {
                let mut state = ExecState::new();
                state.frames.push(Frame::new(0, entry));
                explorer.init_globals(&mut state);
                let mut out_bases = Vec::new();
                explorer.bind_params(&mut state, func, bindings, &mut out_bases)?;
                (0, vec![(state, Flow::Normal)], out_bases)
            }
        };
        // Globals/parameter binding may itself evaluate (and probe) before
        // wave 0; account those probes first so the counters line up with a
        // purely sequential run. On a resume the log is empty — the init
        // phase's probes are already inside the snapshot's stats/seen-set.
        let initial_probes = std::mem::take(&mut explorer.probe_log);
        explorer.absorb_probes(initial_probes);

        let mut checkpoint_written = None;
        let sink = CheckpointSink {
            path: self.config.checkpoint.as_deref(),
            every: self.config.checkpoint_every,
            fingerprint: fingerprint.unwrap_or_default(),
            out_bases: &out_bases,
            written: &mut checkpoint_written,
            telemetry: self.config.telemetry.clone(),
        };
        let finished = self.drive_worklist(
            &mut explorer,
            &cache,
            &supervisor,
            start_wave,
            start_entries,
            body,
            sink,
        );

        let mut paths = Vec::new();
        for (mut st, flow) in finished {
            let return_value = match flow {
                Flow::Return(v) => v,
                _ => None,
            };
            let return_event = return_value.as_ref().map(|(value, taint)| DeclassifyEvent {
                channel: Channel::Return,
                value: value.clone(),
                taint: taint.clone(),
                pi_taint: st.pi_taint.clone(),
                pi: st.path.to_string(),
                span: func.span,
            });
            // Algorithm 1 checks at declassification time: every return
            // observation lands in the global event log, whether the path
            // is kept or dropped by the budget below — mirroring how sink
            // events are recorded when they happen.
            if let Some(event) = &return_event {
                explorer.event_log.push(event.clone());
            }
            if paths.len() >= self.config.max_paths {
                explorer.exhausted = true;
                explorer.stats.dropped_paths += 1;
                explorer
                    .ledger
                    .record(Degradation::PathBudget { dropped: 1 });
                continue;
            }
            if let Some(event) = return_event {
                st.events.push(event);
            }
            explorer.stats.completed += 1;
            paths.push(PathOutcome {
                state: st,
                return_value,
            });
        }

        Ok(Exploration {
            entry: entry.to_string(),
            paths,
            exhausted: explorer.exhausted,
            ledger: explorer.ledger,
            stats: explorer.stats,
            out_bases,
            events: explorer.event_log,
            secret_sources: explorer
                .source_names
                .iter()
                .map(|(id, name)| (SourceId::new(*id), name.clone()))
                .collect(),
            source_symbols: explorer
                .source_symbols
                .iter()
                .map(|(id, sym)| (SourceId::new(*id), *sym))
                .collect(),
            checkpoint: checkpoint_written,
            profile: explorer.profile,
        })
    }

    /// Explores the entry body as a sequence of *waves*: one wave per
    /// top-level statement, in which every live path state becomes an
    /// independent task fanned out over the worker pool. Results are merged
    /// back in task order with their fresh ids renumbered onto the global
    /// counters, so the outcome is byte-identical to a sequential run (see
    /// the `worklist` module docs for the argument).
    #[allow(clippy::too_many_arguments)]
    fn drive_worklist(
        &self,
        explorer: &mut Explorer<'u, '_>,
        cache: &FeasibilityCache,
        supervisor: &Supervisor,
        start_wave: usize,
        start_entries: StateFlows,
        body: &[Stmt],
        mut sink: CheckpointSink<'_>,
    ) -> StateFlows {
        let workers = self.config.effective_workers();
        let tele = self.config.telemetry.clone();
        let mut entries = start_entries;
        for (wave, stmt) in body.iter().enumerate().skip(start_wave) {
            let live = entries
                .iter()
                .filter(|(_, flow)| *flow == Flow::Normal)
                .count();
            if live == 0 {
                break;
            }
            // Periodic crash insurance: at every Nth boundary the merged
            // frontier is a complete restart point, whether or not the run
            // later stops cleanly.
            if sink.due(wave) {
                sink.write(explorer, &entries, wave);
            }
            // Deadline/cancellation is decided only at wave boundaries:
            // the merged result is a pure function of the cut wave, so the
            // clock can only choose *when* to stop, never *what* the
            // surviving output looks like.
            if let Some(kind) = supervisor.stop() {
                // Snapshot the full frontier *before* the cut discards the
                // in-flight states — this is what `--resume` continues from.
                sink.write(explorer, &entries, wave);
                entries.retain(|(_, flow)| *flow != Flow::Normal);
                cut_exploration(explorer, kind, wave, live);
                return entries;
            }
            // Non-Normal entries (already returned / broken) pass through
            // positionally; Normal entries become tasks.
            let mut tasks = Vec::new();
            let mut layout = Vec::new();
            for (st, flow) in std::mem::take(&mut entries) {
                if flow == Flow::Normal {
                    layout.push(None);
                    tasks.push(st);
                } else {
                    layout.push(Some((st, flow)));
                }
            }
            let dropped = tasks.len();
            // When checkpointing, keep the pre-wave states: a mid-wave
            // interrupt discards the whole wave, and the snapshot must
            // carry the frontier as of *this* boundary.
            let backup = sink.enabled().then(|| tasks.clone());
            // Per-wave instrumentation lives at this boundary only: workers
            // carry plain per-task buffers (stats, probe logs, pending
            // spans) that are folded in canonical order below, so telemetry
            // adds no cross-worker ordering. Timestamps go to the sinks —
            // never into the merged exploration state.
            let mut wave_span = tele.begin("wave", self.config.telemetry_parent);
            if let Some(span) = wave_span.as_mut() {
                span.field("wave", wave);
                span.field("frontier", live);
            }
            let wave_id = wave_span.as_ref().map(PendingSpan::id);
            let wave_started = tele.is_enabled().then(Instant::now);
            let stats_before = explorer.stats;
            // All tasks of a wave share the wave-start fork count for the
            // fork backstop, keeping the check worker-count-invariant.
            let base_forks = explorer.stats.forks;
            let results = run_tasks(workers, tasks, |_, task_state| {
                self.run_stmt_task(cache, supervisor, base_forks, task_state, stmt, wave_id)
            });
            // A mid-wave deadline hit discards the *whole* wave — partial
            // waves would make the output depend on worker scheduling. The
            // result is then exactly "stopped before this wave".
            if results.iter().any(|task| task.interrupted) {
                let kind = supervisor.stop().unwrap_or(StopKind::Deadline);
                if let Some(backup) = backup {
                    // Rebuild the boundary frontier in canonical order:
                    // pass-through slots plus the saved pre-wave states.
                    let mut saved = backup.into_iter();
                    let frontier: StateFlows = layout
                        .iter()
                        .map(|slot| match slot {
                            Some(entry) => entry.clone(),
                            None => (
                                saved.next().expect("one saved state per task slot"),
                                Flow::Normal,
                            ),
                        })
                        .collect();
                    sink.write(explorer, &frontier, wave);
                }
                entries.extend(layout.into_iter().flatten());
                if let Some(mut span) = wave_span {
                    span.field("interrupted", true);
                    tele.emit(span);
                }
                cut_exploration(explorer, kind, wave, dropped);
                return entries;
            }
            let mut results = results.into_iter();
            for slot in layout {
                match slot {
                    Some(entry) => entries.push(entry),
                    None => {
                        if let Some(task) = results.next() {
                            entries.extend(merge_task(explorer, task));
                        }
                    }
                }
            }
            if tele.is_enabled() {
                let after = explorer.stats;
                let delta = |now: usize, then: usize| (now - then) as u64;
                let forks = delta(after.forks, stats_before.forks);
                let infeasible = delta(after.infeasible, stats_before.infeasible);
                let cache_hits = delta(after.cache_hits, stats_before.cache_hits);
                let cache_misses = delta(after.cache_misses, stats_before.cache_misses);
                let widenings = delta(after.widenings, stats_before.widenings);
                let steps = delta(after.steps, stats_before.steps);
                let tier1_refuted = delta(after.tier1_refuted, stats_before.tier1_refuted);
                let tier2_refuted = delta(after.tier2_refuted, stats_before.tier2_refuted);
                let tier2_unknown = delta(after.tier2_unknown, stats_before.tier2_unknown);
                tele.counter(telemetry::names::ENGINE_WAVES, 1);
                tele.counter(telemetry::names::ENGINE_FORKS, forks);
                tele.counter(telemetry::names::ENGINE_INFEASIBLE, infeasible);
                tele.counter(telemetry::names::ENGINE_CACHE_HITS, cache_hits);
                tele.counter(telemetry::names::ENGINE_CACHE_MISSES, cache_misses);
                tele.counter(telemetry::names::ENGINE_WIDENINGS, widenings);
                tele.counter(telemetry::names::ENGINE_STEPS, steps);
                tele.counter(telemetry::names::ENGINE_TIER1_REFUTED, tier1_refuted);
                tele.counter(telemetry::names::ENGINE_TIER2_REFUTED, tier2_refuted);
                tele.counter(telemetry::names::ENGINE_TIER2_UNKNOWN, tier2_unknown);
                if let Some(started) = wave_started {
                    tele.observe(
                        telemetry::names::ENGINE_WAVE_US,
                        started.elapsed().as_micros() as u64,
                    );
                }
                if let Some(mut span) = wave_span {
                    span.field("forks", forks);
                    span.field("infeasible", infeasible);
                    span.field("cache_hits", cache_hits);
                    span.field("cache_misses", cache_misses);
                    span.field("widenings", widenings);
                    span.field("steps", steps);
                    tele.emit(span);
                }
                tele.debug(|| {
                    format!(
                        "wave {wave}: frontier {live}, {forks} forks, {steps} steps, \
                         cache {cache_hits}/{}",
                        cache_hits + cache_misses
                    )
                });
            }
        }
        entries
    }

    /// Executes one statement in one path state with task-local id
    /// allocation (symbols and sources minted from [`LOCAL_ID_BASE`]).
    ///
    /// The whole task runs under `catch_unwind`: a panic anywhere inside a
    /// path becomes a [`Degradation::PathPanicked`] entry (the task's
    /// states are discarded), never a process abort. The shared structures
    /// a task touches are poison-safe — the feasibility cache tolerates
    /// poisoned locks by recomputing (a pure function), and the worklist's
    /// result slots are only locked after the task closure has returned.
    fn run_stmt_task(
        &self,
        cache: &FeasibilityCache,
        supervisor: &Supervisor,
        base_forks: usize,
        state: ExecState,
        stmt: &Stmt,
        wave_span: Option<u64>,
    ) -> TaskResult {
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            // Per-task telemetry is buffered as plain data (a pending span
            // and the probe log) and handed back with the result: the merge
            // thread emits it in canonical order, so workers never touch
            // the sink and never synchronize on telemetry.
            let mut span = self.config.telemetry.begin("path_task", wave_span);
            let started = self.config.telemetry.is_enabled().then(Instant::now);
            let mut task = Explorer {
                unit: self.unit,
                config: &self.config,
                source: self.source.as_deref(),
                cache,
                supervisor,
                next_symbol: LOCAL_ID_BASE,
                next_source: LOCAL_ID_BASE,
                base_forks,
                source_names: BTreeMap::new(),
                source_symbols: BTreeMap::new(),
                stats: Stats::default(),
                exhausted: false,
                interrupted: false,
                ledger: Ledger::new(),
                event_log: Vec::new(),
                probe_log: Vec::new(),
                probe_seen: BTreeSet::new(),
                profile: Profile::new(),
            };
            let flows = task.exec(state, stmt);
            if let Some(span) = span.as_mut() {
                span.field("steps", task.stats.steps);
                span.field("forks", task.stats.forks);
                span.field("out_states", flows.len());
                span.complete();
            }
            TaskResult {
                flows,
                fresh_symbols: task.next_symbol - LOCAL_ID_BASE,
                fresh_sources: task.next_source - LOCAL_ID_BASE,
                source_names: task.source_names,
                source_symbols: task.source_symbols,
                stats: task.stats,
                exhausted: task.exhausted,
                interrupted: task.interrupted,
                ledger: task.ledger,
                events: task.event_log,
                probes: task.probe_log,
                profile: task.profile,
                span,
                elapsed_us: started.map_or(0, |at| at.elapsed().as_micros() as u64),
            }
        }));
        outcome.unwrap_or_else(|payload| TaskResult::panicked(panic_message(payload)))
    }
}

/// Renders a panic payload (the argument of `panic!`) as text.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    match payload.downcast::<String>() {
        Ok(text) => *text,
        Err(payload) => match payload.downcast::<&'static str>() {
            Ok(text) => (*text).to_string(),
            Err(_) => "opaque panic payload".to_string(),
        },
    }
}

/// Marks an exploration as cut by the supervisor: the surviving entries
/// are exactly those of "stopped before wave `wave`", the `dropped`
/// in-flight states are accounted in the stats and the ledger.
fn cut_exploration(explorer: &mut Explorer<'_, '_>, kind: StopKind, wave: usize, dropped: usize) {
    let kind_name = match &kind {
        StopKind::Deadline => "deadline",
        StopKind::Cancelled => "cancelled",
        StopKind::Suspended => "suspended",
    };
    let telemetry = &explorer.config.telemetry;
    telemetry.event(
        "supervisor_stop",
        explorer.config.telemetry_parent,
        |fields| {
            fields.push(("kind", FieldValue::from(kind_name)));
            fields.push(("wave", FieldValue::from(wave)));
            fields.push(("dropped", FieldValue::from(dropped)));
        },
    );
    telemetry.warn(|| {
        format!(
            "exploration cut at wave {wave} ({kind_name}): \
             {dropped} in-flight path state(s) dropped"
        )
    });
    let degradation = match kind {
        StopKind::Deadline => Degradation::DeadlineExceeded { wave, dropped },
        StopKind::Cancelled => Degradation::Cancelled { wave, dropped },
        StopKind::Suspended => Degradation::Suspended { wave, dropped },
    };
    explorer.ledger.record(degradation);
    explorer.stats.dropped_deadline += dropped;
    explorer.exhausted = true;
}

/// Where (and how often) `drive_worklist` persists resumable snapshots.
///
/// A disabled sink (`path: None`) makes every call a no-op, so the hot loop
/// pays nothing when checkpointing is off. Write failures are downgraded to
/// a [`Degradation::CheckpointFailed`] ledger entry: durability must never
/// cost the run its (otherwise intact) result.
struct CheckpointSink<'a> {
    path: Option<&'a std::path::Path>,
    every: usize,
    fingerprint: u64,
    out_bases: &'a [(String, Region)],
    written: &'a mut Option<PathBuf>,
    telemetry: Telemetry,
}

impl CheckpointSink<'_> {
    fn enabled(&self) -> bool {
        self.path.is_some()
    }

    /// Whether the periodic policy wants a snapshot at this boundary.
    fn due(&self, wave: usize) -> bool {
        self.enabled() && self.every > 0 && wave.is_multiple_of(self.every)
    }

    /// Serializes the boundary frontier plus the explorer's merged global
    /// state and writes it atomically.
    fn write(&mut self, explorer: &mut Explorer<'_, '_>, entries: &StateFlows, wave: usize) {
        let Some(path) = self.path else {
            return;
        };
        let mut span = self.telemetry.begin("checkpoint_write", None);
        if let Some(span) = span.as_mut() {
            span.field("wave", wave);
            span.field("entries", entries.len());
        }
        let snapshot = Snapshot {
            fingerprint: self.fingerprint,
            frontier: Frontier {
                wave,
                entries: entries.clone(),
                next_symbol: explorer.next_symbol,
                next_source: explorer.next_source,
                source_names: explorer.source_names.clone(),
                source_symbols: explorer.source_symbols.clone(),
                stats: explorer.stats,
                exhausted: explorer.exhausted,
                ledger: explorer.ledger.clone(),
                events: explorer.event_log.clone(),
                out_bases: self.out_bases.to_vec(),
                probe_seen: explorer.probe_seen.clone(),
                profile: explorer.profile.clone(),
            },
        };
        let result = snapshot.write_atomic(path);
        self.telemetry
            .counter(telemetry::names::ENGINE_CHECKPOINT_WRITES, 1);
        if let Some(mut span) = span {
            span.field("ok", result.is_ok());
            self.telemetry.emit(span);
        }
        match result {
            Ok(()) => *self.written = Some(path.to_path_buf()),
            Err(error) => {
                self.telemetry
                    .warn(|| format!("checkpoint write to {} failed: {error}", path.display()));
                explorer.ledger.record(Degradation::CheckpointFailed {
                    message: error.to_string(),
                });
            }
        }
    }
}

/// Everything one statement-task produced, with ids still task-local.
struct TaskResult {
    flows: StateFlows,
    fresh_symbols: u32,
    fresh_sources: u32,
    source_names: BTreeMap<u32, String>,
    source_symbols: BTreeMap<u32, u32>,
    stats: Stats,
    exhausted: bool,
    /// The supervisor fired mid-task; this wave's results must be discarded.
    interrupted: bool,
    ledger: Ledger,
    events: Vec<DeclassifyEvent>,
    /// Feasibility-probe (key hash, attribution site) pairs in program
    /// order, classified at merge.
    probes: Vec<(u64, usize)>,
    /// The task's per-site exploration profile, absorbed at merge in
    /// canonical order.
    profile: Profile,
    /// Buffered telemetry span, emitted by the merging thread.
    span: Option<PendingSpan>,
    /// Task wall-clock in microseconds (0 when telemetry is off); feeds
    /// the metrics histogram only, never the exploration result.
    elapsed_us: u64,
}

impl TaskResult {
    /// The result of a task whose path panicked: the path is dropped, the
    /// panic becomes a ledger entry, and nothing else survives.
    fn panicked(message: String) -> Self {
        let mut ledger = Ledger::new();
        ledger.record(Degradation::PathPanicked { message });
        let stats = Stats {
            dropped_panics: 1,
            ..Stats::default()
        };
        TaskResult {
            flows: Vec::new(),
            fresh_symbols: 0,
            fresh_sources: 0,
            source_names: BTreeMap::new(),
            source_symbols: BTreeMap::new(),
            stats,
            exhausted: true,
            interrupted: false,
            ledger,
            events: Vec::new(),
            probes: Vec::new(),
            profile: Profile::new(),
            span: None,
            elapsed_us: 0,
        }
    }
}

/// Folds a task's results into the global explorer, translating task-local
/// symbol/source ids onto the global counters. Called in canonical task
/// order, this reproduces the exact numbering of a sequential exploration.
fn merge_task(explorer: &mut Explorer<'_, '_>, mut task: TaskResult) -> StateFlows {
    debug_assert!(
        explorer.next_symbol < LOCAL_ID_BASE && explorer.next_source < LOCAL_ID_BASE,
        "global id counters must stay below the task-local namespace"
    );
    // Emit the task's buffered telemetry from the merging thread, in
    // canonical task order; timings go to the sinks only.
    let telemetry = &explorer.config.telemetry;
    if telemetry.is_enabled() {
        telemetry.counter(telemetry::names::ENGINE_PATH_TASKS, 1);
        telemetry.observe(telemetry::names::ENGINE_PATH_TASK_US, task.elapsed_us);
        if let Some(span) = task.span.take() {
            telemetry.emit(span);
        }
    }
    let probes = std::mem::take(&mut task.probes);
    explorer.absorb_probes(probes);
    let remap = IdRemap {
        symbol_base: explorer.next_symbol,
        source_base: explorer.next_source,
    };
    explorer.next_symbol += task.fresh_symbols;
    explorer.next_source += task.fresh_sources;
    for (id, name) in task.source_names {
        explorer
            .source_names
            .insert(remap.source(SourceId::new(id)).index(), name);
    }
    for (id, sym) in task.source_symbols {
        explorer
            .source_symbols
            .insert(remap.source(SourceId::new(id)).index(), remap.symbol(sym));
    }
    explorer.stats.absorb(&task.stats);
    explorer.profile.absorb(&task.profile);
    explorer.exhausted |= task.exhausted;
    explorer.ledger.absorb(task.ledger);
    for mut event in task.events {
        remap.remap_event(&mut event);
        explorer.event_log.push(event);
    }
    task.flows
        .into_iter()
        .map(|(mut st, mut flow)| {
            remap.remap_state(&mut st);
            if let Flow::Return(Some((value, taint))) = &mut flow {
                value.remap_symbols(&|id| remap.symbol(id));
                *taint = remap.taint(taint);
            }
            (st, flow)
        })
        .collect()
}

/// Control flow out of a statement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub(crate) enum Flow {
    Normal,
    Break,
    Continue,
    Return(Option<(SVal, TaintSet)>),
}

type StateFlows = Vec<(ExecState, Flow)>;
type EvalResults = Vec<(ExecState, SVal, TaintSet)>;
type LvalResults = Vec<(ExecState, Option<Region>)>;

struct Explorer<'u, 'c> {
    unit: &'u TranslationUnit,
    config: &'c EngineConfig,
    source: Option<&'c str>,
    cache: &'c FeasibilityCache,
    /// Deadline/cancellation oracle, polled at step granularity.
    supervisor: &'c Supervisor,
    next_symbol: u32,
    next_source: u32,
    /// Fork count accumulated before this task's wave started; the fork
    /// backstop compares `base_forks + stats.forks` so every task of a wave
    /// sees the same, scheduling-invariant number.
    base_forks: usize,
    source_names: BTreeMap<u32, String>,
    source_symbols: BTreeMap<u32, u32>,
    stats: Stats,
    exhausted: bool,
    /// Set when the supervisor fired mid-execution: the task's results are
    /// timing-dependent and the wave must be discarded for determinism.
    interrupted: bool,
    ledger: Ledger,
    event_log: Vec<DeclassifyEvent>,
    /// Hashes of every feasibility-probe key this explorer issued (with the
    /// source site the probe belongs to), in program order. Task logs are
    /// drained into the global explorer's [`Explorer::probe_seen`] at the
    /// wave boundary, in canonical merge order, which is what makes the
    /// hit/miss counters scheduling-free.
    probe_log: Vec<(u64, usize)>,
    /// Every probe key already accounted (global explorer only). Persisted
    /// in checkpoints so a resumed run counts exactly like an
    /// uninterrupted one.
    probe_seen: BTreeSet<u64>,
    /// Per-source-site cost attribution, same merge discipline as `stats`.
    profile: Profile,
}

impl<'u, 'c> Explorer<'u, 'c> {
    /// Checks branch feasibility through the shared memoization cache and
    /// logs the probe key for deterministic hit/miss accounting.
    ///
    /// The *result* comes from [`FeasibilityCache::check`] (a pure function
    /// of the key, so memoization can never change it). The *counters* do
    /// not: whether a concrete probe hits the shared cache depends on what
    /// other workers inserted first, so instead each probe's FNV-hashed key
    /// is logged here and classified later against the keys already seen in
    /// canonical merge order — i.e. the redundancy a sequential run would
    /// observe. That keeps `Stats` (and everything downstream: reports,
    /// checkpoints, determinism tests) invariant under worker count and
    /// cache capacity.
    /// Per-tier counters, by contrast, *are* incremented per probe event:
    /// the tier outcome is itself a pure function of the key, so the same
    /// probe always lands in the same counter no matter which worker runs
    /// it or whether the cache answered — the totals stay deterministic
    /// without the seen-set machinery.
    fn probe(&mut self, state: &ExecState, cond: &SVal, taken: bool, at: usize) -> Feasibility {
        // One digest serves both the deterministic hit/miss log and the
        // shared cache's bucket key. `at` is the source byte offset the
        // probe is attributed to in the exploration profile.
        let mode = self.config.feasibility;
        let key = checkpoint::probe_key_tiered(
            mode,
            &state.constraints,
            &state.domain,
            &state.path,
            cond,
            taken,
        );
        self.probe_log.push((key, at));
        let outcome = self.cache.check_outcome(
            key,
            mode,
            &state.constraints,
            &state.domain,
            &state.path,
            cond,
            taken,
        );
        match outcome {
            ProbeOutcome::RefutedIntervals => {
                self.stats.tier1_refuted += 1;
                self.profile.at(at).tier1_refuted += 1;
            }
            ProbeOutcome::RefutedSolver => {
                self.stats.tier2_refuted += 1;
                self.profile.at(at).tier2_refuted += 1;
            }
            ProbeOutcome::SolverUnknown => {
                self.stats.tier2_unknown += 1;
                self.profile.at(at).tier2_unknown += 1;
            }
            ProbeOutcome::Feasible | ProbeOutcome::RefutedSyntactic => {}
        }
        outcome.feasibility()
    }

    /// Classifies a drained probe log against the global seen-set. Must be
    /// called in canonical merge order (it is: from `merge_task` and for
    /// the init phase in `run_from`).
    fn absorb_probes(&mut self, probes: Vec<(u64, usize)>) {
        for (key, at) in probes {
            if self.probe_seen.insert(key) {
                self.stats.cache_misses += 1;
                self.profile.at(at).cache_misses += 1;
            } else {
                self.stats.cache_hits += 1;
                self.profile.at(at).cache_hits += 1;
            }
        }
    }

    fn fresh_symbol(&mut self, hint: impl Into<String>) -> Symbol {
        let sym = Symbol::new(self.next_symbol, hint);
        self.next_symbol += 1;
        sym
    }

    fn fresh_source(&mut self, name: impl Into<String>) -> SourceId {
        let id = self.next_source;
        self.next_source += 1;
        self.source_names.insert(id, name.into());
        SourceId::new(id)
    }

    /// Replaces an oversized value with a fresh summary symbol; the taint
    /// (tracked separately) is preserved by the caller.
    fn summarize(&mut self, value: SVal, hint: &str) -> SVal {
        if value.size_within(self.config.max_value_size).is_some() {
            value
        } else {
            self.ledger.record(Degradation::ValueWidened { count: 1 });
            SVal::Sym(self.fresh_symbol(format!("summary({hint})")))
        }
    }

    // ---- entry setup ------------------------------------------------------

    fn init_globals(&mut self, state: &mut ExecState) {
        let globals: Vec<VarDecl> = self.unit.globals().cloned().collect();
        for decl in globals {
            let region = Region::Global {
                name: decl.name.clone(),
            };
            if let Some(init) = decl.init.clone() {
                self.bind_init(state, &region, &init, &decl.ty);
            }
        }
    }

    fn bind_init(&mut self, state: &mut ExecState, region: &Region, init: &Init, ty: &Type) {
        match init {
            Init::Expr(expr) => {
                // Global/local initializer expressions do not fork: the
                // evaluation is forced down the first (and in practice only)
                // result; corpus initializers are side-effect-free.
                let results = self.eval(state.clone(), expr);
                if let Some((st, value, taint)) = results.into_iter().next() {
                    *state = st;
                    state.write(region.clone(), value, taint);
                }
            }
            Init::List(items) => match ty {
                Type::Array(elem, _) => {
                    for (i, item) in items.iter().enumerate() {
                        let sub = Region::element(region.clone(), SVal::Int(i as i64));
                        self.bind_init(state, &sub, item, elem);
                    }
                }
                Type::Struct(name) => {
                    if let Some(def) = self.unit.struct_def(name) {
                        let fields: Vec<_> = def
                            .fields
                            .iter()
                            .map(|f| (f.name.clone(), f.ty.clone()))
                            .collect();
                        for (item, (fname, fty)) in items.iter().zip(fields) {
                            let sub = Region::field(region.clone(), fname);
                            self.bind_init(state, &sub, item, &fty);
                        }
                    }
                }
                _ => {}
            },
        }
    }

    fn bind_params(
        &mut self,
        state: &mut ExecState,
        func: &Function,
        bindings: &[ParamBinding],
        out_bases: &mut Vec<(String, Region)>,
    ) -> Result<(), EngineError> {
        for (index, (param, binding)) in func.params.iter().zip(bindings).enumerate() {
            let region = Region::Var {
                frame: 0,
                name: param.name.clone(),
            };
            state
                .frame_mut()
                .scopes
                .last_mut()
                .expect("frame has a scope")
                .insert(param.name.clone(), region.clone());

            let scalar_ok = param.ty.is_arithmetic();
            let pointer_ok = param.ty.is_pointer();
            match binding {
                ParamBinding::Scalar | ParamBinding::SecretScalar | ParamBinding::Concrete(_)
                    if !scalar_ok =>
                {
                    return Err(EngineError::BindingType {
                        function: func.name.clone(),
                        index,
                        reason: format!("scalar binding for `{}` parameter", param.ty),
                    });
                }
                ParamBinding::Pointer
                | ParamBinding::SecretPointer
                | ParamBinding::OutPointer
                | ParamBinding::InOutPointer
                    if !pointer_ok =>
                {
                    return Err(EngineError::BindingType {
                        function: func.name.clone(),
                        index,
                        reason: format!("pointer binding for `{}` parameter", param.ty),
                    });
                }
                _ => {}
            }

            match binding {
                ParamBinding::Concrete(v) => {
                    state.write(region, SVal::Int(*v), TaintSet::bottom());
                }
                ParamBinding::Scalar => {
                    let sym = self.fresh_symbol(&param.name);
                    state.write(region, SVal::Sym(sym), TaintSet::bottom());
                }
                ParamBinding::SecretScalar => {
                    let sym = self.fresh_symbol(&param.name);
                    let source = self.fresh_source(&param.name);
                    self.source_symbols.insert(source.index(), sym.id);
                    state.write(region, SVal::Sym(sym), TaintSet::source(source));
                }
                ParamBinding::Pointer
                | ParamBinding::SecretPointer
                | ParamBinding::OutPointer
                | ParamBinding::InOutPointer => {
                    let sym = self.fresh_symbol(&param.name);
                    let base = Region::Sym { symbol: sym };
                    if matches!(
                        binding,
                        ParamBinding::SecretPointer | ParamBinding::InOutPointer
                    ) {
                        state.secret_bases.insert(base.clone());
                    }
                    if matches!(
                        binding,
                        ParamBinding::OutPointer | ParamBinding::InOutPointer
                    ) {
                        out_bases.push((param.name.clone(), base.clone()));
                    }
                    state.write(region, SVal::Loc(base), TaintSet::bottom());
                }
            }
        }
        Ok(())
    }

    // ---- memory -----------------------------------------------------------

    /// Reads a region, lazily materializing a fresh symbol for
    /// never-written memory. Reads under a secret base mint a fresh taint
    /// source per distinct region — the `get_secret` rule, per element.
    fn read(&mut self, state: &mut ExecState, region: &Region) -> (SVal, TaintSet) {
        if let Some(value) = state.store.lookup(region) {
            return (value.clone(), state.taint_of(region));
        }
        let hint = region_hint(region);
        let sym = self.fresh_symbol(hint.clone());
        let taint = if state.is_secret_region(region) {
            let source = self.fresh_source(hint);
            self.source_symbols.insert(source.index(), sym.id);
            TaintSet::source(source)
        } else {
            TaintSet::bottom()
        };
        let value = SVal::Sym(sym);
        state.store.bind(region.clone(), value.clone());
        state.taints.set(region.clone(), taint.clone());
        (value, taint)
    }

    /// Resolves an identifier to its region (locals, then globals).
    fn resolve_name(&mut self, state: &ExecState, name: &str) -> Region {
        if let Some(region) = state.frame().lookup(name) {
            return region.clone();
        }
        Region::Global {
            name: name.to_string(),
        }
    }

    /// Declares a fresh local in the innermost scope, uniquifying shadowed
    /// names so store bindings never collide. The rename counter lives in
    /// the state so the numbering depends only on the path's own history.
    fn declare_local(&mut self, state: &mut ExecState, name: &str) -> Region {
        let frame = state.frame();
        let shadowed = frame.lookup(name).is_some();
        let frame_id = frame.id;
        let unique = if shadowed {
            state.next_shadow += 1;
            format!("{name}~{}", state.next_shadow)
        } else {
            name.to_string()
        };
        let region = Region::Var {
            frame: frame_id,
            name: unique,
        };
        state
            .frame_mut()
            .scopes
            .last_mut()
            .expect("frame has a scope")
            .insert(name.to_string(), region.clone());
        region
    }

    /// Turns a pointer value into the region it points at.
    fn pointee_region(&mut self, ptr: &SVal) -> Option<Region> {
        match ptr {
            SVal::Loc(region) => Some(region.clone()),
            SVal::Sym(sym) => Some(Region::Sym {
                symbol: sym.clone(),
            }),
            _ => None,
        }
    }

    /// Pointer arithmetic: `ptr ± offset` in element units.
    fn ptr_offset(&mut self, ptr: &SVal, offset: SVal, negate: bool) -> SVal {
        let offset = if negate {
            fold_unary(UnOp::Neg, offset)
        } else {
            offset
        };
        let Some(region) = self.pointee_region(ptr) else {
            return SVal::Unknown;
        };
        let adjusted = match region {
            Region::Element { base, index } => Region::Element {
                base,
                index: HC::new(simplify(&SVal::binary(
                    BinOp::Add,
                    index.as_ref().clone(),
                    offset,
                ))),
            },
            other => Region::element(other, simplify(&offset)),
        };
        SVal::Loc(adjusted)
    }

    // ---- expression evaluation -------------------------------------------

    fn eval(&mut self, state: ExecState, expr: &Expr) -> EvalResults {
        match &expr.kind {
            ExprKind::IntLit(v) => vec![(state, SVal::Int(*v), TaintSet::bottom())],
            ExprKind::CharLit(v) => vec![(state, SVal::Int(*v), TaintSet::bottom())],
            ExprKind::FloatLit(v) => vec![(state, SVal::float(*v), TaintSet::bottom())],
            ExprKind::StrLit(text) => vec![(
                state,
                SVal::Loc(Region::Str { text: text.clone() }),
                TaintSet::bottom(),
            )],
            ExprKind::SizeofType(ty) => {
                let size = self.size_of(ty);
                vec![(state, size, TaintSet::bottom())]
            }
            ExprKind::SizeofExpr(inner) => {
                let size = inner
                    .ty
                    .as_ref()
                    .map(|ty| self.size_of(ty))
                    .unwrap_or(SVal::Unknown);
                vec![(state, size, TaintSet::bottom())]
            }
            ExprKind::Ident(name) => {
                let mut state = state;
                let region = self.resolve_name(&state, name);
                state.env.bind(expr.id, region.clone());
                if matches!(expr.ty, Some(Type::Array(..))) {
                    vec![(state, SVal::Loc(region), TaintSet::bottom())]
                } else {
                    let (value, taint) = self.read(&mut state, &region);
                    vec![(state, value, taint)]
                }
            }
            ExprKind::Unary { op, expr: inner } => self
                .eval(state, inner)
                .into_iter()
                .map(|(st, v, t)| (st, fold_unary(*op, v), taint::unop(&t)))
                .collect(),
            ExprKind::Deref(_) | ExprKind::Index { .. } | ExprKind::Member { .. } => {
                let array_result = matches!(expr.ty, Some(Type::Array(..)));
                self.lvalue(state, expr)
                    .into_iter()
                    .map(|(mut st, region)| match region {
                        Some(region) if array_result => (st, SVal::Loc(region), TaintSet::bottom()),
                        Some(region) => {
                            let (v, t) = self.read(&mut st, &region);
                            (st, v, t)
                        }
                        None => (st, SVal::Unknown, TaintSet::bottom()),
                    })
                    .collect()
            }
            ExprKind::AddrOf(inner) => self
                .lvalue(state, inner)
                .into_iter()
                .map(|(st, region)| match region {
                    Some(region) => (st, SVal::Loc(region), TaintSet::bottom()),
                    None => (st, SVal::Unknown, TaintSet::bottom()),
                })
                .collect(),
            ExprKind::Binary { op, lhs, rhs } => {
                let mut out = Vec::new();
                for (st, lv, lt) in self.eval(state, lhs) {
                    for (st2, rv, rt) in self.eval(st, rhs) {
                        let value = self.combine_binary(*op, &lv, rv, lhs, rhs);
                        out.push((st2, value, taint::binop(&lt, &rt)));
                    }
                }
                out
            }
            ExprKind::Assign { op, lhs, rhs } => self.eval_assign(state, *op, lhs, rhs),
            ExprKind::Ternary {
                cond,
                then_e,
                else_e,
            } => {
                let mut out = Vec::new();
                for (st, cv, ct) in self.eval(state, cond) {
                    let cv = simplify(&cv);
                    if let Some(c) = cv.as_int() {
                        let chosen = if c != 0 { then_e } else { else_e };
                        for (st2, v, t) in self.eval(st, chosen) {
                            out.push((st2, v, taint::binop(&ct, &t)));
                        }
                    } else {
                        // Evaluate both arms without forking; the result is
                        // an uninterpreted selection tainted by everything.
                        for (st2, tv, tt) in self.eval(st, then_e) {
                            for (st3, ev, et) in self.eval(st2, else_e) {
                                let value = SVal::Call {
                                    func: "ite".into(),
                                    args: vec![cv.clone(), tv.clone(), ev],
                                };
                                let taint = taint::binop(&ct, &taint::binop(&tt, &et));
                                out.push((st3, value, taint));
                            }
                        }
                    }
                }
                out
            }
            ExprKind::Call { callee, args } => self.eval_call(state, expr, callee, args),
            ExprKind::Cast { expr: inner, ty } => self
                .eval(state, inner)
                .into_iter()
                .map(|(st, v, t)| (st, cast_value(v, ty), t))
                .collect(),
            ExprKind::IncDec { op, expr: inner } => {
                let delta = op.delta();
                let is_post = op.is_post();
                self.lvalue(state, inner)
                    .into_iter()
                    .map(|(mut st, region)| match region {
                        Some(region) => {
                            let (old, taint) = self.read(&mut st, &region);
                            let new = if matches!(old, SVal::Loc(_)) {
                                self.ptr_offset(&old, SVal::Int(delta.abs()), delta < 0)
                            } else {
                                simplify(&SVal::binary(BinOp::Add, old.clone(), SVal::Int(delta)))
                            };
                            st.write(region, new.clone(), taint.clone());
                            let value = if is_post { old } else { new };
                            (st, value, taint)
                        }
                        None => (st, SVal::Unknown, TaintSet::bottom()),
                    })
                    .collect()
            }
            ExprKind::Comma(lhs, rhs) => {
                let mut out = Vec::new();
                for (st, _, _) in self.eval(state, lhs) {
                    out.extend(self.eval(st, rhs));
                }
                out
            }
        }
    }

    fn combine_binary(&mut self, op: BinOp, lv: &SVal, rv: SVal, lhs: &Expr, rhs: &Expr) -> SVal {
        let lhs_ptr = lhs
            .ty
            .as_ref()
            .map(|t| t.decay().is_pointer())
            .unwrap_or(false);
        let rhs_ptr = rhs
            .ty
            .as_ref()
            .map(|t| t.decay().is_pointer())
            .unwrap_or(false);
        match (op, lhs_ptr, rhs_ptr) {
            (BinOp::Add, true, false) => self.ptr_offset(lv, rv, false),
            (BinOp::Add, false, true) => self.ptr_offset(&rv, lv.clone(), false),
            (BinOp::Sub, true, false) => self.ptr_offset(lv, rv, true),
            (BinOp::Sub, true, true) => {
                // pointer difference: precise only for same-base elements
                match (self.pointee_region(lv), self.pointee_region(&rv)) {
                    (
                        Some(Region::Element {
                            base: b1,
                            index: i1,
                        }),
                        Some(Region::Element {
                            base: b2,
                            index: i2,
                        }),
                    ) if b1 == b2 => simplify(&SVal::binary(
                        BinOp::Sub,
                        i1.as_ref().clone(),
                        i2.as_ref().clone(),
                    )),
                    (Some(r1), Some(r2)) if r1 == r2 => SVal::Int(0),
                    _ => SVal::Unknown,
                }
            }
            _ => simplify(&fold_binary(op, lv.clone(), rv)),
        }
    }

    fn eval_assign(
        &mut self,
        state: ExecState,
        op: Option<BinOp>,
        lhs: &Expr,
        rhs: &Expr,
    ) -> EvalResults {
        let mut out = Vec::new();
        for (st, region) in self.lvalue(state, lhs) {
            for (mut st2, rv, rt) in self.eval(st, rhs) {
                let Some(region) = region.clone() else {
                    out.push((st2, rv, rt));
                    continue;
                };
                let (value, taint) = match op {
                    None => (rv, taint::assign(&rt)),
                    Some(binop) => {
                        let (old, ot) = self.read(&mut st2, &region);
                        let value = if matches!(old, SVal::Loc(_)) {
                            match binop {
                                BinOp::Add => self.ptr_offset(&old, rv, false),
                                BinOp::Sub => self.ptr_offset(&old, rv, true),
                                _ => SVal::Unknown,
                            }
                        } else {
                            simplify(&fold_binary(binop, old, rv))
                        };
                        (value, taint::binop(&ot, &rt))
                    }
                };
                let value = self.summarize(value, &region_hint(&region));
                st2.write(region, value.clone(), taint.clone());
                out.push((st2, value, taint));
            }
        }
        out
    }

    fn lvalue(&mut self, state: ExecState, expr: &Expr) -> LvalResults {
        match &expr.kind {
            ExprKind::Ident(name) => {
                let mut state = state;
                let region = self.resolve_name(&state, name);
                state.env.bind(expr.id, region.clone());
                vec![(state, Some(region))]
            }
            ExprKind::Deref(inner) => self
                .eval(state, inner)
                .into_iter()
                .map(|(mut st, v, _)| {
                    let region = self.pointee_region(&v);
                    if let Some(region) = &region {
                        st.env.bind(expr.id, region.clone());
                    }
                    (st, region)
                })
                .collect(),
            ExprKind::Index { base, index } => {
                let mut out = Vec::new();
                for (st, bv, _) in self.eval(state, base) {
                    for (mut st2, iv, _) in self.eval(st, index) {
                        let ptr = self.ptr_offset(&bv, iv, false);
                        let region = self.pointee_region(&ptr);
                        if let Some(region) = &region {
                            st2.env.bind(expr.id, region.clone());
                        }
                        out.push((st2, region));
                    }
                }
                out
            }
            ExprKind::Member { base, field, arrow } => {
                let results: LvalResults = if *arrow {
                    self.eval(state, base)
                        .into_iter()
                        .map(|(st, v, _)| {
                            let region = self.pointee_region(&v);
                            (st, region)
                        })
                        .collect()
                } else {
                    self.lvalue(state, base)
                };
                results
                    .into_iter()
                    .map(|(mut st, region)| {
                        let region = region.map(|base| Region::field(base, field.clone()));
                        if let Some(region) = &region {
                            st.env.bind(expr.id, region.clone());
                        }
                        (st, region)
                    })
                    .collect()
            }
            // Casts of lvalues, e.g. `*(int*)buf = …`, pass through.
            ExprKind::Cast { expr: inner, .. } => self.lvalue(state, inner),
            _ => vec![(state, None)],
        }
    }

    fn size_of(&self, ty: &Type) -> SVal {
        match ty {
            Type::Struct(name) => minic::sema::struct_size(self.unit, name)
                .map(|s| SVal::Int(s as i64))
                .unwrap_or(SVal::Unknown),
            Type::Array(inner, n) => match self.size_of(inner) {
                SVal::Int(s) => SVal::Int(s * *n as i64),
                _ => SVal::Unknown,
            },
            other => other
                .size()
                .map(|s| SVal::Int(s as i64))
                .unwrap_or(SVal::Unknown),
        }
    }

    // ---- calls -------------------------------------------------------------

    fn eval_call(
        &mut self,
        state: ExecState,
        expr: &Expr,
        callee: &str,
        args: &[Expr],
    ) -> EvalResults {
        if self.config.inject_panic_on_call.as_deref() == Some(callee) {
            panic!("injected panic in `{callee}`");
        }
        // Evaluate arguments left to right, threading forks.
        let mut evaluated: Vec<(ExecState, Vec<(SVal, TaintSet)>)> = vec![(state, Vec::new())];
        for arg in args {
            let mut next = Vec::new();
            for (st, mut values) in evaluated {
                let mut results = self.eval(st, arg).into_iter().peekable();
                while let Some((st2, v, t)) = results.next() {
                    let mut values = if results.peek().is_some() {
                        values.clone()
                    } else {
                        std::mem::take(&mut values)
                    };
                    values.push((v, t));
                    next.push((st2, values));
                }
            }
            evaluated = next;
        }

        let mut out = Vec::new();
        for (mut st, values) in evaluated {
            // Sinks: every argument value escapes.
            if self.config.sink_functions.contains(callee) {
                for (i, (v, t)) in values.iter().enumerate() {
                    let event = DeclassifyEvent {
                        channel: Channel::SinkCall {
                            func: callee.to_string(),
                            arg: i,
                        },
                        value: v.clone(),
                        taint: t.clone(),
                        pi_taint: st.pi_taint.clone(),
                        pi: st.path.to_string(),
                        span: expr.span,
                    };
                    // Algorithm 1 checks at declassification time: keep a
                    // global log so observations survive even when the
                    // path itself is later dropped by a budget.
                    self.event_log.push(event.clone());
                    st.events.push(event);
                }
            }
            // Sources: decrypt-like. The result is fresh secret data; the
            // first pointer argument receives fresh secret plaintext (one
            // source per element, like `get_secret`), and its whole block
            // is marked secret so out-of-bound-of-the-model reads stay
            // tainted.
            if self.config.source_functions.contains(callee) {
                if let Some(region) = values.first().and_then(|(v, _)| self.pointee_region(v)) {
                    let len = values
                        .get(2)
                        .and_then(|(v, _)| v.as_int())
                        .unwrap_or(8)
                        .clamp(0, 64);
                    for i in 0..len {
                        let elem = element(&region, i);
                        let hint = region_hint(&elem);
                        let source = self.fresh_source(hint.clone());
                        let sym = self.fresh_symbol(hint);
                        self.source_symbols.insert(source.index(), sym.id);
                        st.write(elem, SVal::Sym(sym), TaintSet::source(source));
                    }
                    st.secret_bases.insert(region);
                }
                let hint = format!("{callee}#out");
                let source = self.fresh_source(hint.clone());
                let sym = self.fresh_symbol(hint);
                self.source_symbols.insert(source.index(), sym.id);
                out.push((st, SVal::Sym(sym), TaintSet::source(source)));
                continue;
            }

            out.extend(self.call_body_or_model(st, expr, callee, &values));
        }
        out
    }

    fn call_body_or_model(
        &mut self,
        state: ExecState,
        expr: &Expr,
        callee: &str,
        values: &[(SVal, TaintSet)],
    ) -> EvalResults {
        let defined = self
            .unit
            .function(callee)
            .filter(|f| f.body.is_some())
            .cloned();
        if let Some(func) = defined {
            if state.frames.len() <= self.config.inline_depth {
                return self.inline_call(state, &func, values);
            }
        }
        vec![self.model_builtin(state, expr, callee, values)]
    }

    fn inline_call(
        &mut self,
        mut state: ExecState,
        func: &Function,
        values: &[(SVal, TaintSet)],
    ) -> EvalResults {
        // A declaration without a definition cannot be inlined; treat the
        // call as opaque (joined taint, unknown result) instead of
        // panicking on malformed user input.
        let Some(body) = func.body.as_ref() else {
            return vec![(state, SVal::Unknown, join_all(values))];
        };
        let frame_id = state.next_frame;
        state.next_frame += 1;
        state.frames.push(Frame::new(frame_id, &func.name));
        for (param, (value, taint)) in func.params.iter().zip(values) {
            let region = Region::Var {
                frame: frame_id,
                name: param.name.clone(),
            };
            state
                .frame_mut()
                .scopes
                .last_mut()
                .expect("frame has a scope")
                .insert(param.name.clone(), region.clone());
            let value = self.summarize(value.clone(), &param.name);
            state.write(region, value, taint.clone());
        }
        self.exec_block(state, body)
            .into_iter()
            .map(|(mut st, flow)| {
                st.frames.pop();
                match flow {
                    Flow::Return(Some((v, t))) => (st, v, t),
                    _ => (st, SVal::Int(0), TaintSet::bottom()),
                }
            })
            .collect()
    }

    fn model_builtin(
        &mut self,
        mut state: ExecState,
        expr: &Expr,
        callee: &str,
        values: &[(SVal, TaintSet)],
    ) -> (ExecState, SVal, TaintSet) {
        match callee {
            "memcpy" => {
                let n = values.get(2).and_then(|(v, _)| v.as_int());
                if let (Some((dst, _)), Some((src, _)), Some(n)) =
                    (values.first(), values.get(1), n)
                {
                    let dst_r = self.pointee_region(dst);
                    let src_r = self.pointee_region(src);
                    if let (Some(dst_r), Some(src_r)) = (dst_r, src_r) {
                        for i in 0..n.clamp(0, 64) {
                            let from = element(&src_r, i);
                            let to = element(&dst_r, i);
                            let (v, t) = self.read(&mut state, &from);
                            state.write(to, v, t);
                        }
                        let first = values[0].clone();
                        return (state, first.0, TaintSet::bottom());
                    }
                }
                (state, SVal::Unknown, join_all(values))
            }
            "memset" => {
                let n = values.get(2).and_then(|(v, _)| v.as_int());
                if let (Some((dst, _)), Some((byte, bt)), Some(n)) =
                    (values.first(), values.get(1), n)
                {
                    if let Some(dst_r) = self.pointee_region(dst) {
                        for i in 0..n.clamp(0, 64) {
                            state.write(element(&dst_r, i), byte.clone(), bt.clone());
                        }
                        let first = values[0].clone();
                        return (state, first.0, TaintSet::bottom());
                    }
                }
                (state, SVal::Unknown, join_all(values))
            }
            "sgx_read_rand" => {
                // Fills the buffer with fresh, non-secret symbols.
                let n = values.get(1).and_then(|(v, _)| v.as_int()).unwrap_or(8);
                if let Some(region) = values.first().and_then(|(v, _)| self.pointee_region(v)) {
                    for i in 0..n.clamp(0, 64) {
                        let sym = self.fresh_symbol(format!("rand[{i}]"));
                        state.write(element(&region, i), SVal::Sym(sym), TaintSet::bottom());
                    }
                }
                (state, SVal::Int(0), TaintSet::bottom())
            }
            "rand" => {
                let sym = self.fresh_symbol("rand()");
                (state, SVal::Sym(sym), TaintSet::bottom())
            }
            _ => {
                // Uninterpreted pure call: sqrt(x), unknown prototypes, or
                // too-deep recursion. Taint flows from every argument.
                let _ = expr;
                (
                    state,
                    SVal::Call {
                        func: callee.to_string(),
                        args: values.iter().map(|(v, _)| v.clone()).collect(),
                    },
                    join_all(values),
                )
            }
        }
    }

    // ---- statements --------------------------------------------------------

    fn exec_block(&mut self, state: ExecState, stmts: &[Stmt]) -> StateFlows {
        let mut flows: StateFlows = vec![(state, Flow::Normal)];
        for stmt in stmts {
            let mut next = Vec::new();
            for (st, flow) in flows {
                if flow == Flow::Normal {
                    next.extend(self.exec(st, stmt));
                } else {
                    next.push((st, flow));
                }
            }
            flows = next;
        }
        flows
    }

    fn exec(&mut self, mut state: ExecState, stmt: &Stmt) -> StateFlows {
        state.steps += 1;
        self.stats.steps += 1;
        self.profile.at(stmt.span.start).steps += 1;
        // Poll the supervisor at step granularity (every 64th step keeps
        // the Instant::now syscall off the hot path). Once it fires, the
        // task unwinds fast by dropping every remaining state; the caller
        // discards the whole wave, so partial results never leak into the
        // deterministic output.
        if self.interrupted || (state.steps.is_multiple_of(64) && self.supervisor.stop().is_some())
        {
            self.interrupted = true;
            return Vec::new();
        }
        if state.steps > self.config.max_steps_per_path {
            self.stats.dropped_steps += 1;
            self.exhausted = true;
            self.ledger.record(Degradation::StepBudget { dropped: 1 });
            return Vec::new();
        }
        match &stmt.kind {
            StmtKind::Decl(decl) => {
                let region = self.declare_local(&mut state, &decl.name);
                let mut states = vec![state];
                if let Some(init) = &decl.init {
                    states = states
                        .into_iter()
                        .flat_map(|st| self.exec_decl_init(st, &region, init, &decl.ty))
                        .collect();
                }
                states
                    .into_iter()
                    .map(|st| {
                        let st = self.snapshot(st, stmt.span);
                        (st, Flow::Normal)
                    })
                    .collect()
            }
            StmtKind::Expr(None) => vec![(state, Flow::Normal)],
            StmtKind::Expr(Some(expr)) => self
                .eval(state, expr)
                .into_iter()
                .map(|(st, _, _)| {
                    let st = self.snapshot(st, stmt.span);
                    (st, Flow::Normal)
                })
                .collect(),
            StmtKind::Block(stmts) => {
                state.frame_mut().scopes.push(BTreeMap::new());
                self.exec_block(state, stmts)
                    .into_iter()
                    .map(|(mut st, flow)| {
                        st.frame_mut().scopes.pop();
                        (st, flow)
                    })
                    .collect()
            }
            StmtKind::If {
                cond,
                then_s,
                else_s,
            } => {
                let mut out = Vec::new();
                for (st, cv, ct) in self.eval(state, cond) {
                    let cv = simplify(&cv);
                    for (branch, taken) in self.fork(st, &cv, &ct, cond.span) {
                        if taken {
                            out.extend(self.exec(branch, then_s));
                        } else if let Some(else_s) = else_s {
                            out.extend(self.exec(branch, else_s));
                        } else {
                            out.push((branch, Flow::Normal));
                        }
                    }
                }
                out
            }
            StmtKind::While { cond, body } => self.exec_loop(state, Some(cond), body, None, false),
            StmtKind::DoWhile { body, cond } => self.exec_loop(state, Some(cond), body, None, true),
            StmtKind::For {
                init,
                cond,
                step,
                body,
            } => {
                state.frame_mut().scopes.push(BTreeMap::new());
                let initialized: StateFlows = match init {
                    Some(init) => self.exec(state, init),
                    None => vec![(state, Flow::Normal)],
                };
                let mut out = Vec::new();
                for (st, flow) in initialized {
                    if flow != Flow::Normal {
                        out.push((st, flow));
                        continue;
                    }
                    out.extend(self.exec_loop(st, cond.as_ref(), body, step.as_ref(), false));
                }
                out.into_iter()
                    .map(|(mut st, flow)| {
                        st.frame_mut().scopes.pop();
                        (st, flow)
                    })
                    .collect()
            }
            StmtKind::Return(value) => match value {
                None => vec![(state, Flow::Return(None))],
                Some(expr) => self
                    .eval(state, expr)
                    .into_iter()
                    .map(|(st, v, t)| {
                        let st = self.snapshot(st, stmt.span);
                        let v = self.summarize(simplify(&v), "return");
                        (st, Flow::Return(Some((v, t))))
                    })
                    .collect(),
            },
            StmtKind::Break => vec![(state, Flow::Break)],
            StmtKind::Continue => vec![(state, Flow::Continue)],
        }
    }

    fn exec_decl_init(
        &mut self,
        state: ExecState,
        region: &Region,
        init: &Init,
        ty: &Type,
    ) -> Vec<ExecState> {
        match init {
            Init::Expr(expr) => self
                .eval(state, expr)
                .into_iter()
                .map(|(mut st, v, t)| {
                    let v = self.summarize(v, &region_hint(region));
                    st.write(region.clone(), v, t);
                    st
                })
                .collect(),
            Init::List(items) => {
                let mut states = vec![state];
                match ty {
                    Type::Array(elem, _) => {
                        for (i, item) in items.iter().enumerate() {
                            let sub = element(region, i as i64);
                            states = states
                                .into_iter()
                                .flat_map(|st| self.exec_decl_init(st, &sub, item, elem))
                                .collect();
                        }
                    }
                    Type::Struct(name) => {
                        let fields: Vec<_> = self
                            .unit
                            .struct_def(name)
                            .map(|d| {
                                d.fields
                                    .iter()
                                    .map(|f| (f.name.clone(), f.ty.clone()))
                                    .collect()
                            })
                            .unwrap_or_default();
                        for (item, (fname, fty)) in items.iter().zip(fields) {
                            let sub = Region::field(region.clone(), fname);
                            states = states
                                .into_iter()
                                .flat_map(|st| self.exec_decl_init(st, &sub, item, &fty))
                                .collect();
                        }
                    }
                    _ => {}
                }
                states
            }
        }
    }

    fn fork(
        &mut self,
        state: ExecState,
        cond: &SVal,
        cond_taint: &TaintSet,
        span: Span,
    ) -> Vec<(ExecState, bool)> {
        // Decide feasibility with cheap, memoized probes first, then clone
        // the (heavy) state only when both directions survive. The cache is
        // safe here because these probes are speculative: the committed
        // `assume` below still runs directly on the path's constraints.
        let feasible: Vec<bool> = [true, false]
            .into_iter()
            .map(|taken| self.probe(&state, cond, taken, span.start) == Feasibility::Feasible)
            .collect();
        let pruned = feasible.iter().filter(|f| !**f).count();
        self.stats.infeasible += pruned;
        self.profile.at(span.start).infeasible += pruned as u64;
        if cond_taint.is_tainted() {
            self.profile.at(span.start).secret_branches += 1;
        }
        let mut pending = Vec::new();
        match (feasible[0], feasible[1]) {
            (true, true) => {
                pending.push((state.clone(), true));
                pending.push((state, false));
            }
            (true, false) => pending.push((state, true)),
            (false, true) => pending.push((state, false)),
            (false, false) => {}
        }
        let mut out = Vec::new();
        for (mut st, taken) in pending {
            let feasibility = st.constraints.assume(cond, taken);
            debug_assert_eq!(feasibility, Feasibility::Feasible);
            if self.config.feasibility != FeasibilityMode::Syntactic {
                // Commit the Tier-1 refinement alongside the syntactic one.
                // The probe above already ran this very computation on a
                // clone and found it feasible, so the committed replay
                // cannot contradict.
                let domain_feasibility = st.domain.assume(cond, taken);
                debug_assert_eq!(domain_feasibility, Feasibility::Feasible);
                let _ = domain_feasibility;
            }
            if !cond.is_const() {
                st.path.push(cond.clone(), taken);
            }
            st.pi_taint = taint::cond(cond_taint, &st.pi_taint);
            let st = self.snapshot(st, span);
            out.push((st, taken));
        }
        if out.len() == 2 {
            // Bound the work, not just the harvest: once the fork count
            // could already produce `max_paths` leaves, stop splitting.
            // `base_forks` carries the count from before this wave, so the
            // decision is identical for every worker layout.
            if self.base_forks + self.stats.forks >= self.config.max_paths.saturating_mul(4) {
                self.exhausted = true;
                self.ledger.record(Degradation::PathBudget { dropped: 1 });
                out.truncate(1);
            } else {
                self.stats.forks += 1;
                self.profile.at(span.start).forks += 1;
            }
        }
        out
    }

    fn exec_loop(
        &mut self,
        state: ExecState,
        cond: Option<&Expr>,
        body: &Stmt,
        step: Option<&Expr>,
        body_first: bool,
    ) -> StateFlows {
        let write_mark = state.write_log.len();
        let mut out: StateFlows = Vec::new();
        // queue of (state, symbolic iterations, concrete iterations,
        // condition already satisfied?)
        let mut queue: Vec<(ExecState, usize, usize, bool)> = vec![(state, 0, 0, body_first)];

        while let Some((st, sym_iter, conc_iter, skip_cond)) = queue.pop() {
            // 1. Evaluate the continuation condition (unless do-while's
            //    first body execution is pending). Track whether the guard
            //    decided concretely (no real fork) — concrete iterations do
            //    not cost path explosion and get a far larger budget.
            let continuing: Vec<(ExecState, bool)> = if skip_cond {
                vec![(st, true)]
            } else {
                match cond {
                    None => vec![(st, true)], // for(;;)
                    Some(cond_expr) => {
                        let mut conts = Vec::new();
                        for (cst, cv, ct) in self.eval(st, cond_expr) {
                            let cv = simplify(&cv);
                            let concrete = cv.is_const()
                                || self.probe(&cst, &cv, true, cond_expr.span.start)
                                    == Feasibility::Infeasible
                                || self.probe(&cst, &cv, false, cond_expr.span.start)
                                    == Feasibility::Infeasible;
                            for (branch, taken) in self.fork(cst, &cv, &ct, cond_expr.span) {
                                if taken {
                                    conts.push((branch, concrete));
                                } else {
                                    out.push((branch, Flow::Normal));
                                }
                            }
                        }
                        conts
                    }
                }
            };

            // 2. Execute the body in each continuing state.
            for (body_state, concrete) in continuing {
                let over_budget = if concrete {
                    conc_iter >= self.config.concrete_loop_limit
                } else {
                    sym_iter >= self.config.loop_bound
                };
                if over_budget {
                    // Widen: havoc everything the loop wrote, then exit.
                    let mut widened = body_state;
                    self.widen(&mut widened, write_mark);
                    self.stats.widenings += 1;
                    self.profile
                        .at(cond.map_or(body.span.start, |c| c.span.start))
                        .widenings += 1;
                    out.push((widened, Flow::Normal));
                    continue;
                }
                let (next_sym, next_conc) = if concrete {
                    (sym_iter, conc_iter + 1)
                } else {
                    (sym_iter + 1, conc_iter)
                };
                for (after_body, flow) in self.exec(body_state, body) {
                    match flow {
                        Flow::Normal | Flow::Continue => {
                            let stepped: Vec<ExecState> = match step {
                                None => vec![after_body],
                                Some(step_expr) => self
                                    .eval(after_body, step_expr)
                                    .into_iter()
                                    .map(|(s, _, _)| s)
                                    .collect(),
                            };
                            for s in stepped {
                                queue.push((s, next_sym, next_conc, false));
                            }
                        }
                        Flow::Break => out.push((after_body, Flow::Normal)),
                        Flow::Return(v) => out.push((after_body, Flow::Return(v))),
                    }
                }
            }
        }
        out
    }

    /// Havoc-widening: every region written since `mark` is rebound to a
    /// fresh symbol that keeps the region's (joined) taint, so bounded
    /// unrolling stays sound for taint while guaranteeing termination.
    fn widen(&mut self, state: &mut ExecState, mark: usize) {
        self.ledger.record(Degradation::LoopWidened { count: 1 });
        let written: BTreeSet<Region> = state.write_log.iter_from(mark).cloned().collect();
        for region in written {
            let hint = format!("widened({})", region_hint(&region));
            let sym = self.fresh_symbol(hint);
            let taint = state.taint_of(&region);
            state.store.bind(region.clone(), SVal::Sym(sym));
            state.taints.set(region, taint);
        }
    }

    fn snapshot(&mut self, mut state: ExecState, span: Span) -> ExecState {
        if self.config.record_trace && state.frames.len() == 1 {
            let text = self
                .source
                .map(|src| span.slice(src).to_string())
                .unwrap_or_else(|| format!("<bytes {span}>"));
            let step = TraceStep::capture(&text, &state);
            state.trace.push(step);
        }
        state
    }
}

fn element(base: &Region, index: i64) -> Region {
    Region::element(base.clone(), SVal::Int(index))
}

fn join_all(values: &[(SVal, TaintSet)]) -> TaintSet {
    let mut out = TaintSet::bottom();
    for (_, t) in values {
        out.join_assign(t);
    }
    out
}

fn cast_value(value: SVal, ty: &Type) -> SVal {
    match (&value, ty) {
        (SVal::Float(f), t) if t.is_integer() => SVal::Int(f.0 as i64),
        (SVal::Int(v), t) if t.is_float() => SVal::float(*v as f64),
        (SVal::Int(v), Type::Char) => SVal::Int(*v as i8 as i64),
        (SVal::Int(v), Type::Int) => SVal::Int(*v as i32 as i64),
        // Symbolic values pass through casts unchanged (documented
        // imprecision, identical to the paper's prototype).
        _ => value,
    }
}

/// Renders a region as a human-readable hint (`secrets[0]`, `p.x`).
pub fn region_hint(region: &Region) -> String {
    match region {
        Region::Var { name, .. } => name.clone(),
        Region::Global { name } => name.clone(),
        Region::Sym { symbol } => symbol.hint.clone(),
        Region::Element { base, index } => format!("{}[{index}]", region_hint(base)),
        Region::Field { base, field } => format!("{}.{field}", region_hint(base)),
        Region::Str { .. } => "str".into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn explore(src: &str, entry: &str, bindings: &[ParamBinding]) -> Exploration {
        let unit = minic::parse(src).expect("parses");
        Engine::new(&unit, EngineConfig::default())
            .run(entry, bindings)
            .expect("runs")
    }

    #[test]
    fn straight_line_single_path() {
        let ex = explore(
            "int f(int a) { int b = a + 1; return b * 2; }",
            "f",
            &[ParamBinding::Scalar],
        );
        assert_eq!(ex.paths.len(), 1);
        let (value, _) = ex.paths[0].return_value.as_ref().unwrap();
        assert_eq!(value.to_string(), "(($a + 1) * 2)");
    }

    #[test]
    fn branch_forks_two_paths() {
        let ex = explore(
            "int f(int a) { if (a > 0) return 1; return 0; }",
            "f",
            &[ParamBinding::Scalar],
        );
        assert_eq!(ex.paths.len(), 2);
        let returns: BTreeSet<String> = ex
            .paths
            .iter()
            .map(|p| p.return_value.as_ref().unwrap().0.to_string())
            .collect();
        assert_eq!(returns, ["0", "1"].iter().map(|s| s.to_string()).collect());
    }

    #[test]
    fn infeasible_branch_is_pruned() {
        let ex = explore(
            "int f(int a) { if (a > 10) { if (a < 5) return 99; return 1; } return 0; }",
            "f",
            &[ParamBinding::Scalar],
        );
        let returns: Vec<String> = ex
            .paths
            .iter()
            .map(|p| p.return_value.as_ref().unwrap().0.to_string())
            .collect();
        assert!(!returns.contains(&"99".to_string()));
        assert_eq!(ex.paths.len(), 2);
        assert!(ex.stats.infeasible >= 1);
    }

    #[test]
    fn concrete_condition_does_not_fork() {
        let ex = explore(
            "int f() { int a = 3; if (a > 1) return 1; return 0; }",
            "f",
            &[],
        );
        assert_eq!(ex.paths.len(), 1);
        assert_eq!(ex.paths[0].return_value.as_ref().unwrap().0, SVal::Int(1));
    }

    #[test]
    fn secret_scalar_taints_return() {
        let ex = explore(
            "int f(int h) { return h + 4; }",
            "f",
            &[ParamBinding::SecretScalar],
        );
        let (value, taint) = ex.paths[0].return_value.as_ref().unwrap();
        assert_eq!(value.to_string(), "($h + 4)");
        assert!(taint.is_reversible());
    }

    #[test]
    fn two_secrets_mix_to_top() {
        let ex = explore(
            "int f(int h1, int h2) { return h1 + 4 + h2; }",
            "f",
            &[ParamBinding::SecretScalar, ParamBinding::SecretScalar],
        );
        let (_, taint) = ex.paths[0].return_value.as_ref().unwrap();
        assert_eq!(taint.label(), taint::Label::Top);
    }

    #[test]
    fn secret_pointer_elements_mint_distinct_sources() {
        let ex = explore(
            "int f(char *s) { return s[0] + s[1]; }",
            "f",
            &[ParamBinding::SecretPointer],
        );
        let (_, taint) = ex.paths[0].return_value.as_ref().unwrap();
        assert_eq!(taint.len(), 2);
        assert_eq!(ex.secret_sources.len(), 2);
        let names: Vec<&str> = ex.secret_sources.values().map(|s| s.as_str()).collect();
        assert!(names.contains(&"s[0]") && names.contains(&"s[1]"));
    }

    #[test]
    fn same_element_read_twice_is_same_source() {
        let ex = explore(
            "int f(char *s) { return s[0] + s[0]; }",
            "f",
            &[ParamBinding::SecretPointer],
        );
        let (_, taint) = ex.paths[0].return_value.as_ref().unwrap();
        assert_eq!(taint.len(), 1);
    }

    #[test]
    fn out_pointer_writes_are_visible_in_store() {
        let ex = explore(
            "void f(char *s, char *out) { out[0] = s[0] + 100; }",
            "f",
            &[ParamBinding::SecretPointer, ParamBinding::OutPointer],
        );
        assert_eq!(ex.out_bases.len(), 1);
        let (_, base) = &ex.out_bases[0];
        let st = &ex.paths[0].state;
        let writes: Vec<_> = st.store.regions_within(base).collect();
        assert_eq!(writes.len(), 1);
        let (region, value) = writes[0];
        assert!(st.taints.get(region).is_reversible());
        assert!(value.to_string().contains("s[0]"));
    }

    #[test]
    fn branch_on_secret_taints_pi() {
        let ex = explore(
            "int f(int h) { if (h == 19) return 0; return 1; }",
            "f",
            &[ParamBinding::SecretScalar],
        );
        assert_eq!(ex.paths.len(), 2);
        for path in &ex.paths {
            assert!(path.state.pi_taint.is_reversible());
        }
    }

    #[test]
    fn loops_are_bounded_and_widen() {
        let ex = explore(
            "int f(int n) { int s = 0; int i = 0; while (i < n) { s = s + i; i = i + 1; } return s; }",
            "f",
            &[ParamBinding::Scalar],
        );
        assert!(!ex.paths.is_empty());
        assert!(ex.stats.widenings >= 1);
        // the widened return is a fresh symbol, not a concrete sum
        let widened = ex.paths.iter().any(|p| {
            p.return_value
                .as_ref()
                .unwrap()
                .0
                .to_string()
                .contains("widened")
        });
        assert!(widened);
    }

    #[test]
    fn concrete_loop_unrolls_exactly() {
        let ex = explore(
            "int f() { int s = 0; for (int i = 0; i < 3; i++) s += 2; return s; }",
            "f",
            &[],
        );
        assert_eq!(ex.paths.len(), 1);
        assert_eq!(ex.paths[0].return_value.as_ref().unwrap().0, SVal::Int(6));
    }

    #[test]
    fn taint_survives_widening() {
        let ex = explore(
            "int f(char *s, int n) { int acc = 0; int i = 0; while (i < n) { acc = acc + s[0]; i++; } return acc; }",
            "f",
            &[ParamBinding::SecretPointer, ParamBinding::Scalar],
        );
        // at least one path returns a secret-tainted accumulator
        assert!(ex
            .paths
            .iter()
            .any(|p| p.return_value.as_ref().unwrap().1.is_tainted()));
    }

    #[test]
    fn calls_are_inlined() {
        let ex = explore(
            "int dbl(int x) { return 2 * x; }\nint f(int h) { return dbl(h); }",
            "f",
            &[ParamBinding::SecretScalar],
        );
        let (value, taint) = ex.paths[0].return_value.as_ref().unwrap();
        assert_eq!(value.to_string(), "(2 * $h)");
        assert!(taint.is_reversible());
    }

    #[test]
    fn callee_branches_fork_caller_paths() {
        let ex = explore(
            "int sgn(int x) { if (x < 0) return -1; return 1; }\nint f(int a) { return sgn(a); }",
            "f",
            &[ParamBinding::Scalar],
        );
        assert_eq!(ex.paths.len(), 2);
    }

    #[test]
    fn recursion_beyond_depth_is_uninterpreted() {
        let src = "int fact(int n) { if (n <= 1) return 1; return n * fact(n - 1); }\nint f(int n) { return fact(n); }";
        let unit = minic::parse(src).unwrap();
        let config = EngineConfig {
            inline_depth: 3,
            ..EngineConfig::default()
        };
        let ex = Engine::new(&unit, config)
            .run("f", &[ParamBinding::Scalar])
            .unwrap();
        assert!(!ex.paths.is_empty());
        assert!(ex.paths.iter().any(|p| p
            .return_value
            .as_ref()
            .unwrap()
            .0
            .to_string()
            .contains("fact")));
    }

    #[test]
    fn uninterpreted_builtins_carry_taint() {
        let ex = explore(
            "double f(double h) { return sqrt(h); }",
            "f",
            &[ParamBinding::SecretScalar],
        );
        let (value, taint) = ex.paths[0].return_value.as_ref().unwrap();
        assert_eq!(value.to_string(), "sqrt($h)");
        assert!(taint.is_reversible());
    }

    #[test]
    fn sink_function_records_events() {
        let src = "void send(int v);\nvoid f(int h) { send(h * 2); }";
        let unit = minic::parse(src).unwrap();
        let mut config = EngineConfig::default();
        config.sink_functions.insert("send".into());
        let ex = Engine::new(&unit, config)
            .run("f", &[ParamBinding::SecretScalar])
            .unwrap();
        let events = &ex.paths[0].state.events;
        assert_eq!(events.len(), 1);
        let event = events.get(0).expect("one event");
        assert!(matches!(event.channel, Channel::SinkCall { .. }));
        assert!(event.taint.is_reversible());
    }

    #[test]
    fn source_function_mints_secret() {
        let src = "int ipp_aes_decrypt(char *dst, char *src, int n);\nint f(char *buf) { int k = ipp_aes_decrypt(buf, buf, 4); return k; }";
        let unit = minic::parse(src).unwrap();
        let mut config = EngineConfig::default();
        config.source_functions.insert("ipp_aes_decrypt".into());
        let ex = Engine::new(&unit, config)
            .run("f", &[ParamBinding::Pointer])
            .unwrap();
        let (_, taint) = ex.paths[0].return_value.as_ref().unwrap();
        assert!(taint.is_reversible());
    }

    #[test]
    fn struct_fields_are_separate_regions() {
        let ex = explore(
            "struct p { int x; int y; };\nint f(struct p *q) { q->x = 1; q->y = 2; return q->x + q->y; }",
            "f",
            &[ParamBinding::Pointer],
        );
        assert_eq!(ex.paths[0].return_value.as_ref().unwrap().0, SVal::Int(3));
    }

    #[test]
    fn arrays_and_pointer_arithmetic_agree() {
        let ex = explore(
            "int f() { int xs[3]; xs[0] = 7; *(xs + 1) = 8; return xs[0] + xs[1]; }",
            "f",
            &[],
        );
        assert_eq!(ex.paths[0].return_value.as_ref().unwrap().0, SVal::Int(15));
    }

    #[test]
    fn binding_errors() {
        let unit = minic::parse("int f(int a) { return a; }").unwrap();
        let engine = Engine::new(&unit, EngineConfig::default());
        assert!(matches!(
            engine.run("g", &[]),
            Err(EngineError::UnknownFunction(_))
        ));
        assert!(matches!(
            engine.run("f", &[]),
            Err(EngineError::BindingArity { .. })
        ));
        assert!(matches!(
            engine.run("f", &[ParamBinding::Pointer]),
            Err(EngineError::BindingType { .. })
        ));
    }

    #[test]
    fn trace_records_listing1_shape() {
        let src = "int enclave_process_data(char *secrets, char *output) {\n    int temporary = secrets[0] + 100;\n    output[0] = temporary + 1;\n    if (secrets[1] == 0)\n        return 0;\n    else\n        return 1;\n}";
        let unit = minic::parse(src).unwrap();
        let config = EngineConfig {
            record_trace: true,
            ..EngineConfig::default()
        };
        let ex = Engine::new(&unit, config)
            .with_source(src)
            .run(
                "enclave_process_data",
                &[ParamBinding::SecretPointer, ParamBinding::OutPointer],
            )
            .unwrap();
        assert_eq!(ex.paths.len(), 2);
        let traces = ex.traces();
        assert!(traces.iter().all(|t| !t.is_empty()));
        let rendered = crate::trace::render_table(&traces);
        assert!(rendered.contains("secrets[0]"));
    }

    #[test]
    fn break_and_continue() {
        let ex = explore(
            "int f() { int s = 0; for (int i = 0; i < 10; i++) { if (i == 2) continue; if (i == 4) break; s += i; } return s; }",
            "f",
            &[],
        );
        assert_eq!(ex.paths.len(), 1);
        // 0 + 1 + 3 = 4
        assert_eq!(ex.paths[0].return_value.as_ref().unwrap().0, SVal::Int(4));
    }

    #[test]
    fn do_while_executes_body_first() {
        let ex = explore(
            "int f() { int i = 10; int c = 0; do { c++; i++; } while (i < 5); return c; }",
            "f",
            &[],
        );
        assert_eq!(ex.paths[0].return_value.as_ref().unwrap().0, SVal::Int(1));
    }

    #[test]
    fn memcpy_copies_values_and_taint() {
        let ex = explore(
            "void f(char *s, char *out) { char tmp[4]; memcpy(tmp, s, 2); out[0] = tmp[0]; }",
            "f",
            &[ParamBinding::SecretPointer, ParamBinding::OutPointer],
        );
        let (_, base) = &ex.out_bases[0];
        let st = &ex.paths[0].state;
        let (region, _) = st.store.regions_within(base).next().expect("a write");
        assert!(st.taints.get(region).is_reversible());
    }

    #[test]
    fn ternary_on_secret_taints_result() {
        let ex = explore(
            "int f(int h) { int r = h > 0 ? 1 : 0; return r; }",
            "f",
            &[ParamBinding::SecretScalar],
        );
        assert!(ex.paths[0].return_value.as_ref().unwrap().1.is_tainted());
    }

    #[test]
    fn global_initializers_are_applied() {
        let ex = explore("int limit = 41;\nint f() { return limit + 1; }", "f", &[]);
        assert_eq!(ex.paths[0].return_value.as_ref().unwrap().0, SVal::Int(42));
    }

    #[test]
    fn shadowed_locals_do_not_collide() {
        let ex = explore(
            "int f() { int x = 1; { int x = 2; x = x + 1; } return x; }",
            "f",
            &[],
        );
        assert_eq!(ex.paths[0].return_value.as_ref().unwrap().0, SVal::Int(1));
    }

    #[test]
    fn incdec_forms() {
        let ex = explore(
            "int f() { int i = 5; int a = i++; int b = ++i; int c = i--; int d = --i; return a * 1000 + b * 100 + c * 10 + d; }",
            "f",
            &[],
        );
        // a=5, b=7, c=7, d=5
        assert_eq!(
            ex.paths[0].return_value.as_ref().unwrap().0,
            SVal::Int(5 * 1000 + 7 * 100 + 7 * 10 + 5)
        );
    }

    #[test]
    fn return_events_cover_dropped_paths() {
        // 2^4 = 16 paths from 4 independent bit tests, budget 4: every
        // return observation must reach the global event log, kept or
        // dropped alike (Algorithm 1 checks at declassify time).
        let mut body = String::from("int f(int a) { int s = 0;\n");
        for i in 0..4 {
            body.push_str(&format!("if ((a >> {i}) & 1) s += 1;\n"));
        }
        body.push_str("return s; }");
        let unit = minic::parse(&body).unwrap();
        let config = EngineConfig {
            max_paths: 4,
            ..EngineConfig::default()
        };
        let ex = Engine::new(&unit, config)
            .run("f", &[ParamBinding::Scalar])
            .unwrap();
        assert!(ex.exhausted);
        assert_eq!(ex.stats.completed, 4);
        assert_eq!(ex.stats.dropped_paths, 12);
        let global_returns = ex
            .events
            .iter()
            .filter(|e| matches!(e.channel, Channel::Return))
            .count();
        assert_eq!(global_returns, ex.stats.completed + ex.stats.dropped_paths);
        // Kept paths still carry their own copy, like sink events do.
        assert!(ex.paths.iter().all(|p| p
            .state
            .events
            .iter()
            .any(|e| matches!(e.channel, Channel::Return))));
    }

    #[test]
    fn workers_produce_identical_explorations() {
        // Branches, a widened loop, an inlined call, a sink and a source
        // function all mint ids; the parallel run must be byte-identical.
        let src = "int ipp_decrypt(char *dst, char *src, int n);\n\
                   void send(int v);\n\
                   int helper(int x) { if (x > 3) return x + 1; return x; }\n\
                   int f(char *s, int n, char *out) {\n\
                       int acc = 0;\n\
                       int i = 0;\n\
                       while (i < n) { acc = acc + s[0]; i = i + 1; }\n\
                       if (s[1] > 7) acc = helper(acc);\n\
                       ipp_decrypt(out, s, 2);\n\
                       send(acc);\n\
                       out[0] = acc;\n\
                       return acc;\n\
                   }";
        let unit = minic::parse(src).unwrap();
        let bindings = [
            ParamBinding::SecretPointer,
            ParamBinding::Scalar,
            ParamBinding::InOutPointer,
        ];
        let mut base = EngineConfig::default();
        base.sink_functions.insert("send".into());
        base.source_functions.insert("ipp_decrypt".into());
        let sequential = Engine::new(
            &unit,
            EngineConfig {
                workers: 1,
                ..base.clone()
            },
        )
        .run("f", &bindings)
        .unwrap();
        for workers in [2, 4] {
            let parallel = Engine::new(
                &unit,
                EngineConfig {
                    workers,
                    ..base.clone()
                },
            )
            .run("f", &bindings)
            .unwrap();
            assert_eq!(sequential, parallel, "workers={workers} diverged");
        }
        // Sanity: the workload actually forked and minted secret sources.
        assert!(sequential.paths.len() > 1);
        assert!(!sequential.secret_sources.is_empty());
    }

    #[test]
    fn path_budget_truncates() {
        // 2^12 paths from 12 independent bit tests (the range-based
        // constraint manager cannot correlate them); budget of 16.
        let mut body = String::from("int f(int a) { int s = 0;\n");
        for i in 0..12 {
            body.push_str(&format!("if ((a >> {i}) & 1) s += 1;\n"));
        }
        body.push_str("return s; }");
        let unit = minic::parse(&body).unwrap();
        let config = EngineConfig {
            max_paths: 16,
            ..EngineConfig::default()
        };
        let ex = Engine::new(&unit, config)
            .run("f", &[ParamBinding::Scalar])
            .unwrap();
        assert!(ex.exhausted);
        assert_eq!(ex.paths.len(), 16);
        assert!(ex
            .ledger
            .entries()
            .iter()
            .any(|d| matches!(d, Degradation::PathBudget { .. })));
    }

    #[test]
    fn effective_workers_clamps_to_available_parallelism() {
        let available = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let auto = EngineConfig {
            workers: 0,
            ..EngineConfig::default()
        };
        assert_eq!(auto.effective_workers(), available);
        let oversubscribed = EngineConfig {
            workers: available + 512,
            ..EngineConfig::default()
        };
        assert_eq!(oversubscribed.effective_workers(), available);
        let modest = EngineConfig {
            workers: 1,
            ..EngineConfig::default()
        };
        assert_eq!(modest.effective_workers(), 1);
    }

    const BRANCHY: &str = "int f(int a) {\n\
                           int s = 0;\n\
                           if ((a >> 0) & 1) s += 1;\n\
                           if ((a >> 1) & 1) s += 2;\n\
                           if ((a >> 2) & 1) s += 4;\n\
                           if ((a >> 3) & 1) s += 8;\n\
                           return s; }";

    #[test]
    fn expired_deadline_cuts_at_wave_zero_deterministically() {
        let unit = minic::parse(BRANCHY).unwrap();
        let mut runs = Vec::new();
        for workers in [1, 4] {
            let config = EngineConfig {
                workers,
                deadline: Some(Duration::ZERO),
                ..EngineConfig::default()
            };
            let ex = Engine::new(&unit, config)
                .run("f", &[ParamBinding::Scalar])
                .unwrap();
            assert!(ex.exhausted);
            assert_eq!(ex.paths.len(), 0);
            assert_eq!(ex.stats.dropped_deadline, 1);
            assert!(matches!(
                ex.ledger.entries(),
                [Degradation::DeadlineExceeded {
                    wave: 0,
                    dropped: 1
                }]
            ));
            runs.push(ex);
        }
        assert_eq!(runs[0], runs[1], "deadline cut diverged across workers");
    }

    #[test]
    fn cancellation_token_stops_the_run() {
        let unit = minic::parse(BRANCHY).unwrap();
        let cancel = CancelToken::new();
        cancel.cancel();
        let config = EngineConfig {
            cancel: cancel.clone(),
            ..EngineConfig::default()
        };
        let ex = Engine::new(&unit, config)
            .run("f", &[ParamBinding::Scalar])
            .unwrap();
        assert!(ex.exhausted);
        assert!(ex.paths.is_empty());
        assert!(matches!(
            ex.ledger.entries(),
            [Degradation::Cancelled { wave: 0, .. }]
        ));
    }

    #[test]
    fn panicking_path_is_isolated_and_deterministic() {
        // The fork happens one wave before the panicking call, so `boom`
        // runs in its own path-task; the other path must survive
        // untouched, identically at every worker count.
        let src = "void boom(void);\n\
                   int f(int a) {\n\
                       int hit = 0;\n\
                       if (a > 0) hit = 1;\n\
                       if (hit) boom();\n\
                       return hit; }";
        let unit = minic::parse(src).unwrap();
        let mut runs = Vec::new();
        for workers in [1, 4] {
            let config = EngineConfig {
                workers,
                inject_panic_on_call: Some("boom".into()),
                ..EngineConfig::default()
            };
            let ex = Engine::new(&unit, config)
                .run("f", &[ParamBinding::Scalar])
                .unwrap();
            assert!(ex.exhausted);
            assert_eq!(ex.stats.dropped_panics, 1);
            assert_eq!(ex.paths.len(), 1);
            assert_eq!(
                ex.paths[0].return_value.as_ref().map(|(v, _)| v.clone()),
                Some(SVal::Int(0))
            );
            assert!(ex.ledger.entries().iter().any(|d| matches!(
                d,
                Degradation::PathPanicked { message } if message.contains("boom")
            )));
            runs.push(ex);
        }
        assert_eq!(runs[0], runs[1], "panic isolation diverged across workers");
    }

    #[test]
    fn step_budget_lands_in_the_ledger() {
        let src = "int f(int a) { int i = 0; while (i < 100) { i = i + 1; } return i; }";
        let unit = minic::parse(src).unwrap();
        let config = EngineConfig {
            max_steps_per_path: 10,
            ..EngineConfig::default()
        };
        let ex = Engine::new(&unit, config)
            .run("f", &[ParamBinding::Scalar])
            .unwrap();
        assert!(ex.exhausted);
        assert!(ex
            .ledger
            .entries()
            .iter()
            .any(|d| matches!(d, Degradation::StepBudget { .. })));
    }

    fn tmp_snapshot_path(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!(
            "privacyscope_engine_{tag}_{}.ckpt",
            std::process::id()
        ))
    }

    #[test]
    fn deadline_checkpoint_resumes_to_identical_exploration() {
        let unit = minic::parse(BRANCHY).unwrap();
        for workers in [1, 4] {
            let path = tmp_snapshot_path(&format!("deadline_w{workers}"));
            let interrupted = Engine::new(
                &unit,
                EngineConfig {
                    workers,
                    deadline: Some(Duration::ZERO),
                    checkpoint: Some(path.clone()),
                    ..EngineConfig::default()
                },
            )
            .run("f", &[ParamBinding::Scalar])
            .unwrap();
            // The interrupted run still reports its own degradation, but it
            // left a resumable snapshot behind and says so.
            assert!(matches!(
                interrupted.ledger.entries(),
                [Degradation::DeadlineExceeded { .. }]
            ));
            assert_eq!(interrupted.checkpoint.as_deref(), Some(path.as_path()));

            let snapshot = Snapshot::load(&path).expect("snapshot loads");
            let resumed = Engine::new(
                &unit,
                EngineConfig {
                    workers,
                    ..EngineConfig::default()
                },
            )
            .resume("f", &[ParamBinding::Scalar], snapshot)
            .unwrap();
            let uninterrupted = Engine::new(
                &unit,
                EngineConfig {
                    workers,
                    ..EngineConfig::default()
                },
            )
            .run("f", &[ParamBinding::Scalar])
            .unwrap();
            assert_eq!(
                resumed, uninterrupted,
                "resume diverged from the uninterrupted run at workers={workers}"
            );
            let _ = std::fs::remove_file(&path);
        }
    }

    #[test]
    fn yield_hook_suspends_into_a_resumable_snapshot() {
        let unit = minic::parse(BRANCHY).unwrap();
        for workers in [1, 4] {
            let path = tmp_snapshot_path(&format!("yield_w{workers}"));
            let hook = YieldToken::new();
            hook.request();
            let suspended = Engine::new(
                &unit,
                EngineConfig {
                    workers,
                    yield_hook: hook.clone(),
                    checkpoint: Some(path.clone()),
                    ..EngineConfig::default()
                },
            )
            .run("f", &[ParamBinding::Scalar])
            .unwrap();
            // The suspended run is honestly partial (its paths were parked,
            // not explored) and points at the snapshot to resume from.
            assert!(suspended.paths.is_empty());
            assert!(matches!(
                suspended.ledger.entries(),
                [Degradation::Suspended {
                    wave: 0,
                    dropped: 1
                }]
            ));
            assert!(!suspended.ledger.is_complete());
            assert_eq!(suspended.checkpoint.as_deref(), Some(path.as_path()));

            // Migration: clear the token, resume elsewhere — the result is
            // byte-identical to a run that was never suspended.
            hook.clear();
            let snapshot = Snapshot::load(&path).expect("snapshot loads");
            let resumed = Engine::new(
                &unit,
                EngineConfig {
                    workers,
                    yield_hook: hook,
                    ..EngineConfig::default()
                },
            )
            .resume("f", &[ParamBinding::Scalar], snapshot)
            .unwrap();
            let uninterrupted = Engine::new(
                &unit,
                EngineConfig {
                    workers,
                    ..EngineConfig::default()
                },
            )
            .run("f", &[ParamBinding::Scalar])
            .unwrap();
            assert_eq!(
                resumed, uninterrupted,
                "suspend/resume diverged from the uninterrupted run at workers={workers}"
            );
            let _ = std::fs::remove_file(&path);
        }
    }

    #[test]
    fn periodic_snapshot_survives_engine_drop_and_resumes_identically() {
        let unit = minic::parse(BRANCHY).unwrap();
        let path = tmp_snapshot_path("periodic");
        let full = {
            // Scope the writing engine so resume happens against a fresh
            // engine with nothing shared — the snapshot on disk is the only
            // carrier, as after a process death.
            let engine = Engine::new(
                &unit,
                EngineConfig {
                    checkpoint: Some(path.clone()),
                    checkpoint_every: 1,
                    ..EngineConfig::default()
                },
            );
            engine.run("f", &[ParamBinding::Scalar]).unwrap()
        };
        assert_eq!(full.checkpoint.as_deref(), Some(path.as_path()));

        let snapshot = Snapshot::load(&path).expect("snapshot loads");
        assert!(snapshot.wave() > 0, "periodic snapshot is past wave zero");
        let resumed = Engine::new(&unit, EngineConfig::default())
            .resume("f", &[ParamBinding::Scalar], snapshot)
            .unwrap();
        // The writing run records the snapshot path it produced; the resumed
        // run wrote none. Every analysis-visible field must match exactly.
        let mut full = full;
        full.checkpoint = None;
        assert_eq!(resumed, full, "resume from a mid-run snapshot diverged");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn resume_with_mismatched_config_is_a_typed_error() {
        let unit = minic::parse(BRANCHY).unwrap();
        let path = tmp_snapshot_path("mismatch");
        Engine::new(
            &unit,
            EngineConfig {
                deadline: Some(Duration::ZERO),
                checkpoint: Some(path.clone()),
                ..EngineConfig::default()
            },
        )
        .run("f", &[ParamBinding::Scalar])
        .unwrap();
        let snapshot = Snapshot::load(&path).expect("snapshot loads");
        let err = Engine::new(
            &unit,
            EngineConfig {
                loop_bound: 7,
                ..EngineConfig::default()
            },
        )
        .resume("f", &[ParamBinding::Scalar], snapshot)
        .unwrap_err();
        assert!(
            matches!(
                err,
                EngineError::Checkpoint(
                    crate::checkpoint::CheckpointError::FingerprintMismatch { .. }
                )
            ),
            "expected a typed fingerprint mismatch, got: {err}"
        );
        let _ = std::fs::remove_file(&path);
    }
}
