//! Path-sensitive symbolic execution over Mini-C, with the region-based
//! memory model of the Clang Static Analyzer.
//!
//! This crate is the reproduction of the engine half of the paper's
//! prototype (§II-B, §II-C, §VI-B of *PrivacyScope*, ICDCS 2020). Its state
//! is exactly the 4-tuple *(stmt, env, σ, π)* described there:
//!
//! * the **environment** maps lvalue expressions to [`Region`]s
//!   ([`state::Environment`]);
//! * the **store** σ maps regions to symbolic values ([`value::SVal`],
//!   [`state::Store`]);
//! * the **path condition** π accumulates the branch assumptions of the
//!   current path ([`path::PathCondition`]) and is checked for feasibility
//!   by a Clang-SA-grade range [`constraints::ConstraintManager`];
//! * regions form the Clang hierarchy: `VarRegion`, `ElementRegion`,
//!   `FieldRegion` and `SymRegion` for unknown pointees ([`value::Region`]).
//!
//! On top of the state, [`engine::Engine`] abstractly interprets a Mini-C
//! function: it forks at branches, bounds loops with havoc-widening, inlines
//! direct calls, lazily materializes fresh symbols for uninitialized memory,
//! and — crucially for PrivacyScope — introduces *taint* at secret sources
//! and propagates it per the policy of the `taint` crate, tracking the taint
//! of π across forks.
//!
//! The engine itself knows nothing about *nonreversibility*: it reports
//! completed paths, declassification events and final stores; the
//! `privacyscope` crate implements the policy checks on top.
//!
//! # Examples
//!
//! ```
//! use symexec::engine::{Engine, EngineConfig, ParamBinding};
//!
//! let unit = minic::parse(
//!     "int classify(int secret) { if (secret > 10) return 1; return 0; }",
//! )?;
//! let engine = Engine::new(&unit, EngineConfig::default());
//! let exploration = engine.run("classify", &[ParamBinding::SecretScalar])?;
//! assert_eq!(exploration.paths.len(), 2); // both branches explored
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod checkpoint;
pub mod concrete;
pub mod constraints;
pub mod degrade;
pub mod domain;
pub mod engine;
pub mod error;
pub mod intern;
pub mod path;
pub mod profile;
pub mod simplify;
pub mod solver;
pub mod state;
pub mod trace;
pub mod value;
mod worklist;

pub use checkpoint::{CheckpointError, Snapshot};
pub use constraints::{FeasibilityCache, FeasibilityMode, ProbeOutcome};
pub use degrade::{CancelToken, Degradation, Ledger, YieldToken};
pub use engine::{Engine, EngineConfig, Exploration, ParamBinding, PathOutcome};
pub use error::EngineError;
pub use value::{Region, SVal, Symbol};
