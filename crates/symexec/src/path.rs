//! The path condition π.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::value::SVal;

/// One recorded branch assumption: `cond` was assumed non-zero (`true`) or
/// zero (`false`).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Assumption {
    /// The branch condition's symbolic value.
    pub cond: SVal,
    /// The direction taken.
    pub taken: bool,
}

impl fmt::Display for Assumption {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.taken {
            write!(f, "{}", self.cond)
        } else {
            write!(f, "!({})", self.cond)
        }
    }
}

/// The path condition π: the conjunction of all branch assumptions on the
/// current path (§VI-B). Starts as `True` and grows at each fork.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct PathCondition {
    assumptions: Vec<Assumption>,
}

impl PathCondition {
    /// The empty (always-true) path condition.
    pub fn new() -> Self {
        PathCondition::default()
    }

    /// Records a new assumption.
    pub fn push(&mut self, cond: SVal, taken: bool) {
        self.assumptions.push(Assumption { cond, taken });
    }

    /// The recorded assumptions, oldest first.
    pub fn assumptions(&self) -> &[Assumption] {
        &self.assumptions
    }

    /// Number of assumptions.
    pub fn len(&self) -> usize {
        self.assumptions.len()
    }

    /// Whether π is still `True`.
    pub fn is_empty(&self) -> bool {
        self.assumptions.is_empty()
    }
}

impl fmt::Display for PathCondition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.assumptions.is_empty() {
            return write!(f, "True");
        }
        for (i, a) in self.assumptions.iter().enumerate() {
            if i > 0 {
                write!(f, " ∧ ")?;
            }
            write!(f, "{a}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Symbol;
    use minic::ast::BinOp;

    #[test]
    fn starts_true() {
        let pi = PathCondition::new();
        assert!(pi.is_empty());
        assert_eq!(pi.to_string(), "True");
    }

    #[test]
    fn renders_conjunction() {
        let mut pi = PathCondition::new();
        let s = SVal::Sym(Symbol::new(0, "s"));
        pi.push(SVal::binary(BinOp::Eq, s.clone(), SVal::Int(0)), true);
        pi.push(SVal::binary(BinOp::Lt, s, SVal::Int(9)), false);
        assert_eq!(pi.to_string(), "($s == 0) ∧ !(($s < 9))");
        assert_eq!(pi.len(), 2);
    }
}
