//! Deterministic fan-out support for the worklist engine.
//!
//! The engine explores one top-level statement per *wave*: every live path
//! state becomes an independent task, tasks run on a scoped thread pool
//! ([`run_tasks`]), and the results are merged back **in task order**. Two
//! pieces make the merged output byte-identical to a sequential run:
//!
//! 1. **Partitioned id allocation.** Each task mints symbol and source ids
//!    from a private namespace starting at [`LOCAL_ID_BASE`] (the upper
//!    half of the `u32` space), so concurrent tasks can never race on the
//!    global counters.
//! 2. **Order-preserving remap.** During the merge, [`IdRemap`] translates
//!    each task's local ids onto the global counters in canonical task
//!    order — reproducing exactly the numbering a sequential left-to-right
//!    exploration would have produced.
//!
//! Frame ids and shadow-rename counters need no translation: they live in
//! [`ExecState`](crate::state::ExecState) and depend only on the path's own
//! history, which is scheduling-invariant by construction.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use taint::{SourceId, TaintSet};

use crate::state::{Channel, DeclassifyEvent, Environment, ExecState, Store};

/// First id of the task-local symbol/source namespace (2³¹).
///
/// Global counters stay far below this in any realistic exploration; the
/// engine debug-asserts the invariant at merge time.
pub(crate) const LOCAL_ID_BASE: u32 = 0x8000_0000;

/// Translates task-local symbol and source ids onto the global counters.
pub(crate) struct IdRemap {
    /// Global id assigned to the task's first local symbol.
    pub symbol_base: u32,
    /// Global id assigned to the task's first local source.
    pub source_base: u32,
}

impl IdRemap {
    /// Maps a symbol id; ids below [`LOCAL_ID_BASE`] pre-date the task and
    /// pass through unchanged.
    pub fn symbol(&self, id: u32) -> u32 {
        if id >= LOCAL_ID_BASE {
            self.symbol_base + (id - LOCAL_ID_BASE)
        } else {
            id
        }
    }

    /// Maps a source id (same scheme as [`IdRemap::symbol`]).
    pub fn source(&self, id: SourceId) -> SourceId {
        let raw = id.index();
        if raw >= LOCAL_ID_BASE {
            SourceId::new(self.source_base + (raw - LOCAL_ID_BASE))
        } else {
            id
        }
    }

    /// Rebuilds a taint set with all source ids mapped.
    pub fn taint(&self, ts: &TaintSet) -> TaintSet {
        TaintSet::from_sources(ts.sources().map(|s| self.source(s)))
    }

    /// Rewrites every local id in a declassification event.
    pub fn remap_event(&self, event: &mut DeclassifyEvent) {
        let sym = |id| self.symbol(id);
        event.value.remap_symbols(&sym);
        event.taint = self.taint(&event.taint);
        event.pi_taint = self.taint(&event.pi_taint);
        if let Channel::OutParam { region } = &mut event.channel {
            region.remap_symbols(&sym);
        }
        // `event.pi` is rendered text; symbols print as `$hint`, never as a
        // raw id, so it needs no translation.
    }

    /// Rewrites every local id in an execution state.
    pub fn remap_state(&self, state: &mut ExecState) {
        let sym = |id| self.symbol(id);

        let mut env = Environment::new();
        for (expr, region) in std::mem::take(&mut state.env).iter() {
            let mut region = region.clone();
            region.remap_symbols(&sym);
            env.bind(*expr, region);
        }
        state.env = env;

        let mut store = Store::new();
        for (region, value) in std::mem::take(&mut state.store).iter() {
            let mut region = region.clone();
            let mut value = value.clone();
            region.remap_symbols(&sym);
            value.remap_symbols(&sym);
            store.bind(region, value);
        }
        state.store = store;

        let old_path = std::mem::take(&mut state.path);
        for assumption in old_path.assumptions() {
            let mut cond = assumption.cond.clone();
            cond.remap_symbols(&sym);
            state.path.push(cond, assumption.taken);
        }

        state.constraints.remap_symbols(&sym);
        state.domain.remap_symbols(sym);

        state.taints = std::mem::replace(&mut state.taints, taint::TaintMap::new())
            .iter()
            .map(|(region, ts)| {
                let mut region = region.clone();
                region.remap_symbols(&sym);
                (region, self.taint(ts))
            })
            .collect();

        state.pi_taint = self.taint(&state.pi_taint);

        state.events = state
            .events
            .iter()
            .map(|event| {
                let mut event = event.clone();
                self.remap_event(&mut event);
                event
            })
            .collect();
        state.write_log = state
            .write_log
            .iter()
            .map(|region| {
                let mut region = region.clone();
                region.remap_symbols(&sym);
                region
            })
            .collect();
        state.secret_bases = std::mem::take(&mut state.secret_bases)
            .into_iter()
            .map(|mut region| {
                region.remap_symbols(&sym);
                region
            })
            .collect();
        for frame in &mut state.frames {
            for scope in &mut frame.scopes {
                for region in scope.values_mut() {
                    region.remap_symbols(&sym);
                }
            }
        }
        // `state.trace` holds rendered text only — nothing to translate.
    }
}

/// Runs `run` over `inputs` on up to `workers` scoped threads, returning
/// the results **in input order** regardless of completion order.
///
/// With `workers <= 1` (or a single input) this degrades to a plain
/// sequential loop — the legacy engine behaviour — using the very same
/// task closure, so parallel and sequential runs share one code path.
pub(crate) fn run_tasks<T, R, F>(workers: usize, inputs: Vec<T>, run: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    let n = inputs.len();
    if workers <= 1 || n <= 1 {
        return inputs
            .into_iter()
            .enumerate()
            .map(|(index, input)| run(index, input))
            .collect();
    }
    let tasks: Vec<Mutex<Option<T>>> = inputs.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..workers.min(n) {
            scope.spawn(|| loop {
                let index = next.fetch_add(1, Ordering::Relaxed);
                if index >= n {
                    break;
                }
                let input = tasks[index]
                    .lock()
                    .expect("task slot")
                    .take()
                    .expect("each task is claimed exactly once");
                let output = run(index, input);
                *results[index].lock().expect("result slot") = Some(output);
            });
        }
    });
    results
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot")
                .expect("every task completed")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::{Region, SVal, Symbol};

    #[test]
    fn run_tasks_preserves_input_order() {
        let inputs: Vec<usize> = (0..64).collect();
        let sequential = run_tasks(1, inputs.clone(), |i, v| (i, v * v));
        let parallel = run_tasks(8, inputs, |i, v| {
            if v % 3 == 0 {
                std::thread::yield_now();
            }
            (i, v * v)
        });
        assert_eq!(sequential, parallel);
        assert_eq!(parallel[10], (10, 100));
    }

    #[test]
    fn remap_translates_local_ids_and_keeps_global_ones() {
        let remap = IdRemap {
            symbol_base: 5,
            source_base: 9,
        };
        assert_eq!(remap.symbol(3), 3);
        assert_eq!(remap.symbol(LOCAL_ID_BASE), 5);
        assert_eq!(remap.symbol(LOCAL_ID_BASE + 2), 7);
        assert_eq!(remap.source(SourceId::new(1)), SourceId::new(1));
        assert_eq!(
            remap.source(SourceId::new(LOCAL_ID_BASE + 1)),
            SourceId::new(10)
        );
        let ts = TaintSet::from_sources([SourceId::new(1), SourceId::new(LOCAL_ID_BASE)]);
        let mapped: Vec<_> = remap.taint(&ts).sources().collect();
        assert_eq!(mapped, vec![SourceId::new(1), SourceId::new(9)]);
    }

    #[test]
    fn remap_state_walks_every_component() {
        let remap = IdRemap {
            symbol_base: 100,
            source_base: 200,
        };
        let local_sym = Symbol::new(LOCAL_ID_BASE, "fresh");
        let region = Region::element(
            Region::Sym {
                symbol: local_sym.clone(),
            },
            SVal::Sym(local_sym.clone()),
        );
        let mut state = ExecState::new();
        state.write(
            region.clone(),
            SVal::Sym(local_sym.clone()),
            TaintSet::source(SourceId::new(LOCAL_ID_BASE)),
        );
        state.path.push(SVal::Sym(local_sym.clone()), true);
        state.constraints.assume(&SVal::Sym(local_sym), true);
        state.secret_bases.insert(region);

        remap.remap_state(&mut state);

        let expected = Symbol::new(100, "fresh");
        let expected_region = Region::element(
            Region::Sym {
                symbol: expected.clone(),
            },
            SVal::Sym(expected.clone()),
        );
        assert_eq!(
            state.store.lookup(&expected_region),
            Some(&SVal::Sym(expected.clone()))
        );
        assert_eq!(
            state
                .taint_of(&expected_region)
                .sources()
                .collect::<Vec<_>>(),
            vec![SourceId::new(200)]
        );
        assert_eq!(state.path.assumptions()[0].cond, SVal::Sym(expected));
        assert_eq!(state.write_log.to_vec(), vec![expected_region.clone()]);
        assert!(state.is_secret_region(&expected_region));
        // The remapped constraint key must now answer for the global id.
        assert_eq!(state.constraints.known_value(100), None);
        assert_eq!(
            state
                .constraints
                .clone()
                .assume(&SVal::Sym(Symbol::new(100, "fresh")), false),
            crate::constraints::Feasibility::Infeasible
        );
    }
}
