//! Exploration traces: the per-statement state snapshots that regenerate
//! Table IV of the paper.

use serde::{Deserialize, Serialize};

use crate::state::ExecState;

/// One row of an exploration trace: the rendered *(stmt, env, σ, π)* tuple
/// after interpreting a statement.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceStep {
    /// Source text of the statement just interpreted.
    pub stmt: String,
    /// Rendered environment (lvalue → region) additions so far.
    pub env: String,
    /// Rendered store σ.
    pub store: String,
    /// Rendered path condition π.
    pub pi: String,
}

impl TraceStep {
    /// Captures a snapshot of `state` after interpreting `stmt_text`.
    pub fn capture(stmt_text: &str, state: &ExecState) -> TraceStep {
        let mut env = String::new();
        for (i, (id, region)) in state.env.iter().enumerate() {
            if i > 0 {
                env.push_str(", ");
            }
            env.push_str(&format!("{id} → {region}"));
        }
        TraceStep {
            stmt: stmt_text.trim().to_string(),
            env,
            store: state.store.to_string(),
            pi: state.path.to_string(),
        }
    }
}

/// Renders a set of per-path traces as a forking table in the style of the
/// paper's Table IV: shared prefixes are printed once with a state label
/// (`A`, `B`, …), forks appear as separate labelled rows.
pub fn render_table(traces: &[Vec<TraceStep>]) -> String {
    let mut rows: Vec<(String, &TraceStep)> = Vec::new();
    let mut seen: Vec<&TraceStep> = Vec::new();
    let mut label = 0usize;
    for trace in traces {
        for step in trace {
            if !seen.contains(&step) {
                seen.push(step);
                rows.push((state_label(label), step));
                label += 1;
            }
        }
    }
    let mut out = String::new();
    out.push_str("state | stmt | σ/env | π\n");
    out.push_str("------+------+-------+---\n");
    for (label, step) in rows {
        out.push_str(&format!(
            "{label:5} | {} | env: {} ; σ: {} | {}\n",
            step.stmt, step.env, step.store, step.pi
        ));
    }
    out
}

fn state_label(i: usize) -> String {
    // A, B, …, Z, AA, AB, …
    let mut n = i;
    let mut s = String::new();
    loop {
        s.insert(0, (b'A' + (n % 26) as u8) as char);
        if n < 26 {
            break;
        }
        n = n / 26 - 1;
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn step(stmt: &str) -> TraceStep {
        TraceStep {
            stmt: stmt.into(),
            env: String::new(),
            store: String::new(),
            pi: "True".into(),
        }
    }

    #[test]
    fn labels_progress_alphabetically() {
        assert_eq!(state_label(0), "A");
        assert_eq!(state_label(25), "Z");
        assert_eq!(state_label(26), "AA");
        assert_eq!(state_label(27), "AB");
    }

    #[test]
    fn shared_prefixes_are_deduplicated() {
        let a = step("int t = s[0] + 100;");
        let b1 = step("return 0;");
        let b2 = step("return 1;");
        let table = render_table(&[vec![a.clone(), b1], vec![a, b2]]);
        assert_eq!(table.matches("int t = s[0] + 100;").count(), 1);
        assert!(table.contains("return 0;"));
        assert!(table.contains("return 1;"));
    }

    #[test]
    fn capture_renders_state() {
        let state = ExecState::new();
        let step = TraceStep::capture("  x = 1; ", &state);
        assert_eq!(step.stmt, "x = 1;");
        assert_eq!(step.pi, "True");
    }

    #[test]
    fn empty_traces_render_header_only() {
        let table = render_table(&[]);
        assert_eq!(
            table,
            "state | stmt | σ/env | π\n------+------+-------+---\n"
        );
        // An empty per-path trace contributes no rows either.
        let table = render_table(&[Vec::new(), Vec::new()]);
        assert_eq!(table.lines().count(), 2);
    }

    #[test]
    fn fork_rows_are_labelled_in_discovery_order() {
        let shared = step("int t = s[0];");
        let left = step("return 0;");
        let right = step("return 1;");
        let table = render_table(&[
            vec![shared.clone(), left.clone()],
            vec![shared.clone(), right.clone()],
        ]);
        let label_of = |stmt: &str| {
            table
                .lines()
                .find(|line| line.contains(stmt))
                .and_then(|line| line.split('|').next())
                .map(|label| label.trim().to_string())
        };
        // The shared prefix is state A; the two fork continuations get the
        // next labels in the order their paths were harvested.
        assert_eq!(label_of("int t = s[0];").as_deref(), Some("A"));
        assert_eq!(label_of("return 0;").as_deref(), Some("B"));
        assert_eq!(label_of("return 1;").as_deref(), Some("C"));
    }

    #[test]
    fn identical_steps_share_one_labelled_row() {
        let a = step("x = 1;");
        let table = render_table(&[vec![a.clone()], vec![a.clone()], vec![a]]);
        // Three paths over the same step collapse to a single `A` row.
        assert_eq!(table.matches("x = 1;").count(), 1);
        assert_eq!(table.lines().count(), 3);
        assert!(table
            .lines()
            .nth(2)
            .is_some_and(|row| row.starts_with("A ")));
    }
}
