//! Symbolic expression simplification: constant folding and algebraic
//! identities.
//!
//! The simplifier is *sound* with respect to the concrete semantics in
//! [`crate::concrete`]: for every full assignment of the symbols,
//! `eval(simplify(e)) == eval(e)` — a property the test suite checks with
//! random expressions.

use minic::ast::{BinOp, UnOp};

use crate::value::{OrderedF64, SVal};

/// Simplifies an expression tree bottom-up.
pub fn simplify(sval: &SVal) -> SVal {
    match sval {
        SVal::Binary { op, lhs, rhs } => {
            let lhs = simplify(lhs);
            let rhs = simplify(rhs);
            fold_binary(*op, lhs, rhs)
        }
        SVal::Unary { op, arg } => {
            let arg = simplify(arg);
            fold_unary(*op, arg)
        }
        SVal::Call { func, args } => SVal::Call {
            func: func.clone(),
            args: args.iter().map(simplify).collect(),
        },
        other => other.clone(),
    }
}

/// Folds a binary node whose children are already simplified.
pub fn fold_binary(op: BinOp, lhs: SVal, rhs: SVal) -> SVal {
    // Constant folding.
    if let (Some(result), true) = (
        fold_const_binary(op, &lhs, &rhs),
        lhs.is_const() && rhs.is_const(),
    ) {
        return result;
    }

    // Algebraic identities (integer-safe ones only).
    match (op, &lhs, &rhs) {
        // x + 0, 0 + x, x - 0
        (BinOp::Add, x, SVal::Int(0)) | (BinOp::Add, SVal::Int(0), x) => return x.clone(),
        (BinOp::Sub, x, SVal::Int(0)) => return x.clone(),
        // x * 1, 1 * x
        (BinOp::Mul, x, SVal::Int(1)) | (BinOp::Mul, SVal::Int(1), x) => return x.clone(),
        // x * 0, 0 * x — only when x is pure (no Unknown; division by zero
        // inside x would already have collapsed to Unknown).
        (BinOp::Mul, x, SVal::Int(0)) | (BinOp::Mul, SVal::Int(0), x) if !x.has_unknown() => {
            return SVal::Int(0);
        }
        // x / 1
        (BinOp::Div, x, SVal::Int(1)) => return x.clone(),
        // x - x, x ^ x (pure x)
        (BinOp::Sub, x, y) | (BinOp::BitXor, x, y) if x == y && !x.has_unknown() => {
            return SVal::Int(0)
        }
        // x == x, x <= x, x >= x (pure x)
        (BinOp::Eq, x, y) | (BinOp::Le, x, y) | (BinOp::Ge, x, y) if x == y && !x.has_unknown() => {
            return SVal::Int(1)
        }
        // x != x, x < x, x > x (pure x)
        (BinOp::Ne, x, y) | (BinOp::Lt, x, y) | (BinOp::Gt, x, y) if x == y && !x.has_unknown() => {
            return SVal::Int(0)
        }
        // logical identities — a falsy constant annihilates `&&`, a truthy
        // one decides `||`. Floats count: `0.0` (and `-0.0`) are falsy in C,
        // any other value (NaN included: NaN != 0.0) is truthy.
        (BinOp::LogAnd, c, _) | (BinOp::LogAnd, _, c)
            if matches!(c, SVal::Int(0)) || matches!(c, SVal::Float(v) if v.0 == 0.0) =>
        {
            return SVal::Int(0)
        }
        (BinOp::LogOr, c, _) | (BinOp::LogOr, _, c)
            if matches!(c, SVal::Int(v) if *v != 0)
                || matches!(c, SVal::Float(v) if v.0 != 0.0) =>
        {
            return SVal::Int(1)
        }
        _ => {}
    }

    // Re-associate constants: (x + a) + b → x + (a+b); (x - a) + b, etc.
    if let (
        BinOp::Add | BinOp::Sub,
        SVal::Binary {
            op: inner_op,
            lhs: il,
            rhs: ir,
        },
        SVal::Int(b),
    ) = (op, &lhs, &rhs)
    {
        if let (BinOp::Add | BinOp::Sub, SVal::Int(a)) = (*inner_op, ir.as_ref()) {
            if *a == i64::MIN || *b == i64::MIN {
                return SVal::binary(op, lhs.clone(), rhs.clone());
            }
            let a = if *inner_op == BinOp::Sub { -a } else { *a };
            let b = if op == BinOp::Sub { -b } else { *b };
            if let Some(sum) = a.checked_add(b).filter(|s| *s != i64::MIN) {
                return match sum.cmp(&0) {
                    std::cmp::Ordering::Equal => il.as_ref().clone(),
                    std::cmp::Ordering::Greater => {
                        SVal::binary(BinOp::Add, il.as_ref().clone(), SVal::Int(sum))
                    }
                    std::cmp::Ordering::Less => {
                        SVal::binary(BinOp::Sub, il.as_ref().clone(), SVal::Int(-sum))
                    }
                };
            }
        }
    }

    SVal::binary(op, lhs, rhs)
}

/// Folds a unary node whose child is already simplified.
pub fn fold_unary(op: UnOp, arg: SVal) -> SVal {
    match (&op, &arg) {
        (UnOp::Plus, x) => return x.clone(),
        (UnOp::Neg, SVal::Int(v)) => return SVal::Int(v.wrapping_neg()),
        (UnOp::Neg, SVal::Float(v)) => return SVal::Float(OrderedF64(-v.0)),
        (UnOp::Not, SVal::Int(v)) => return SVal::Int(i64::from(*v == 0)),
        (UnOp::Not, SVal::Float(v)) => return SVal::Int(i64::from(v.0 == 0.0)),
        (UnOp::BitNot, SVal::Int(v)) => return SVal::Int(!v),
        // --x → x ; !!x is NOT x in C (it is normalization to 0/1), skip.
        (UnOp::Neg, SVal::Unary { op: UnOp::Neg, arg }) => return arg.as_ref().clone(),
        _ => {}
    }
    SVal::unary(op, arg)
}

fn fold_const_binary(op: BinOp, lhs: &SVal, rhs: &SVal) -> Option<SVal> {
    match (lhs, rhs) {
        (SVal::Int(a), SVal::Int(b)) => fold_ints(op, *a, *b),
        (SVal::Float(a), SVal::Float(b)) => Some(fold_floats(op, a.0, b.0)),
        (SVal::Int(a), SVal::Float(b)) => Some(fold_floats(op, *a as f64, b.0)),
        (SVal::Float(a), SVal::Int(b)) => Some(fold_floats(op, a.0, *b as f64)),
        _ => None,
    }
}

/// Integer semantics: wrapping two's-complement arithmetic; division by
/// zero yields [`SVal::Unknown`] (the engine treats it as an unconstrained
/// result rather than a crash, like Clang SA's undefined-value).
pub fn fold_ints(op: BinOp, a: i64, b: i64) -> Option<SVal> {
    let v = match op {
        BinOp::Add => a.wrapping_add(b),
        BinOp::Sub => a.wrapping_sub(b),
        BinOp::Mul => a.wrapping_mul(b),
        BinOp::Div => {
            if b == 0 {
                return Some(SVal::Unknown);
            }
            a.wrapping_div(b)
        }
        BinOp::Rem => {
            if b == 0 {
                return Some(SVal::Unknown);
            }
            a.wrapping_rem(b)
        }
        BinOp::Shl => a.wrapping_shl((b & 63) as u32),
        BinOp::Shr => a.wrapping_shr((b & 63) as u32),
        BinOp::Lt => i64::from(a < b),
        BinOp::Le => i64::from(a <= b),
        BinOp::Gt => i64::from(a > b),
        BinOp::Ge => i64::from(a >= b),
        BinOp::Eq => i64::from(a == b),
        BinOp::Ne => i64::from(a != b),
        BinOp::BitAnd => a & b,
        BinOp::BitXor => a ^ b,
        BinOp::BitOr => a | b,
        BinOp::LogAnd => i64::from(a != 0 && b != 0),
        BinOp::LogOr => i64::from(a != 0 || b != 0),
    };
    Some(SVal::Int(v))
}

fn fold_floats(op: BinOp, a: f64, b: f64) -> SVal {
    match op {
        BinOp::Add => SVal::float(a + b),
        BinOp::Sub => SVal::float(a - b),
        BinOp::Mul => SVal::float(a * b),
        BinOp::Div => SVal::float(a / b),
        BinOp::Rem => SVal::float(a % b),
        BinOp::Lt => SVal::Int(i64::from(a < b)),
        BinOp::Le => SVal::Int(i64::from(a <= b)),
        BinOp::Gt => SVal::Int(i64::from(a > b)),
        BinOp::Ge => SVal::Int(i64::from(a >= b)),
        BinOp::Eq => SVal::Int(i64::from(a == b)),
        BinOp::Ne => SVal::Int(i64::from(a != b)),
        BinOp::LogAnd => SVal::Int(i64::from(a != 0.0 && b != 0.0)),
        BinOp::LogOr => SVal::Int(i64::from(a != 0.0 || b != 0.0)),
        // Bit operations on floats do not occur (sema rejects them); be
        // conservative if they somehow do.
        BinOp::Shl | BinOp::Shr | BinOp::BitAnd | BinOp::BitXor | BinOp::BitOr => SVal::Unknown,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Symbol;

    fn x() -> SVal {
        SVal::Sym(Symbol::new(1, "x"))
    }

    #[test]
    fn folds_constants() {
        let e = SVal::binary(BinOp::Add, SVal::Int(2), SVal::Int(3));
        assert_eq!(simplify(&e), SVal::Int(5));
        let e = SVal::binary(BinOp::Lt, SVal::Int(2), SVal::Int(3));
        assert_eq!(simplify(&e), SVal::Int(1));
    }

    #[test]
    fn folds_mixed_int_float() {
        let e = SVal::binary(BinOp::Mul, SVal::Int(2), SVal::float(1.5));
        assert_eq!(simplify(&e), SVal::float(3.0));
    }

    #[test]
    fn division_by_zero_is_unknown() {
        let e = SVal::binary(BinOp::Div, SVal::Int(2), SVal::Int(0));
        assert_eq!(simplify(&e), SVal::Unknown);
        let e = SVal::binary(BinOp::Rem, SVal::Int(2), SVal::Int(0));
        assert_eq!(simplify(&e), SVal::Unknown);
    }

    #[test]
    fn identity_elimination() {
        assert_eq!(simplify(&SVal::binary(BinOp::Add, x(), SVal::Int(0))), x());
        assert_eq!(simplify(&SVal::binary(BinOp::Mul, SVal::Int(1), x())), x());
        assert_eq!(
            simplify(&SVal::binary(BinOp::Mul, x(), SVal::Int(0))),
            SVal::Int(0)
        );
        assert_eq!(simplify(&SVal::binary(BinOp::Sub, x(), x())), SVal::Int(0));
        assert_eq!(simplify(&SVal::binary(BinOp::Eq, x(), x())), SVal::Int(1));
        assert_eq!(simplify(&SVal::binary(BinOp::Ne, x(), x())), SVal::Int(0));
    }

    #[test]
    fn short_circuit_identities() {
        let e = SVal::binary(BinOp::LogAnd, SVal::Int(0), x());
        assert_eq!(simplify(&e), SVal::Int(0));
        let e = SVal::binary(BinOp::LogOr, SVal::Int(7), x());
        assert_eq!(simplify(&e), SVal::Int(1));
    }

    #[test]
    fn short_circuit_identities_with_floats() {
        // `0.0 && x` and `x && 0.0` are 0 even when x stays symbolic.
        let e = SVal::binary(BinOp::LogAnd, SVal::float(0.0), x());
        assert_eq!(simplify(&e), SVal::Int(0));
        let e = SVal::binary(BinOp::LogAnd, x(), SVal::float(-0.0));
        assert_eq!(simplify(&e), SVal::Int(0));
        // A truthy float decides `||` regardless of the symbolic side.
        let e = SVal::binary(BinOp::LogOr, SVal::float(2.5), x());
        assert_eq!(simplify(&e), SVal::Int(1));
        let e = SVal::binary(BinOp::LogOr, x(), SVal::float(-1.0));
        assert_eq!(simplify(&e), SVal::Int(1));
        // A falsy float must NOT decide `||` (the symbolic side remains).
        let e = SVal::binary(BinOp::LogOr, SVal::float(0.0), x());
        assert!(matches!(simplify(&e), SVal::Binary { .. }));
        // And a truthy float must NOT annihilate `&&`.
        let e = SVal::binary(BinOp::LogAnd, SVal::float(1.5), x());
        assert!(matches!(simplify(&e), SVal::Binary { .. }));
    }

    #[test]
    fn reassociates_added_constants() {
        // (x + 3) + 4 → x + 7
        let e = SVal::binary(
            BinOp::Add,
            SVal::binary(BinOp::Add, x(), SVal::Int(3)),
            SVal::Int(4),
        );
        assert_eq!(simplify(&e), SVal::binary(BinOp::Add, x(), SVal::Int(7)));
        // (x - 5) + 5 → x
        let e = SVal::binary(
            BinOp::Add,
            SVal::binary(BinOp::Sub, x(), SVal::Int(5)),
            SVal::Int(5),
        );
        assert_eq!(simplify(&e), x());
        // (x + 2) - 5 → x - 3
        let e = SVal::binary(
            BinOp::Sub,
            SVal::binary(BinOp::Add, x(), SVal::Int(2)),
            SVal::Int(5),
        );
        assert_eq!(simplify(&e), SVal::binary(BinOp::Sub, x(), SVal::Int(3)));
    }

    #[test]
    fn unary_folding() {
        assert_eq!(
            simplify(&SVal::unary(UnOp::Neg, SVal::Int(4))),
            SVal::Int(-4)
        );
        assert_eq!(
            simplify(&SVal::unary(UnOp::Not, SVal::Int(0))),
            SVal::Int(1)
        );
        assert_eq!(
            simplify(&SVal::unary(UnOp::Neg, SVal::unary(UnOp::Neg, x()))),
            x()
        );
        assert_eq!(simplify(&SVal::unary(UnOp::Plus, x())), x());
    }

    #[test]
    fn zero_times_unknown_is_not_folded() {
        let e = SVal::binary(BinOp::Mul, SVal::Unknown, SVal::Int(0));
        assert!(simplify(&e).has_unknown());
    }

    #[test]
    fn wrapping_semantics() {
        let e = SVal::binary(BinOp::Add, SVal::Int(i64::MAX), SVal::Int(1));
        assert_eq!(simplify(&e), SVal::Int(i64::MIN));
    }
}
