//! Per-source-location exploration profiling (hotspot attribution).
//!
//! The engine spends its budget — steps, forks, infeasibility prunes,
//! widenings, feasibility probes — *somewhere* in the enclave source, and
//! tuning any future pruning/merging strategy requires knowing where.
//! [`Profile`] attributes each of those costs to the byte offset of the
//! responsible statement or condition span, mirroring exactly the sites
//! where the corresponding [`super::engine::Stats`] counters increment, so
//! the per-site sums always reconcile with the global totals.
//!
//! # Determinism discipline
//!
//! Collection follows the same rules as the engine's `Stats`: each path
//! task accumulates its own `Profile`, and the worklist absorbs task
//! profiles at the wave boundary in canonical task order. Cache hit/miss
//! attribution rides the per-task probe log and is classified against the
//! global first-seen set at merge time. The result is byte-identical at
//! every worker count and cache capacity, persists in checkpoints (with
//! `serde(default)` back-compat for pre-profile snapshots), and is purely
//! observational: collection is unconditional and cheap, and nothing the
//! profiler records feeds back into exploration decisions.
//!
//! [`SourceProfile`] is the human-facing resolution of a raw offset-keyed
//! [`Profile`] against the parsed unit: rows keyed by (function, line)
//! with the source text attached, renderable as an annotated hotspot table
//! (`--timings`-style) or machine JSON (`--profile-out`).

use std::collections::BTreeMap;
use std::fmt::Write as _;

use serde::{Deserialize, Serialize};

/// Exploration costs attributed to one source location.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SiteCounters {
    /// Statements interpreted whose statement span starts here.
    pub steps: u64,
    /// Two-sided state forks performed at this branch/loop condition.
    pub forks: u64,
    /// Branch sides pruned as infeasible here.
    pub infeasible: u64,
    /// Loop widenings applied to the loop headed here.
    pub widenings: u64,
    /// Feasibility probes answered by the memoized probe set (first-seen
    /// classification in canonical merge order — scheduling-invariant).
    pub cache_hits: u64,
    /// Feasibility probes computed fresh here.
    pub cache_misses: u64,
    /// Branch-condition evaluations whose condition carried secret taint.
    pub secret_branches: u64,
    /// Branch sides refuted here by the Tier-1 interval/congruence domain
    /// (always 0 in syntactic feasibility mode; `serde(default)` keeps
    /// pre-tier profiles loadable).
    #[serde(default)]
    pub tier1_refuted: u64,
    /// Branch sides refuted here by the Tier-2 SAT-lite solver.
    #[serde(default)]
    pub tier2_refuted: u64,
    /// Tier-2 probes here that exhausted their deterministic budget.
    #[serde(default)]
    pub tier2_unknown: u64,
}

impl SiteCounters {
    /// Adds every counter of `other` into `self`.
    pub fn absorb(&mut self, other: &SiteCounters) {
        self.steps += other.steps;
        self.forks += other.forks;
        self.infeasible += other.infeasible;
        self.widenings += other.widenings;
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
        self.secret_branches += other.secret_branches;
        self.tier1_refuted += other.tier1_refuted;
        self.tier2_refuted += other.tier2_refuted;
        self.tier2_unknown += other.tier2_unknown;
    }

    /// True when every counter is zero.
    pub fn is_empty(&self) -> bool {
        *self == SiteCounters::default()
    }
}

/// The raw exploration profile: source byte offset (span start of the
/// statement / condition) → attributed counters. Offset-keyed so the hot
/// loop never resolves lines; [`SourceProfile::resolve`] does that once,
/// after exploration. `BTreeMap` keeps serialization and iteration order
/// deterministic.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Profile {
    /// Per-site counters, keyed by span-start byte offset.
    pub sites: BTreeMap<u64, SiteCounters>,
}

impl Profile {
    /// An empty profile.
    pub fn new() -> Profile {
        Profile::default()
    }

    /// The (created-if-absent) counter cell for the site at byte offset
    /// `at`.
    pub fn at(&mut self, at: usize) -> &mut SiteCounters {
        self.sites.entry(at as u64).or_default()
    }

    /// Merges every site of `other` into `self` (the canonical-order wave
    /// merge).
    pub fn absorb(&mut self, other: &Profile) {
        for (offset, counters) in &other.sites {
            self.sites.entry(*offset).or_default().absorb(counters);
        }
    }

    /// True when no site recorded anything.
    pub fn is_empty(&self) -> bool {
        self.sites.is_empty()
    }

    /// Sum of all per-site counters (reconciles with the engine's global
    /// `Stats` at the sites that are attributed).
    pub fn totals(&self) -> SiteCounters {
        let mut total = SiteCounters::default();
        for counters in self.sites.values() {
            total.absorb(counters);
        }
        total
    }
}

/// One resolved hotspot row: a raw profile site located in the source.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProfileRow {
    /// Enclosing function name (`?` when the offset falls outside every
    /// function span — e.g. a synthetic span).
    pub function: String,
    /// 1-based source line.
    pub line: u64,
    /// The source line's text, trimmed.
    pub text: String,
    /// The attributed counters (all sites on the line, summed).
    pub counters: SiteCounters,
}

/// A [`Profile`] resolved against the analyzed unit: rows keyed by
/// (function, line), in source order. This is what `Report::profile`
/// carries and what `--profile-out` serializes.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SourceProfile {
    /// Resolved rows in (line) order.
    pub rows: Vec<ProfileRow>,
}

impl SourceProfile {
    /// Resolves a raw offset-keyed profile against the unit's function
    /// spans and the source text. Sites on the same line merge into one
    /// row; rows come out in line order.
    pub fn resolve(profile: &Profile, unit: &minic::ast::TranslationUnit, source: &str) -> Self {
        // Function extents, for enclosing-function lookup. `Function::span`
        // covers only the signature, so stretch each extent to the end of
        // the last body statement.
        let mut functions: Vec<(usize, usize, &str)> = Vec::new();
        for item in &unit.items {
            if let minic::ast::Item::Function(func) = item {
                let end = func
                    .body
                    .iter()
                    .flatten()
                    .map(|stmt| stmt.span.end)
                    .max()
                    .unwrap_or(func.span.end)
                    .max(func.span.end);
                functions.push((func.span.start, end, func.name.as_str()));
            }
        }
        let lines: Vec<&str> = source.lines().collect();
        let mut by_line: BTreeMap<u64, (String, SiteCounters)> = BTreeMap::new();
        for (&offset, counters) in &profile.sites {
            let at = offset as usize;
            let line = minic::Span::point(at.min(source.len()))
                .line_col(source)
                .line as u64;
            let function = functions
                .iter()
                .find(|(start, end, _)| *start <= at && at < *end)
                .map_or("?", |(_, _, name)| name)
                .to_string();
            let entry = by_line
                .entry(line)
                .or_insert((function, SiteCounters::default()));
            entry.1.absorb(counters);
        }
        let rows = by_line
            .into_iter()
            .map(|(line, (function, counters))| ProfileRow {
                function,
                line,
                text: lines
                    .get((line as usize).saturating_sub(1))
                    .map_or("", |text| text.trim())
                    .to_string(),
                counters,
            })
            .collect();
        SourceProfile { rows }
    }

    /// True when no row recorded anything.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Total steps across all rows.
    pub fn total_steps(&self) -> u64 {
        self.rows.iter().map(|row| row.counters.steps).sum()
    }

    /// The row whose counters dominate on `pick` (e.g. most forks).
    pub fn hottest_by(&self, pick: impl Fn(&SiteCounters) -> u64) -> Option<&ProfileRow> {
        self.rows.iter().max_by_key(|row| pick(&row.counters))
    }

    /// Renders the annotated-source hotspot table (the `--timings`-style
    /// human view): one row per line that cost anything, heaviest columns
    /// first, source text on the right.
    pub fn render_table(&self, function: &str) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "── exploration profile: {function} ─────────────");
        let _ = writeln!(
            out,
            "{:>5} {:>8} {:>6} {:>6} {:>6} {:>6} {:>6} {:>6} {:>6} {:>6} {:>6}  source",
            "line",
            "steps",
            "forks",
            "infeas",
            "widen",
            "hits",
            "miss",
            "secret",
            "t1ref",
            "t2ref",
            "t2unk"
        );
        for row in &self.rows {
            let c = &row.counters;
            let _ = writeln!(
                out,
                "{:>5} {:>8} {:>6} {:>6} {:>6} {:>6} {:>6} {:>6} {:>6} {:>6} {:>6}  {}",
                row.line,
                c.steps,
                c.forks,
                c.infeasible,
                c.widenings,
                c.cache_hits,
                c.cache_misses,
                c.secret_branches,
                c.tier1_refuted,
                c.tier2_refuted,
                c.tier2_unknown,
                row.text
            );
        }
        let totals = self
            .rows
            .iter()
            .fold(SiteCounters::default(), |mut acc, row| {
                acc.absorb(&row.counters);
                acc
            });
        let _ = writeln!(
            out,
            "{:>5} {:>8} {:>6} {:>6} {:>6} {:>6} {:>6} {:>6} {:>6} {:>6} {:>6}  (total)",
            "",
            totals.steps,
            totals.forks,
            totals.infeasible,
            totals.widenings,
            totals.cache_hits,
            totals.cache_misses,
            totals.secret_branches,
            totals.tier1_refuted,
            totals.tier2_refuted,
            totals.tier2_unknown
        );
        out
    }

    /// Machine JSON for `--profile-out`: `{"function": ..., "rows": [...]}`
    /// with deterministic row order.
    ///
    /// # Panics
    ///
    /// Never — the structure is always serializable.
    pub fn to_json(&self, function: &str) -> String {
        let rows = serde_json::to_value(&self.rows).expect("profile rows serialize");
        let value = serde::Value::Object(vec![
            (
                "function".to_string(),
                serde::Value::String(function.to_string()),
            ),
            ("rows".to_string(), rows),
        ]);
        serde_json::to_string_pretty(&value).expect("profile serializes")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absorb_merges_sites() {
        let mut a = Profile::new();
        a.at(10).steps += 3;
        a.at(10).forks += 1;
        let mut b = Profile::new();
        b.at(10).steps += 2;
        b.at(99).widenings += 1;
        a.absorb(&b);
        assert_eq!(a.sites[&10].steps, 5);
        assert_eq!(a.sites[&10].forks, 1);
        assert_eq!(a.sites[&99].widenings, 1);
        let totals = a.totals();
        assert_eq!(totals.steps, 5);
        assert_eq!(totals.widenings, 1);
    }

    #[test]
    fn profile_round_trips_and_defaults() {
        let mut profile = Profile::new();
        profile.at(42).cache_hits = 7;
        let json = serde_json::to_string(&profile).expect("serializes");
        let back: Profile = serde_json::from_str(&json).expect("parses");
        assert_eq!(profile, back);
        assert!(Profile::new().is_empty());
        assert!(SiteCounters::default().is_empty());
    }

    #[test]
    fn resolve_groups_by_line_and_function() {
        let source = "int f(int x) {\n    int y = x + 1;\n    return y;\n}\n";
        let unit = minic::parse(source).expect("parses");
        let mut profile = Profile::new();
        // Offset of `int y` statement (line 2) and `return` (line 3).
        let y_at = source.find("int y").expect("present");
        let ret_at = source.find("return").expect("present");
        profile.at(y_at).steps = 4;
        profile.at(ret_at).steps = 2;
        profile.at(ret_at).forks = 1;
        let resolved = SourceProfile::resolve(&profile, &unit, source);
        assert_eq!(resolved.rows.len(), 2);
        assert_eq!(resolved.rows[0].line, 2);
        assert_eq!(resolved.rows[0].function, "f");
        assert_eq!(resolved.rows[0].text, "int y = x + 1;");
        assert_eq!(resolved.rows[1].counters.forks, 1);
        assert_eq!(resolved.total_steps(), 6);
        assert_eq!(resolved.hottest_by(|c| c.steps).map(|r| r.line), Some(2));
        let table = resolved.render_table("f");
        assert!(table.contains("int y = x + 1;"), "{table}");
        assert!(table.contains("(total)"), "{table}");
        let json = resolved.to_json("f");
        assert!(json.contains("\"function\""), "{json}");
        assert!(json.contains("\"rows\""), "{json}");
    }
}
