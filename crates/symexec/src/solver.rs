//! Tier-2 feasibility: a vendored DPLL-style SAT-lite solver over the
//! bool/comparison fragment the Mini-C frontend emits.
//!
//! The path condition plus the probed branch condition are translated into
//! a conjunction of formula trees over *atoms* (comparisons and other
//! truthiness leaves). Boolean structure — `LogAnd`/`LogOr`/`Not` — becomes
//! And/Or/Lit nodes; everything else is an opaque atom. A small DPLL loop
//! (3-valued evaluation, unit propagation, first-unassigned-atom decisions
//! with true tried first) searches for a propositionally satisfying
//! assignment; each candidate is checked against two theory lenses:
//!
//! 1. the Tier-1 abstract domain, re-assuming every assigned atom into a
//!    clone of the per-path seed domain, and
//! 2. a difference-logic pass: atoms whose sides are unit-coefficient
//!    affine forms become edges `x − y ≤ c` (with a virtual zero node
//!    carrying the domain's interval bounds), and a Bellman–Ford negative
//!    cycle is a conflict. This is what catches `x < y ∧ y < x`, which no
//!    per-symbol domain can see.
//!
//! Only [`Verdict::Unsat`] is load-bearing (a sound refutation). The
//! search is bounded by a deterministic decision/conflict [`Budget`], so
//! results are identical at every worker count; exhausting the budget
//! yields [`Verdict::Unknown`], which the pipeline treats as feasible.

use minic::ast::{BinOp, UnOp};

use crate::constraints::{negate_cmp, Feasibility};
use crate::domain::{affine_of, AbstractDomain};
use crate::path::PathCondition;
use crate::value::SVal;

/// Atom-count ceiling; formulas beyond it return [`Verdict::Unknown`].
const MAX_ATOMS: usize = 64;

/// Solver verdict for a conjunction of assumptions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// A propositionally satisfying, theory-consistent assignment exists.
    Sat,
    /// The conjunction is unsatisfiable (sound refutation).
    Unsat,
    /// The budget ran out, or the formula left the supported fragment.
    Unknown,
}

/// Deterministic search budget. Decisions and conflicts are counted
/// identically regardless of scheduling, so the verdict is a pure function
/// of the formula.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Budget {
    /// Maximum DPLL decisions (branch points).
    pub decisions: u32,
    /// Maximum conflicts (propositional or theory).
    pub conflicts: u32,
}

impl Default for Budget {
    fn default() -> Self {
        Budget {
            decisions: 256,
            conflicts: 256,
        }
    }
}

/// One node of a translated formula tree.
#[derive(Debug, Clone)]
enum Node {
    True,
    False,
    Lit { atom: usize, positive: bool },
    And(Vec<Node>),
    Or(Vec<Node>),
}

/// Checks the conjunction `π ∧ (cond == taken)` seeded with the Tier-1
/// domain already accumulated along the path.
pub fn check_path(
    path: &PathCondition,
    cond: &SVal,
    taken: bool,
    seed: &AbstractDomain,
    budget: Budget,
) -> Verdict {
    let mut atoms: Vec<SVal> = Vec::new();
    let mut conjuncts: Vec<Node> = Vec::new();
    for a in path.assumptions() {
        conjuncts.push(translate(&a.cond, a.taken, &mut atoms));
    }
    conjuncts.push(translate(cond, taken, &mut atoms));
    if atoms.len() > MAX_ATOMS {
        return Verdict::Unknown;
    }
    let mut search = Search {
        atoms: &atoms,
        conjuncts: &conjuncts,
        seed,
        assign: vec![None; atoms.len()],
        decisions_left: budget.decisions,
        conflicts_left: budget.conflicts,
    };
    match search.dpll() {
        Some(true) => Verdict::Sat,
        Some(false) => Verdict::Unsat,
        None => Verdict::Unknown,
    }
}

/// Translates an assumption into a formula node, interning atoms.
/// `positive == false` pushes the negation inward (De Morgan).
fn translate(v: &SVal, positive: bool, atoms: &mut Vec<SVal>) -> Node {
    match v {
        SVal::Int(c) => {
            if (*c != 0) == positive {
                Node::True
            } else {
                Node::False
            }
        }
        SVal::Float(f) => {
            if (f.0 != 0.0) == positive {
                Node::True
            } else {
                Node::False
            }
        }
        SVal::Unary { op: UnOp::Not, arg } => translate(arg, !positive, atoms),
        SVal::Binary {
            op: BinOp::LogAnd,
            lhs,
            rhs,
        } => {
            let l = translate(lhs, positive, atoms);
            let r = translate(rhs, positive, atoms);
            if positive {
                Node::And(vec![l, r])
            } else {
                Node::Or(vec![l, r])
            }
        }
        SVal::Binary {
            op: BinOp::LogOr,
            lhs,
            rhs,
        } => {
            let l = translate(lhs, positive, atoms);
            let r = translate(rhs, positive, atoms);
            if positive {
                Node::Or(vec![l, r])
            } else {
                Node::And(vec![l, r])
            }
        }
        _ => {
            let atom = match atoms.iter().position(|a| a == v) {
                Some(i) => i,
                None => {
                    atoms.push(v.clone());
                    atoms.len() - 1
                }
            };
            Node::Lit { atom, positive }
        }
    }
}

struct Search<'a> {
    atoms: &'a [SVal],
    conjuncts: &'a [Node],
    seed: &'a AbstractDomain,
    assign: Vec<Option<bool>>,
    decisions_left: u32,
    conflicts_left: u32,
}

impl Search<'_> {
    /// `Some(true)` = satisfiable, `Some(false)` = exhausted (unsat),
    /// `None` = budget ran out.
    fn dpll(&mut self) -> Option<bool> {
        // Unit propagation to fixpoint; record the trail for backtracking.
        let mut trail: Vec<usize> = Vec::new();
        loop {
            let mut all_true = true;
            let mut forced: Option<(usize, bool)> = None;
            for node in self.conjuncts {
                match self.eval(node) {
                    Some(true) => {}
                    Some(false) => {
                        self.undo(&trail);
                        return self.conflict();
                    }
                    None => {
                        all_true = false;
                        if forced.is_none() {
                            forced = self.find_unit(node);
                        }
                    }
                }
            }
            if all_true {
                if self.theory_consistent() {
                    return Some(true);
                }
                self.undo(&trail);
                return self.conflict();
            }
            match forced {
                Some((atom, value)) => {
                    self.assign[atom] = Some(value);
                    trail.push(atom);
                }
                None => break,
            }
        }
        // Early theory pruning on the partial assignment.
        if !self.theory_consistent() {
            self.undo(&trail);
            return self.conflict();
        }
        // Decide: lowest-indexed unassigned atom, true first.
        let Some(atom) = self.assign.iter().position(Option::is_none) else {
            self.undo(&trail);
            return Some(false);
        };
        if self.decisions_left == 0 {
            self.undo(&trail);
            return None;
        }
        self.decisions_left -= 1;
        for value in [true, false] {
            self.assign[atom] = Some(value);
            match self.dpll() {
                Some(true) => return Some(true),
                Some(false) => {}
                None => {
                    self.assign[atom] = None;
                    self.undo(&trail);
                    return None;
                }
            }
        }
        self.assign[atom] = None;
        self.undo(&trail);
        Some(false)
    }

    fn conflict(&mut self) -> Option<bool> {
        if self.conflicts_left == 0 {
            return None;
        }
        self.conflicts_left -= 1;
        Some(false)
    }

    fn undo(&mut self, trail: &[usize]) {
        for &atom in trail {
            self.assign[atom] = None;
        }
    }

    /// 3-valued evaluation of a node under the current assignment.
    fn eval(&self, node: &Node) -> Option<bool> {
        match node {
            Node::True => Some(true),
            Node::False => Some(false),
            Node::Lit { atom, positive } => self.assign[*atom].map(|v| v == *positive),
            Node::And(children) => {
                let mut open = false;
                for c in children {
                    match self.eval(c) {
                        Some(false) => return Some(false),
                        None => open = true,
                        Some(true) => {}
                    }
                }
                if open {
                    None
                } else {
                    Some(true)
                }
            }
            Node::Or(children) => {
                let mut open = false;
                for c in children {
                    match self.eval(c) {
                        Some(true) => return Some(true),
                        None => open = true,
                        Some(false) => {}
                    }
                }
                if open {
                    None
                } else {
                    Some(false)
                }
            }
        }
    }

    /// Finds a literal forced true by an undecided conjunct, if any: an
    /// unassigned Lit, every child of an And, or the single undecided
    /// child of an Or whose siblings are all false.
    fn find_unit(&self, node: &Node) -> Option<(usize, bool)> {
        match node {
            Node::Lit { atom, positive } if self.assign[*atom].is_none() => {
                Some((*atom, *positive))
            }
            Node::And(children) => children
                .iter()
                .filter(|c| self.eval(c).is_none())
                .find_map(|c| self.find_unit(c)),
            Node::Or(children) => {
                let mut undecided = None;
                for c in children {
                    match self.eval(c) {
                        Some(true) => return None,
                        Some(false) => {}
                        None => {
                            if undecided.is_some() {
                                return None;
                            }
                            undecided = Some(c);
                        }
                    }
                }
                undecided.and_then(|c| self.find_unit(c))
            }
            _ => None,
        }
    }

    /// Theory check over the currently assigned atoms: Tier-1 domain
    /// refinement plus a difference-logic negative-cycle pass.
    fn theory_consistent(&self) -> bool {
        let mut dom = self.seed.clone();
        for (i, value) in self.assign.iter().enumerate() {
            if let Some(truth) = *value {
                if dom.assume(&self.atoms[i], truth) == Feasibility::Infeasible {
                    return false;
                }
            }
        }
        self.difference_logic_consistent(&dom)
    }

    /// Builds `x − y ≤ c` edges from assigned unit-coefficient comparison
    /// atoms (plus interval bounds via a virtual zero node) and runs
    /// Bellman–Ford; a negative cycle refutes the assignment.
    fn difference_logic_consistent(&self, dom: &AbstractDomain) -> bool {
        const ZERO: u32 = u32::MAX;
        // Edge (from, to, w) encodes `to − from ≤ w`.
        let mut edges: Vec<(u32, u32, i128)> = Vec::new();
        let mut nodes: Vec<u32> = vec![ZERO];
        let touch = |nodes: &mut Vec<u32>, s: u32| {
            if !nodes.contains(&s) {
                nodes.push(s);
            }
        };
        for (i, value) in self.assign.iter().enumerate() {
            let Some(truth) = *value else { continue };
            let SVal::Binary { op, lhs, rhs } = &self.atoms[i] else {
                continue;
            };
            if !op.is_comparison() {
                continue;
            }
            let op = if truth { *op } else { negate_cmp(*op) };
            let (Some((1, x, bx)), Some((1, y, by))) = (affine_of(lhs), affine_of(rhs)) else {
                continue;
            };
            if x == y {
                continue;
            }
            touch(&mut nodes, x);
            touch(&mut nodes, y);
            // (x + bx) op (y + by)  ⇒  x − y ⋈ by − bx.
            let d = by - bx;
            match op {
                BinOp::Lt => edges.push((y, x, d - 1)),
                BinOp::Le => edges.push((y, x, d)),
                BinOp::Gt => edges.push((x, y, -d - 1)),
                BinOp::Ge => edges.push((x, y, -d)),
                BinOp::Eq => {
                    edges.push((y, x, d));
                    edges.push((x, y, -d));
                }
                _ => {}
            }
        }
        if edges.is_empty() {
            return true;
        }
        // Interval bounds from the refined domain, through the zero node.
        for &s in nodes.iter().skip(1) {
            let f = dom.fact_of(s);
            if f.interval.hi < i128::from(i64::MAX) {
                edges.push((ZERO, s, f.interval.hi));
            }
            if f.interval.lo > i128::from(i64::MIN) {
                edges.push((s, ZERO, -f.interval.lo));
            }
        }
        // Bellman–Ford from an implicit super-source (all distances 0):
        // |V| rounds of relaxation; any relaxation in round |V| means a
        // negative cycle.
        let index_of = |s: u32| nodes.iter().position(|&n| n == s).unwrap_or(0);
        let mut dist = vec![0i128; nodes.len()];
        for round in 0..=nodes.len() {
            let mut changed = false;
            for &(from, to, w) in &edges {
                let (fi, ti) = (index_of(from), index_of(to));
                if dist[fi] + w < dist[ti] {
                    dist[ti] = dist[fi] + w;
                    changed = true;
                }
            }
            if !changed {
                return true;
            }
            if round == nodes.len() {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Symbol;

    fn sym(id: u32) -> SVal {
        SVal::Sym(Symbol::new(id, ""))
    }

    fn int(v: i64) -> SVal {
        SVal::Int(v)
    }

    fn bin(op: BinOp, l: SVal, r: SVal) -> SVal {
        SVal::binary(op, l, r)
    }

    fn check(assumptions: &[(SVal, bool)], cond: SVal, taken: bool) -> Verdict {
        let mut path = PathCondition::new();
        for (c, t) in assumptions {
            path.push(c.clone(), *t);
        }
        check_path(
            &path,
            &cond,
            taken,
            &AbstractDomain::new(),
            Budget::default(),
        )
    }

    #[test]
    fn var_vs_var_cycle_is_unsat() {
        // x < y ∧ y < x: invisible to per-symbol domains, caught by the
        // difference-logic pass.
        let verdict = check(
            &[(bin(BinOp::Lt, sym(0), sym(1)), true)],
            bin(BinOp::Lt, sym(1), sym(0)),
            true,
        );
        assert_eq!(verdict, Verdict::Unsat);
    }

    #[test]
    fn var_chain_with_offsets_is_unsat() {
        // x ≤ y ∧ y ≤ x − 1 is a negative cycle.
        let verdict = check(
            &[(bin(BinOp::Le, sym(0), sym(1)), true)],
            bin(BinOp::Le, sym(1), bin(BinOp::Sub, sym(0), int(1))),
            true,
        );
        assert_eq!(verdict, Verdict::Unsat);
    }

    #[test]
    fn satisfiable_chain_is_sat() {
        let verdict = check(
            &[(bin(BinOp::Lt, sym(0), sym(1)), true)],
            bin(BinOp::Lt, sym(1), sym(2)),
            true,
        );
        assert_eq!(verdict, Verdict::Sat);
    }

    #[test]
    fn disjunction_forces_contradiction() {
        // (x < 0 || x > 10) ∧ x == 5: both disjuncts conflict with the
        // domain refinement of x == 5.
        let disj = bin(
            BinOp::LogOr,
            bin(BinOp::Lt, sym(0), int(0)),
            bin(BinOp::Gt, sym(0), int(10)),
        );
        let verdict = check(&[(disj, true)], bin(BinOp::Eq, sym(0), int(5)), true);
        assert_eq!(verdict, Verdict::Unsat);
    }

    #[test]
    fn negated_conjunction_de_morgans() {
        // !(x ≥ 0 && x ≤ 10) ∧ x == 5 is unsat.
        let conj = bin(
            BinOp::LogAnd,
            bin(BinOp::Ge, sym(0), int(0)),
            bin(BinOp::Le, sym(0), int(10)),
        );
        let verdict = check(&[(conj, false)], bin(BinOp::Eq, sym(0), int(5)), true);
        assert_eq!(verdict, Verdict::Unsat);
    }

    #[test]
    fn seed_domain_constrains_atoms() {
        // Seed: x ∈ [0, 3]. Probe x > 7 — unsat against the seed.
        let mut seed = AbstractDomain::new();
        seed.assume(&bin(BinOp::Ge, sym(0), int(0)), true);
        seed.assume(&bin(BinOp::Le, sym(0), int(3)), true);
        let verdict = check_path(
            &PathCondition::new(),
            &bin(BinOp::Gt, sym(0), int(7)),
            true,
            &seed,
            Budget::default(),
        );
        assert_eq!(verdict, Verdict::Unsat);
    }

    #[test]
    fn zero_budget_is_unknown_when_deciding() {
        // Two independent free atoms force a decision; a zero budget must
        // give Unknown, never a wrong Unsat.
        let a = bin(
            BinOp::LogOr,
            bin(BinOp::Lt, sym(0), int(0)),
            bin(BinOp::Lt, sym(1), int(0)),
        );
        let b = bin(
            BinOp::LogOr,
            bin(BinOp::Gt, sym(0), int(5)),
            bin(BinOp::Gt, sym(1), int(5)),
        );
        let mut path = PathCondition::new();
        path.push(a, true);
        let verdict = check_path(
            &path,
            &b,
            true,
            &AbstractDomain::new(),
            Budget {
                decisions: 0,
                conflicts: 0,
            },
        );
        assert_eq!(verdict, Verdict::Unknown);
    }

    #[test]
    fn trivially_true_condition_is_sat() {
        let verdict = check(&[], int(1), true);
        assert_eq!(verdict, Verdict::Sat);
    }

    #[test]
    fn constant_false_condition_is_unsat() {
        let verdict = check(&[], int(0), true);
        assert_eq!(verdict, Verdict::Unsat);
    }
}
