//! Symbolic values and the region-based memory model.
//!
//! [`Region`] mirrors the Clang Static Analyzer hierarchy the paper relies
//! on in §VI-B: variable regions, element regions (array subobjects), field
//! regions (struct subobjects) and `SymRegion` — the alias region for memory
//! blocks reached through symbolic pointers. [`SVal`] is the symbolic value
//! domain stored in σ: constants, symbols, region addresses (pointers) and
//! partially evaluated expression trees.

use std::fmt;

use minic::ast::{BinOp, UnOp};
use serde::{Deserialize, Serialize};

use crate::intern::HC;

/// A total-ordered `f64` wrapper so symbolic values can key `BTreeMap`s.
///
/// Ordering and equality follow [`f64::total_cmp`], so `NaN == NaN` here —
/// acceptable for the analyzer, which never branches on NaN identity.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct OrderedF64(pub f64);

impl std::hash::Hash for OrderedF64 {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        // Bit-level hashing is consistent with the total_cmp-based Eq:
        // total_cmp equality implies identical bit patterns.
        self.0.to_bits().hash(state);
    }
}

impl PartialEq for OrderedF64 {
    fn eq(&self, other: &Self) -> bool {
        self.0.total_cmp(&other.0) == std::cmp::Ordering::Equal
    }
}
impl Eq for OrderedF64 {}
impl PartialOrd for OrderedF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for OrderedF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}
impl fmt::Display for OrderedF64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// A fresh symbolic variable (the `αᵢ` of §VI-B).
///
/// Symbols are identified by `id`; `hint` is a human-readable name used in
/// traces and reports (e.g. `secrets[0]`). Two symbols with the same id are
/// the same symbol — the engine never reuses ids within one exploration.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Symbol {
    /// Unique id within one exploration.
    pub id: u32,
    /// Display name, e.g. the expression the symbol materialized from.
    pub hint: String,
}

impl Symbol {
    /// Creates a symbol.
    pub fn new(id: u32, hint: impl Into<String>) -> Self {
        Symbol {
            id,
            hint: hint.into(),
        }
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.hint.is_empty() {
            write!(f, "$:{}", self.id)
        } else {
            write!(f, "${}", self.hint)
        }
    }
}

/// An abstract memory region, following the Clang Static Analyzer model.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Region {
    /// A named local variable or parameter of a function frame
    /// (`VarRegion`). `frame` disambiguates inlined calls.
    Var {
        /// Frame identifier (0 = entry function; >0 for inlined callees).
        frame: u32,
        /// Variable name.
        name: String,
    },
    /// A global variable.
    Global {
        /// Global name.
        name: String,
    },
    /// An array subobject `base[index]` (`ElementRegion`).
    Element {
        /// The array (super) region (hash-consed, shared across states).
        base: HC<Region>,
        /// Element index, possibly symbolic (hash-consed).
        index: HC<SVal>,
    },
    /// A struct subobject `base.field` (`FieldRegion`).
    Field {
        /// The struct (super) region (hash-consed, shared across states).
        base: HC<Region>,
        /// Field name.
        field: String,
    },
    /// The unknown memory block a symbolic pointer points to (`SymRegion`).
    Sym {
        /// The pointer symbol this region aliases.
        symbol: Symbol,
    },
    /// A string literal's storage.
    Str {
        /// The literal contents.
        text: String,
    },
}

impl Region {
    /// Builds an [`Region::Element`] node, interning both edges.
    pub fn element(base: Region, index: SVal) -> Region {
        Region::Element {
            base: HC::new(base),
            index: HC::new(index),
        }
    }

    /// Builds a [`Region::Field`] node, interning the base edge.
    pub fn field(base: Region, field: impl Into<String>) -> Region {
        Region::Field {
            base: HC::new(base),
            field: field.into(),
        }
    }

    /// The outermost base region (peeling `Element`/`Field` layers).
    pub fn base(&self) -> &Region {
        match self {
            Region::Element { base, .. } | Region::Field { base, .. } => base.base(),
            other => other,
        }
    }

    /// The immediate super-region, if this is a subobject region.
    pub fn parent(&self) -> Option<&Region> {
        match self {
            Region::Element { base, .. } | Region::Field { base, .. } => Some(base),
            _ => None,
        }
    }

    /// Rewrites every symbol id in the region through `f`.
    ///
    /// Nodes are hash-consed DAGs, so the rewrite rebuilds only the spine
    /// that actually changes; untouched subtrees keep their shared
    /// allocation.
    pub fn remap_symbols<F: Fn(u32) -> u32>(&mut self, f: &F) {
        if let Some(remapped) = self.remapped(f) {
            *self = remapped;
        }
    }

    /// Returns the rewritten region, or `None` when nothing changed (the
    /// caller keeps its existing shared node).
    fn remapped<F: Fn(u32) -> u32>(&self, f: &F) -> Option<Region> {
        match self {
            Region::Element { base, index } => {
                let b = base.remapped(f);
                let i = index.remapped(f);
                if b.is_none() && i.is_none() {
                    return None;
                }
                Some(Region::Element {
                    base: b.map(HC::new).unwrap_or_else(|| base.clone()),
                    index: i.map(HC::new).unwrap_or_else(|| index.clone()),
                })
            }
            Region::Field { base, field } => base.remapped(f).map(|b| Region::Field {
                base: HC::new(b),
                field: field.clone(),
            }),
            Region::Sym { symbol } => {
                let id = f(symbol.id);
                (id != symbol.id).then(|| Region::Sym {
                    symbol: Symbol {
                        id,
                        hint: symbol.hint.clone(),
                    },
                })
            }
            Region::Var { .. } | Region::Global { .. } | Region::Str { .. } => None,
        }
    }

    /// Whether this region is `other` or a subregion of it.
    pub fn is_within(&self, other: &Region) -> bool {
        if self == other {
            return true;
        }
        match self {
            Region::Element { base, .. } | Region::Field { base, .. } => base.is_within(other),
            _ => false,
        }
    }
}

impl fmt::Display for Region {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Region::Var { frame, name } => {
                if *frame == 0 {
                    write!(f, "{name}")
                } else {
                    write!(f, "{name}#{frame}")
                }
            }
            Region::Global { name } => write!(f, "::{name}"),
            Region::Element { base, index } => write!(f, "{base}[{index}]"),
            Region::Field { base, field } => write!(f, "{base}.{field}"),
            Region::Sym { symbol } => write!(f, "SymRegion({})", symbol.hint),
            Region::Str { text } => write!(f, "str({text:?})"),
        }
    }
}

/// A symbolic value — what the store σ maps regions to.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum SVal {
    /// A concrete integer.
    Int(i64),
    /// A concrete float.
    Float(OrderedF64),
    /// A symbolic variable.
    Sym(Symbol),
    /// The address of a region (pointer values).
    Loc(Region),
    /// A partially evaluated binary expression.
    Binary {
        /// The operator.
        op: BinOp,
        /// Left operand (hash-consed, shared across states).
        lhs: HC<SVal>,
        /// Right operand (hash-consed, shared across states).
        rhs: HC<SVal>,
    },
    /// A partially evaluated unary expression.
    Unary {
        /// The operator.
        op: UnOp,
        /// The operand (hash-consed, shared across states).
        arg: HC<SVal>,
    },
    /// An uninterpreted function application, e.g. `sqrt(α₁)`.
    Call {
        /// Function name.
        func: String,
        /// Argument values.
        args: Vec<SVal>,
    },
    /// A value the engine cannot represent more precisely.
    Unknown,
}

impl SVal {
    /// Convenience constructor for floats.
    pub fn float(v: f64) -> SVal {
        SVal::Float(OrderedF64(v))
    }

    /// Builds a binary expression node (no simplification), interning both
    /// operands.
    pub fn binary(op: BinOp, lhs: SVal, rhs: SVal) -> SVal {
        SVal::Binary {
            op,
            lhs: HC::new(lhs),
            rhs: HC::new(rhs),
        }
    }

    /// Builds a unary expression node (no simplification), interning the
    /// operand.
    pub fn unary(op: UnOp, arg: SVal) -> SVal {
        SVal::Unary {
            op,
            arg: HC::new(arg),
        }
    }

    /// Whether the value is a concrete constant.
    pub fn is_const(&self) -> bool {
        matches!(self, SVal::Int(_) | SVal::Float(_))
    }

    /// The concrete integer, if this is an [`SVal::Int`].
    pub fn as_int(&self) -> Option<i64> {
        match self {
            SVal::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// Whether [`SVal::Unknown`] occurs anywhere in the expression.
    pub fn has_unknown(&self) -> bool {
        match self {
            SVal::Unknown => true,
            SVal::Int(_) | SVal::Float(_) | SVal::Sym(_) | SVal::Loc(_) => false,
            SVal::Binary { lhs, rhs, .. } => lhs.has_unknown() || rhs.has_unknown(),
            SVal::Unary { arg, .. } => arg.has_unknown(),
            SVal::Call { args, .. } => args.iter().any(SVal::has_unknown),
        }
    }

    /// Counts expression nodes, giving up once `limit` is exceeded.
    ///
    /// Returns `None` when the expression has more than `limit` nodes —
    /// used by the engine's value summarization to bound expression growth
    /// without paying a full traversal.
    pub fn size_within(&self, limit: usize) -> Option<usize> {
        fn walk(v: &SVal, budget: &mut usize) -> bool {
            if *budget == 0 {
                return false;
            }
            *budget -= 1;
            match v {
                SVal::Int(_) | SVal::Float(_) | SVal::Sym(_) | SVal::Unknown => true,
                SVal::Loc(region) => walk_region(region, budget),
                SVal::Binary { lhs, rhs, .. } => walk(lhs, budget) && walk(rhs, budget),
                SVal::Unary { arg, .. } => walk(arg, budget),
                SVal::Call { args, .. } => args.iter().all(|a| walk(a, budget)),
            }
        }
        fn walk_region(r: &Region, budget: &mut usize) -> bool {
            if *budget == 0 {
                return false;
            }
            *budget -= 1;
            match r {
                Region::Element { base, index } => walk_region(base, budget) && walk(index, budget),
                Region::Field { base, .. } => walk_region(base, budget),
                _ => true,
            }
        }
        let mut budget = limit;
        if walk(self, &mut budget) {
            Some(limit - budget)
        } else {
            None
        }
    }

    /// Rewrites every symbol id in the expression through `f`.
    ///
    /// Used by the worklist engine's deterministic merge to translate
    /// task-local symbol ids into the global numbering. Nodes are
    /// hash-consed DAGs, so only the changed spine is rebuilt; untouched
    /// subtrees keep their shared allocation.
    pub fn remap_symbols<F: Fn(u32) -> u32>(&mut self, f: &F) {
        if let Some(remapped) = self.remapped(f) {
            *self = remapped;
        }
    }

    /// Returns the rewritten value, or `None` when nothing changed (the
    /// caller keeps its existing shared node).
    fn remapped<F: Fn(u32) -> u32>(&self, f: &F) -> Option<SVal> {
        match self {
            SVal::Sym(sym) => {
                let id = f(sym.id);
                (id != sym.id).then(|| {
                    SVal::Sym(Symbol {
                        id,
                        hint: sym.hint.clone(),
                    })
                })
            }
            SVal::Loc(region) => region.remapped(f).map(SVal::Loc),
            SVal::Binary { op, lhs, rhs } => {
                let l = lhs.remapped(f);
                let r = rhs.remapped(f);
                if l.is_none() && r.is_none() {
                    return None;
                }
                Some(SVal::Binary {
                    op: *op,
                    lhs: l.map(HC::new).unwrap_or_else(|| lhs.clone()),
                    rhs: r.map(HC::new).unwrap_or_else(|| rhs.clone()),
                })
            }
            SVal::Unary { op, arg } => arg.remapped(f).map(|a| SVal::Unary {
                op: *op,
                arg: HC::new(a),
            }),
            SVal::Call { func, args } => {
                let mut changed = false;
                let args = args
                    .iter()
                    .map(|arg| match arg.remapped(f) {
                        Some(new) => {
                            changed = true;
                            new
                        }
                        None => arg.clone(),
                    })
                    .collect();
                changed.then(|| SVal::Call {
                    func: func.clone(),
                    args,
                })
            }
            SVal::Int(_) | SVal::Float(_) | SVal::Unknown => None,
        }
    }

    /// Collects the ids of all symbols occurring in the expression.
    pub fn symbols(&self, out: &mut std::collections::BTreeSet<u32>) {
        match self {
            SVal::Sym(sym) => {
                out.insert(sym.id);
            }
            SVal::Loc(region) => region_symbols(region, out),
            SVal::Binary { lhs, rhs, .. } => {
                lhs.symbols(out);
                rhs.symbols(out);
            }
            SVal::Unary { arg, .. } => arg.symbols(out),
            SVal::Call { args, .. } => {
                for arg in args {
                    arg.symbols(out);
                }
            }
            SVal::Int(_) | SVal::Float(_) | SVal::Unknown => {}
        }
    }
}

fn region_symbols(region: &Region, out: &mut std::collections::BTreeSet<u32>) {
    match region {
        Region::Element { base, index } => {
            region_symbols(base, out);
            index.symbols(out);
        }
        Region::Field { base, .. } => region_symbols(base, out),
        Region::Sym { symbol } => {
            out.insert(symbol.id);
        }
        Region::Var { .. } | Region::Global { .. } | Region::Str { .. } => {}
    }
}

impl fmt::Display for SVal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SVal::Int(v) => write!(f, "{v}"),
            SVal::Float(v) => write!(f, "{}", v.0),
            SVal::Sym(sym) => write!(f, "{sym}"),
            SVal::Loc(region) => write!(f, "&{region}"),
            SVal::Binary { op, lhs, rhs } => write!(f, "({lhs} {op} {rhs})"),
            SVal::Unary { op, arg } => write!(f, "({op}{arg})"),
            SVal::Call { func, args } => {
                write!(f, "{func}(")?;
                for (i, arg) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{arg}")?;
                }
                write!(f, ")")
            }
            SVal::Unknown => write!(f, "⟨unknown⟩"),
        }
    }
}

impl From<i64> for SVal {
    fn from(v: i64) -> Self {
        SVal::Int(v)
    }
}

impl From<Symbol> for SVal {
    fn from(sym: Symbol) -> Self {
        SVal::Sym(sym)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sym(id: u32, hint: &str) -> Symbol {
        Symbol::new(id, hint)
    }

    #[test]
    fn region_base_peels_layers() {
        let base = Region::Sym {
            symbol: sym(0, "secrets"),
        };
        let elem = Region::element(base.clone(), SVal::Int(1));
        let field = Region::field(elem.clone(), "w");
        assert_eq!(field.base(), &base);
        assert!(field.is_within(&base));
        assert!(elem.is_within(&base));
        assert!(elem.is_within(&elem));
        assert!(!base.is_within(&elem));
    }

    #[test]
    fn display_forms() {
        let base = Region::Sym {
            symbol: sym(0, "secrets"),
        };
        let elem = Region::element(base, SVal::Int(0));
        assert_eq!(elem.to_string(), "SymRegion(secrets)[0]");
        let v = SVal::binary(BinOp::Add, SVal::Sym(sym(1, "secrets[0]")), SVal::Int(100));
        assert_eq!(v.to_string(), "($secrets[0] + 100)");
    }

    #[test]
    fn symbols_are_collected_transitively() {
        let v = SVal::binary(
            BinOp::Mul,
            SVal::Sym(sym(1, "a")),
            SVal::Loc(Region::element(
                Region::Sym {
                    symbol: sym(2, "p"),
                },
                SVal::Sym(sym(3, "i")),
            )),
        );
        let mut ids = std::collections::BTreeSet::new();
        v.symbols(&mut ids);
        assert_eq!(ids.into_iter().collect::<Vec<_>>(), vec![1, 2, 3]);
    }

    #[test]
    fn remap_preserves_sharing_when_identity() {
        let mut v = SVal::binary(BinOp::Add, SVal::Sym(sym(7, "x")), SVal::Int(2));
        let before = match &v {
            SVal::Binary { lhs, .. } => lhs.clone(),
            _ => unreachable!("binary"),
        };
        v.remap_symbols(&|id| id); // identity: no rebuild
        let after = match &v {
            SVal::Binary { lhs, .. } => lhs.clone(),
            _ => unreachable!("binary"),
        };
        assert!(HC::ptr_eq(&before, &after));

        v.remap_symbols(&|id| id + 100);
        let mut ids = std::collections::BTreeSet::new();
        v.symbols(&mut ids);
        assert_eq!(ids.into_iter().collect::<Vec<_>>(), vec![107]);
    }

    #[test]
    fn ordered_f64_total_order() {
        assert_eq!(OrderedF64(f64::NAN), OrderedF64(f64::NAN));
        assert!(OrderedF64(1.0) < OrderedF64(2.0));
        assert_ne!(OrderedF64(0.0), OrderedF64(-0.0));
    }

    #[test]
    fn has_unknown_detection() {
        let clean = SVal::binary(BinOp::Add, SVal::Int(1), SVal::Sym(sym(0, "x")));
        assert!(!clean.has_unknown());
        let dirty = SVal::binary(BinOp::Add, SVal::Int(1), SVal::Unknown);
        assert!(dirty.has_unknown());
    }
}
