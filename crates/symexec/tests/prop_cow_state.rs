//! Property tests for copy-on-write path states.
//!
//! An [`ExecState`] clone is a structural share (persistent maps, chunked
//! logs, hash-consed values), not a deep copy. These tests drive random
//! operation sequences against a state *and* a deep `std`-container model
//! in lockstep — including forking into divergent siblings — and assert
//! the shared representation is observationally identical to the model:
//! no write on one sibling may ever leak into the other, and every query
//! (store, taint, environment, secret bases, subregion windows) must agree
//! with the deep baseline.

use std::collections::{BTreeMap, BTreeSet};

use minic::ast::ExprId;
use proptest::collection::vec as pvec;
use proptest::prelude::*;
use symexec::state::ExecState;
use symexec::value::{Region, SVal, Symbol};
use taint::{SourceId, TaintSet};

/// A small fixed universe of regions: plain bases, nested subobjects
/// (including chains whose intermediate region may never be bound — the
/// orphan case for window queries) and a symbolic element index.
fn universe() -> Vec<Region> {
    let var_x = Region::Var {
        frame: 0,
        name: "x".into(),
    };
    let global_g = Region::Global { name: "g".into() };
    let sym_p = Region::Sym {
        symbol: Symbol::new(1, "p"),
    };
    let buf = Region::Sym {
        symbol: Symbol::new(2, "buf"),
    };
    let elem0 = Region::element(buf.clone(), SVal::Int(0));
    let elem1 = Region::element(buf.clone(), SVal::Int(1));
    let elem_sym = Region::element(buf.clone(), SVal::Sym(Symbol::new(3, "i")));
    let field_a = Region::field(sym_p.clone(), "a");
    let deep = Region::field(field_a.clone(), "b");
    let deeper = Region::element(deep.clone(), SVal::Int(2));
    let elem_of_elem = Region::element(elem0.clone(), SVal::Int(5));
    vec![
        var_x,
        global_g,
        sym_p,
        buf,
        elem0,
        elem1,
        elem_sym,
        field_a,
        deep,
        deeper,
        elem_of_elem,
    ]
}

#[derive(Clone, Debug)]
enum Op {
    /// `ExecState::write`: store + taint + write log.
    Write {
        region: usize,
        value: i64,
        source: u32,
    },
    /// Remove a store binding.
    Unbind { region: usize },
    /// Join extra taint into a region.
    Join { region: usize, source: u32 },
    /// Bind an lvalue expression to a region.
    BindEnv { expr: u32, region: usize },
    /// Mark a region as a secret base.
    MarkSecret { region: usize },
}

/// Deep baseline built on plain `std` containers with fresh allocations —
/// what a deep-cloned state would hold.
#[derive(Clone, Debug, Default)]
struct Model {
    store: BTreeMap<Region, SVal>,
    taints: BTreeMap<Region, TaintSet>,
    env: BTreeMap<ExprId, Region>,
    write_log: Vec<Region>,
    secrets: BTreeSet<Region>,
}

fn taint_of(source: u32) -> TaintSet {
    if source == 0 {
        TaintSet::bottom()
    } else {
        TaintSet::source(SourceId::new(source))
    }
}

fn apply(op: &Op, state: &mut ExecState, model: &mut Model, regions: &[Region]) {
    match *op {
        Op::Write {
            region,
            value,
            source,
        } => {
            let r = regions[region % regions.len()].clone();
            let ts = taint_of(source);
            state.write(r.clone(), SVal::Int(value), ts.clone());
            model.write_log.push(r.clone());
            if ts.is_empty() {
                model.taints.remove(&r);
            } else {
                model.taints.insert(r.clone(), ts);
            }
            model.store.insert(r, SVal::Int(value));
        }
        Op::Unbind { region } => {
            let r = &regions[region % regions.len()];
            let got = state.store.unbind(r);
            assert_eq!(got, model.store.remove(r));
        }
        Op::Join { region, source } => {
            let r = regions[region % regions.len()].clone();
            let ts = taint_of(source);
            state.taints.join_into(r.clone(), &ts);
            if !ts.is_empty() {
                let mut joined = model.taints.get(&r).cloned().unwrap_or_default();
                joined.join_assign(&ts);
                model.taints.insert(r, joined);
            }
        }
        Op::BindEnv { expr, region } => {
            let r = regions[region % regions.len()].clone();
            state.env.bind(ExprId(expr), r.clone());
            model.env.insert(ExprId(expr), r);
        }
        Op::MarkSecret { region } => {
            let r = regions[region % regions.len()].clone();
            state.secret_bases.insert(r.clone());
            model.secrets.insert(r);
        }
    }
}

/// Asserts a COW state is observationally identical to its deep model.
fn check(state: &ExecState, model: &Model, regions: &[Region]) -> Result<(), TestCaseError> {
    // Store: same entries, same iteration order.
    let got: Vec<_> = state
        .store
        .iter()
        .map(|(r, v)| (r.clone(), v.clone()))
        .collect();
    let want: Vec<_> = model
        .store
        .iter()
        .map(|(r, v)| (r.clone(), v.clone()))
        .collect();
    prop_assert_eq!(got, want, "store content/order diverged");

    // Taints: canonical (no ⊥ entries), same order.
    let got: Vec<_> = state
        .taints
        .iter()
        .map(|(r, t)| (r.clone(), t.clone()))
        .collect();
    let want: Vec<_> = model
        .taints
        .iter()
        .map(|(r, t)| (r.clone(), t.clone()))
        .collect();
    prop_assert_eq!(got, want, "taint map diverged");

    // Environment lookups.
    for id in 0..8u32 {
        prop_assert_eq!(
            state.env.region_of(ExprId(id)),
            model.env.get(&ExprId(id)),
            "env binding diverged for expr {}",
            id
        );
    }

    // Write log: same sequence.
    prop_assert_eq!(
        state.write_log.to_vec(),
        model.write_log.clone(),
        "write log diverged"
    );

    // Secret-base chain probe vs. linear scan over the model.
    for r in regions {
        let want = model.secrets.iter().any(|base| r.is_within(base));
        prop_assert_eq!(
            state.is_secret_region(r),
            want,
            "is_secret_region diverged for {}",
            r
        );
    }

    // Subregion window query vs. naive full filter over the model.
    for base in regions {
        let got: Vec<Region> = state
            .store
            .regions_within(base)
            .map(|(r, _)| r.clone())
            .collect();
        let want: Vec<Region> = model
            .store
            .iter()
            .filter(|(r, _)| r.is_within(base))
            .map(|(r, _)| r.clone())
            .collect();
        prop_assert_eq!(got, want, "regions_within diverged for base {}", base);
    }
    Ok(())
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0usize..16, -100i64..100, 0u32..4).prop_map(|(region, value, source)| Op::Write {
            region,
            value,
            source
        }),
        (0usize..16).prop_map(|region| Op::Unbind { region }),
        (0usize..16, 0u32..4).prop_map(|(region, source)| Op::Join { region, source }),
        (0u32..8, 0usize..16).prop_map(|(expr, region)| Op::BindEnv { expr, region }),
        (0usize..16).prop_map(|region| Op::MarkSecret { region }),
    ]
}

proptest! {
    /// Fork a state, drive the two siblings (and their deep models) down
    /// divergent suffixes, and require both to match their baselines —
    /// i.e. structural sharing never lets one sibling observe the other.
    #[test]
    fn cow_siblings_match_deep_clone_baselines(
        prefix in pvec(arb_op(), 0..25),
        left in pvec(arb_op(), 0..25),
        right in pvec(arb_op(), 0..25),
    ) {
        let regions = universe();
        let mut state = ExecState::new();
        let mut model = Model::default();
        for op in &prefix {
            apply(op, &mut state, &mut model, &regions);
        }

        // Fork: O(1) structural share vs. deep model copy.
        let mut left_state = state.clone();
        let mut left_model = model.clone();
        let mut right_state = state;
        let mut right_model = model;

        for op in &left {
            apply(op, &mut left_state, &mut left_model, &regions);
        }
        for op in &right {
            apply(op, &mut right_state, &mut right_model, &regions);
        }

        check(&left_state, &left_model, &regions)?;
        check(&right_state, &right_model, &regions)?;
    }

    /// `Store::regions_within` (prefix-window walk with orphan fallback)
    /// agrees with the naive full filter on stores with unbound
    /// intermediate regions and symbolic indexes.
    #[test]
    fn regions_within_matches_naive_filter(
        bind_mask in 0u32..(1 << 11),
    ) {
        let regions = universe();
        let mut store = symexec::state::Store::new();
        let mut reference: BTreeMap<Region, SVal> = BTreeMap::new();
        for (i, r) in regions.iter().enumerate() {
            if bind_mask & (1 << i) != 0 {
                store.bind(r.clone(), SVal::Int(i as i64));
                reference.insert(r.clone(), SVal::Int(i as i64));
            }
        }
        for base in &regions {
            let got: Vec<Region> = store.regions_within(base).map(|(r, _)| r.clone()).collect();
            let want: Vec<Region> = reference
                .iter()
                .filter(|(r, _)| r.is_within(base))
                .map(|(r, _)| r.clone())
                .collect();
            prop_assert_eq!(got, want, "base {}", base);
        }
    }
}
