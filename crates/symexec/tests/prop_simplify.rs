//! Property tests: the simplifier is sound w.r.t. concrete evaluation, and
//! the constraint manager never refutes a satisfiable path (checked against
//! brute-force assignments on a small domain).

use proptest::prelude::*;
use symexec::concrete::{assignment, eval, eval_bool};
use symexec::constraints::{ConstraintManager, Feasibility};
use symexec::simplify::simplify;
use symexec::value::{SVal, Symbol};

use minic::ast::{BinOp, UnOp};

const BINOPS: &[BinOp] = &[
    BinOp::Add,
    BinOp::Sub,
    BinOp::Mul,
    BinOp::Div,
    BinOp::Rem,
    BinOp::Lt,
    BinOp::Le,
    BinOp::Gt,
    BinOp::Ge,
    BinOp::Eq,
    BinOp::Ne,
    BinOp::BitAnd,
    BinOp::BitXor,
    BinOp::BitOr,
    BinOp::Shl,
    BinOp::Shr,
    BinOp::LogAnd,
    BinOp::LogOr,
];

const UNOPS: &[UnOp] = &[UnOp::Neg, UnOp::Plus, UnOp::Not, UnOp::BitNot];

fn arb_sval() -> impl Strategy<Value = SVal> {
    let leaf = prop_oneof![
        (-50i64..50).prop_map(SVal::Int),
        (0u32..3).prop_map(|id| SVal::Sym(Symbol::new(id, format!("s{id}")))),
    ];
    leaf.prop_recursive(4, 64, 3, |inner| {
        prop_oneof![
            (
                (0..BINOPS.len()).prop_map(|i| BINOPS[i]),
                inner.clone(),
                inner.clone()
            )
                .prop_map(|(op, a, b)| SVal::binary(op, a, b)),
            ((0..UNOPS.len()).prop_map(|i| UNOPS[i]), inner).prop_map(|(op, a)| SVal::unary(op, a)),
        ]
    })
}

proptest! {
    /// `eval(simplify(e)) == eval(e)` wherever both are defined.
    #[test]
    fn simplifier_is_sound(e in arb_sval(), v0 in -20i64..20, v1 in -20i64..20, v2 in -20i64..20) {
        let env = assignment([(0, v0), (1, v1), (2, v2)]);
        let before = eval(&e, &env);
        let after = eval(&simplify(&e), &env);
        match (before, after) {
            (Some(a), Some(b)) => prop_assert_eq!(a, b, "simplify changed value of {}", e),
            // Division by zero inside the tree may collapse to Unknown on
            // one side only — both None or one None is acceptable only when
            // the original was undefined.
            (None, _) => {}
            (Some(a), None) => prop_assert!(false, "simplify lost definedness of {} (= {})", e, a),
        }
    }

    /// Simplification is idempotent.
    #[test]
    fn simplifier_is_idempotent(e in arb_sval()) {
        let once = simplify(&e);
        let twice = simplify(&once);
        prop_assert_eq!(once, twice);
    }

    /// If an assignment satisfies a set of branch assumptions, the
    /// constraint manager must keep the path feasible (no false pruning).
    #[test]
    fn constraints_never_refute_satisfiable_paths(
        conds in proptest::collection::vec(arb_sval(), 1..5),
        v0 in -20i64..20, v1 in -20i64..20, v2 in -20i64..20,
    ) {
        let env = assignment([(0, v0), (1, v1), (2, v2)]);
        let mut cm = ConstraintManager::new();
        for cond in &conds {
            let cond = simplify(cond);
            let Some(truth) = eval_bool(&cond, &env) else {
                // undefined condition (e.g. division by zero) — skip
                continue;
            };
            // The assignment satisfies (cond == truth); the manager must
            // not call the accumulated set infeasible.
            prop_assert_eq!(
                cm.assume(&cond, truth),
                Feasibility::Feasible,
                "refuted satisfiable path at {} = {}",
                cond,
                truth
            );
        }
    }
}
