//! Fork-heavy stress fixture for copy-on-write path states.
//!
//! A cascade of independent branches doubles the path population at every
//! step, so by the end the engine holds hundreds of sibling states that
//! all share the structure built before their fork points. The test pins
//! down (a) the combinatorial population survives with per-path results
//! intact, and (b) worker count does not change a single observable —
//! byte-level determinism is the invariant structural sharing must not
//! break.

use symexec::engine::{Engine, EngineConfig, ParamBinding};

/// `levels` sequential two-way branches over a secret array: 2^levels
/// feasible paths, each writing a distinct cell pattern.
fn cascade_source(levels: usize) -> String {
    let mut body = String::new();
    body.push_str("int acc = 0;\nint cells[16];\n");
    for i in 0..levels {
        body.push_str(&format!(
            "if (secrets[{i}] > {threshold}) {{ cells[{i}] = secrets[{i}] + {i}; acc = acc + cells[{i}]; }} else {{ cells[{i}] = {i}; }}\n",
            threshold = 10 + i,
        ));
    }
    body.push_str("return acc;\n");
    format!("int cascade(int *secrets) {{\n{body}}}\n")
}

fn run_cascade(levels: usize, workers: usize) -> symexec::engine::Exploration {
    let unit = minic::parse(&cascade_source(levels)).expect("fixture parses");
    let config = EngineConfig {
        workers,
        max_paths: 4096,
        ..EngineConfig::default()
    };
    Engine::new(&unit, config)
        .run("cascade", &[ParamBinding::SecretPointer])
        .expect("exploration succeeds")
}

#[test]
fn cascade_explores_every_fork() {
    let levels = 8;
    let exploration = run_cascade(levels, 1);
    assert_eq!(
        exploration.paths.len(),
        1 << levels,
        "2^{levels} feasible paths expected"
    );
    // Every completed path carries its own divergent store: the final
    // branch's cell differs between the sibling halves.
    let taken: Vec<bool> = exploration
        .paths
        .iter()
        .map(|p| {
            p.state
                .path
                .assumptions()
                .last()
                .expect("at least one assumption")
                .taken
        })
        .collect();
    assert!(taken.iter().any(|t| *t) && taken.iter().any(|t| !*t));
    assert_eq!(exploration.stats.forks, (1 << levels) - 1);
}

#[test]
fn cascade_is_identical_across_worker_counts() {
    let levels = 7;
    let sequential = run_cascade(levels, 1);
    let parallel = run_cascade(levels, 4);
    assert_eq!(sequential.paths.len(), parallel.paths.len());
    for (a, b) in sequential.paths.iter().zip(parallel.paths.iter()) {
        assert_eq!(a.return_value, b.return_value);
        assert_eq!(a.state, b.state, "path state diverged across worker counts");
    }
    assert_eq!(sequential.stats, parallel.stats);
}

#[test]
fn sibling_paths_do_not_alias_writes() {
    // Two paths from one fork must hold different values for the same
    // region — the classic aliasing bug a broken COW layer would cause.
    let unit = minic::parse(
        "int pick(int secret) { int out = 0; if (secret > 5) { out = 1; } else { out = 2; } return out; }",
    )
    .expect("fixture parses");
    let exploration = Engine::new(&unit, EngineConfig::default())
        .run("pick", &[ParamBinding::SecretScalar])
        .expect("exploration succeeds");
    assert_eq!(exploration.paths.len(), 2);
    let out = symexec::value::Region::Var {
        frame: 0,
        name: "out".into(),
    };
    let values: Vec<_> = exploration
        .paths
        .iter()
        .map(|p| p.state.store.lookup(&out).cloned())
        .collect();
    assert_ne!(
        values[0], values[1],
        "sibling paths alias the same store node"
    );
}
