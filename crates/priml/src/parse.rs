//! Parser for PRIML concrete syntax.
//!
//! ```text
//! program  ::= stmt (';' stmt)* [';']
//! stmt     ::= 'skip'
//!            | ident ':=' exp
//!            | 'if' exp 'then' stmt 'else' stmt
//!            | '{' program '}'
//!            | exp                         (expression statement)
//! exp      ::= cmp (('=='|'!='|'<'|'<='|'>'|'>=') cmp)*
//! cmp      ::= term (('+'|'-'|'|'|'^') term)*
//! term     ::= unary (('*'|'/'|'%'|'&'|'<<'|'>>') unary)*
//! unary    ::= ('-'|'!'|'~') unary | atom
//! atom     ::= number | ident | '(' exp ')'
//!            | 'get_secret' '(' 'secret' ')'
//!            | 'declassify' '(' exp ')'
//! ```

use std::fmt;

use crate::ast::{BinOp, Exp, Program, Stmt, UnOp};

/// A PRIML parse error with byte position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    message: String,
    position: usize,
}

impl ParseError {
    /// The error message.
    pub fn message(&self) -> &str {
        &self.message
    }

    /// Byte offset in the source.
    pub fn position(&self) -> usize {
        self.position
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.position, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parses a PRIML program.
///
/// # Errors
///
/// Returns [`ParseError`] on any lexical or syntactic violation.
///
/// # Examples
///
/// ```
/// let program = priml::parse("h := 2 * get_secret(secret); declassify(h)")?;
/// assert_eq!(program.len(), 2);
/// # Ok::<(), priml::ParseError>(())
/// ```
pub fn parse(source: &str) -> Result<Program, ParseError> {
    let tokens = lex(source)?;
    let mut parser = Parser { tokens, pos: 0 };
    let program = parser.program(true)?;
    if parser.pos < parser.tokens.len() - 1 {
        return Err(parser.error("trailing input"));
    }
    Ok(program)
}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Num(u32),
    Op(&'static str),
    Eof,
}

fn lex(source: &str) -> Result<Vec<(Tok, usize)>, ParseError> {
    const OPS: &[&str] = &[
        ":=", "==", "!=", "<=", ">=", "<<", ">>", "+", "-", "*", "/", "%", "&", "|", "^", "<", ">",
        "!", "~", "(", ")", "{", "}", ";",
    ];
    let bytes = source.as_bytes();
    let mut tokens = Vec::new();
    let mut pos = 0;
    'outer: while pos < bytes.len() {
        let b = bytes[pos];
        if b.is_ascii_whitespace() {
            pos += 1;
            continue;
        }
        if b == b'#' {
            while pos < bytes.len() && bytes[pos] != b'\n' {
                pos += 1;
            }
            continue;
        }
        if b.is_ascii_digit() {
            let start = pos;
            while pos < bytes.len() && bytes[pos].is_ascii_digit() {
                pos += 1;
            }
            let text = &source[start..pos];
            let value = text.parse::<u32>().map_err(|_| ParseError {
                message: format!("number `{text}` out of u32 range"),
                position: start,
            })?;
            tokens.push((Tok::Num(value), start));
            continue;
        }
        if b.is_ascii_alphabetic() || b == b'_' {
            let start = pos;
            while pos < bytes.len() && (bytes[pos].is_ascii_alphanumeric() || bytes[pos] == b'_') {
                pos += 1;
            }
            tokens.push((Tok::Ident(source[start..pos].to_string()), start));
            continue;
        }
        for op in OPS {
            if source[pos..].starts_with(op) {
                tokens.push((Tok::Op(op), pos));
                pos += op.len();
                continue 'outer;
            }
        }
        return Err(ParseError {
            message: format!("unexpected character `{}`", b as char),
            position: pos,
        });
    }
    tokens.push((Tok::Eof, source.len()));
    Ok(tokens)
}

struct Parser {
    tokens: Vec<(Tok, usize)>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.tokens[self.pos.min(self.tokens.len() - 1)].0
    }

    fn bump(&mut self) -> Tok {
        let tok = self.tokens[self.pos.min(self.tokens.len() - 1)].0.clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        tok
    }

    fn error(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            message: message.into(),
            position: self.tokens[self.pos.min(self.tokens.len() - 1)].1,
        }
    }

    fn eat_op(&mut self, op: &str) -> bool {
        if *self.peek() == Tok::Op(op_static(op)) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_op(&mut self, op: &str) -> Result<(), ParseError> {
        if self.eat_op(op) {
            Ok(())
        } else {
            Err(self.error(format!("expected `{op}`")))
        }
    }

    fn is_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), Tok::Ident(id) if id == kw)
    }

    fn program(&mut self, top: bool) -> Result<Program, ParseError> {
        let mut stmts = Vec::new();
        loop {
            if *self.peek() == Tok::Eof || (!top && *self.peek() == Tok::Op("}")) {
                break;
            }
            stmts.push(self.stmt()?);
            // `;` separators are optional at line ends
            while self.eat_op(";") {}
        }
        Ok(stmts)
    }

    fn stmt(&mut self) -> Result<Stmt, ParseError> {
        if self.is_kw("skip") {
            self.bump();
            return Ok(Stmt::Skip);
        }
        if self.is_kw("if") {
            self.bump();
            let cond = self.exp()?;
            if !self.is_kw("then") {
                return Err(self.error("expected `then`"));
            }
            self.bump();
            let then_s = Box::new(self.stmt()?);
            if !self.is_kw("else") {
                return Err(self.error("expected `else`"));
            }
            self.bump();
            let else_s = Box::new(self.stmt()?);
            return Ok(Stmt::If {
                cond,
                then_s,
                else_s,
            });
        }
        if self.eat_op("{") {
            let body = self.program(false)?;
            self.expect_op("}")?;
            return Ok(Stmt::Block(body));
        }
        // assignment or expression statement
        if let Tok::Ident(name) = self.peek().clone() {
            if self.tokens.get(self.pos + 1).map(|t| &t.0) == Some(&Tok::Op(":=")) {
                self.bump();
                self.bump();
                let exp = self.exp()?;
                return Ok(Stmt::Assign { var: name, exp });
            }
        }
        Ok(Stmt::Expr(self.exp()?))
    }

    fn exp(&mut self) -> Result<Exp, ParseError> {
        let mut lhs = self.additive()?;
        loop {
            let op = match self.peek() {
                Tok::Op("==") => BinOp::Eq,
                Tok::Op("!=") => BinOp::Ne,
                Tok::Op("<=") => BinOp::Le,
                Tok::Op(">=") => BinOp::Ge,
                Tok::Op("<") => BinOp::Lt,
                Tok::Op(">") => BinOp::Gt,
                _ => break,
            };
            self.bump();
            let rhs = self.additive()?;
            lhs = Exp::Bin {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn additive(&mut self) -> Result<Exp, ParseError> {
        let mut lhs = self.term()?;
        loop {
            let op = match self.peek() {
                Tok::Op("+") => BinOp::Add,
                Tok::Op("-") => BinOp::Sub,
                Tok::Op("|") => BinOp::Or,
                Tok::Op("^") => BinOp::Xor,
                _ => break,
            };
            self.bump();
            let rhs = self.term()?;
            lhs = Exp::Bin {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn term(&mut self) -> Result<Exp, ParseError> {
        let mut lhs = self.unary()?;
        loop {
            let op = match self.peek() {
                Tok::Op("*") => BinOp::Mul,
                Tok::Op("/") => BinOp::Div,
                Tok::Op("%") => BinOp::Rem,
                Tok::Op("&") => BinOp::And,
                Tok::Op("<<") => BinOp::Shl,
                Tok::Op(">>") => BinOp::Shr,
                _ => break,
            };
            self.bump();
            let rhs = self.unary()?;
            lhs = Exp::Bin {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Exp, ParseError> {
        let op = match self.peek() {
            Tok::Op("-") => Some(UnOp::Neg),
            Tok::Op("!") => Some(UnOp::Not),
            Tok::Op("~") => Some(UnOp::BitNot),
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let arg = self.unary()?;
            return Ok(Exp::Un {
                op,
                arg: Box::new(arg),
            });
        }
        self.atom()
    }

    fn atom(&mut self) -> Result<Exp, ParseError> {
        match self.bump() {
            Tok::Num(v) => Ok(Exp::Lit(v)),
            Tok::Op("(") => {
                let inner = self.exp()?;
                self.expect_op(")")?;
                Ok(inner)
            }
            Tok::Ident(id) if id == "get_secret" => {
                self.expect_op("(")?;
                if !self.is_kw("secret") {
                    return Err(self.error("expected `secret`"));
                }
                self.bump();
                self.expect_op(")")?;
                Ok(Exp::GetSecret)
            }
            Tok::Ident(id) if id == "declassify" => {
                self.expect_op("(")?;
                let inner = self.exp()?;
                self.expect_op(")")?;
                Ok(Exp::Declassify(Box::new(inner)))
            }
            Tok::Ident(name) => Ok(Exp::Var(name)),
            other => Err(self.error(format!("expected an expression, found {other:?}"))),
        }
    }
}

fn op_static(op: &str) -> &'static str {
    const OPS: &[&str] = &[
        ":=", "==", "!=", "<=", ">=", "<<", ">>", "+", "-", "*", "/", "%", "&", "|", "^", "<", ">",
        "!", "~", "(", ")", "{", "}", ";",
    ];
    OPS.iter().find(|o| **o == op).copied().unwrap_or("")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_example1() {
        let program = parse(crate::examples::EXAMPLE1).expect("parses");
        assert_eq!(program.len(), 5);
        assert!(matches!(program[0], Stmt::Assign { .. }));
        assert!(matches!(program[4], Stmt::Expr(Exp::Declassify(_))));
    }

    #[test]
    fn parses_example2() {
        let program = parse(crate::examples::EXAMPLE2).expect("parses");
        assert_eq!(program.len(), 2);
        assert!(matches!(program[1], Stmt::If { .. }));
    }

    #[test]
    fn precedence_mul_binds_tighter() {
        let program = parse("x := 1 + 2 * 3").unwrap();
        let Stmt::Assign { exp, .. } = &program[0] else {
            panic!()
        };
        let Exp::Bin {
            op: BinOp::Add,
            rhs,
            ..
        } = exp
        else {
            panic!("got {exp}")
        };
        assert!(matches!(**rhs, Exp::Bin { op: BinOp::Mul, .. }));
    }

    #[test]
    fn comparison_is_loosest() {
        let program = parse("x := h - 5 == 14").unwrap();
        let Stmt::Assign { exp, .. } = &program[0] else {
            panic!()
        };
        assert!(matches!(exp, Exp::Bin { op: BinOp::Eq, .. }));
    }

    #[test]
    fn blocks_and_nested_if() {
        let program = parse("if a then { x := 1; y := 2 } else if b then skip else skip").unwrap();
        assert_eq!(program.len(), 1);
    }

    #[test]
    fn comments_are_skipped() {
        let program = parse("# setup\nx := 1 # trailing\n").unwrap();
        assert_eq!(program.len(), 1);
    }

    #[test]
    fn errors_carry_position() {
        let err = parse("x := @").unwrap_err();
        assert_eq!(err.position(), 5);
        assert!(err.to_string().contains("unexpected character"));
    }

    #[test]
    fn error_on_missing_then() {
        let err = parse("if x declassify(1) else skip").unwrap_err();
        assert!(err.message().contains("then"));
    }

    #[test]
    fn error_on_trailing_tokens() {
        assert!(parse("x := 1 )").is_err());
    }

    #[test]
    fn number_out_of_range() {
        let err = parse("x := 99999999999").unwrap_err();
        assert!(err.message().contains("u32"));
    }
}
