//! The paper's running example programs (§V-B, Tables II and III).

/// Example 1: explicit leakage.
///
/// Declassifying `x = 2·s₁ + 3·s₂` is safe (taint ⊤ — two sources mix, so
/// neither secret can be recovered); declassifying `h₁ = 2·s₁` violates
/// nonreversibility (an attacker divides the observed value by 2).
pub const EXAMPLE1: &str = "\
h1 := 2 * get_secret(secret)
h2 := 3 * get_secret(secret)
x := h1 + h2
declassify(x)
declassify(h1)";

/// Example 2: implicit leakage.
///
/// Observing which constant is declassified reveals whether `h = 19`, i.e.
/// whether the secret equals 9.5·… — the branch condition taints π, and the
/// two paths declassify different values.
pub const EXAMPLE2: &str = "\
h := 2 * get_secret(secret)
if h - 5 == 14 then declassify(0) else declassify(1)";

/// A secure variant of Example 2: both branches declassify the *same*
/// value, so nothing about the secret can be inferred.
pub const EXAMPLE2_SECURE: &str = "\
h := 2 * get_secret(secret)
if h - 5 == 14 then declassify(7) else declassify(7)";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_examples_parse() {
        for src in [EXAMPLE1, EXAMPLE2, EXAMPLE2_SECURE] {
            crate::parse(src).expect("example parses");
        }
    }
}
