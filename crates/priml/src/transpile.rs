//! PRIML → Mini-C transpilation.
//!
//! PRIML is the paper's formal model; the evaluated prototype analyzes
//! C. This module connects the two planes: a PRIML program becomes a
//! Mini-C ECALL whose `[in]` buffer supplies the `get_secret` stream and
//! whose `[out]` buffer receives the `declassify` outputs — so the same
//! program can be checked by the formal semantics (`crate::analysis`) and
//! by the full C analyzer, and the verdicts compared (see
//! `tests/cross_plane.rs` at the workspace root).

use std::fmt::Write as _;

use crate::ast::{BinOp, Exp, Program, Stmt, UnOp};

/// A transpiled program: C source plus its EDL interface.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Transpiled {
    /// Mini-C source defining `priml_main`.
    pub source: String,
    /// Matching EDL (secrets `[in]`, outputs `[out]`).
    pub edl: String,
    /// Number of `get_secret` reads.
    pub secrets: usize,
    /// Number of `declassify` sites.
    pub outputs: usize,
}

/// Why a program cannot be transpiled.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TranspileError {
    /// `get_secret` under a conditional: the C plane's positional secret
    /// indexing would diverge from PRIML's stream semantics.
    SecretUnderBranch,
}

impl std::fmt::Display for TranspileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TranspileError::SecretUnderBranch => write!(
                f,
                "get_secret under a conditional has path-dependent stream position"
            ),
        }
    }
}

impl std::error::Error for TranspileError {}

/// Transpiles a PRIML program to Mini-C.
///
/// Value semantics differ in width (PRIML is u32-wrapping, the C plane
/// models `int`); the transpilation is *taint-faithful*, which is what the
/// cross-plane comparison needs, and value-faithful for computations that
/// stay within `int` range.
///
/// # Errors
///
/// Returns [`TranspileError::SecretUnderBranch`] when `get_secret` occurs
/// inside a conditional.
pub fn to_minic(program: &Program) -> Result<Transpiled, TranspileError> {
    // reject branch-dependent secret consumption
    for stmt in program {
        check_no_secret_in_branches(stmt, false)?;
    }

    let mut ctx = Ctx {
        secrets: 0,
        outputs: 0,
        vars: Vec::new(),
        body: String::new(),
    };
    for stmt in program {
        collect_vars(stmt, &mut ctx.vars);
    }
    for stmt in program {
        ctx.stmt(stmt, 1);
    }

    let mut source = String::from("int priml_main(int *secrets, int *out) {\n");
    if ctx.outputs > 0 {
        // PRIML's declassify stream is positional *per execution*, not per
        // syntactic site: a cursor mirrors that (both branches of an `if`
        // write the same next slot).
        source.push_str("    int cursor = 0;\n");
    }
    for var in &ctx.vars {
        let _ = writeln!(source, "    int {var} = 0;");
    }
    source.push_str(&ctx.body);
    source.push_str("    return 0;\n}\n");

    let edl = format!(
        "enclave {{ trusted {{ public int priml_main([in, count={}] int *secrets, [out, count={}] int *out); }}; }};\n",
        ctx.secrets.max(1),
        ctx.outputs.max(1),
    );

    Ok(Transpiled {
        source,
        edl,
        secrets: ctx.secrets,
        outputs: ctx.outputs,
    })
}

fn check_no_secret_in_branches(stmt: &Stmt, in_branch: bool) -> Result<(), TranspileError> {
    let check_exp = |exp: &Exp| -> Result<(), TranspileError> {
        if in_branch && mentions_secret(exp) {
            Err(TranspileError::SecretUnderBranch)
        } else {
            Ok(())
        }
    };
    match stmt {
        Stmt::Skip => Ok(()),
        Stmt::Assign { exp, .. } => check_exp(exp),
        Stmt::Expr(exp) => check_exp(exp),
        Stmt::Block(stmts) => {
            for s in stmts {
                check_no_secret_in_branches(s, in_branch)?;
            }
            Ok(())
        }
        Stmt::If {
            cond,
            then_s,
            else_s,
        } => {
            check_exp(cond)?;
            check_no_secret_in_branches(then_s, true)?;
            check_no_secret_in_branches(else_s, true)
        }
    }
}

fn mentions_secret(exp: &Exp) -> bool {
    match exp {
        Exp::GetSecret => true,
        Exp::Lit(_) | Exp::Var(_) => false,
        Exp::Bin { lhs, rhs, .. } => mentions_secret(lhs) || mentions_secret(rhs),
        Exp::Un { arg, .. } => mentions_secret(arg),
        Exp::Declassify(inner) => mentions_secret(inner),
    }
}

fn collect_vars(stmt: &Stmt, vars: &mut Vec<String>) {
    match stmt {
        Stmt::Assign { var, .. } => {
            if !vars.contains(var) {
                vars.push(var.clone());
            }
        }
        Stmt::Block(stmts) => {
            for s in stmts {
                collect_vars(s, vars);
            }
        }
        Stmt::If { then_s, else_s, .. } => {
            collect_vars(then_s, vars);
            collect_vars(else_s, vars);
        }
        Stmt::Skip | Stmt::Expr(_) => {}
    }
}

struct Ctx {
    secrets: usize,
    outputs: usize,
    vars: Vec<String>,
    body: String,
}

impl Ctx {
    fn stmt(&mut self, stmt: &Stmt, indent: usize) {
        let pad = "    ".repeat(indent);
        match stmt {
            Stmt::Skip => {
                let _ = writeln!(self.body, "{pad};");
            }
            Stmt::Assign { var, exp } => {
                let rendered = self.exp(exp);
                let _ = writeln!(self.body, "{pad}{var} = {rendered};");
            }
            // statement-position declassify gets the clean two-statement
            // form; nested declassify falls through to the comma form
            Stmt::Expr(Exp::Declassify(inner)) => {
                self.outputs += 1;
                let rendered = self.exp(inner);
                let _ = writeln!(self.body, "{pad}out[cursor] = {rendered};");
                let _ = writeln!(self.body, "{pad}cursor = cursor + 1;");
            }
            Stmt::Expr(exp) => {
                let rendered = self.exp(exp);
                let _ = writeln!(self.body, "{pad}{rendered};");
            }
            Stmt::Block(stmts) => {
                let _ = writeln!(self.body, "{pad}{{");
                for s in stmts {
                    self.stmt(s, indent + 1);
                }
                let _ = writeln!(self.body, "{pad}}}");
            }
            Stmt::If {
                cond,
                then_s,
                else_s,
            } => {
                let rendered = self.exp(cond);
                let _ = writeln!(self.body, "{pad}if ({rendered}) {{");
                self.stmt(then_s, indent + 1);
                let _ = writeln!(self.body, "{pad}}} else {{");
                self.stmt(else_s, indent + 1);
                let _ = writeln!(self.body, "{pad}}}");
            }
        }
    }

    fn exp(&mut self, exp: &Exp) -> String {
        match exp {
            Exp::Lit(v) => v.to_string(),
            Exp::Var(name) => name.clone(),
            Exp::Bin { op, lhs, rhs } => {
                let l = self.exp(lhs);
                let r = self.exp(rhs);
                format!("({l} {} {r})", binop(*op))
            }
            Exp::Un { op, arg } => {
                let a = self.exp(arg);
                let symbol = match op {
                    UnOp::Neg => "-",
                    UnOp::Not => "!",
                    UnOp::BitNot => "~",
                };
                format!("({symbol}{a})")
            }
            Exp::GetSecret => {
                let index = self.secrets;
                self.secrets += 1;
                format!("secrets[{index}]")
            }
            Exp::Declassify(inner) => {
                // expression position: write the current slot, advance the
                // cursor, and yield the written value via the comma form
                self.outputs += 1;
                let rendered = self.exp(inner);
                format!("((out[cursor] = {rendered}), (cursor = cursor + 1), out[cursor - 1])")
            }
        }
    }
}

fn binop(op: BinOp) -> &'static str {
    match op {
        BinOp::Add => "+",
        BinOp::Sub => "-",
        BinOp::Mul => "*",
        BinOp::Div => "/",
        BinOp::Rem => "%",
        BinOp::Eq => "==",
        BinOp::Ne => "!=",
        BinOp::Lt => "<",
        BinOp::Le => "<=",
        BinOp::Gt => ">",
        BinOp::Ge => ">=",
        BinOp::And => "&",
        BinOp::Or => "|",
        BinOp::Xor => "^",
        BinOp::Shl => "<<",
        BinOp::Shr => ">>",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    #[test]
    fn example1_transpiles() {
        let program = parse(crate::examples::EXAMPLE1).unwrap();
        let out = to_minic(&program).expect("transpiles");
        assert_eq!(out.secrets, 2);
        assert_eq!(out.outputs, 2);
        assert!(out.source.contains("h1 = (2 * secrets[0]);"));
        assert!(out.source.contains("out[cursor] = x;"));
        assert!(out.source.contains("out[cursor] = h1;"));
        assert!(out.edl.contains("count=2"));
    }

    #[test]
    fn example2_transpiles_with_branch() {
        let program = parse(crate::examples::EXAMPLE2).unwrap();
        let out = to_minic(&program).expect("transpiles");
        assert_eq!(out.secrets, 1);
        assert_eq!(out.outputs, 2);
        assert!(out.source.contains("if (((h - 5) == 14))"));
    }

    #[test]
    fn secret_under_branch_is_rejected() {
        let program = parse("if 1 then x := get_secret(secret) else skip").unwrap();
        assert_eq!(to_minic(&program), Err(TranspileError::SecretUnderBranch));
    }

    #[test]
    fn nested_declassify_expression() {
        let program = parse("x := declassify(get_secret(secret)) + 1").unwrap();
        let out = to_minic(&program).expect("transpiles");
        assert!(out.source.contains(
            "x = (((out[cursor] = secrets[0]), (cursor = cursor + 1), out[cursor - 1]) + 1);"
        ));
    }

    #[test]
    fn transpiled_output_is_valid_minic() {
        for example in [crate::examples::EXAMPLE1, crate::examples::EXAMPLE2] {
            let program = parse(example).unwrap();
            let out = to_minic(&program).unwrap();
            // the suite-level cross_plane test checks the full pipeline;
            // here just ensure the shape is plausible C
            assert!(out.source.starts_with("int priml_main("));
            assert!(out.source.ends_with("}\n"));
        }
    }
}
