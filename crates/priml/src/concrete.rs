//! The base operational semantics of PRIML (§V-A): a concrete interpreter.
//!
//! The rules implemented are exactly the paper's: INPUT (a value is read
//! from the secret stream), VAR, CONST, UNOP, BINOP, ASSIGN, TCOND/FCOND,
//! COMP, and DECLASS (the value is appended to the observable output). A
//! program that divides by zero or exhausts the secret stream *halts
//! abnormally* — "if no rule matches, the machine halts abnormally".

use std::collections::BTreeMap;
use std::fmt;

use crate::ast::{Exp, Program, Stmt};

/// Why a PRIML program halted abnormally.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunError {
    /// A variable was read before being assigned.
    UnboundVariable(String),
    /// `get_secret` was evaluated but the secret stream was empty.
    SecretStreamExhausted,
    /// Division or remainder by zero.
    DivisionByZero,
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::UnboundVariable(name) => write!(f, "unbound variable `{name}`"),
            RunError::SecretStreamExhausted => write!(f, "secret stream exhausted"),
            RunError::DivisionByZero => write!(f, "division by zero"),
        }
    }
}

impl std::error::Error for RunError {}

/// The result of a terminating run.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RunOutcome {
    /// Values revealed by `declassify`, in evaluation order — the
    /// attacker-observable behaviour of the program.
    pub declassified: Vec<u32>,
    /// Final variable context Δ.
    pub store: BTreeMap<String, u32>,
    /// How many secrets were consumed.
    pub secrets_consumed: usize,
}

/// Runs a PRIML program with the given secret input stream.
///
/// # Errors
///
/// Returns [`RunError`] when the machine halts abnormally (unbound
/// variable, exhausted secret stream, division by zero).
///
/// # Examples
///
/// ```
/// let program = priml::parse("h := 2 * get_secret(secret); declassify(h + 1)")?;
/// let out = priml::concrete::run(&program, &[21])?;
/// assert_eq!(out.declassified, vec![43]);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn run(program: &Program, secrets: &[u32]) -> Result<RunOutcome, RunError> {
    let mut machine = Machine {
        store: BTreeMap::new(),
        secrets,
        next_secret: 0,
        declassified: Vec::new(),
    };
    for stmt in program {
        machine.exec(stmt)?;
    }
    Ok(RunOutcome {
        declassified: machine.declassified,
        store: machine.store,
        secrets_consumed: machine.next_secret,
    })
}

struct Machine<'s> {
    store: BTreeMap<String, u32>,
    secrets: &'s [u32],
    next_secret: usize,
    declassified: Vec<u32>,
}

impl<'s> Machine<'s> {
    fn exec(&mut self, stmt: &Stmt) -> Result<(), RunError> {
        match stmt {
            Stmt::Skip => Ok(()),
            Stmt::Assign { var, exp } => {
                let value = self.eval(exp)?;
                self.store.insert(var.clone(), value);
                Ok(())
            }
            Stmt::If {
                cond,
                then_s,
                else_s,
            } => {
                let value = self.eval(cond)?;
                if value != 0 {
                    self.exec(then_s)
                } else {
                    self.exec(else_s)
                }
            }
            Stmt::Block(stmts) => {
                for s in stmts {
                    self.exec(s)?;
                }
                Ok(())
            }
            Stmt::Expr(exp) => self.eval(exp).map(drop),
        }
    }

    fn eval(&mut self, exp: &Exp) -> Result<u32, RunError> {
        match exp {
            Exp::Lit(v) => Ok(*v),
            Exp::Var(name) => self
                .store
                .get(name)
                .copied()
                .ok_or_else(|| RunError::UnboundVariable(name.clone())),
            Exp::Bin { op, lhs, rhs } => {
                let a = self.eval(lhs)?;
                let b = self.eval(rhs)?;
                op.apply(a, b).ok_or(RunError::DivisionByZero)
            }
            Exp::Un { op, arg } => Ok(op.apply(self.eval(arg)?)),
            Exp::GetSecret => {
                let value = self
                    .secrets
                    .get(self.next_secret)
                    .copied()
                    .ok_or(RunError::SecretStreamExhausted)?;
                self.next_secret += 1;
                Ok(value)
            }
            Exp::Declassify(inner) => {
                let value = self.eval(inner)?;
                self.declassified.push(value);
                Ok(value)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    #[test]
    fn example1_outputs() {
        let program = parse(crate::examples::EXAMPLE1).unwrap();
        let out = run(&program, &[10, 20]).unwrap();
        // x = 2·10 + 3·20 = 80; h1 = 20
        assert_eq!(out.declassified, vec![80, 20]);
        assert_eq!(out.secrets_consumed, 2);
        assert_eq!(out.store["h1"], 20);
    }

    #[test]
    fn example2_branches() {
        let program = parse(crate::examples::EXAMPLE2).unwrap();
        // 2·s − 5 == 14 has no integer solution, so the else branch runs
        // for any secret — but the paper's point is what an attacker *could*
        // infer; concretely we always see 1 here.
        assert_eq!(run(&program, &[9]).unwrap().declassified, vec![1]);
        assert_eq!(run(&program, &[10]).unwrap().declassified, vec![1]);
    }

    #[test]
    fn branch_taken_on_nonzero() {
        let program = parse("if 2 then declassify(1) else declassify(0)").unwrap();
        assert_eq!(run(&program, &[]).unwrap().declassified, vec![1]);
    }

    #[test]
    fn unbound_variable_halts() {
        let program = parse("declassify(x)").unwrap();
        assert_eq!(
            run(&program, &[]),
            Err(RunError::UnboundVariable("x".into()))
        );
    }

    #[test]
    fn exhausted_secret_stream_halts() {
        let program = parse("h := get_secret(secret)").unwrap();
        assert_eq!(run(&program, &[]), Err(RunError::SecretStreamExhausted));
    }

    #[test]
    fn division_by_zero_halts() {
        let program = parse("x := 1 / 0").unwrap();
        assert_eq!(run(&program, &[]), Err(RunError::DivisionByZero));
    }

    #[test]
    fn declassify_is_an_expression() {
        let program = parse("x := declassify(5) + 1; declassify(x)").unwrap();
        let out = run(&program, &[]).unwrap();
        assert_eq!(out.declassified, vec![5, 6]);
    }

    #[test]
    fn skip_and_blocks() {
        let program = parse("skip; { x := 1; skip; y := x + 1 }; declassify(y)").unwrap();
        assert_eq!(run(&program, &[]).unwrap().declassified, vec![2]);
    }
}
