//! PRIML — the *PrivacyScope InterMediate Language* of the paper's §V.
//!
//! PRIML is the small formal language the paper uses to state PrivacyScope's
//! semantics precisely. This crate implements:
//!
//! * the grammar of §V-A ([`ast`], [`parse`]) — statements are `skip`,
//!   assignment, sequencing and `if`/`then`/`else`; expressions are 32-bit
//!   unsigned values, variables, unary/binary operators, `get_secret(secret)`
//!   and `declassify(exp)`;
//! * the **base operational semantics** ([`concrete`]) — the
//!   ASSIGN/TCOND/FCOND/COMP/DECLASS rules, executable: running a program
//!   with a stream of secret inputs yields its declassified outputs;
//! * the **PrivacyScope analysis semantics** ([`analysis`]) — the PS-INPUT …
//!   PS-DECLASS rules of §V-B: values become ⟨v, τ⟩ pairs over the taint
//!   semi-lattice, `get_secret` returns fresh symbols with fresh taint
//!   sources, conditionals fork and taint the path condition π, and
//!   `declassify_check` (Alg. 1) reports explicit and implicit
//!   nonreversibility violations, using the hashmap `hm` to compare
//!   declassified values across paths;
//! * an executable reading of the **nonreversibility definition** itself
//!   ([`semantic`]) — brute-force over small input domains, used to
//!   cross-validate the static analysis in tests;
//! * the paper's running examples ([`examples`]) and trace rendering that
//!   regenerates Tables II and III ([`analysis::render_table2`],
//!   [`analysis::render_table3`]).
//!
//! # Examples
//!
//! ```
//! // Example 1 of the paper: x = 2·s1 + 3·s2 is safe to declassify (⊤),
//! // h1 = 2·s1 is not (single source t1).
//! let program = priml::parse(priml::examples::EXAMPLE1)?;
//! let outcome = priml::analysis::analyze(&program);
//! assert_eq!(outcome.violations.len(), 1);
//! # Ok::<(), priml::ParseError>(())
//! ```

pub mod analysis;
pub mod ast;
pub mod concrete;
pub mod examples;
pub mod parse;
pub mod semantic;
pub mod transpile;

pub use ast::{BinOp, Exp, Program, Stmt, UnOp};
pub use parse::{parse, ParseError};
