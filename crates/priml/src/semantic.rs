//! An executable reading of the nonreversibility definition (§IV).
//!
//! The paper defines nonreversibility over program semantics: a single high
//! input `h` leaks if an attacker observing the low outputs can
//! deterministically recover it. Operationally (over a finite input
//! domain) we say secret *i* is **semantically reversible** when
//!
//! 1. the observable output depends only on secret *i* (varying any other
//!    secret while holding *i* fixed never changes the output — no other
//!    high variable can act as noise), and
//! 2. the map from secret *i* to the output is injective (distinct values
//!    of *i* produce distinct observations), and
//! 3. the output actually depends on *i* (a constant output reveals
//!    nothing).
//!
//! This brute-force checker exists to cross-validate the static analysis:
//! the taint-based dependence set must over-approximate the semantic
//! dependence set, and semantically reversible programs must be flagged.

use std::collections::BTreeMap;

use crate::ast::Program;
use crate::concrete::{run, RunError};

/// Semantic facts about one secret input, computed by brute force.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SecretFacts {
    /// The observable output varies with this secret.
    pub depends: bool,
    /// The output is fully determined by this secret alone.
    pub sole_determinant: bool,
    /// Distinct values of this secret give distinct outputs (given the
    /// others are held at any fixed value).
    pub injective: bool,
}

impl SecretFacts {
    /// Whether an attacker can deterministically recover this secret from
    /// the observation (the nonreversibility violation, semantically).
    pub fn reversible(&self) -> bool {
        self.depends && self.sole_determinant && self.injective
    }
}

/// Brute-forces the program over `domain` values per secret.
///
/// `n_secrets` is how many `get_secret` reads the program performs
/// (must be consumed unconditionally — branch-dependent consumption is not
/// supported by the brute-force model and yields `Err`).
///
/// # Errors
///
/// Returns the first abnormal halt ([`RunError`]) encountered, or an
/// inconsistent secret consumption across inputs.
pub fn analyze_semantics(
    program: &Program,
    n_secrets: usize,
    domain: &[u32],
) -> Result<Vec<SecretFacts>, RunError> {
    assert!(!domain.is_empty(), "domain must be non-empty");
    // Enumerate all assignments; record observation per assignment.
    let mut observations: BTreeMap<Vec<u32>, Vec<u32>> = BTreeMap::new();
    let total = domain.len().pow(n_secrets as u32);
    for index in 0..total {
        let mut assignment = Vec::with_capacity(n_secrets);
        let mut rest = index;
        for _ in 0..n_secrets {
            assignment.push(domain[rest % domain.len()]);
            rest /= domain.len();
        }
        let outcome = run(program, &assignment)?;
        observations.insert(assignment, outcome.declassified);
    }

    let mut facts = Vec::with_capacity(n_secrets);
    for i in 0..n_secrets {
        let mut depends = false;
        let mut sole_determinant = true;
        let mut injective = true;
        // Group observations by the value of secret i and by the values of
        // the others.
        let mut by_secret_i: BTreeMap<u32, &Vec<u32>> = BTreeMap::new();
        for (assignment, obs) in &observations {
            // depends: vary i, fix others at assignment's values
            for &candidate in domain {
                if candidate == assignment[i] {
                    continue;
                }
                let mut other = assignment.clone();
                other[i] = candidate;
                if let Some(other_obs) = observations.get(&other) {
                    if other_obs != obs {
                        depends = true;
                    }
                }
            }
            // sole determinant: same i, different others ⇒ same output
            match by_secret_i.get(&assignment[i]) {
                None => {
                    by_secret_i.insert(assignment[i], obs);
                }
                Some(prev) => {
                    if *prev != obs {
                        sole_determinant = false;
                    }
                }
            }
        }
        // injectivity over secret i (meaningful only if sole determinant)
        let mut seen: BTreeMap<&Vec<u32>, u32> = BTreeMap::new();
        for (value, obs) in &by_secret_i {
            if let Some(prev) = seen.insert(obs, *value) {
                if prev != *value {
                    injective = false;
                }
            }
        }
        facts.push(SecretFacts {
            depends,
            sole_determinant,
            injective,
        });
    }
    Ok(facts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    const DOMAIN: &[u32] = &[0, 1, 2, 3];

    fn facts(src: &str, n: usize) -> Vec<SecretFacts> {
        analyze_semantics(&parse(src).unwrap(), n, DOMAIN).unwrap()
    }

    #[test]
    fn direct_leak_is_reversible() {
        let f = facts("h := get_secret(secret); declassify(h + 4)", 1);
        assert!(f[0].reversible());
    }

    #[test]
    fn masked_leak_is_not_reversible() {
        // l := h1 + 4 + h2 — the paper's secure example: h2 masks h1.
        let f = facts(
            "a := get_secret(secret); b := get_secret(secret); declassify(a + 4 + b)",
            2,
        );
        assert!(!f[0].reversible());
        assert!(!f[1].reversible());
        assert!(f[0].depends && f[1].depends);
        assert!(!f[0].sole_determinant);
    }

    #[test]
    fn constant_output_reveals_nothing() {
        let f = facts("h := get_secret(secret); declassify(42)", 1);
        assert!(!f[0].reversible());
        assert!(!f[0].depends);
    }

    #[test]
    fn non_injective_output_is_not_reversible() {
        // parity: observable depends on h but cannot pin it
        let f = facts("h := get_secret(secret); declassify(h & 1)", 1);
        assert!(!f[0].reversible());
        assert!(f[0].depends);
        assert!(f[0].sole_determinant);
        assert!(!f[0].injective);
    }

    #[test]
    fn implicit_branch_leak_depends_but_may_not_reverse() {
        // The Example-2 pattern over a small domain: outputs 0/1 pin only
        // whether h == 19 — injective only if the domain makes it so.
        let f = facts(
            "h := 2 * get_secret(secret); if h - 5 == 14 then declassify(0) else declassify(1)",
            1,
        );
        // On domain {0..3} the condition is never true: output constant.
        assert!(!f[0].depends);
    }

    #[test]
    fn scaled_leak_is_reversible() {
        let f = facts("h := get_secret(secret); declassify(3 * h)", 1);
        assert!(f[0].reversible());
    }

    #[test]
    fn unused_secret_is_safe() {
        let f = facts(
            "a := get_secret(secret); b := get_secret(secret); declassify(a)",
            2,
        );
        assert!(f[0].reversible());
        assert!(!f[1].reversible());
        assert!(!f[1].depends);
    }
}
