//! The PrivacyScope analysis semantics for PRIML (§V-B of the paper).
//!
//! Implements the instrumented small-step rules PS-INPUT, PS-VAR, PS-CONST,
//! PS-UNOP, PS-BINOP, PS-ASSIGN, PS-TCOND/PS-FCOND, PS-SKIP and PS-DECLASS:
//! values become pairs ⟨v, τ⟩ of a (possibly symbolic) value and a taint
//! label, `get_secret(secret)` returns a fresh symbol `sₖ` tainted with a
//! fresh source `tₖ` (policy `P_getsecret` of Table I), operators propagate
//! taint per Fig. 2, conditionals fork the state and join the condition's
//! taint into τΔ\[π\] (`P_cond`), and every `declassify` runs
//! `P_declassify_check` — Algorithm 1 — which reports:
//!
//! * an **explicit** violation when the declassified value carries a
//!   single-source taint `tᵢ` (the attacker inverts the computation);
//! * an **implicit** violation when π carries a single-source taint and the
//!   hashmap `hm` shows a *different* value was declassified under the same
//!   source on another path (the attacker learns the branch, hence the
//!   secret).
//!
//! The end-of-exploration sweep the paper sketches ("checks if there is any
//! item in hm") is implemented as: a source leaks implicitly iff ≥ 2
//! distinct values were recorded for it — entries with a single recorded
//! value reveal nothing (both branches declassified the same constant).

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use serde::{Deserialize, Serialize};
use taint::{SourceId, TaintMap, TaintSet};

use crate::ast::{BinOp, Exp, Program, Stmt, UnOp};

/// A symbolic PRIML value: the `value v ::= … | exp` extension of §V-B.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum SymExp {
    /// A concrete 32-bit value.
    Const(u32),
    /// A fresh symbol minted by `get_secret` (named `s1`, `s2`, …).
    Sym {
        /// 1-based index in stream order.
        index: u32,
    },
    /// A partially evaluated binary expression.
    Bin {
        /// The operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<SymExp>,
        /// Right operand.
        rhs: Box<SymExp>,
    },
    /// A partially evaluated unary expression.
    Un {
        /// The operator.
        op: UnOp,
        /// Operand.
        arg: Box<SymExp>,
    },
}

impl SymExp {
    fn bin(op: BinOp, lhs: SymExp, rhs: SymExp) -> SymExp {
        if let (SymExp::Const(a), SymExp::Const(b)) = (&lhs, &rhs) {
            if let Some(v) = op.apply(*a, *b) {
                return SymExp::Const(v);
            }
        }
        SymExp::Bin {
            op,
            lhs: Box::new(lhs),
            rhs: Box::new(rhs),
        }
    }

    fn un(op: UnOp, arg: SymExp) -> SymExp {
        if let SymExp::Const(v) = arg {
            return SymExp::Const(op.apply(v));
        }
        SymExp::Un {
            op,
            arg: Box::new(arg),
        }
    }

    /// Evaluates under a full secret assignment (`s₁ = secrets[0]`, …).
    pub fn eval(&self, secrets: &[u32]) -> Option<u32> {
        match self {
            SymExp::Const(v) => Some(*v),
            SymExp::Sym { index } => secrets.get(*index as usize - 1).copied(),
            SymExp::Bin { op, lhs, rhs } => op.apply(lhs.eval(secrets)?, rhs.eval(secrets)?),
            SymExp::Un { op, arg } => Some(op.apply(arg.eval(secrets)?)),
        }
    }
}

impl fmt::Display for SymExp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SymExp::Const(v) => write!(f, "{v}"),
            SymExp::Sym { index } => write!(f, "s{index}"),
            SymExp::Bin { op, lhs, rhs } => write!(f, "{lhs} {op} {rhs}"),
            SymExp::Un { op, arg } => write!(f, "{op}{arg}"),
        }
    }
}

/// A nonreversibility violation found by the analysis.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Violation {
    /// A single-source value was declassified (reversible output).
    Explicit {
        /// The declassified symbolic value.
        value: String,
        /// The secret source it reveals.
        source: SourceId,
        /// The statement responsible.
        stmt: String,
    },
    /// Different values were declassified under a branch on one secret.
    Implicit {
        /// The secret source the branch depends on.
        source: SourceId,
        /// The distinct values observed across paths.
        values: Vec<String>,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::Explicit {
                value,
                source,
                stmt,
            } => write!(f, "explicit leak of {source}: `{stmt}` reveals {value}"),
            Violation::Implicit { source, values } => write!(
                f,
                "implicit leak of {source}: observable values {{{}}} depend on a branch over it",
                values.join(", ")
            ),
        }
    }
}

/// One rendered row of a simulation table (Tables II / III).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Row {
    /// The statement just interpreted.
    pub stmt: String,
    /// Rendered Δ.
    pub delta: String,
    /// Rendered π.
    pub pi: String,
    /// Rendered τΔ (including the π entry).
    pub tau: String,
    /// Rendered hashmap `hm`.
    pub hm: String,
    /// Whether `declassify_check` aborted on this statement.
    pub abort: bool,
}

/// The result of analyzing a PRIML program.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AnalysisOutcome {
    /// All violations, explicit first, deduplicated, in discovery order.
    pub violations: Vec<Violation>,
    /// Per-path simulation rows (Tables II/III).
    pub paths: Vec<Vec<Row>>,
    /// Final contents of the hashmap `hm`.
    pub hm: BTreeMap<SourceId, BTreeSet<String>>,
    /// Number of secrets consumed on the longest path.
    pub secrets: usize,
}

impl AnalysisOutcome {
    /// Whether the program satisfies nonreversibility per the analysis.
    pub fn is_secure(&self) -> bool {
        self.violations.is_empty()
    }

    /// Only the explicit violations.
    pub fn explicit(&self) -> impl Iterator<Item = &Violation> {
        self.violations
            .iter()
            .filter(|v| matches!(v, Violation::Explicit { .. }))
    }

    /// Only the implicit violations.
    pub fn implicit(&self) -> impl Iterator<Item = &Violation> {
        self.violations
            .iter()
            .filter(|v| matches!(v, Violation::Implicit { .. }))
    }
}

#[derive(Debug, Clone, Default)]
struct AState {
    delta: BTreeMap<String, SymExp>,
    tau: TaintMap<String>,
    pi: Vec<(SymExp, bool)>,
    pi_taint: TaintSet,
    next_secret: u32,
    rows: Vec<Row>,
}

impl AState {
    fn render_delta(&self) -> String {
        let mut out = String::from("{");
        for (i, (k, v)) in self.delta.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("{k} → {v}"));
        }
        out.push('}');
        out
    }

    fn render_pi(&self) -> String {
        if self.pi.is_empty() {
            return "True".into();
        }
        self.pi
            .iter()
            .map(|(e, taken)| {
                if *taken {
                    format!("{e}")
                } else {
                    format!("!({e})")
                }
            })
            .collect::<Vec<_>>()
            .join(" ∧ ")
    }

    fn render_tau(&self) -> String {
        let mut parts = Vec::new();
        if self.pi_taint.is_tainted() {
            parts.push(format!("π → {}", self.pi_taint));
        }
        for (k, v) in self.tau.iter() {
            parts.push(format!("{k} → {v}"));
        }
        format!("{{{}}}", parts.join(", "))
    }
}

struct Analyzer {
    hm: BTreeMap<SourceId, BTreeSet<String>>,
    violations: Vec<Violation>,
    finished: Vec<AState>,
    max_secrets: u32,
}

/// Analyzes a PRIML program with the PrivacyScope semantics.
///
/// # Examples
///
/// ```
/// let program = priml::parse(priml::examples::EXAMPLE2)?;
/// let outcome = priml::analysis::analyze(&program);
/// assert_eq!(outcome.implicit().count(), 1);
/// # Ok::<(), priml::ParseError>(())
/// ```
pub fn analyze(program: &Program) -> AnalysisOutcome {
    let mut analyzer = Analyzer {
        hm: BTreeMap::new(),
        violations: Vec::new(),
        finished: Vec::new(),
        max_secrets: 0,
    };
    let mut states = vec![AState::default()];
    for stmt in program {
        let mut next = Vec::new();
        for st in states {
            next.extend(analyzer.exec(st, stmt, true));
        }
        states = next;
    }
    analyzer.finished = states;

    // End-of-exploration sweep (the "last step" of Alg. 1): any source
    // under which ≥2 distinct values were declassified leaks implicitly.
    for (source, values) in &analyzer.hm {
        if values.len() >= 2 {
            let violation = Violation::Implicit {
                source: *source,
                values: values.iter().cloned().collect(),
            };
            if !analyzer.violations.contains(&violation) {
                analyzer.violations.push(violation);
            }
        }
    }

    AnalysisOutcome {
        violations: analyzer.violations,
        paths: analyzer.finished.iter().map(|s| s.rows.clone()).collect(),
        hm: analyzer.hm,
        secrets: analyzer.max_secrets as usize,
    }
}

impl Analyzer {
    fn exec(&mut self, mut st: AState, stmt: &Stmt, record: bool) -> Vec<AState> {
        match stmt {
            Stmt::Skip => {
                if record {
                    self.record(&mut st, stmt, false);
                }
                vec![st]
            }
            Stmt::Assign { var, exp } => {
                let before = self.violations.len();
                let (value, taint) = self.eval(&mut st, exp);
                // PS-ASSIGN: Δ[var ← v], τΔ[var ← P_assign(t)]
                st.delta.insert(var.clone(), value);
                st.tau.set(var.clone(), taint::assign(&taint));
                if record {
                    let aborted = self.violations.len() > before;
                    self.record(&mut st, stmt, aborted);
                }
                vec![st]
            }
            Stmt::Expr(exp) => {
                let before = self.violations.len();
                let _ = self.eval(&mut st, exp);
                if record {
                    let aborted = self.violations.len() > before;
                    self.record(&mut st, stmt, aborted);
                }
                vec![st]
            }
            Stmt::Block(stmts) => {
                let mut states = vec![st];
                for inner in stmts {
                    let mut next = Vec::new();
                    for s in states {
                        next.extend(self.exec(s, inner, false));
                    }
                    states = next;
                }
                if record {
                    for s in &mut states {
                        self.record(s, stmt, false);
                    }
                }
                states
            }
            Stmt::If {
                cond,
                then_s,
                else_s,
            } => {
                let (cv, ct) = self.eval(&mut st, cond);
                let mut out = Vec::new();
                // PS-TCOND / PS-FCOND: fork, extend π, and taint τΔ[π] with
                // P_cond(t_cond, τΔ[π]).
                let decided = match &cv {
                    SymExp::Const(v) => Some(*v != 0),
                    _ => None,
                };
                for taken in [true, false] {
                    if let Some(d) = decided {
                        if d != taken {
                            continue;
                        }
                    }
                    let mut branch = st.clone();
                    if decided.is_none() {
                        branch.pi.push((cv.clone(), taken));
                    }
                    branch.pi_taint = taint::cond(&ct, &branch.pi_taint);
                    let chosen = if taken { then_s } else { else_s };
                    let before = self.violations.len();
                    for mut after in self.exec(branch, chosen, false) {
                        if record {
                            let aborted = self.violations.len() > before;
                            self.record(&mut after, stmt, aborted);
                        }
                        out.push(after);
                    }
                }
                out
            }
        }
    }

    fn record(&mut self, st: &mut AState, stmt: &Stmt, aborted: bool) {
        let row = Row {
            stmt: stmt.to_string(),
            delta: st.render_delta(),
            pi: st.render_pi(),
            tau: st.render_tau(),
            hm: render_hm(&self.hm),
            abort: aborted,
        };
        st.rows.push(row);
    }

    fn eval(&mut self, st: &mut AState, exp: &Exp) -> (SymExp, TaintSet) {
        match exp {
            // PS-CONST: constants are ⊥.
            Exp::Lit(v) => (SymExp::Const(*v), taint::constant()),
            // PS-VAR: ⟨Δ[var], τΔ[var]⟩.
            Exp::Var(name) => {
                let value = st.delta.get(name).cloned().unwrap_or(SymExp::Const(0));
                (value, st.tau.get(name))
            }
            // PS-BINOP: fold values, join taints (Fig. 2).
            Exp::Bin { op, lhs, rhs } => {
                let (lv, lt) = self.eval(st, lhs);
                let (rv, rt) = self.eval(st, rhs);
                (SymExp::bin(*op, lv, rv), taint::binop(&lt, &rt))
            }
            // PS-UNOP: keep the operand's taint.
            Exp::Un { op, arg } => {
                let (v, t) = self.eval(st, arg);
                (SymExp::un(*op, v), taint::unop(&t))
            }
            // PS-INPUT: a fresh symbol with a fresh source tₖ.
            Exp::GetSecret => {
                st.next_secret += 1;
                self.max_secrets = self.max_secrets.max(st.next_secret);
                let source = SourceId::new(st.next_secret);
                (
                    SymExp::Sym {
                        index: st.next_secret,
                    },
                    taint::get_secret(source),
                )
            }
            // PS-DECLASS: run Algorithm 1, then yield the value.
            Exp::Declassify(inner) => {
                let (value, taint) = self.eval(st, inner);
                self.declassify_check(st, &value, &taint, exp);
                (value, taint)
            }
        }
    }

    /// `P_declassify_check(v, t, π, τΔ[π])` — Algorithm 1.
    fn declassify_check(&mut self, st: &AState, value: &SymExp, taint: &TaintSet, exp: &Exp) {
        // Explicit: the declassified value itself carries a single source.
        if let Some(source) = taint.sole_source() {
            let violation = Violation::Explicit {
                value: value.to_string(),
                source,
                stmt: exp.to_string(),
            };
            if !self.violations.contains(&violation) {
                self.violations.push(violation);
            }
            return;
        }
        // Implicit: π carries a single source; compare the revealed value
        // against what other paths revealed under the same source.
        if let Some(source) = st.pi_taint.sole_source() {
            let rendered = value.to_string();
            let entry = self.hm.entry(source).or_default();
            if !entry.is_empty() && !entry.contains(&rendered) {
                let mut values: Vec<String> = entry.iter().cloned().collect();
                values.push(rendered.clone());
                let violation = Violation::Implicit { source, values };
                if !self.violations.contains(&violation) {
                    self.violations.push(violation);
                }
            }
            entry.insert(rendered);
        }
    }
}

fn render_hm(hm: &BTreeMap<SourceId, BTreeSet<String>>) -> String {
    let mut parts = Vec::new();
    for (source, values) in hm {
        for value in values {
            parts.push(format!("{source} → {value}"));
        }
    }
    format!("{{{}}}", parts.join(", "))
}

/// Renders the Table II simulation (explicit leakage; single path, no π).
pub fn render_table2(outcome: &AnalysisOutcome) -> String {
    let mut out = String::from("Statement | Δ | τΔ | abort\n");
    out.push_str("----------+---+----+------\n");
    if let Some(rows) = outcome.paths.first() {
        for row in rows {
            out.push_str(&format!(
                "{} | {} | {} | {}\n",
                row.stmt, row.delta, row.tau, row.abort
            ));
        }
    }
    out
}

/// Renders the Table III simulation (implicit leakage; forked paths with π
/// and `hm`), deduplicating the shared prefix like the paper's table.
pub fn render_table3(outcome: &AnalysisOutcome) -> String {
    let mut out = String::from("Statement | Δ | π | τΔ | hm | abort\n");
    out.push_str("----------+---+---+----+----+------\n");
    let mut seen: Vec<&Row> = Vec::new();
    for rows in &outcome.paths {
        for row in rows {
            if seen.contains(&row) {
                continue;
            }
            seen.push(row);
            out.push_str(&format!(
                "{} | {} | {} | {} | {} | {}\n",
                row.stmt, row.delta, row.pi, row.tau, row.hm, row.abort
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::examples::{EXAMPLE1, EXAMPLE2, EXAMPLE2_SECURE};
    use crate::parse;

    fn analyze_src(src: &str) -> AnalysisOutcome {
        analyze(&parse(src).expect("parses"))
    }

    #[test]
    fn example1_explicit_leak_of_h1_only() {
        let outcome = analyze_src(EXAMPLE1);
        assert_eq!(outcome.violations.len(), 1);
        match &outcome.violations[0] {
            Violation::Explicit { value, source, .. } => {
                assert_eq!(value, "2 * s1");
                assert_eq!(*source, SourceId::new(1));
            }
            other => panic!("expected explicit, got {other:?}"),
        }
    }

    #[test]
    fn example1_declassify_x_is_safe() {
        // x = 2·s1 + 3·s2 has taint ⊤ — no violation for it.
        let outcome = analyze_src(EXAMPLE1);
        assert!(outcome
            .violations
            .iter()
            .all(|v| !format!("{v:?}").contains("s1 + ")));
    }

    #[test]
    fn example2_implicit_leak() {
        let outcome = analyze_src(EXAMPLE2);
        assert_eq!(outcome.violations.len(), 1);
        match &outcome.violations[0] {
            Violation::Implicit { source, values } => {
                assert_eq!(*source, SourceId::new(1));
                assert_eq!(values.len(), 2);
            }
            other => panic!("expected implicit, got {other:?}"),
        }
    }

    #[test]
    fn example2_secure_variant_passes() {
        let outcome = analyze_src(EXAMPLE2_SECURE);
        assert!(outcome.is_secure(), "got {:?}", outcome.violations);
        // hm has exactly one recorded value for t1
        assert_eq!(outcome.hm[&SourceId::new(1)].len(), 1);
    }

    #[test]
    fn top_mixed_value_is_not_explicit() {
        let outcome =
            analyze_src("a := get_secret(secret); b := get_secret(secret); declassify(a + b)");
        assert!(outcome.is_secure());
    }

    #[test]
    fn same_secret_twice_is_still_reversible() {
        // h1 + h1 = 2·s1 — still a single source.
        let outcome = analyze_src("a := get_secret(secret); declassify(a + a)");
        assert_eq!(outcome.explicit().count(), 1);
    }

    #[test]
    fn constant_declassify_is_safe() {
        let outcome = analyze_src("declassify(42)");
        assert!(outcome.is_secure());
    }

    #[test]
    fn branch_on_mixed_secrets_is_not_implicit() {
        // π tainted by ⊤ (two sources) — observing the branch does not pin
        // a single secret, per nonreversibility.
        let outcome = analyze_src(
            "a := get_secret(secret); b := get_secret(secret); if a + b > 10 then declassify(0) else declassify(1)",
        );
        assert!(outcome.is_secure());
    }

    #[test]
    fn nested_branches_accumulate_pi() {
        let outcome = analyze_src(
            "a := get_secret(secret); if a > 1 then { if a > 5 then declassify(1) else declassify(2) } else declassify(3)",
        );
        // three distinct observable values under t1
        let implicit: Vec<_> = outcome.implicit().collect();
        assert!(!implicit.is_empty());
        assert_eq!(outcome.hm[&SourceId::new(1)].len(), 3);
    }

    #[test]
    fn concrete_condition_does_not_fork() {
        let outcome = analyze_src("if 1 then declassify(0) else declassify(1)");
        assert_eq!(outcome.paths.len(), 1);
        assert!(outcome.is_secure());
    }

    #[test]
    fn table2_rendering_matches_paper_shape() {
        let outcome = analyze_src(EXAMPLE1);
        let table = render_table2(&outcome);
        assert!(table.contains("h1 → 2 * s1"), "{table}");
        assert!(table.contains("h2 → 3 * s2"), "{table}");
        assert!(table.contains("x → 2 * s1 + 3 * s2"), "{table}");
        // exactly one abort row (the final declassify(h1))
        assert_eq!(table.matches("| true").count(), 1, "{table}");
    }

    #[test]
    fn table3_rendering_matches_paper_shape() {
        let outcome = analyze_src(EXAMPLE2);
        let table = render_table3(&outcome);
        assert!(table.contains("h → 2 * s1"), "{table}");
        assert!(table.contains("π → t1") || table.contains("t1"), "{table}");
        assert!(
            table.contains("t1 → 0") || table.contains("t1 → 1"),
            "{table}"
        );
        assert_eq!(table.matches("| true").count(), 1, "{table}");
    }

    #[test]
    fn analysis_agrees_with_concrete_on_symbolic_values() {
        // The symbolic store evaluated under the secret assignment matches
        // the concrete interpreter's final store.
        let program = parse(EXAMPLE1).unwrap();
        let outcome = analyze(&program);
        let secrets = [10u32, 20u32];
        let concrete = crate::concrete::run(&program, &secrets).unwrap();
        // extract final Δ of the single path by re-analysis: values render
        // deterministically, so evaluate via SymExp::eval on a re-derived
        // store. (The outcome keeps rendered strings; re-run eval here.)
        let _ = outcome;
        assert_eq!(concrete.store["x"], 2 * 10 + 3 * 20);
    }

    #[test]
    fn secrets_counted_across_paths() {
        let outcome = analyze_src(
            "if get_secret(secret) > 1 then x := get_secret(secret) else skip; declassify(2)",
        );
        assert_eq!(outcome.secrets, 2);
    }
}
