//! The PRIML abstract syntax (the BNF of §V-A).

use std::fmt;

use serde::{Deserialize, Serialize};

/// A PRIML program: a sequence of statements (the `s₁; s₂` composition).
pub type Program = Vec<Stmt>;

/// PRIML statements.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Stmt {
    /// `skip` — does nothing.
    Skip,
    /// `var := exp`.
    Assign {
        /// Target variable.
        var: String,
        /// Right-hand side.
        exp: Exp,
    },
    /// `if exp then s₁ else s₂`.
    If {
        /// Branch condition (non-zero means true).
        cond: Exp,
        /// Taken when the condition is non-zero.
        then_s: Box<Stmt>,
        /// Taken when the condition is zero.
        else_s: Box<Stmt>,
    },
    /// A braced group `{ s₁; s₂; … }` (syntactic sugar for composition).
    Block(Vec<Stmt>),
    /// A bare expression statement (e.g. `declassify(x)`).
    Expr(Exp),
}

impl fmt::Display for Stmt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Stmt::Skip => write!(f, "skip"),
            Stmt::Assign { var, exp } => write!(f, "{var} := {exp}"),
            Stmt::If {
                cond,
                then_s,
                else_s,
            } => write!(f, "if {cond} then {then_s} else {else_s}"),
            Stmt::Block(stmts) => {
                write!(f, "{{ ")?;
                for (i, s) in stmts.iter().enumerate() {
                    if i > 0 {
                        write!(f, "; ")?;
                    }
                    write!(f, "{s}")?;
                }
                write!(f, " }}")
            }
            Stmt::Expr(exp) => write!(f, "{exp}"),
        }
    }
}

/// PRIML expressions. All values are 32-bit unsigned integers.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Exp {
    /// A literal value.
    Lit(u32),
    /// A variable read.
    Var(String),
    /// `exp ⊙b exp`.
    Bin {
        /// The binary operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Exp>,
        /// Right operand.
        rhs: Box<Exp>,
    },
    /// `⊙u exp`.
    Un {
        /// The unary operator.
        op: UnOp,
        /// Operand.
        arg: Box<Exp>,
    },
    /// `get_secret(secret)` — retrieves the next high input.
    GetSecret,
    /// `declassify(exp)` — reveals a value to the outside world.
    Declassify(Box<Exp>),
}

impl fmt::Display for Exp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Exp::Lit(v) => write!(f, "{v}"),
            Exp::Var(name) => write!(f, "{name}"),
            Exp::Bin { op, lhs, rhs } => write!(f, "({lhs} {op} {rhs})"),
            Exp::Un { op, arg } => write!(f, "({op}{arg})"),
            Exp::GetSecret => write!(f, "get_secret(secret)"),
            Exp::Declassify(inner) => write!(f, "declassify({inner})"),
        }
    }
}

/// Typical binary operators (`⊙b`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum BinOp {
    /// `+` (wrapping)
    Add,
    /// `-` (wrapping)
    Sub,
    /// `*` (wrapping)
    Mul,
    /// `/` (div-by-zero halts abnormally)
    Div,
    /// `%`
    Rem,
    /// `==` (1/0)
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&`
    And,
    /// `|`
    Or,
    /// `^`
    Xor,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
}

impl BinOp {
    /// Applies the operator with PRIML's u32 semantics.
    ///
    /// Returns `None` for division/remainder by zero (abnormal halt).
    pub fn apply(self, a: u32, b: u32) -> Option<u32> {
        Some(match self {
            BinOp::Add => a.wrapping_add(b),
            BinOp::Sub => a.wrapping_sub(b),
            BinOp::Mul => a.wrapping_mul(b),
            BinOp::Div => a.checked_div(b)?,
            BinOp::Rem => a.checked_rem(b)?,
            BinOp::Eq => u32::from(a == b),
            BinOp::Ne => u32::from(a != b),
            BinOp::Lt => u32::from(a < b),
            BinOp::Le => u32::from(a <= b),
            BinOp::Gt => u32::from(a > b),
            BinOp::Ge => u32::from(a >= b),
            BinOp::And => a & b,
            BinOp::Or => a | b,
            BinOp::Xor => a ^ b,
            BinOp::Shl => a.wrapping_shl(b),
            BinOp::Shr => a.wrapping_shr(b),
        })
    }
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Rem => "%",
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::And => "&",
            BinOp::Or => "|",
            BinOp::Xor => "^",
            BinOp::Shl => "<<",
            BinOp::Shr => ">>",
        };
        f.write_str(s)
    }
}

/// Typical unary operators (`⊙u`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum UnOp {
    /// Arithmetic negation (two's complement).
    Neg,
    /// Logical negation (`!0 = 1`).
    Not,
    /// Bitwise complement.
    BitNot,
}

impl UnOp {
    /// Applies the operator with PRIML's u32 semantics.
    pub fn apply(self, v: u32) -> u32 {
        match self {
            UnOp::Neg => v.wrapping_neg(),
            UnOp::Not => u32::from(v == 0),
            UnOp::BitNot => !v,
        }
    }
}

impl fmt::Display for UnOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            UnOp::Neg => "-",
            UnOp::Not => "!",
            UnOp::BitNot => "~",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binop_semantics() {
        assert_eq!(BinOp::Add.apply(u32::MAX, 1), Some(0));
        assert_eq!(BinOp::Sub.apply(0, 1), Some(u32::MAX));
        assert_eq!(BinOp::Div.apply(7, 2), Some(3));
        assert_eq!(BinOp::Div.apply(7, 0), None);
        assert_eq!(BinOp::Eq.apply(3, 3), Some(1));
        assert_eq!(BinOp::Lt.apply(2, 3), Some(1));
    }

    #[test]
    fn unop_semantics() {
        assert_eq!(UnOp::Neg.apply(1), u32::MAX);
        assert_eq!(UnOp::Not.apply(0), 1);
        assert_eq!(UnOp::Not.apply(5), 0);
        assert_eq!(UnOp::BitNot.apply(0), u32::MAX);
    }

    #[test]
    fn display_round_trip_shapes() {
        let e = Exp::Bin {
            op: BinOp::Mul,
            lhs: Box::new(Exp::Lit(2)),
            rhs: Box::new(Exp::GetSecret),
        };
        assert_eq!(e.to_string(), "(2 * get_secret(secret))");
        let s = Stmt::Assign {
            var: "h".into(),
            exp: e,
        };
        assert_eq!(s.to_string(), "h := (2 * get_secret(secret))");
    }
}
