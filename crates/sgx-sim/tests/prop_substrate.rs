//! Property tests for the TEE substrate: sealing, crypto and attestation
//! invariants over arbitrary inputs.

use proptest::prelude::*;
use sgx_sim::attest::{self, PlatformKey};
use sgx_sim::crypto::{self, Key};
use sgx_sim::seal;

fn arb_key() -> impl Strategy<Value = Key> {
    proptest::array::uniform16(any::<u8>())
}

proptest! {
    /// decrypt ∘ encrypt = id for every key, nonce and plaintext.
    #[test]
    fn cipher_round_trip(key in arb_key(), nonce in any::<u64>(), data in proptest::collection::vec(any::<u8>(), 0..256)) {
        let ct = crypto::encrypt(&key, nonce, &data);
        prop_assert_eq!(ct.len(), data.len());
        prop_assert_eq!(crypto::decrypt(&key, nonce, &ct), data);
    }

    /// Nonzero plaintexts are actually transformed (keystream is nonzero).
    #[test]
    fn cipher_is_not_identity(key in arb_key(), nonce in any::<u64>(), data in proptest::collection::vec(any::<u8>(), 16..64)) {
        let ct = crypto::encrypt(&key, nonce, &data);
        // with ≥16 bytes the odds of a fully-zero keystream are negligible;
        // assert at least one byte changed
        prop_assert_ne!(ct, data);
    }

    /// MACs verify and detect single-bit tampering.
    #[test]
    fn mac_detects_flips(key in arb_key(), nonce in any::<u64>(), mut data in proptest::collection::vec(any::<u8>(), 1..128), flip in any::<usize>()) {
        let tag = crypto::mac(&key, nonce, &data);
        prop_assert!(crypto::mac_verify(&key, nonce, &data, tag));
        let i = flip % data.len();
        data[i] ^= 1;
        prop_assert!(!crypto::mac_verify(&key, nonce, &data, tag));
    }

    /// seal/unseal round-trips under the right key and rejects others.
    #[test]
    fn sealing_round_trip(k1 in arb_key(), k2 in arb_key(), nonce in any::<u64>(), data in proptest::collection::vec(any::<u8>(), 0..128)) {
        let blob = seal::seal(&k1, nonce, &data);
        prop_assert_eq!(seal::unseal(&k1, &blob).expect("unseals"), data);
        if k1 != k2 {
            prop_assert!(seal::unseal(&k2, &blob).is_err());
        }
    }

    /// Quotes verify under their platform and fail under any other.
    #[test]
    fn quotes_bind_platform_and_measurement(seed1 in proptest::collection::vec(any::<u8>(), 1..16), seed2 in proptest::collection::vec(any::<u8>(), 1..16), measurement in any::<u64>(), report in proptest::collection::vec(any::<u8>(), 0..32)) {
        let p1 = PlatformKey::from_seed(&seed1);
        let quote = attest::quote(&p1, measurement, &report);
        prop_assert!(attest::verify(&p1, &quote, Some(measurement)).is_ok());
        prop_assert!(attest::verify(&p1, &quote, Some(measurement ^ 1)).is_err());
        if seed1 != seed2 {
            let p2 = PlatformKey::from_seed(&seed2);
            prop_assert!(attest::verify(&p2, &quote, None).is_err());
        }
    }

    /// Key derivation separates labels.
    #[test]
    fn derive_key_separates_labels(parent in arb_key(), l1 in proptest::collection::vec(any::<u8>(), 1..16), l2 in proptest::collection::vec(any::<u8>(), 1..16)) {
        let k1 = crypto::derive_key(&parent, &l1);
        prop_assert_eq!(k1, crypto::derive_key(&parent, &l1));
        if l1 != l2 {
            prop_assert_ne!(k1, crypto::derive_key(&parent, &l2));
        }
    }
}
