//! A concrete Mini-C interpreter — the "CPU" the simulated enclave runs on.
//!
//! Memory is a flat array of typed cells (one cell per scalar; arrays and
//! structs occupy contiguous cell ranges), pointers are cell addresses with
//! an element stride, and execution is deterministic: `rand()` and
//! `sgx_read_rand` use a seeded LCG, `printf` appends to a captured output
//! buffer.

use std::collections::BTreeMap;

use minic::ast::{
    BinOp, Expr, ExprKind, Function, Init, Stmt, StmtKind, TranslationUnit, UnOp, VarDecl,
};
use minic::types::Type;

use crate::crypto::{self, Key};
use crate::error::SgxError;

/// One memory cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Word {
    /// An integer cell.
    Int(i64),
    /// A floating cell.
    Float(f64),
    /// Never written (reading it is a fault in strict mode; yields 0
    /// otherwise).
    Uninit,
}

/// A runtime value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// An integer.
    Int(i64),
    /// A double.
    Float(f64),
    /// A pointer: cell address plus element stride and type.
    Ptr {
        /// Cell index the pointer targets.
        addr: usize,
        /// Cells per pointed-to element.
        stride: usize,
        /// Pointed-to element type.
        elem: Type,
    },
}

impl Value {
    /// Non-zero test.
    pub fn truthy(&self) -> bool {
        match self {
            Value::Int(v) => *v != 0,
            Value::Float(v) => *v != 0.0,
            Value::Ptr { .. } => true,
        }
    }

    /// The integer content, coercing floats by truncation.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            Value::Float(v) => Some(*v as i64),
            Value::Ptr { .. } => None,
        }
    }

    /// The float content, coercing integers.
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Int(v) => Some(*v as f64),
            Value::Float(v) => Some(*v),
            Value::Ptr { .. } => None,
        }
    }
}

enum Flow {
    Normal,
    Break,
    Continue,
    Return(Option<Value>),
}

#[derive(Debug, Clone)]
struct Binding {
    addr: usize,
    ty: Type,
}

/// The interpreter over one translation unit.
#[derive(Debug)]
pub struct Interp<'u> {
    unit: &'u TranslationUnit,
    /// Flat memory.
    pub mem: Vec<Word>,
    globals: BTreeMap<String, Binding>,
    frames: Vec<Vec<BTreeMap<String, Binding>>>,
    /// Captured `printf` output.
    pub output: String,
    /// OCALLs the enclave made: prototype-only functions dispatch to the
    /// (untrusted) host, which records name and arguments — an observable
    /// channel.
    pub ocalls: Vec<(String, Vec<Value>)>,
    rng: u64,
    fuel: u64,
    /// Key used by the IPP-style decrypt/encrypt builtins.
    pub crypto_key: Key,
    /// Active fault-injection schedule, when the session runs under one.
    pub(crate) faults: Option<crate::fault::FaultState>,
    /// Deadline/cancel supervision bounding untrusted-side sleeps (retry
    /// backoff, injected delays). Unbounded by default.
    pub(crate) supervision: crate::fault::Supervision,
    /// Degradations the untrusted runtime absorbed (curtailed sleeps);
    /// surfaced via `Session::degradations`.
    pub(crate) ledger: symexec::Ledger,
    /// Telemetry handle for OCALL boundary spans (disabled by default;
    /// [`crate::Enclave::with_telemetry`] threads a live one through).
    pub(crate) telemetry: telemetry::Telemetry,
    /// Span id of the ECALL currently being dispatched, so OCALL spans can
    /// parent themselves to the enclosing boundary crossing.
    pub(crate) current_ecall: Option<u64>,
}

impl<'u> Interp<'u> {
    /// Creates an interpreter, allocating and initializing globals.
    ///
    /// # Errors
    ///
    /// Returns [`SgxError::Runtime`] if a global initializer faults.
    pub fn new(unit: &'u TranslationUnit) -> Result<Self, SgxError> {
        let mut interp = Interp {
            unit,
            mem: Vec::new(),
            globals: BTreeMap::new(),
            frames: Vec::new(),
            output: String::new(),
            ocalls: Vec::new(),
            rng: 0x5DEECE66D,
            fuel: 50_000_000,
            crypto_key: *b"sgx-sim-demo-key",
            faults: None,
            supervision: crate::fault::Supervision::new(),
            ledger: symexec::Ledger::new(),
            telemetry: telemetry::Telemetry::disabled(),
            current_ecall: None,
        };
        let globals: Vec<VarDecl> = unit.globals().cloned().collect();
        for decl in &globals {
            let addr = interp.alloc(&decl.ty);
            interp.globals.insert(
                decl.name.clone(),
                Binding {
                    addr,
                    ty: decl.ty.clone(),
                },
            );
            if let Some(init) = &decl.init {
                interp.init_at(addr, &decl.ty, init)?;
            }
        }
        Ok(interp)
    }

    /// Reseeds the deterministic RNG.
    pub fn seed_rng(&mut self, seed: u64) {
        self.rng = seed | 1;
    }

    /// Cells occupied by a type.
    pub fn cells_of(&self, ty: &Type) -> usize {
        match ty {
            Type::Array(inner, n) => self.cells_of(inner) * n,
            Type::Struct(name) => self
                .unit
                .struct_def(name)
                .map(|d| d.fields.iter().map(|f| self.cells_of(&f.ty)).sum())
                .unwrap_or(1),
            _ => 1,
        }
    }

    /// Allocates zero-initialized... rather, uninitialized storage for `ty`
    /// and returns its base address.
    pub fn alloc(&mut self, ty: &Type) -> usize {
        let n = self.cells_of(ty);
        self.alloc_cells(n)
    }

    /// Allocates `n` uninitialized cells.
    pub fn alloc_cells(&mut self, n: usize) -> usize {
        let addr = self.mem.len();
        self.mem.extend(std::iter::repeat_n(Word::Uninit, n));
        addr
    }

    /// Writes a buffer of words at a fresh allocation, returning a pointer
    /// value (used by the enclave boundary to marshal `[in]` buffers).
    pub fn alloc_buffer(&mut self, words: &[Word], elem: Type) -> Value {
        let addr = self.alloc_cells(words.len().max(1));
        self.mem[addr..addr + words.len()].copy_from_slice(words);
        Value::Ptr {
            addr,
            stride: 1,
            elem,
        }
    }

    /// Reads `len` cells starting at `addr`.
    pub fn read_buffer(&self, addr: usize, len: usize) -> Result<Vec<Word>, SgxError> {
        if addr + len > self.mem.len() {
            return Err(SgxError::Runtime(format!(
                "out-of-bounds read of {len} cells at {addr}"
            )));
        }
        Ok(self.mem[addr..addr + len].to_vec())
    }

    fn fault(&self, msg: impl Into<String>) -> SgxError {
        SgxError::Runtime(msg.into())
    }

    fn burn(&mut self, amount: u64) -> Result<(), SgxError> {
        self.fuel = self.fuel.saturating_sub(amount);
        if self.fuel == 0 {
            Err(self.fault("fuel exhausted (possible infinite loop)"))
        } else {
            Ok(())
        }
    }

    fn lookup(&self, name: &str) -> Option<Binding> {
        if let Some(frame) = self.frames.last() {
            for scope in frame.iter().rev() {
                if let Some(b) = scope.get(name) {
                    return Some(b.clone());
                }
            }
        }
        self.globals.get(name).cloned()
    }

    fn declare(&mut self, name: &str, ty: Type) -> usize {
        let addr = self.alloc(&ty);
        self.frames
            .last_mut()
            .expect("active frame")
            .last_mut()
            .expect("active scope")
            .insert(name.to_string(), Binding { addr, ty });
        addr
    }

    /// Calls a defined function with evaluated arguments.
    ///
    /// # Errors
    ///
    /// Returns [`SgxError`] on missing function, arity mismatch, or any
    /// runtime fault.
    pub fn call(&mut self, name: &str, args: Vec<Value>) -> Result<Option<Value>, SgxError> {
        let func = self
            .unit
            .function(name)
            .filter(|f| f.body.is_some())
            .cloned()
            .ok_or_else(|| SgxError::Runtime(format!("no function `{name}`")))?;
        if func.params.len() != args.len() {
            return Err(self.fault(format!(
                "`{name}` expects {} argument(s), got {}",
                func.params.len(),
                args.len()
            )));
        }
        self.frames.push(vec![BTreeMap::new()]);
        for (param, arg) in func.params.iter().zip(args) {
            let addr = self.declare(&param.name, param.ty.clone());
            self.store_value(addr, &param.ty, arg)?;
        }
        let result = self.run_body(&func);
        self.frames.pop();
        result
    }

    fn run_body(&mut self, func: &Function) -> Result<Option<Value>, SgxError> {
        let body = func.body.as_ref().expect("definition");
        for stmt in body {
            match self.exec(stmt)? {
                Flow::Return(v) => return Ok(v),
                Flow::Normal => {}
                Flow::Break | Flow::Continue => {
                    return Err(self.fault("break/continue escaped a function body"))
                }
            }
        }
        Ok(None)
    }

    fn exec(&mut self, stmt: &Stmt) -> Result<Flow, SgxError> {
        self.burn(1)?;
        match &stmt.kind {
            StmtKind::Decl(decl) => {
                let addr = self.declare(&decl.name, decl.ty.clone());
                if let Some(init) = &decl.init {
                    let ty = decl.ty.clone();
                    self.init_at(addr, &ty, init)?;
                }
                Ok(Flow::Normal)
            }
            StmtKind::Expr(None) => Ok(Flow::Normal),
            StmtKind::Expr(Some(expr)) => {
                self.eval(expr)?;
                Ok(Flow::Normal)
            }
            StmtKind::Block(stmts) => {
                self.frames.last_mut().expect("frame").push(BTreeMap::new());
                let mut flow = Flow::Normal;
                for s in stmts {
                    flow = self.exec(s)?;
                    if !matches!(flow, Flow::Normal) {
                        break;
                    }
                }
                self.frames.last_mut().expect("frame").pop();
                Ok(flow)
            }
            StmtKind::If {
                cond,
                then_s,
                else_s,
            } => {
                if self.eval(cond)?.truthy() {
                    self.exec(then_s)
                } else if let Some(else_s) = else_s {
                    self.exec(else_s)
                } else {
                    Ok(Flow::Normal)
                }
            }
            StmtKind::While { cond, body } => {
                while self.eval(cond)?.truthy() {
                    self.burn(1)?;
                    match self.exec(body)? {
                        Flow::Break => break,
                        Flow::Return(v) => return Ok(Flow::Return(v)),
                        Flow::Normal | Flow::Continue => {}
                    }
                }
                Ok(Flow::Normal)
            }
            StmtKind::DoWhile { body, cond } => {
                loop {
                    self.burn(1)?;
                    match self.exec(body)? {
                        Flow::Break => break,
                        Flow::Return(v) => return Ok(Flow::Return(v)),
                        Flow::Normal | Flow::Continue => {}
                    }
                    if !self.eval(cond)?.truthy() {
                        break;
                    }
                }
                Ok(Flow::Normal)
            }
            StmtKind::For {
                init,
                cond,
                step,
                body,
            } => {
                self.frames.last_mut().expect("frame").push(BTreeMap::new());
                let result = (|| {
                    if let Some(init) = init {
                        self.exec(init)?;
                    }
                    loop {
                        if let Some(cond) = cond {
                            if !self.eval(cond)?.truthy() {
                                break;
                            }
                        }
                        self.burn(1)?;
                        match self.exec(body)? {
                            Flow::Break => break,
                            Flow::Return(v) => return Ok(Flow::Return(v)),
                            Flow::Normal | Flow::Continue => {}
                        }
                        if let Some(step) = step {
                            self.eval(step)?;
                        }
                    }
                    Ok(Flow::Normal)
                })();
                self.frames.last_mut().expect("frame").pop();
                result
            }
            StmtKind::Return(None) => Ok(Flow::Return(None)),
            StmtKind::Return(Some(expr)) => {
                let v = self.eval(expr)?;
                Ok(Flow::Return(Some(v)))
            }
            StmtKind::Break => Ok(Flow::Break),
            StmtKind::Continue => Ok(Flow::Continue),
        }
    }

    fn init_at(&mut self, addr: usize, ty: &Type, init: &Init) -> Result<(), SgxError> {
        match (init, ty) {
            (Init::Expr(expr), _) => {
                let value = self.eval(expr)?;
                self.store_value(addr, ty, value)
            }
            (Init::List(items), Type::Array(elem, _)) => {
                let stride = self.cells_of(elem);
                for (i, item) in items.iter().enumerate() {
                    self.init_at(addr + i * stride, elem, item)?;
                }
                Ok(())
            }
            (Init::List(items), Type::Struct(name)) => {
                let def = self
                    .unit
                    .struct_def(name)
                    .cloned()
                    .ok_or_else(|| self.fault(format!("unknown struct `{name}`")))?;
                let mut offset = 0;
                for (item, field) in items.iter().zip(&def.fields) {
                    self.init_at(addr + offset, &field.ty, item)?;
                    offset += self.cells_of(&field.ty);
                }
                Ok(())
            }
            (Init::List(_), other) => Err(self.fault(format!("brace initializer for `{other}`"))),
        }
    }

    fn store_value(&mut self, addr: usize, ty: &Type, value: Value) -> Result<(), SgxError> {
        if addr >= self.mem.len() {
            return Err(self.fault(format!("out-of-bounds write at cell {addr}")));
        }
        let word = match (ty, &value) {
            (t, Value::Int(v)) if t.is_float() => Word::Float(*v as f64),
            (t, Value::Float(v)) if t.is_integer() => Word::Int(*v as i64),
            (_, Value::Int(v)) => Word::Int(*v),
            (_, Value::Float(v)) => Word::Float(*v),
            (_, Value::Ptr { addr, stride, .. }) => {
                // encode pointers as tagged integers: addr * stride table is
                // not needed since stride is recomputed from the type on
                // load; store the raw address.
                let _ = stride;
                Word::Int(*addr as i64)
            }
        };
        self.mem[addr] = word;
        Ok(())
    }

    fn load_value(&self, addr: usize, ty: &Type) -> Result<Value, SgxError> {
        let word = self
            .mem
            .get(addr)
            .copied()
            .ok_or_else(|| self.fault(format!("out-of-bounds read at cell {addr}")))?;
        let value = match (ty, word) {
            (Type::Ptr(inner), Word::Int(v)) => Value::Ptr {
                addr: v as usize,
                stride: self.cells_of(inner),
                elem: (**inner).clone(),
            },
            (Type::Ptr(_), Word::Uninit) => {
                return Err(self.fault(format!("read of uninitialized pointer at {addr}")))
            }
            (t, Word::Uninit) if t.is_float() => Value::Float(0.0),
            (_, Word::Uninit) => Value::Int(0),
            (t, Word::Int(v)) if t.is_float() => Value::Float(v as f64),
            (t, Word::Float(v)) if t.is_integer() => Value::Int(v as i64),
            (_, Word::Int(v)) => Value::Int(v),
            (_, Word::Float(v)) => Value::Float(v),
        };
        Ok(value)
    }

    /// Evaluates an lvalue expression to (address, type).
    fn lvalue(&mut self, expr: &Expr) -> Result<(usize, Type), SgxError> {
        match &expr.kind {
            ExprKind::Ident(name) => {
                let binding = self
                    .lookup(name)
                    .ok_or_else(|| self.fault(format!("unbound variable `{name}`")))?;
                Ok((binding.addr, binding.ty))
            }
            ExprKind::Deref(inner) => {
                let value = self.eval(inner)?;
                match value {
                    Value::Ptr { addr, elem, .. } => Ok((addr, elem)),
                    other => Err(self.fault(format!("dereference of non-pointer {other:?}"))),
                }
            }
            ExprKind::Index { base, index } => {
                let base_v = self.eval(base)?;
                let idx = self
                    .eval(index)?
                    .as_int()
                    .ok_or_else(|| self.fault("non-integer index"))?;
                match base_v {
                    Value::Ptr { addr, stride, elem } => {
                        let target = addr as i64 + idx * stride as i64;
                        if target < 0 {
                            return Err(self.fault("negative address"));
                        }
                        Ok((target as usize, elem))
                    }
                    other => Err(self.fault(format!("indexing non-pointer {other:?}"))),
                }
            }
            ExprKind::Member { base, field, arrow } => {
                let (base_addr, base_ty) = if *arrow {
                    match self.eval(base)? {
                        Value::Ptr { addr, elem, .. } => (addr, elem),
                        other => return Err(self.fault(format!("`->` on non-pointer {other:?}"))),
                    }
                } else {
                    self.lvalue(base)?
                };
                let Type::Struct(name) = &base_ty else {
                    return Err(self.fault(format!("member access on `{base_ty}`")));
                };
                let def = self
                    .unit
                    .struct_def(name)
                    .cloned()
                    .ok_or_else(|| self.fault(format!("unknown struct `{name}`")))?;
                let mut offset = 0;
                for f in &def.fields {
                    if f.name == *field {
                        return Ok((base_addr + offset, f.ty.clone()));
                    }
                    offset += self.cells_of(&f.ty);
                }
                Err(self.fault(format!("struct `{name}` has no field `{field}`")))
            }
            ExprKind::Cast { expr: inner, .. } => self.lvalue(inner),
            other => Err(self.fault(format!("not an lvalue: {other:?}"))),
        }
    }

    fn eval(&mut self, expr: &Expr) -> Result<Value, SgxError> {
        self.burn(1)?;
        match &expr.kind {
            ExprKind::IntLit(v) | ExprKind::CharLit(v) => Ok(Value::Int(*v)),
            ExprKind::FloatLit(v) => Ok(Value::Float(*v)),
            ExprKind::StrLit(text) => {
                // materialize the string as char cells + NUL
                let addr = self.alloc_cells(text.len() + 1);
                for (i, b) in text.bytes().enumerate() {
                    self.mem[addr + i] = Word::Int(i64::from(b));
                }
                self.mem[addr + text.len()] = Word::Int(0);
                Ok(Value::Ptr {
                    addr,
                    stride: 1,
                    elem: Type::Char,
                })
            }
            ExprKind::Ident(_)
            | ExprKind::Deref(_)
            | ExprKind::Index { .. }
            | ExprKind::Member { .. } => {
                let (addr, ty) = self.lvalue(expr)?;
                if let Type::Array(elem, _) = &ty {
                    // array-to-pointer decay
                    return Ok(Value::Ptr {
                        addr,
                        stride: self.cells_of(elem),
                        elem: (**elem).clone(),
                    });
                }
                self.load_value(addr, &ty)
            }
            ExprKind::AddrOf(inner) => {
                let (addr, ty) = self.lvalue(inner)?;
                Ok(Value::Ptr {
                    addr,
                    stride: self.cells_of(&ty),
                    elem: ty,
                })
            }
            ExprKind::Unary { op, expr: inner } => {
                let v = self.eval(inner)?;
                self.unary(*op, v)
            }
            ExprKind::Binary { op, lhs, rhs } => {
                // && and || short-circuit
                match op {
                    BinOp::LogAnd => {
                        if !self.eval(lhs)?.truthy() {
                            return Ok(Value::Int(0));
                        }
                        return Ok(Value::Int(i64::from(self.eval(rhs)?.truthy())));
                    }
                    BinOp::LogOr => {
                        if self.eval(lhs)?.truthy() {
                            return Ok(Value::Int(1));
                        }
                        return Ok(Value::Int(i64::from(self.eval(rhs)?.truthy())));
                    }
                    _ => {}
                }
                let a = self.eval(lhs)?;
                let b = self.eval(rhs)?;
                self.binary(*op, a, b)
            }
            ExprKind::Assign { op, lhs, rhs } => {
                let (addr, ty) = self.lvalue(lhs)?;
                let rv = self.eval(rhs)?;
                let value = match op {
                    None => rv,
                    Some(binop) => {
                        let old = self.load_value(addr, &ty)?;
                        self.binary(*binop, old, rv)?
                    }
                };
                // struct assignment copies the whole object
                if let (Type::Struct(_), Value::Ptr { .. }) = (&ty, &value) {
                    return Err(self.fault("struct assignment from pointer"));
                }
                if matches!(ty, Type::Struct(_)) {
                    return Err(self.fault("struct-by-value assignment is unsupported"));
                }
                self.store_value(addr, &ty, value.clone())?;
                Ok(value)
            }
            ExprKind::Ternary {
                cond,
                then_e,
                else_e,
            } => {
                if self.eval(cond)?.truthy() {
                    self.eval(then_e)
                } else {
                    self.eval(else_e)
                }
            }
            ExprKind::Call { callee, args } => {
                let mut values = Vec::with_capacity(args.len());
                for arg in args {
                    values.push(self.eval(arg)?);
                }
                self.dispatch(callee, values, args)
            }
            ExprKind::Cast { ty, expr: inner } => {
                let v = self.eval(inner)?;
                Ok(match (ty, v) {
                    (t, Value::Float(f)) if t.is_integer() => Value::Int(f as i64),
                    (t, Value::Int(i)) if t.is_float() => Value::Float(i as f64),
                    (Type::Char, Value::Int(i)) => Value::Int(i as i8 as i64),
                    (Type::Int, Value::Int(i)) => Value::Int(i as i32 as i64),
                    (Type::Ptr(inner_ty), Value::Ptr { addr, .. }) => Value::Ptr {
                        addr,
                        stride: self.cells_of(inner_ty),
                        elem: (**inner_ty).clone(),
                    },
                    (Type::Ptr(inner_ty), Value::Int(i)) => Value::Ptr {
                        addr: i as usize,
                        stride: self.cells_of(inner_ty),
                        elem: (**inner_ty).clone(),
                    },
                    (_, v) => v,
                })
            }
            ExprKind::SizeofType(ty) => Ok(Value::Int(self.byte_size(ty) as i64)),
            ExprKind::SizeofExpr(inner) => {
                let ty = inner.ty.clone().unwrap_or(Type::Int);
                Ok(Value::Int(self.byte_size(&ty) as i64))
            }
            ExprKind::IncDec { op, expr: inner } => {
                let (addr, ty) = self.lvalue(inner)?;
                let old = self.load_value(addr, &ty)?;
                let delta = Value::Int(op.delta());
                let new = self.binary(BinOp::Add, old.clone(), delta)?;
                self.store_value(addr, &ty, new.clone())?;
                Ok(if op.is_post() { old } else { new })
            }
            ExprKind::Comma(lhs, rhs) => {
                self.eval(lhs)?;
                self.eval(rhs)
            }
        }
    }

    fn byte_size(&self, ty: &Type) -> usize {
        match ty {
            Type::Struct(name) => minic::sema::struct_size(self.unit, name).unwrap_or(0),
            Type::Array(inner, n) => self.byte_size(inner) * n,
            other => other.size().unwrap_or(8),
        }
    }

    fn unary(&self, op: UnOp, v: Value) -> Result<Value, SgxError> {
        Ok(match (op, v) {
            (UnOp::Plus, v) => v,
            (UnOp::Neg, Value::Int(i)) => Value::Int(i.wrapping_neg()),
            (UnOp::Neg, Value::Float(f)) => Value::Float(-f),
            (UnOp::Not, v) => Value::Int(i64::from(!v.truthy())),
            (UnOp::BitNot, Value::Int(i)) => Value::Int(!i),
            (op, v) => return Err(self.fault(format!("bad unary {op} on {v:?}"))),
        })
    }

    fn binary(&self, op: BinOp, a: Value, b: Value) -> Result<Value, SgxError> {
        use Value::*;
        // pointer arithmetic & comparison
        match (&a, &b) {
            (Ptr { addr, stride, elem }, Int(n)) if matches!(op, BinOp::Add | BinOp::Sub) => {
                let n = if op == BinOp::Sub { -n } else { *n };
                let target = *addr as i64 + n * *stride as i64;
                if target < 0 {
                    return Err(self.fault("pointer arithmetic underflow"));
                }
                return Ok(Ptr {
                    addr: target as usize,
                    stride: *stride,
                    elem: elem.clone(),
                });
            }
            (Int(n), Ptr { addr, stride, elem }) if op == BinOp::Add => {
                return Ok(Ptr {
                    addr: (*addr as i64 + n * *stride as i64) as usize,
                    stride: *stride,
                    elem: elem.clone(),
                });
            }
            (
                Ptr {
                    addr: a1, stride, ..
                },
                Ptr { addr: a2, .. },
            ) => {
                let result = match op {
                    BinOp::Sub => (*a1 as i64 - *a2 as i64) / (*stride).max(1) as i64,
                    BinOp::Eq => i64::from(a1 == a2),
                    BinOp::Ne => i64::from(a1 != a2),
                    BinOp::Lt => i64::from(a1 < a2),
                    BinOp::Le => i64::from(a1 <= a2),
                    BinOp::Gt => i64::from(a1 > a2),
                    BinOp::Ge => i64::from(a1 >= a2),
                    _ => return Err(self.fault(format!("bad pointer operation {op}"))),
                };
                return Ok(Int(result));
            }
            _ => {}
        }
        // float contamination
        if matches!(a, Float(_)) || matches!(b, Float(_)) {
            let x = a
                .as_float()
                .ok_or_else(|| self.fault("float op on pointer"))?;
            let y = b
                .as_float()
                .ok_or_else(|| self.fault("float op on pointer"))?;
            let v = match op {
                BinOp::Add => return Ok(Float(x + y)),
                BinOp::Sub => return Ok(Float(x - y)),
                BinOp::Mul => return Ok(Float(x * y)),
                BinOp::Div => return Ok(Float(x / y)),
                BinOp::Rem => return Ok(Float(x % y)),
                BinOp::Lt => x < y,
                BinOp::Le => x <= y,
                BinOp::Gt => x > y,
                BinOp::Ge => x >= y,
                BinOp::Eq => x == y,
                BinOp::Ne => x != y,
                other => return Err(self.fault(format!("bad float operation {other}"))),
            };
            return Ok(Int(i64::from(v)));
        }
        let x = a.as_int().ok_or_else(|| self.fault("pointer in int op"))?;
        let y = b.as_int().ok_or_else(|| self.fault("pointer in int op"))?;
        let v = match op {
            BinOp::Add => x.wrapping_add(y),
            BinOp::Sub => x.wrapping_sub(y),
            BinOp::Mul => x.wrapping_mul(y),
            BinOp::Div => {
                if y == 0 {
                    return Err(self.fault("division by zero"));
                }
                x.wrapping_div(y)
            }
            BinOp::Rem => {
                if y == 0 {
                    return Err(self.fault("remainder by zero"));
                }
                x.wrapping_rem(y)
            }
            BinOp::Shl => x.wrapping_shl((y & 63) as u32),
            BinOp::Shr => x.wrapping_shr((y & 63) as u32),
            BinOp::Lt => i64::from(x < y),
            BinOp::Le => i64::from(x <= y),
            BinOp::Gt => i64::from(x > y),
            BinOp::Ge => i64::from(x >= y),
            BinOp::Eq => i64::from(x == y),
            BinOp::Ne => i64::from(x != y),
            BinOp::BitAnd => x & y,
            BinOp::BitXor => x ^ y,
            BinOp::BitOr => x | y,
            BinOp::LogAnd => i64::from(x != 0 && y != 0),
            BinOp::LogOr => i64::from(x != 0 || y != 0),
        };
        Ok(Int(v))
    }

    fn next_rand(&mut self) -> i64 {
        self.rng = self
            .rng
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((self.rng >> 33) & 0x7FFF_FFFF) as i64
    }

    fn dispatch(
        &mut self,
        callee: &str,
        values: Vec<Value>,
        _args: &[Expr],
    ) -> Result<Value, SgxError> {
        if self
            .unit
            .function(callee)
            .map(|f| f.body.is_some())
            .unwrap_or(false)
        {
            return Ok(self.call(callee, values)?.unwrap_or(Value::Int(0)));
        }
        // builtins
        let float1 = |vals: &[Value], this: &Interp<'_>| -> Result<f64, SgxError> {
            vals.first()
                .and_then(Value::as_float)
                .ok_or_else(|| this.fault(format!("`{callee}` needs a numeric argument")))
        };
        match callee {
            "sqrt" | "sqrtf" => Ok(Value::Float(float1(&values, self)?.sqrt())),
            "fabs" | "fabsf" => Ok(Value::Float(float1(&values, self)?.abs())),
            "exp" => Ok(Value::Float(float1(&values, self)?.exp())),
            "log" => Ok(Value::Float(float1(&values, self)?.ln())),
            "floor" => Ok(Value::Float(float1(&values, self)?.floor())),
            "ceil" => Ok(Value::Float(float1(&values, self)?.ceil())),
            "sin" => Ok(Value::Float(float1(&values, self)?.sin())),
            "cos" => Ok(Value::Float(float1(&values, self)?.cos())),
            "pow" => {
                let a = float1(&values, self)?;
                let b = values
                    .get(1)
                    .and_then(Value::as_float)
                    .ok_or_else(|| self.fault("`pow` needs two arguments"))?;
                Ok(Value::Float(a.powf(b)))
            }
            "abs" => Ok(Value::Int(
                values
                    .first()
                    .and_then(Value::as_int)
                    .ok_or_else(|| self.fault("`abs` needs an int"))?
                    .abs(),
            )),
            "rand" => Ok(Value::Int(self.next_rand())),
            "srand" => {
                let seed = values.first().and_then(Value::as_int).unwrap_or(0);
                self.seed_rng(seed as u64);
                Ok(Value::Int(0))
            }
            "printf" => self.do_printf(&values),
            "puts" => {
                if let Some(Value::Ptr { addr, .. }) = values.first() {
                    let text = self.read_cstr(*addr)?;
                    self.output.push_str(&text);
                    self.output.push('\n');
                }
                Ok(Value::Int(0))
            }
            "putchar" => {
                if let Some(c) = values.first().and_then(Value::as_int) {
                    self.output.push(c as u8 as char);
                }
                Ok(Value::Int(0))
            }
            "strlen" => {
                let Some(Value::Ptr { addr, .. }) = values.first() else {
                    return Err(self.fault("`strlen` needs a pointer"));
                };
                Ok(Value::Int(self.read_cstr(*addr)?.len() as i64))
            }
            "memcpy" => {
                let (dst, src, n) = self.three_ptr_args(&values, callee)?;
                for i in 0..n {
                    let w = self.mem[src + i];
                    self.mem[dst + i] = w;
                }
                Ok(values[0].clone())
            }
            "memset" => {
                let Some(Value::Ptr { addr, .. }) = values.first() else {
                    return Err(self.fault("`memset` needs a pointer"));
                };
                let byte = values.get(1).and_then(Value::as_int).unwrap_or(0);
                let n = values.get(2).and_then(Value::as_int).unwrap_or(0) as usize;
                if addr + n > self.mem.len() {
                    return Err(self.fault("memset out of bounds"));
                }
                for i in 0..n {
                    self.mem[addr + i] = Word::Int(byte);
                }
                Ok(values[0].clone())
            }
            "malloc" | "calloc" => {
                let n = values.first().and_then(Value::as_int).unwrap_or(0) as usize;
                let addr = self.alloc_cells(n.max(1));
                if callee == "calloc" {
                    for i in 0..n {
                        self.mem[addr + i] = Word::Int(0);
                    }
                }
                Ok(Value::Ptr {
                    addr,
                    stride: 1,
                    elem: Type::Char,
                })
            }
            "free" => Ok(Value::Int(0)),
            "sgx_read_rand" => {
                let Some(Value::Ptr { addr, .. }) = values.first() else {
                    return Err(self.fault("`sgx_read_rand` needs a buffer"));
                };
                let n = values.get(1).and_then(Value::as_int).unwrap_or(0) as usize;
                for i in 0..n {
                    let r = self.next_rand();
                    if addr + i >= self.mem.len() {
                        return Err(self.fault("sgx_read_rand out of bounds"));
                    }
                    self.mem[addr + i] = Word::Int(r & 0xFF);
                }
                Ok(Value::Int(0))
            }
            "ipp_aes_decrypt" | "sgx_rijndael128GCM_decrypt" => {
                self.ipp_cipher(&values, callee, false)
            }
            "ipp_aes_encrypt" | "sgx_rijndael128GCM_encrypt" => {
                self.ipp_cipher(&values, callee, true)
            }
            other => {
                // A prototype without a body is an OCALL: dispatch to the
                // untrusted host, which observes the arguments — and which
                // may fail per the session's fault plan.
                if self.unit.function(other).is_some() {
                    let mut span = self.telemetry.begin("ocall", self.current_ecall);
                    if let Some(span) = span.as_mut() {
                        span.field("name", other);
                        span.field("args", values.len() as u64);
                    }
                    self.telemetry.counter(telemetry::names::SGX_OCALLS, 1);
                    if let Some(index) = self
                        .faults
                        .as_mut()
                        .and_then(|faults| faults.fail_this_ocall())
                    {
                        self.telemetry.counter(telemetry::names::SGX_FAULTS, 1);
                        self.telemetry.event("fault", self.current_ecall, |fields| {
                            fields.push(("kind", "fail_ocall".into()));
                            fields.push(("ocall", other.into()));
                            fields.push(("index", (index as u64).into()));
                        });
                        if let Some(mut span) = span {
                            span.field("ok", false);
                            self.telemetry.emit(span);
                        }
                        return Err(SgxError::Ocall {
                            name: other.to_string(),
                            index,
                        });
                    }
                    self.ocalls.push((other.to_string(), values));
                    if let Some(mut span) = span {
                        span.field("ok", true);
                        self.telemetry.emit(span);
                    }
                    return Ok(Value::Int(0));
                }
                Err(self.fault(format!("call to unknown function `{other}`")))
            }
        }
    }

    fn three_ptr_args(
        &self,
        values: &[Value],
        callee: &str,
    ) -> Result<(usize, usize, usize), SgxError> {
        let (Some(Value::Ptr { addr: dst, .. }), Some(Value::Ptr { addr: src, .. })) =
            (values.first(), values.get(1))
        else {
            return Err(self.fault(format!("`{callee}` needs two pointers")));
        };
        let n = values.get(2).and_then(Value::as_int).unwrap_or(0) as usize;
        if dst + n > self.mem.len() || src + n > self.mem.len() {
            return Err(self.fault(format!("`{callee}` out of bounds")));
        }
        Ok((*dst, *src, n))
    }

    /// The IPP-style cipher builtins: `f(dst, src, n)` over byte cells.
    fn ipp_cipher(
        &mut self,
        values: &[Value],
        callee: &str,
        encrypt: bool,
    ) -> Result<Value, SgxError> {
        let (dst, src, n) = self.three_ptr_args(values, callee)?;
        let mut bytes = Vec::with_capacity(n);
        for i in 0..n {
            match self.mem[src + i] {
                Word::Int(v) => bytes.push(v as u8),
                Word::Float(_) => return Err(self.fault("cipher over non-byte cells")),
                Word::Uninit => bytes.push(0),
            }
        }
        let key = self.crypto_key;
        let out = if encrypt {
            crypto::encrypt(&key, 0, &bytes)
        } else {
            crypto::decrypt(&key, 0, &bytes)
        };
        for (i, b) in out.iter().enumerate() {
            self.mem[dst + i] = Word::Int(i64::from(*b));
        }
        Ok(Value::Int(0))
    }

    fn read_cstr(&self, addr: usize) -> Result<String, SgxError> {
        let mut out = String::new();
        let mut i = addr;
        loop {
            match self.mem.get(i) {
                Some(Word::Int(0)) | None => return Ok(out),
                Some(Word::Int(v)) => out.push(*v as u8 as char),
                Some(_) => return Ok(out),
            }
            i += 1;
            if out.len() > 1 << 20 {
                return Err(self.fault("unterminated string"));
            }
        }
    }

    fn do_printf(&mut self, values: &[Value]) -> Result<Value, SgxError> {
        let Some(Value::Ptr { addr, .. }) = values.first() else {
            return Err(self.fault("`printf` needs a format string"));
        };
        let format = self.read_cstr(*addr)?;
        let mut args = values[1..].iter();
        let mut chars = format.chars().peekable();
        let mut out = String::new();
        while let Some(c) = chars.next() {
            if c != '%' {
                out.push(c);
                continue;
            }
            // skip width/precision modifiers
            let mut spec = String::new();
            while let Some(&next) = chars.peek() {
                spec.push(next);
                chars.next();
                if next.is_ascii_alphabetic() || next == '%' {
                    break;
                }
            }
            match spec.chars().last() {
                Some('%') => out.push('%'),
                Some('d') | Some('i') | Some('u') | Some('x') => {
                    let v = args.next().and_then(Value::as_int).unwrap_or(0);
                    out.push_str(&v.to_string());
                }
                Some('f') | Some('g') | Some('e') => {
                    let v = args.next().and_then(Value::as_float).unwrap_or(0.0);
                    out.push_str(&format!("{v:.6}"));
                }
                Some('c') => {
                    let v = args.next().and_then(Value::as_int).unwrap_or(0);
                    out.push(v as u8 as char);
                }
                Some('s') => {
                    if let Some(Value::Ptr { addr, .. }) = args.next() {
                        let s = self.read_cstr(*addr)?;
                        out.push_str(&s);
                    }
                }
                _ => out.push_str(&spec),
            }
        }
        let written = out.len() as i64;
        self.output.push_str(&out);
        Ok(Value::Int(written))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str, entry: &str, args: Vec<Value>) -> (Option<Value>, String) {
        let unit = minic::parse(src).expect("parses");
        let mut interp = Interp::new(&unit).expect("inits");
        let ret = interp.call(entry, args).expect("runs");
        (ret, interp.output.clone())
    }

    #[test]
    fn arithmetic_and_control_flow() {
        let (ret, _) = run(
            "int f(int n) { int s = 0; for (int i = 1; i <= n; i++) s += i; return s; }",
            "f",
            vec![Value::Int(10)],
        );
        assert_eq!(ret, Some(Value::Int(55)));
    }

    #[test]
    fn arrays_and_pointers() {
        let (ret, _) = run(
            "int f() { int xs[4]; for (int i = 0; i < 4; i++) xs[i] = i * i; int *p = xs + 1; return *p + p[2]; }",
            "f",
            vec![],
        );
        assert_eq!(ret, Some(Value::Int(1 + 9)));
    }

    #[test]
    fn structs_and_fields() {
        let (ret, _) = run(
            "struct pt { int x; int y; };\nint f() { struct pt p; p.x = 3; p.y = 4; struct pt *q = &p; return q->x * q->x + q->y * q->y; }",
            "f",
            vec![],
        );
        assert_eq!(ret, Some(Value::Int(25)));
    }

    #[test]
    fn floats_and_math_builtins() {
        let (ret, _) = run(
            "double f(double x) { return sqrt(x) + fabs(0.0 - 1.5); }",
            "f",
            vec![Value::Float(16.0)],
        );
        assert_eq!(ret, Some(Value::Float(5.5)));
    }

    #[test]
    fn printf_capture() {
        let (_, out) = run(
            r#"int f() { printf("x=%d y=%f s=%s\n", 42, 2.5, "hi"); return 0; }"#,
            "f",
            vec![],
        );
        assert_eq!(out, "x=42 y=2.500000 s=hi\n");
    }

    #[test]
    fn recursion() {
        let (ret, _) = run(
            "int fact(int n) { if (n <= 1) return 1; return n * fact(n - 1); }",
            "fact",
            vec![Value::Int(6)],
        );
        assert_eq!(ret, Some(Value::Int(720)));
    }

    #[test]
    fn globals_with_initializers() {
        let (ret, _) = run(
            "int base = 40;\nint table[3] = {1, 2, 3};\nint f() { return base + table[2] - 1; }",
            "f",
            vec![],
        );
        assert_eq!(ret, Some(Value::Int(42)));
    }

    #[test]
    fn division_by_zero_faults() {
        let unit = minic::parse("int f(int n) { return 1 / n; }").unwrap();
        let mut interp = Interp::new(&unit).unwrap();
        let err = interp.call("f", vec![Value::Int(0)]).unwrap_err();
        assert!(err.to_string().contains("division by zero"));
    }

    #[test]
    fn out_of_bounds_faults() {
        let unit = minic::parse("int f(int *p) { return p[1000000]; }").unwrap();
        let mut interp = Interp::new(&unit).unwrap();
        let buf = interp.alloc_buffer(&[Word::Int(1)], Type::Int);
        let err = interp.call("f", vec![buf]).unwrap_err();
        assert!(err.to_string().contains("out-of-bounds"));
    }

    #[test]
    fn infinite_loop_burns_fuel() {
        let unit = minic::parse("int f() { while (1) { } return 0; }").unwrap();
        let mut interp = Interp::new(&unit).unwrap();
        interp.fuel = 10_000;
        let err = interp.call("f", vec![]).unwrap_err();
        assert!(err.to_string().contains("fuel"));
    }

    #[test]
    fn deterministic_rand() {
        let src = "int f() { srand(7); return rand(); }";
        let (a, _) = run(src, "f", vec![]);
        let (b, _) = run(src, "f", vec![]);
        assert_eq!(a, b);
    }

    #[test]
    fn memcpy_and_memset() {
        let (ret, _) = run(
            "int f() { char a[4]; char b[4]; memset(a, 7, 4); memcpy(b, a, 4); return b[0] + b[3]; }",
            "f",
            vec![],
        );
        assert_eq!(ret, Some(Value::Int(14)));
    }

    #[test]
    fn cipher_round_trip_in_c() {
        let (ret, _) = run(
            "int f() { char msg[4]; char ct[4]; char pt[4];\n  msg[0] = 10; msg[1] = 20; msg[2] = 30; msg[3] = 40;\n  ipp_aes_encrypt(ct, msg, 4);\n  ipp_aes_decrypt(pt, ct, 4);\n  return pt[0] + pt[1] + pt[2] + pt[3]; }",
            "f",
            vec![],
        );
        assert_eq!(ret, Some(Value::Int(100)));
    }

    #[test]
    fn two_dimensional_arrays() {
        let (ret, _) = run(
            "int f() { int m[2][3]; for (int i = 0; i < 2; i++) for (int j = 0; j < 3; j++) m[i][j] = i * 3 + j; return m[1][2]; }",
            "f",
            vec![],
        );
        assert_eq!(ret, Some(Value::Int(5)));
    }

    #[test]
    fn struct_arrays() {
        let (ret, _) = run(
            "struct p { int x; double w; };\nint f() { struct p ps[3]; ps[2].x = 9; ps[2].w = 0.5; return ps[2].x; }",
            "f",
            vec![],
        );
        assert_eq!(ret, Some(Value::Int(9)));
    }
}
