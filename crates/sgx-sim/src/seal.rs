//! Sealed storage: encrypt-then-MAC under a measurement-derived key.
//!
//! Mirrors `sgx_seal_data`/`sgx_unseal_data`: data sealed by an enclave can
//! only be unsealed by an enclave with the same measurement (MRENCLAVE
//! policy).

use serde::{Deserialize, Serialize};

use crate::crypto::{self, Key};
use crate::error::SgxError;

/// An opaque sealed blob.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SealedBlob {
    nonce: u64,
    ciphertext: Vec<u8>,
    tag: u64,
}

impl SealedBlob {
    /// Size of the blob payload in bytes.
    pub fn len(&self) -> usize {
        self.ciphertext.len()
    }

    /// Whether the payload is empty.
    pub fn is_empty(&self) -> bool {
        self.ciphertext.is_empty()
    }
}

/// Seals `plaintext` under the enclave sealing key.
pub fn seal(sealing_key: &Key, nonce: u64, plaintext: &[u8]) -> SealedBlob {
    let ciphertext = crypto::encrypt(sealing_key, nonce, plaintext);
    let tag = crypto::mac(sealing_key, nonce, &ciphertext);
    SealedBlob {
        nonce,
        ciphertext,
        tag,
    }
}

/// Flips one ciphertext bit (or, for empty payloads, a tag bit): the blob
/// keeps its shape but fails MAC verification — the fault-injection
/// equivalent of storage corruption.
pub(crate) fn corrupt(blob: &mut SealedBlob) {
    match blob.ciphertext.first_mut() {
        Some(byte) => *byte ^= 0x01,
        None => blob.tag ^= 1,
    }
}

/// Unseals a blob, verifying integrity and key possession.
///
/// # Errors
///
/// Returns [`SgxError::Sealing`] if the MAC does not verify (wrong enclave
/// measurement or corrupted blob).
pub fn unseal(sealing_key: &Key, blob: &SealedBlob) -> Result<Vec<u8>, SgxError> {
    if !crypto::mac_verify(sealing_key, blob.nonce, &blob.ciphertext, blob.tag) {
        return Err(SgxError::Sealing(
            "MAC verification failed (wrong enclave or corrupted blob)".into(),
        ));
    }
    Ok(crypto::decrypt(sealing_key, blob.nonce, &blob.ciphertext))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::crypto::derive_key;

    fn key(measurement: u64) -> Key {
        derive_key(b"platform-rootkey", &measurement.to_le_bytes())
    }

    #[test]
    fn seal_round_trip() {
        let k = key(0x1234);
        let blob = seal(&k, 9, b"model weights");
        assert_eq!(unseal(&k, &blob).unwrap(), b"model weights");
    }

    #[test]
    fn different_measurement_cannot_unseal() {
        let blob = seal(&key(0x1234), 9, b"model weights");
        let err = unseal(&key(0x9999), &blob).unwrap_err();
        assert!(matches!(err, SgxError::Sealing(_)));
    }

    #[test]
    fn tampered_blob_rejected() {
        let k = key(1);
        let mut blob = seal(&k, 0, b"hello");
        blob.ciphertext[0] ^= 1;
        assert!(unseal(&k, &blob).is_err());
    }

    #[test]
    fn blob_length() {
        let blob = seal(&key(1), 0, b"abc");
        assert_eq!(blob.len(), 3);
        assert!(!blob.is_empty());
    }
}
