//! Error type of the enclave runtime.

use std::fmt;

/// Errors raised by the simulated SGX runtime.
#[derive(Debug, Clone, PartialEq)]
pub enum SgxError {
    /// The enclave source failed to parse/type-check.
    Source(minic::Error),
    /// The EDL interface failed to parse.
    Edl(edl::EdlError),
    /// An ECALL name is not declared in the EDL's trusted section.
    UnknownEcall(String),
    /// The enclave code does not define a declared ECALL.
    MissingEcallBody(String),
    /// Argument marshalling failed (count/size/type mismatch).
    Marshal(String),
    /// The enclave code faulted at runtime.
    Runtime(String),
    /// Seal/unseal failed (wrong enclave or corrupted blob).
    Sealing(String),
    /// Attestation verification failed.
    Attestation(String),
    /// An OCALL failed on the untrusted side (transient — a bounded retry
    /// may succeed; see [`fault`](crate::fault)).
    Ocall {
        /// The OCALL that failed.
        name: String,
        /// Its 0-based index in the session's OCALL sequence.
        index: usize,
    },
}

impl SgxError {
    /// Whether a bounded retry of the failing ECALL may succeed: only
    /// host-side OCALL failures qualify — everything else (marshalling,
    /// enclave faults, sealing) is deterministic and will fail again.
    pub fn is_transient(&self) -> bool {
        matches!(self, SgxError::Ocall { .. })
    }
}

impl fmt::Display for SgxError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SgxError::Source(e) => write!(f, "enclave source: {e}"),
            SgxError::Edl(e) => write!(f, "enclave interface: {e}"),
            SgxError::UnknownEcall(name) => {
                write!(f, "`{name}` is not a declared ECALL")
            }
            SgxError::MissingEcallBody(name) => {
                write!(f, "ECALL `{name}` has no definition in the enclave code")
            }
            SgxError::Marshal(msg) => write!(f, "marshalling: {msg}"),
            SgxError::Runtime(msg) => write!(f, "enclave fault: {msg}"),
            SgxError::Sealing(msg) => write!(f, "sealing: {msg}"),
            SgxError::Attestation(msg) => write!(f, "attestation: {msg}"),
            SgxError::Ocall { name, index } => {
                write!(f, "ocall `{name}` failed (injected fault, ocall #{index})")
            }
        }
    }
}

impl std::error::Error for SgxError {}

impl From<minic::Error> for SgxError {
    fn from(e: minic::Error) -> Self {
        SgxError::Source(e)
    }
}

impl From<edl::EdlError> for SgxError {
    fn from(e: edl::EdlError) -> Self {
        SgxError::Edl(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(SgxError::UnknownEcall("f".into())
            .to_string()
            .contains("not a declared ECALL"));
        assert!(SgxError::Marshal("bad size".into())
            .to_string()
            .contains("bad size"));
    }
}
