//! Mock local/remote attestation.
//!
//! A quote binds an enclave measurement and caller-chosen report data under
//! a platform key. Verification checks the MAC and (optionally) an expected
//! measurement — the structure of SGX remote attestation, minus the EPID
//! cryptography, which is irrelevant to the paper's claims.

use serde::{Deserialize, Serialize};

use crate::crypto::{self, Key};
use crate::error::SgxError;

/// The simulated platform attestation key (one per "machine").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlatformKey(Key);

impl PlatformKey {
    /// Creates a platform key from seed bytes.
    pub fn from_seed(seed: &[u8]) -> Self {
        PlatformKey(crypto::derive_key(b"attestation-root", seed))
    }
}

/// An attestation quote.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Quote {
    /// The enclave measurement being attested.
    pub measurement: u64,
    /// Caller-supplied data bound into the quote (e.g. a key-exchange
    /// public value).
    pub report_data: Vec<u8>,
    signature: u64,
}

/// Produces a quote over `measurement` and `report_data`.
pub fn quote(platform: &PlatformKey, measurement: u64, report_data: &[u8]) -> Quote {
    let signature = crypto::mac(&platform.0, measurement, report_data);
    Quote {
        measurement,
        report_data: report_data.to_vec(),
        signature,
    }
}

/// Verifies a quote against the platform key and an expected measurement.
///
/// # Errors
///
/// Returns [`SgxError::Attestation`] when the signature is invalid or the
/// measurement does not match expectations.
pub fn verify(
    platform: &PlatformKey,
    quote: &Quote,
    expected_measurement: Option<u64>,
) -> Result<(), SgxError> {
    if !crypto::mac_verify(
        &platform.0,
        quote.measurement,
        &quote.report_data,
        quote.signature,
    ) {
        return Err(SgxError::Attestation("invalid quote signature".into()));
    }
    if let Some(expected) = expected_measurement {
        if expected != quote.measurement {
            return Err(SgxError::Attestation(format!(
                "measurement mismatch: expected {expected:#x}, got {:#x}",
                quote.measurement
            )));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quote_verifies() {
        let platform = PlatformKey::from_seed(b"machine-1");
        let q = quote(&platform, 0xABCD, b"dh-public");
        assert!(verify(&platform, &q, Some(0xABCD)).is_ok());
        assert!(verify(&platform, &q, None).is_ok());
    }

    #[test]
    fn wrong_platform_rejected() {
        let q = quote(&PlatformKey::from_seed(b"machine-1"), 1, b"");
        let other = PlatformKey::from_seed(b"machine-2");
        assert!(verify(&other, &q, None).is_err());
    }

    #[test]
    fn tampered_measurement_rejected() {
        let platform = PlatformKey::from_seed(b"m");
        let mut q = quote(&platform, 1, b"data");
        q.measurement = 2;
        assert!(verify(&platform, &q, None).is_err());
    }

    #[test]
    fn measurement_expectation_enforced() {
        let platform = PlatformKey::from_seed(b"m");
        let q = quote(&platform, 7, b"");
        let err = verify(&platform, &q, Some(8)).unwrap_err();
        assert!(err.to_string().contains("mismatch"));
    }
}
