//! Toy cryptographic primitives standing in for the Intel IPP library.
//!
//! These are **simulation-grade, not security-grade**: a xorshift-based
//! stream cipher and an FNV-based MAC. Their role in this repository is
//! purely structural — they give the enclave runtime and the analyzer the
//! same *interfaces* the paper's prototype saw (a decrypt call is the point
//! where ciphertext becomes secret plaintext), and they make the
//! end-to-end examples honest (data really is unreadable outside the
//! enclave without the key).

/// A 128-bit symmetric key.
pub type Key = [u8; 16];

/// Deterministic keystream generator (xorshift64*, seeded from the key and
/// a nonce).
fn keystream(key: &Key, nonce: u64) -> impl Iterator<Item = u8> {
    let mut seed = nonce ^ 0x9E37_79B9_7F4A_7C15;
    for chunk in key.chunks(8) {
        let mut word = [0u8; 8];
        word[..chunk.len()].copy_from_slice(chunk);
        seed = seed.rotate_left(17).wrapping_mul(0x2545_F491_4F6C_DD1D) ^ u64::from_le_bytes(word);
    }
    let mut state = if seed == 0 { 0xDEAD_BEEF } else { seed };
    std::iter::repeat_with(move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 32) as u8
    })
}

/// Encrypts `plaintext` under `key`/`nonce` (XOR stream cipher).
pub fn encrypt(key: &Key, nonce: u64, plaintext: &[u8]) -> Vec<u8> {
    plaintext
        .iter()
        .zip(keystream(key, nonce))
        .map(|(b, k)| b ^ k)
        .collect()
}

/// Decrypts data produced by [`encrypt`] with the same key and nonce.
pub fn decrypt(key: &Key, nonce: u64, ciphertext: &[u8]) -> Vec<u8> {
    // XOR stream: decryption is encryption.
    encrypt(key, nonce, ciphertext)
}

/// A 64-bit MAC (FNV-1a over key ‖ nonce ‖ data).
pub fn mac(key: &Key, nonce: u64, data: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    let mut absorb = |byte: u8| {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    };
    for &b in key {
        absorb(b);
    }
    for b in nonce.to_le_bytes() {
        absorb(b);
    }
    for &b in data {
        absorb(b);
    }
    hash
}

/// Constant-time-ish MAC comparison (simulation courtesy).
pub fn mac_verify(key: &Key, nonce: u64, data: &[u8], tag: u64) -> bool {
    mac(key, nonce, data) ^ tag == 0
}

/// Derives a subkey from a parent key and a label (for sealing).
pub fn derive_key(parent: &Key, label: &[u8]) -> Key {
    let mut out = [0u8; 16];
    let tag = mac(parent, 0x6B64662D_6C616265, label); // "kdf-label"
    let tag2 = mac(parent, tag, label);
    out[..8].copy_from_slice(&tag.to_le_bytes());
    out[8..].copy_from_slice(&tag2.to_le_bytes());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const KEY: Key = *b"0123456789abcdef";

    #[test]
    fn round_trip() {
        let msg = b"training data batch #7";
        let ct = encrypt(&KEY, 42, msg);
        assert_ne!(&ct, msg);
        assert_eq!(decrypt(&KEY, 42, &ct), msg);
    }

    #[test]
    fn wrong_key_garbles() {
        let msg = b"secret";
        let ct = encrypt(&KEY, 1, msg);
        let other: Key = *b"fedcba9876543210";
        assert_ne!(decrypt(&other, 1, &ct), msg);
    }

    #[test]
    fn wrong_nonce_garbles() {
        let msg = b"secret";
        let ct = encrypt(&KEY, 1, msg);
        assert_ne!(decrypt(&KEY, 2, &ct), msg);
    }

    #[test]
    fn mac_detects_tampering() {
        let data = b"ledger";
        let tag = mac(&KEY, 7, data);
        assert!(mac_verify(&KEY, 7, data, tag));
        assert!(!mac_verify(&KEY, 7, b"ledgar", tag));
        assert!(!mac_verify(&KEY, 8, data, tag));
    }

    #[test]
    fn derived_keys_differ_by_label() {
        let a = derive_key(&KEY, b"seal");
        let b = derive_key(&KEY, b"report");
        assert_ne!(a, b);
        assert_eq!(a, derive_key(&KEY, b"seal"));
    }

    #[test]
    fn empty_plaintext() {
        assert!(encrypt(&KEY, 0, &[]).is_empty());
    }
}
