//! The enclave container: lifecycle, measurement, and ECALL dispatch with
//! EDL-driven `[in]`/`[out]` marshalling.

use std::collections::BTreeMap;

use edl::{Direction, EdlFile, Prototype};
use minic::ast::TranslationUnit;
use minic::types::Type;
use telemetry::{PendingSpan, Telemetry};

use crate::attest::{self, PlatformKey, Quote};
use crate::crypto::{self, Key};
use crate::error::SgxError;
use crate::fault::{Fault, FaultPlan, FaultState, RetryPolicy, Supervision};
use crate::interp::{Interp, Value, Word};
use crate::seal::{self, SealedBlob};

/// A host-side argument for an ECALL.
#[derive(Debug, Clone, PartialEq)]
pub enum EcallArg {
    /// A scalar integer (passed by value).
    Int(i64),
    /// A scalar double (passed by value).
    Float(f64),
    /// An `[in]` buffer: copied into enclave memory before the call.
    In(Vec<Word>),
    /// An `[out]` buffer of the given length: allocated inside, copied out
    /// after the call.
    Out(usize),
    /// An `[in, out]` buffer.
    InOut(Vec<Word>),
}

/// The host-visible result of an ECALL.
#[derive(Debug, Clone, PartialEq)]
pub struct EcallResult {
    /// The ECALL's return value (observable by the host).
    pub ret: Option<Value>,
    /// Contents of every `[out]`/`[in, out]` buffer after the call, keyed
    /// by parameter name.
    pub outs: BTreeMap<String, Vec<Word>>,
    /// Anything the enclave printed (a debug channel; observable).
    pub output: String,
    /// OCALLs the enclave made (name, arguments) — observable by the host.
    pub ocalls: Vec<(String, Vec<Value>)>,
}

/// A loaded enclave instance.
#[derive(Debug)]
pub struct Enclave {
    unit: TranslationUnit,
    edl: EdlFile,
    measurement: u64,
    sealing_key: Key,
    telemetry: Telemetry,
}

impl Enclave {
    /// Builds an enclave from Mini-C source and its EDL interface,
    /// computing the measurement (hash over both, the moral equivalent of
    /// MRENCLAVE).
    ///
    /// # Errors
    ///
    /// Returns [`SgxError`] if either input fails to parse, or if a
    /// declared public ECALL has no definition in the source.
    pub fn load(source: &str, edl_text: &str) -> Result<Enclave, SgxError> {
        let unit = minic::parse(source)?;
        let edl_file = edl::parse_edl(edl_text)?;
        for proto in &edl_file.trusted {
            let defined = unit
                .function(&proto.name)
                .map(|f| f.body.is_some())
                .unwrap_or(false);
            if !defined {
                return Err(SgxError::MissingEcallBody(proto.name.clone()));
            }
        }
        let measurement = measure(source, edl_text);
        let sealing_key = crypto::derive_key(b"sgx-sim-sealroot", &measurement.to_le_bytes());
        Ok(Enclave {
            unit,
            edl: edl_file,
            measurement,
            sealing_key,
            telemetry: Telemetry::disabled(),
        })
    }

    /// Attaches a telemetry handle: every subsequent ECALL/OCALL boundary
    /// crossing emits a span (with `[out]`-copy byte counts and fault
    /// firings as events). Purely observational — results are identical
    /// with telemetry on or off.
    #[must_use]
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Enclave {
        self.telemetry = telemetry;
        self
    }

    /// The enclave measurement (MRENCLAVE analogue).
    pub fn measurement(&self) -> u64 {
        self.measurement
    }

    /// The parsed trusted interface.
    pub fn edl(&self) -> &EdlFile {
        &self.edl
    }

    /// The parsed enclave code (what PrivacyScope analyzes).
    pub fn unit(&self) -> &TranslationUnit {
        &self.unit
    }

    /// Dispatches an ECALL through the enclave boundary.
    ///
    /// Marshalling follows the EDL: `[in]` buffers are copied into enclave
    /// memory (the host keeps no alias), `[out]` buffers are allocated
    /// inside and copied back after the call, scalars pass by value.
    ///
    /// # Errors
    ///
    /// Returns [`SgxError`] for unknown ECALLs, argument mismatches, or
    /// runtime faults inside the enclave.
    pub fn ecall(&self, name: &str, args: &[EcallArg]) -> Result<EcallResult, SgxError> {
        let mut interp = Interp::new(&self.unit)?;
        self.dispatch(&mut interp, name, args)
    }

    /// Opens a stateful session: enclave globals persist across its
    /// ECALLs, as they do in a real loaded enclave.
    pub fn session(&self) -> Result<Session<'_>, SgxError> {
        Ok(Session {
            enclave: self,
            interp: Interp::new(&self.unit)?,
            retry: RetryPolicy::default(),
            retries: 0,
        })
    }

    /// Wraps [`Enclave::dispatch_inner`] in an `ecall` boundary span:
    /// telemetry is threaded into the interpreter for the duration of the
    /// call so OCALL spans can parent themselves to this crossing, and the
    /// span closes with the `[out]`-copy byte count and OCALL tally.
    fn dispatch(
        &self,
        interp: &mut Interp<'_>,
        name: &str,
        args: &[EcallArg],
    ) -> Result<EcallResult, SgxError> {
        let mut span = self.telemetry.begin("ecall", None);
        if let Some(span) = span.as_mut() {
            span.field("name", name);
        }
        interp.telemetry = self.telemetry.clone();
        interp.current_ecall = span.as_ref().map(PendingSpan::id);
        let result = self.dispatch_inner(interp, name, args);
        interp.current_ecall = None;
        self.telemetry.counter(telemetry::names::SGX_ECALLS, 1);
        if let Some(mut span) = span {
            span.field("ok", result.is_ok());
            if let Ok(result) = &result {
                let out_bytes: usize = result
                    .outs
                    .iter()
                    .map(|(param, words)| words.len() * self.out_elem_bytes(name, param))
                    .sum();
                span.field("out_bytes", out_bytes as u64);
                span.field("ocalls", result.ocalls.len() as u64);
                self.telemetry
                    .counter(telemetry::names::SGX_OUT_BYTES, out_bytes as u64);
            }
            self.telemetry.emit(span);
        }
        result
    }

    /// Byte width of one element of the named `[out]` parameter (1 when
    /// the prototype or parameter is unknown — telemetry only, never
    /// load-bearing).
    fn out_elem_bytes(&self, ecall: &str, param: &str) -> usize {
        self.edl
            .ecall(ecall)
            .and_then(|proto| proto.params.iter().find(|p| p.name == param))
            .and_then(|p| pointee_type(&p.c_type).size())
            .unwrap_or(1)
            .max(1)
    }

    fn dispatch_inner(
        &self,
        interp: &mut Interp<'_>,
        name: &str,
        args: &[EcallArg],
    ) -> Result<EcallResult, SgxError> {
        let proto = self
            .edl
            .ecall(name)
            .ok_or_else(|| SgxError::UnknownEcall(name.to_string()))?
            .clone();
        if proto.params.len() != args.len() {
            return Err(SgxError::Marshal(format!(
                "`{name}` declares {} parameter(s), got {}",
                proto.params.len(),
                args.len()
            )));
        }

        // Fault hooks: an injected delay fires before the body runs, the
        // ECALL index keys copy-out truncations below.
        let (ecall_index, delay) = match interp.faults.as_mut() {
            Some(faults) => {
                let (index, delay) = faults.begin_ecall();
                (Some(index), delay)
            }
            None => (None, None),
        };
        if let Some(latency) = delay {
            // Injected latency is still subject to the session's deadline/
            // cancel supervision — a fault plan must not sleep a supervised
            // job past its budget.
            let curtailed = interp.supervision.bounded_sleep(latency);
            self.telemetry.counter(telemetry::names::SGX_FAULTS, 1);
            self.telemetry
                .event("fault", interp.current_ecall, |fields| {
                    fields.push(("kind", "delay_ecall".into()));
                    fields.push(("delay_us", (latency.as_micros() as u64).into()));
                    fields.push(("curtailed", curtailed.into()));
                });
            if curtailed {
                interp
                    .ledger
                    .record(symexec::Degradation::RetryCurtailed { count: 1 });
            }
        }

        let mut values = Vec::with_capacity(args.len());
        let mut out_ptrs: Vec<(String, usize, usize)> = Vec::new(); // (param, addr, len)

        for (param, arg) in proto.params.iter().zip(args) {
            let elem = pointee_type(&param.c_type);
            match (arg, param.is_pointer()) {
                (EcallArg::Int(v), false) => values.push(Value::Int(*v)),
                (EcallArg::Float(v), false) => values.push(Value::Float(*v)),
                (EcallArg::In(words), true) => {
                    if !param.attributes.is_in() {
                        return Err(SgxError::Marshal(format!(
                            "parameter `{}` is not [in]",
                            param.name
                        )));
                    }
                    self.check_bound(&proto, args, param, words.len())?;
                    values.push(interp.alloc_buffer(words, elem));
                }
                (EcallArg::Out(len), true) => {
                    if !param.attributes.is_out() {
                        return Err(SgxError::Marshal(format!(
                            "parameter `{}` is not [out]",
                            param.name
                        )));
                    }
                    self.check_bound(&proto, args, param, *len)?;
                    let zeros = vec![Word::Int(0); *len];
                    let ptr = interp.alloc_buffer(&zeros, elem);
                    let Value::Ptr { addr, .. } = ptr else {
                        unreachable!("alloc_buffer returns a pointer")
                    };
                    out_ptrs.push((param.name.clone(), addr, *len));
                    values.push(Value::Ptr {
                        addr,
                        stride: 1,
                        elem: pointee_type(&param.c_type),
                    });
                }
                (EcallArg::InOut(words), true) => {
                    if !(param.attributes.is_in() && param.attributes.is_out()) {
                        return Err(SgxError::Marshal(format!(
                            "parameter `{}` is not [in, out]",
                            param.name
                        )));
                    }
                    self.check_bound(&proto, args, param, words.len())?;
                    let ptr = interp.alloc_buffer(words, elem);
                    let Value::Ptr { addr, .. } = ptr.clone() else {
                        unreachable!("alloc_buffer returns a pointer")
                    };
                    out_ptrs.push((param.name.clone(), addr, words.len()));
                    values.push(ptr);
                }
                (arg, is_ptr) => {
                    return Err(SgxError::Marshal(format!(
                        "argument {arg:?} does not fit parameter `{}` (pointer: {is_ptr})",
                        param.name
                    )));
                }
            }
        }

        let ret = interp.call(name, values)?;
        let mut outs = BTreeMap::new();
        for (param, addr, mut len) in out_ptrs {
            if let (Some(index), Some(faults)) = (ecall_index, interp.faults.as_mut()) {
                if let Some(keep) = faults.truncation(index, &param) {
                    let kept = keep.min(len);
                    if kept < len {
                        self.telemetry.counter(telemetry::names::SGX_FAULTS, 1);
                        self.telemetry
                            .event("fault", interp.current_ecall, |fields| {
                                fields.push(("kind", "truncate_out".into()));
                                fields.push(("param", param.as_str().into()));
                                fields.push(("kept", (kept as u64).into()));
                                fields.push(("full", (len as u64).into()));
                            });
                    }
                    len = kept;
                }
            }
            outs.insert(param, interp.read_buffer(addr, len)?);
        }
        Ok(EcallResult {
            ret,
            outs,
            output: std::mem::take(&mut interp.output),
            ocalls: std::mem::take(&mut interp.ocalls),
        })
    }

    /// Validates a buffer length against the EDL `size=`/`count=` bound.
    fn check_bound(
        &self,
        proto: &Prototype,
        args: &[EcallArg],
        param: &edl::ast::Param,
        actual: usize,
    ) -> Result<(), SgxError> {
        // `count=` is in elements; `size=` is in bytes and must be scaled
        // by the element width.
        let (bound, bytes) = match (&param.attributes.count, &param.attributes.size) {
            (Some(count), _) => (count, false),
            (None, Some(size)) => (size, true),
            (None, None) => return Ok(()),
        };
        let expected = match bound {
            edl::ast::Bound::Const(n) => *n as usize,
            edl::ast::Bound::Param(name) => {
                let index = proto
                    .params
                    .iter()
                    .position(|p| p.name == *name)
                    .ok_or_else(|| {
                        SgxError::Marshal(format!("bound parameter `{name}` not found"))
                    })?;
                match args.get(index) {
                    Some(EcallArg::Int(v)) if *v >= 0 => *v as usize,
                    other => {
                        return Err(SgxError::Marshal(format!(
                            "bound parameter `{name}` must be a non-negative scalar, got {other:?}"
                        )))
                    }
                }
            }
        };
        let expected = if bytes {
            let elem_bytes = pointee_type(&param.c_type).size().unwrap_or(1).max(1);
            expected / elem_bytes
        } else {
            expected
        };
        if actual != expected {
            return Err(SgxError::Marshal(format!(
                "buffer `{}` has {actual} element(s), EDL bound says {expected}",
                param.name
            )));
        }
        Ok(())
    }

    /// Seals data under this enclave's identity.
    pub fn seal(&self, nonce: u64, plaintext: &[u8]) -> SealedBlob {
        seal::seal(&self.sealing_key, nonce, plaintext)
    }

    /// Unseals data sealed by an enclave with the same measurement.
    ///
    /// # Errors
    ///
    /// Returns [`SgxError::Sealing`] for blobs sealed by other enclaves.
    pub fn unseal(&self, blob: &SealedBlob) -> Result<Vec<u8>, SgxError> {
        seal::unseal(&self.sealing_key, blob)
    }

    /// Produces an attestation quote bound to `report_data`.
    pub fn quote(&self, platform: &PlatformKey, report_data: &[u8]) -> Quote {
        attest::quote(platform, self.measurement, report_data)
    }
}

/// A stateful enclave session: globals persist across ECALLs (like a
/// loaded enclave between `sgx_create_enclave` and destruction), and each
/// [`Session::ecall`] drains only the output produced since the last one.
///
/// A session can run under a deterministic [`FaultPlan`]
/// ([`Session::with_faults`]) and absorb transient failures with a bounded
/// [`RetryPolicy`] ([`Session::with_retry`]).
#[derive(Debug)]
pub struct Session<'e> {
    enclave: &'e Enclave,
    interp: Interp<'e>,
    retry: RetryPolicy,
    retries: usize,
}

impl<'e> Session<'e> {
    /// Runs this session under a deterministic fault-injection plan.
    pub fn with_faults(mut self, plan: FaultPlan) -> Session<'e> {
        self.interp.faults = Some(FaultState::new(plan));
        self
    }

    /// Sets the untrusted-side retry policy for transient ECALL failures.
    pub fn with_retry(mut self, policy: RetryPolicy) -> Session<'e> {
        self.retry = policy;
        self
    }

    /// Bounds the session's untrusted-side sleeps (retry backoff, injected
    /// delays) by a deadline and/or cancel token. Callers running the
    /// session on behalf of a supervised analysis pass the engine's budget
    /// here so a retrying ECALL can never sleep past it; curtailed sleeps
    /// land in [`Session::degradations`].
    pub fn with_supervision(mut self, supervision: Supervision) -> Session<'e> {
        self.interp.supervision = supervision;
        self
    }

    /// Degradations the untrusted runtime absorbed so far — currently
    /// [`Degradation::RetryCurtailed`](symexec::Degradation::RetryCurtailed)
    /// entries for sleeps cut short by [`Session::with_supervision`].
    pub fn degradations(&self) -> &[symexec::Degradation] {
        self.interp.ledger.entries()
    }

    /// Dispatches an ECALL against the session's persistent state.
    ///
    /// Transient failures ([`SgxError::is_transient`], i.e. injected OCALL
    /// faults) are retried on the untrusted side up to the policy's budget
    /// with a doubling backoff; observable output of failed attempts is
    /// discarded, so a successful retry yields a clean result. Enclave
    /// memory, as in real SGX, keeps the writes of failed attempts.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Enclave::ecall`]. A fault leaves the session
    /// usable (memory is unchanged beyond the faulting call's writes).
    pub fn ecall(&mut self, name: &str, args: &[EcallArg]) -> Result<EcallResult, SgxError> {
        let mut attempt = 0;
        loop {
            match self.enclave.dispatch(&mut self.interp, name, args) {
                Err(error) if error.is_transient() && attempt < self.retry.max_retries => {
                    // Drop the failed attempt's observable side effects;
                    // the successful retry re-emits its own.
                    self.interp.output.clear();
                    self.interp.ocalls.clear();
                    let telemetry = &self.enclave.telemetry;
                    telemetry.counter(telemetry::names::SGX_RETRIES, 1);
                    telemetry.event("retry", None, |fields| {
                        fields.push(("ecall", name.into()));
                        fields.push(("attempt", (attempt as u64 + 1).into()));
                        fields.push(("error", error.to_string().into()));
                    });
                    // A supervised session never sleeps past its budget:
                    // with the budget already spent the transient error
                    // surfaces now instead of after a doomed retry, and a
                    // truncated backoff is recorded the same way.
                    if self.interp.supervision.exhausted() {
                        self.interp
                            .ledger
                            .record(symexec::Degradation::RetryCurtailed { count: 1 });
                        telemetry.event("retry_curtailed", None, |fields| {
                            fields.push(("ecall", name.into()));
                            fields.push(("attempt", (attempt as u64 + 1).into()));
                        });
                        return Err(error);
                    }
                    let backoff = self.retry.backoff * 2u32.saturating_pow(attempt as u32);
                    if self.interp.supervision.bounded_sleep(backoff) {
                        self.interp
                            .ledger
                            .record(symexec::Degradation::RetryCurtailed { count: 1 });
                    }
                    attempt += 1;
                    self.retries += 1;
                }
                outcome => return outcome,
            }
        }
    }

    /// Seals data under the enclave identity, honouring any scheduled
    /// [`Fault::CorruptSeal`] of the session's plan.
    pub fn seal(&mut self, nonce: u64, plaintext: &[u8]) -> SealedBlob {
        let mut blob = self.enclave.seal(nonce, plaintext);
        if let Some(faults) = self.interp.faults.as_mut() {
            if faults.corrupt_this_seal() {
                let telemetry = &self.enclave.telemetry;
                telemetry.counter(telemetry::names::SGX_FAULTS, 1);
                telemetry.event("fault", None, |fields| {
                    fields.push(("kind", "corrupt_seal".into()));
                    fields.push(("nonce", nonce.into()));
                });
                seal::corrupt(&mut blob);
            }
        }
        blob
    }

    /// Transient-failure retries performed so far (reliability counter).
    pub fn retries(&self) -> usize {
        self.retries
    }

    /// Every fault the plan actually injected so far, in injection order —
    /// the ground truth a robustness test asserts against.
    pub fn injected_faults(&self) -> &[Fault] {
        self.interp
            .faults
            .as_ref()
            .map(FaultState::injected)
            .unwrap_or(&[])
    }

    /// The owning enclave.
    pub fn enclave(&self) -> &Enclave {
        self.enclave
    }
}

/// Direction of a parameter per the EDL, for callers building bindings.
pub fn param_direction(proto: &Prototype, index: usize) -> Option<Direction> {
    proto.params.get(index)?.attributes.direction
}

fn measure(source: &str, edl_text: &str) -> u64 {
    // FNV-1a over both inputs — a stand-in for MRENCLAVE's SHA-256; only
    // collision-resistance *by accident* matters less than determinism
    // here, and the simulator is explicit about not being security-grade.
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for b in source.bytes().chain([0u8]).chain(edl_text.bytes()) {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

fn pointee_type(c_type: &str) -> Type {
    let base = c_type.trim_end_matches('*').trim();
    match base {
        "char" | "unsigned char" | "const char" | "const unsigned char" => Type::Char,
        "int" | "const int" | "unsigned" | "unsigned int" => Type::Int,
        "long" | "unsigned long" | "const long" => Type::Long,
        "float" => Type::Float,
        "double" | "const double" => Type::Double,
        "void" | "const void" => Type::Char,
        other if other.starts_with("struct ") => {
            Type::Struct(other.trim_start_matches("struct ").to_string())
        }
        _ => Type::Char,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const LISTING1: &str = r#"
        int enclave_process_data(char *secrets, char *output) {
            int temporary = secrets[0] + 100;
            output[0] = temporary + 1;
            if (secrets[1] == 0)
                return 0;
            else
                return 1;
        }
    "#;

    const LISTING1_EDL: &str = r#"
        enclave {
            trusted {
                public int enclave_process_data([in, count=2] char *secrets,
                                                [out, count=1] char *output);
            };
        };
    "#;

    fn listing1() -> Enclave {
        Enclave::load(LISTING1, LISTING1_EDL).expect("loads")
    }

    #[test]
    fn ecall_marshals_in_and_out() {
        let enclave = listing1();
        let result = enclave
            .ecall(
                "enclave_process_data",
                &[
                    EcallArg::In(vec![Word::Int(7), Word::Int(0)]),
                    EcallArg::Out(1),
                ],
            )
            .expect("runs");
        assert_eq!(result.ret, Some(Value::Int(0)));
        assert_eq!(result.outs["output"], vec![Word::Int(108)]);
    }

    #[test]
    fn branch_on_secret_changes_return() {
        let enclave = listing1();
        let run = |s1: i64| {
            enclave
                .ecall(
                    "enclave_process_data",
                    &[
                        EcallArg::In(vec![Word::Int(0), Word::Int(s1)]),
                        EcallArg::Out(1),
                    ],
                )
                .unwrap()
                .ret
        };
        assert_eq!(run(0), Some(Value::Int(0)));
        assert_eq!(run(5), Some(Value::Int(1)));
    }

    #[test]
    fn unknown_ecall_rejected() {
        let enclave = listing1();
        assert!(matches!(
            enclave.ecall("nope", &[]),
            Err(SgxError::UnknownEcall(_))
        ));
    }

    #[test]
    fn bound_mismatch_rejected() {
        let enclave = listing1();
        let err = enclave
            .ecall(
                "enclave_process_data",
                &[EcallArg::In(vec![Word::Int(7)]), EcallArg::Out(1)],
            )
            .unwrap_err();
        assert!(err.to_string().contains("EDL bound"));
    }

    #[test]
    fn missing_definition_rejected() {
        let err = Enclave::load("int other() { return 0; }", LISTING1_EDL).unwrap_err();
        assert!(matches!(err, SgxError::MissingEcallBody(_)));
    }

    #[test]
    fn direction_enforced() {
        let enclave = listing1();
        // passing Out for the [in] parameter
        let err = enclave
            .ecall(
                "enclave_process_data",
                &[EcallArg::Out(2), EcallArg::Out(1)],
            )
            .unwrap_err();
        assert!(err.to_string().contains("not [out]"));
    }

    #[test]
    fn measurement_is_deterministic_and_code_bound() {
        let a = listing1().measurement();
        let b = listing1().measurement();
        assert_eq!(a, b);
        let other = Enclave::load(LISTING1.replace("100", "101").as_str(), LISTING1_EDL).unwrap();
        assert_ne!(a, other.measurement());
    }

    #[test]
    fn sealing_is_enclave_bound() {
        let enclave = listing1();
        let blob = enclave.seal(1, b"weights");
        assert_eq!(enclave.unseal(&blob).unwrap(), b"weights");
        let other = Enclave::load(
            "int f() { return 0; }",
            "enclave { trusted { public int f(); }; };",
        )
        .unwrap();
        assert!(other.unseal(&blob).is_err());
    }

    #[test]
    fn quotes_verify() {
        let enclave = listing1();
        let platform = PlatformKey::from_seed(b"test-machine");
        let quote = enclave.quote(&platform, b"session-key");
        assert!(attest::verify(&platform, &quote, Some(enclave.measurement())).is_ok());
    }

    #[test]
    fn scalar_params_and_param_bounds() {
        let source = r#"
            int sum(char *xs, int n) {
                int s = 0;
                for (int i = 0; i < n; i++) s += xs[i];
                return s;
            }
        "#;
        let edl_text = r#"
            enclave { trusted {
                public int sum([in, count=n] char *xs, int n);
            }; };
        "#;
        let enclave = Enclave::load(source, edl_text).unwrap();
        let result = enclave
            .ecall(
                "sum",
                &[
                    EcallArg::In(vec![Word::Int(1), Word::Int(2), Word::Int(3)]),
                    EcallArg::Int(3),
                ],
            )
            .unwrap();
        assert_eq!(result.ret, Some(Value::Int(6)));
    }

    #[test]
    fn inout_buffers_round_trip() {
        let source =
            "void doubler(int *xs, int n) { for (int i = 0; i < n; i++) xs[i] = xs[i] * 2; }";
        let edl_text =
            "enclave { trusted { public void doubler([in, out, count=n] int *xs, int n); }; };";
        let enclave = Enclave::load(source, edl_text).unwrap();
        let result = enclave
            .ecall(
                "doubler",
                &[
                    EcallArg::InOut(vec![Word::Int(3), Word::Int(5)]),
                    EcallArg::Int(2),
                ],
            )
            .unwrap();
        assert_eq!(result.outs["xs"], vec![Word::Int(6), Word::Int(10)]);
    }
}

#[cfg(test)]
mod session_tests {
    use super::*;

    const COUNTER: &str = r#"
        int counter = 0;
        int bump(int by) {
            counter = counter + by;
            return counter;
        }
        int read_counter() {
            return counter;
        }
    "#;

    const COUNTER_EDL: &str = r#"
        enclave { trusted {
            public int bump(int by);
            public int read_counter();
        }; };
    "#;

    #[test]
    fn sessions_keep_global_state() {
        let enclave = Enclave::load(COUNTER, COUNTER_EDL).expect("loads");
        let mut session = enclave.session().expect("opens");
        assert_eq!(
            session.ecall("bump", &[EcallArg::Int(5)]).unwrap().ret,
            Some(Value::Int(5))
        );
        assert_eq!(
            session.ecall("bump", &[EcallArg::Int(3)]).unwrap().ret,
            Some(Value::Int(8))
        );
        assert_eq!(
            session.ecall("read_counter", &[]).unwrap().ret,
            Some(Value::Int(8))
        );
    }

    #[test]
    fn stateless_ecalls_reset_state() {
        let enclave = Enclave::load(COUNTER, COUNTER_EDL).expect("loads");
        assert_eq!(
            enclave.ecall("bump", &[EcallArg::Int(5)]).unwrap().ret,
            Some(Value::Int(5))
        );
        // a fresh stateless call starts from the initializer again
        assert_eq!(
            enclave.ecall("bump", &[EcallArg::Int(5)]).unwrap().ret,
            Some(Value::Int(5))
        );
    }

    #[test]
    fn separate_sessions_are_isolated() {
        let enclave = Enclave::load(COUNTER, COUNTER_EDL).expect("loads");
        let mut a = enclave.session().expect("opens");
        let mut b = enclave.session().expect("opens");
        a.ecall("bump", &[EcallArg::Int(10)]).unwrap();
        assert_eq!(
            b.ecall("read_counter", &[]).unwrap().ret,
            Some(Value::Int(0))
        );
        assert_eq!(a.enclave().measurement(), enclave.measurement());
    }

    #[test]
    fn session_output_is_drained_per_call() {
        let source = r#"
            int chatty(int v) {
                printf("v=%d\n", v);
                return v;
            }
        "#;
        let edl_text = "enclave { trusted { public int chatty(int v); }; };";
        let enclave = Enclave::load(source, edl_text).expect("loads");
        let mut session = enclave.session().expect("opens");
        let first = session.ecall("chatty", &[EcallArg::Int(1)]).unwrap();
        let second = session.ecall("chatty", &[EcallArg::Int(2)]).unwrap();
        assert_eq!(first.output, "v=1\n");
        assert_eq!(second.output, "v=2\n");
    }

    #[test]
    fn session_survives_a_fault() {
        let source = r#"
            int counter = 0;
            int bump(int by) { counter = counter + by; return counter; }
            int crash(int d) { return 1 / d; }
        "#;
        let edl_text = r#"
            enclave { trusted {
                public int bump(int by);
                public int crash(int d);
            }; };
        "#;
        let enclave = Enclave::load(source, edl_text).expect("loads");
        let mut session = enclave.session().expect("opens");
        session.ecall("bump", &[EcallArg::Int(2)]).unwrap();
        assert!(session.ecall("crash", &[EcallArg::Int(0)]).is_err());
        assert_eq!(
            session.ecall("bump", &[EcallArg::Int(1)]).unwrap().ret,
            Some(Value::Int(3))
        );
    }
}
