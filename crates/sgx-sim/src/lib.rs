//! A software SGX enclave runtime substrate.
//!
//! The paper evaluates PrivacyScope on ML modules ported into real SGX
//! enclaves; this crate is the simulated equivalent (see DESIGN.md): it
//! *executes* the same Mini-C enclave code the analyzer inspects, behind
//! the same EDL boundary, so the repository can demonstrate end-to-end that
//! statically-flagged code really does reveal secrets at runtime.
//!
//! Provided pieces:
//!
//! * [`enclave::Enclave`] — build an enclave from Mini-C source + EDL,
//!   compute its measurement, and dispatch ECALLs with `[in]`/`[out]`
//!   marshalling (boundary copies, bounds checks);
//! * [`interp`] — a concrete Mini-C interpreter (the "CPU" the enclave runs
//!   on), independent from the symbolic engine;
//! * [`crypto`] — a toy stream cipher + MAC standing in for the IPP
//!   primitives (interface-faithful: decrypt functions are the analyzer's
//!   secret sources);
//! * [`seal`] — sealed storage (encrypt-then-MAC under a per-enclave key
//!   derived from the measurement);
//! * [`attest`] — mock local/remote attestation over measurements;
//! * [`fault`] — deterministic fault injection at the boundary (fail the
//!   Nth OCALL, truncate `[out]` copy-out, corrupt sealed blobs, delay
//!   ECALLs) plus a bounded untrusted-side [`RetryPolicy`].

pub mod attest;
pub mod crypto;
pub mod enclave;
pub mod error;
pub mod fault;
pub mod interp;
pub mod seal;

pub use enclave::{EcallArg, EcallResult, Enclave};
pub use error::SgxError;
pub use fault::{Fault, FaultPlan, RetryPolicy, Supervision};
