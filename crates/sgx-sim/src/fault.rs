//! Deterministic fault injection for the simulated enclave boundary.
//!
//! A [`FaultPlan`] is an explicit, ordered schedule of boundary failures —
//! fail the Nth OCALL, truncate an `[out]` buffer, corrupt a sealed blob,
//! delay an ECALL — that a [`Session`](crate::enclave::Session) executes
//! against. Triggers are *counter-based* (the Nth event since the session
//! opened), which makes two properties fall out:
//!
//! * **reproducibility** — the same plan against the same call sequence
//!   injects exactly the same faults, every run ([`FaultPlan::seeded`]
//!   derives a whole schedule from one seed);
//! * **transience** — a retried OCALL advances the counter past the
//!   trigger, so an injected OCALL failure is naturally transient and a
//!   bounded [`RetryPolicy`] can absorb it.

use std::time::{Duration, Instant};

use symexec::CancelToken;

/// One injectable boundary failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Fault {
    /// Fail the `nth` OCALL (0-based, counted across the session) with a
    /// transient [`SgxError::Ocall`](crate::SgxError::Ocall).
    FailOcall {
        /// 0-based OCALL index.
        nth: usize,
    },
    /// Truncate the named `[out]`/`[in, out]` buffer of the `nth` ECALL to
    /// `keep` elements during copy-out (the host sees a short read).
    TruncateOut {
        /// 0-based ECALL index.
        nth_ecall: usize,
        /// Parameter name, as declared in the EDL.
        param: String,
        /// Elements surviving the truncation.
        keep: usize,
    },
    /// Flip a bit in the `nth` blob sealed through the session (0-based);
    /// unsealing it then fails MAC verification.
    CorruptSeal {
        /// 0-based seal index.
        nth: usize,
    },
    /// Sleep this long before dispatching the `nth` ECALL (models a slow,
    /// contended enclave transition — observable latency only).
    DelayEcall {
        /// 0-based ECALL index.
        nth: usize,
        /// Injected latency.
        millis: u64,
    },
}

/// A deterministic, ordered schedule of boundary faults.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    faults: Vec<Fault>,
}

impl FaultPlan {
    /// An empty plan (no faults).
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// Schedules a transient failure of the `nth` OCALL.
    pub fn fail_ocall(mut self, nth: usize) -> FaultPlan {
        self.faults.push(Fault::FailOcall { nth });
        self
    }

    /// Schedules a copy-out truncation of `param` on the `nth` ECALL.
    pub fn truncate_out(mut self, nth_ecall: usize, param: &str, keep: usize) -> FaultPlan {
        self.faults.push(Fault::TruncateOut {
            nth_ecall,
            param: param.to_string(),
            keep,
        });
        self
    }

    /// Schedules corruption of the `nth` sealed blob.
    pub fn corrupt_seal(mut self, nth: usize) -> FaultPlan {
        self.faults.push(Fault::CorruptSeal { nth });
        self
    }

    /// Schedules an injected delay before the `nth` ECALL.
    pub fn delay_ecall(mut self, nth: usize, millis: u64) -> FaultPlan {
        self.faults.push(Fault::DelayEcall { nth, millis });
        self
    }

    /// Derives a reproducible schedule of `n` faults from a seed (an LCG
    /// over the seed; the same seed always yields the same plan).
    pub fn seeded(seed: u64, n: usize) -> FaultPlan {
        let mut state = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut step = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 33
        };
        let mut plan = FaultPlan::new();
        for _ in 0..n {
            let kind = step() % 3;
            let nth = (step() % 4) as usize;
            plan = match kind {
                0 => plan.fail_ocall(nth),
                1 => plan.corrupt_seal(nth),
                _ => plan.delay_ecall(nth, step() % 8),
            };
        }
        plan
    }

    /// The scheduled faults, in insertion order.
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }

    /// Whether the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }
}

/// Bounded retry-with-backoff for transient ECALL failures on the
/// untrusted side (see [`Session::ecall`](crate::enclave::Session::ecall)).
///
/// The default policy performs no retries; backoff doubles per attempt
/// starting from `backoff`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RetryPolicy {
    /// Additional attempts after the first failure.
    pub max_retries: usize,
    /// Sleep before the first retry; doubles each further retry.
    pub backoff: Duration,
}

impl RetryPolicy {
    /// A policy retrying up to `max_retries` times with a doubling backoff.
    pub fn retries(max_retries: usize) -> RetryPolicy {
        RetryPolicy {
            max_retries,
            backoff: Duration::from_millis(1),
        }
    }
}

/// Deadline/cancel supervision for the *untrusted-side* sleeps of a
/// session: retry backoff and injected [`Fault::DelayEcall`] latency.
///
/// Without it, a retrying job could sleep well past the engine's deadline —
/// the retry loop and the fault plan knew nothing about the supervision the
/// exploration itself honours. A supervised session truncates every sleep
/// to the remaining budget and records a
/// [`Degradation::RetryCurtailed`](symexec::Degradation::RetryCurtailed)
/// entry when one is cut short (readable via
/// [`Session::degradations`](crate::enclave::Session::degradations)).
#[derive(Debug, Clone, Default)]
pub struct Supervision {
    deadline: Option<Instant>,
    cancel: CancelToken,
}

impl Supervision {
    /// Unbounded supervision: sleeps run to completion (the legacy
    /// behaviour of an unsupervised session).
    pub fn new() -> Supervision {
        Supervision::default()
    }

    /// Bounds all session sleeps by an absolute deadline.
    pub fn with_deadline(mut self, deadline: Instant) -> Supervision {
        self.deadline = Some(deadline);
        self
    }

    /// Bounds all session sleeps by a budget from now (convenience for
    /// callers holding the engine's relative `deadline_ms`).
    pub fn with_budget(self, budget: Duration) -> Supervision {
        self.with_deadline(Instant::now() + budget)
    }

    /// Cuts sleeps (and further retries) as soon as `cancel` fires.
    pub fn with_cancel(mut self, cancel: CancelToken) -> Supervision {
        self.cancel = cancel;
        self
    }

    /// The remaining sleep budget: `None` when unbounded, `Some(ZERO)`
    /// when the deadline has passed or the cancel token fired.
    pub fn remaining(&self) -> Option<Duration> {
        if self.cancel.is_cancelled() {
            return Some(Duration::ZERO);
        }
        self.deadline
            .map(|deadline| deadline.saturating_duration_since(Instant::now()))
    }

    /// Whether the budget is spent (never true for unbounded supervision).
    pub fn exhausted(&self) -> bool {
        self.remaining().is_some_and(|left| left.is_zero())
    }

    /// Sleeps for `requested`, truncated to the remaining budget. Returns
    /// `true` when the sleep was shortened (or skipped entirely).
    pub(crate) fn bounded_sleep(&self, requested: Duration) -> bool {
        let actual = match self.remaining() {
            None => requested,
            Some(budget) => requested.min(budget),
        };
        if !actual.is_zero() {
            std::thread::sleep(actual);
        }
        actual < requested
    }
}

/// The live fault machinery of one session: the plan plus the event
/// counters that drive its triggers.
#[derive(Debug, Default)]
pub(crate) struct FaultState {
    plan: FaultPlan,
    ocalls_seen: usize,
    ecalls_seen: usize,
    seals_seen: usize,
    injected: Vec<Fault>,
}

impl FaultState {
    pub(crate) fn new(plan: FaultPlan) -> FaultState {
        FaultState {
            plan,
            ..FaultState::default()
        }
    }

    /// Begins an ECALL: returns its 0-based index and any injected delay.
    pub(crate) fn begin_ecall(&mut self) -> (usize, Option<Duration>) {
        let index = self.ecalls_seen;
        self.ecalls_seen += 1;
        let mut delay = None;
        for fault in self.plan.faults.clone() {
            if let Fault::DelayEcall { nth, millis } = &fault {
                if *nth == index {
                    delay = Some(Duration::from_millis(*millis));
                    self.injected.push(fault);
                }
            }
        }
        (index, delay)
    }

    /// Observes one OCALL; true when the plan fails this one.
    pub(crate) fn fail_this_ocall(&mut self) -> Option<usize> {
        let index = self.ocalls_seen;
        self.ocalls_seen += 1;
        let fault = Fault::FailOcall { nth: index };
        if self.plan.faults.contains(&fault) {
            self.injected.push(fault);
            Some(index)
        } else {
            None
        }
    }

    /// The surviving length for a copy-out of `param` on ECALL `ecall`,
    /// when a truncation is scheduled.
    pub(crate) fn truncation(&mut self, ecall: usize, param: &str) -> Option<usize> {
        let hit = self
            .plan
            .faults
            .iter()
            .find(|f| {
                matches!(f, Fault::TruncateOut { nth_ecall, param: p, .. }
                    if *nth_ecall == ecall && p == param)
            })?
            .clone();
        let Fault::TruncateOut { keep, .. } = &hit else {
            unreachable!("filtered to TruncateOut above");
        };
        let keep = *keep;
        self.injected.push(hit);
        Some(keep)
    }

    /// Observes one seal; true when the plan corrupts this one.
    pub(crate) fn corrupt_this_seal(&mut self) -> bool {
        let index = self.seals_seen;
        self.seals_seen += 1;
        let fault = Fault::CorruptSeal { nth: index };
        if self.plan.faults.contains(&fault) {
            self.injected.push(fault);
            true
        } else {
            false
        }
    }

    /// Every fault actually injected so far, in injection order.
    pub(crate) fn injected(&self) -> &[Fault] {
        &self.injected
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_plans_are_reproducible() {
        let a = FaultPlan::seeded(42, 6);
        let b = FaultPlan::seeded(42, 6);
        assert_eq!(a, b);
        assert_eq!(a.faults().len(), 6);
        let c = FaultPlan::seeded(43, 6);
        assert_ne!(a, c, "different seeds should diverge");
    }

    #[test]
    fn ocall_trigger_is_counter_based_and_transient() {
        let mut state = FaultState::new(FaultPlan::new().fail_ocall(1));
        assert_eq!(state.fail_this_ocall(), None); // ocall #0
        assert_eq!(state.fail_this_ocall(), Some(1)); // ocall #1 fails
        assert_eq!(state.fail_this_ocall(), None); // the retry sails through
        assert_eq!(state.injected().len(), 1);
    }

    #[test]
    fn ecall_delay_and_truncation_trigger_by_index() {
        let plan = FaultPlan::new().delay_ecall(1, 3).truncate_out(0, "buf", 2);
        let mut state = FaultState::new(plan);
        let (first, delay) = state.begin_ecall();
        assert_eq!((first, delay), (0, None));
        assert_eq!(state.truncation(first, "buf"), Some(2));
        assert_eq!(state.truncation(first, "other"), None);
        let (second, delay) = state.begin_ecall();
        assert_eq!(second, 1);
        assert_eq!(delay, Some(Duration::from_millis(3)));
        assert_eq!(state.truncation(second, "buf"), None);
    }

    #[test]
    fn seal_corruption_counts_blobs() {
        let mut state = FaultState::new(FaultPlan::new().corrupt_seal(0));
        assert!(state.corrupt_this_seal());
        assert!(!state.corrupt_this_seal());
    }
}
