//! Daemon crash recovery over the real wire: `kill -9` a `privacyscoped`
//! with journaled jobs in flight, restart it on the same spool, and every
//! job must complete with a report byte-identical to an uninterrupted
//! direct run — at pool 1 and pool 4. Plus graceful drain: SIGTERM under
//! load exits 0 with no half-written spool files left behind.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use privacyscope::analyzer::{Analyzer, AnalyzerOptions};
use privacyscope::protocol::{self, ClientFrame, ServerFrame};

/// A running `privacyscoped`, killed when the test ends (pass or panic).
struct Daemon {
    child: Child,
    addr: String,
}

impl Daemon {
    fn start(pool: usize, spool: &PathBuf, extra: &[&str]) -> Daemon {
        let mut child = Command::new(env!("CARGO_BIN_EXE_privacyscoped"))
            .args(["--listen", "127.0.0.1:0", "--pool", &pool.to_string()])
            .arg("--spool")
            .arg(spool)
            .args(extra)
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn privacyscoped");
        let stdout = child.stdout.take().expect("daemon stdout");
        let mut line = String::new();
        BufReader::new(stdout)
            .read_line(&mut line)
            .expect("read the daemon banner");
        let addr = line
            .trim()
            .strip_prefix("privacyscoped: listening on ")
            .unwrap_or_else(|| panic!("unexpected daemon banner: {line:?}"))
            .to_string();
        Daemon { child, addr }
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// One NDJSON client connection.
struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(addr: &str) -> Client {
        let stream = TcpStream::connect(addr).expect("connect to daemon");
        let reader = BufReader::new(stream.try_clone().expect("clone stream"));
        Client {
            writer: stream,
            reader,
        }
    }

    fn send(&mut self, frame: &ClientFrame) {
        let line = protocol::encode(frame).expect("encode frame");
        self.writer
            .write_all(line.as_bytes())
            .and_then(|()| self.writer.write_all(b"\n"))
            .and_then(|()| self.writer.flush())
            .expect("send frame");
    }

    fn recv(&mut self) -> ServerFrame {
        loop {
            let mut line = String::new();
            let n = self.reader.read_line(&mut line).expect("read frame");
            assert!(n > 0, "daemon closed the connection unexpectedly");
            if line.trim().is_empty() {
                continue;
            }
            return protocol::decode(&line).expect("decode server frame");
        }
    }
}

fn spool(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ps-daemon-rec-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("spool dir");
    dir
}

struct Job {
    source: String,
    edl: String,
    entry: String,
    max_paths: u64,
}

fn corpus_job(name: &str, max_paths: u64) -> Job {
    let module = mlcorpus::modules()
        .into_iter()
        .chain(std::iter::once(mlcorpus::recommender_vulnerable()))
        .find(|m| m.name == name)
        .unwrap_or_else(|| panic!("corpus has no module named `{name}`"));
    Job {
        source: module.source.to_string(),
        edl: module.edl.to_string(),
        entry: module.entry.to_string(),
        max_paths,
    }
}

fn submit_frame(job: &Job) -> ClientFrame {
    ClientFrame::Submit {
        source: job.source.clone(),
        edl: job.edl.clone(),
        config: String::new(),
        function: job.entry.clone(),
        max_paths: job.max_paths,
        loop_bound: 2,
        workers: 1,
        deadline_ms: 0,
        progress: false,
    }
}

/// Zeroes the wall-clock `"time"` stat, the only non-deterministic bytes
/// in a report's JSON.
fn normalize(json: &str) -> String {
    let marker = "\"time\": ";
    let mut out = String::with_capacity(json.len());
    let mut rest = json;
    while let Some(pos) = rest.find(marker) {
        let (head, tail) = rest.split_at(pos + marker.len());
        out.push_str(head);
        out.push('0');
        rest = tail.trim_start_matches(|c: char| c.is_ascii_digit());
    }
    out.push_str(rest);
    out
}

/// The report an uninterrupted in-process run produces for this job.
fn direct_report(job: &Job) -> String {
    let options = AnalyzerOptions {
        max_paths: usize::try_from(job.max_paths).expect("small budget"),
        loop_bound: 2,
        workers: 1,
        ..AnalyzerOptions::default()
    };
    let analyzer =
        Analyzer::from_sources(&job.source, &job.edl, options).expect("corpus module parses");
    normalize(
        &analyzer
            .analyze(&job.entry)
            .expect("direct analysis succeeds")
            .to_json(),
    )
}

/// Polls `Fetch` until the job is terminal, returning its first report.
fn fetch_report(client: &mut Client, id: u64) -> String {
    let deadline = Instant::now() + Duration::from_secs(300);
    loop {
        client.send(&ClientFrame::Fetch { job: id });
        match client.recv() {
            ServerFrame::Done { job, reports, .. } => {
                assert_eq!(job, id);
                assert_eq!(reports.len(), 1, "one target, one report");
                return normalize(&reports[0]);
            }
            ServerFrame::Error { message, .. } => {
                panic!("recovered job {id} failed: {message}")
            }
            ServerFrame::State { state, .. } => {
                assert_ne!(
                    state, "unknown",
                    "job {id} vanished across the restart (recovery lost it)"
                );
                assert!(
                    Instant::now() < deadline,
                    "job {id} never finished after recovery (stuck `{state}`)"
                );
                std::thread::sleep(Duration::from_millis(200));
            }
            other => panic!("unexpected reply to Fetch: {other:?}"),
        }
    }
}

/// The tentpole acceptance: kill -9 mid-run, restart on the same spool,
/// and every journaled job completes byte-identical to a direct run.
#[test]
fn kill9_restart_recovers_all_jobs_byte_identical() {
    // Kmeans at these budgets outlives the kill window by a wide margin
    // in debug builds, so neither job can slip to Done before the -9.
    let jobs = [corpus_job("Kmeans", 16), corpus_job("Kmeans", 12)];
    let expected: Vec<String> = jobs.iter().map(direct_report).collect();

    for pool in [1usize, 4] {
        let dir = spool(&format!("kill9-pool{pool}"));
        let first = Daemon::start(pool, &dir, &["--slice-ms", "200"]);
        let mut client = Client::connect(&first.addr);
        let mut ids = Vec::new();
        for job in &jobs {
            client.send(&submit_frame(job));
            match client.recv() {
                ServerFrame::Accepted { job: id } => ids.push(id),
                other => panic!("pool {pool}: submission not accepted: {other:?}"),
            }
        }
        // Hard kill with both jobs journaled and in flight.
        drop(first);

        let second = Daemon::start(pool, &dir, &[]);
        let mut client = Client::connect(&second.addr);
        client.send(&ClientFrame::Recovery);
        match client.recv() {
            ServerFrame::Recovery {
                requeued, resumed, ..
            } => {
                assert_eq!(
                    requeued + resumed,
                    jobs.len() as u64,
                    "pool {pool}: every journaled job must come back"
                );
            }
            other => panic!("pool {pool}: unexpected reply to Recovery: {other:?}"),
        }
        for (id, want) in ids.iter().zip(&expected) {
            let got = fetch_report(&mut client, *id);
            assert_eq!(
                &got, want,
                "pool {pool}, job {id}: recovered report diverged from the direct run"
            );
        }
    }
}

/// Graceful drain: SIGTERM with a job running parks the work and exits 0,
/// leaving no half-written (`.tmp`) spool files; a restart on the same
/// spool finishes the parked job.
#[test]
fn sigterm_drains_parks_and_exits_zero() {
    let dir = spool("sigterm");
    let job = corpus_job("Kmeans", 16);
    let mut daemon = Daemon::start(1, &dir, &["--slice-ms", "200"]);
    let mut client = Client::connect(&daemon.addr);
    client.send(&submit_frame(&job));
    let id = match client.recv() {
        ServerFrame::Accepted { job } => job,
        other => panic!("submission not accepted: {other:?}"),
    };

    let status = Command::new("kill")
        .args(["-TERM", &daemon.child.id().to_string()])
        .status()
        .expect("send SIGTERM");
    assert!(status.success(), "kill -TERM failed");
    let deadline = Instant::now() + Duration::from_secs(120);
    let exit = loop {
        if let Some(exit) = daemon.child.try_wait().expect("poll daemon") {
            break exit;
        }
        assert!(
            Instant::now() < deadline,
            "daemon did not exit after SIGTERM (drain hung)"
        );
        std::thread::sleep(Duration::from_millis(100));
    };
    assert_eq!(exit.code(), Some(0), "drain must exit 0, got {exit:?}");

    let leftovers: Vec<String> = std::fs::read_dir(&dir)
        .expect("read spool")
        .flatten()
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .filter(|name| name.ends_with(".tmp"))
        .collect();
    assert_eq!(
        leftovers,
        Vec::<String>::new(),
        "a clean drain leaves no half-written spool files"
    );

    let restarted = Daemon::start(1, &dir, &[]);
    let mut client = Client::connect(&restarted.addr);
    client.send(&ClientFrame::Recovery);
    match client.recv() {
        ServerFrame::Recovery {
            requeued, resumed, ..
        } => assert_eq!(
            requeued + resumed,
            1,
            "the parked job must survive the drain"
        ),
        other => panic!("unexpected reply to Recovery: {other:?}"),
    }
    let got = fetch_report(&mut client, id);
    assert_eq!(
        got,
        direct_report(&job),
        "report diverged across a drain + restart"
    );
}
