//! Daemon round trip, over the real wire: the same job submitted through
//! `privacyscope --daemon` and run locally must print byte-identical
//! output (JSON and rendered forms) and exit with the same code, whether
//! the daemon pool has 1 worker or 4.

use std::io::{BufRead, BufReader};
use std::path::PathBuf;
use std::process::{Child, Command, Output, Stdio};

/// A running `privacyscoped`, killed when the test ends (pass or panic).
struct Daemon {
    child: Child,
    addr: String,
}

impl Daemon {
    fn start(pool: usize) -> Daemon {
        let spool =
            std::env::temp_dir().join(format!("ps-daemon-test-{}-pool{pool}", std::process::id()));
        let mut child = Command::new(env!("CARGO_BIN_EXE_privacyscoped"))
            .args(["--listen", "127.0.0.1:0", "--pool", &pool.to_string()])
            .arg("--spool")
            .arg(&spool)
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn privacyscoped");
        // The daemon announces its bound address (port 0 resolves to an
        // ephemeral port) as its first stdout line.
        let stdout = child.stdout.take().expect("daemon stdout");
        let mut line = String::new();
        BufReader::new(stdout)
            .read_line(&mut line)
            .expect("read the daemon banner");
        let addr = line
            .trim()
            .strip_prefix("privacyscoped: listening on ")
            .unwrap_or_else(|| panic!("unexpected daemon banner: {line:?}"))
            .to_string();
        Daemon { child, addr }
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// Writes a corpus module's inputs to disk for the CLI to consume.
fn corpus_files(name: &str) -> (PathBuf, PathBuf, String) {
    let module = mlcorpus::modules()
        .into_iter()
        .chain(std::iter::once(mlcorpus::recommender_vulnerable()))
        .find(|m| m.name == name)
        .unwrap_or_else(|| panic!("corpus has no module named `{name}`"));
    let dir = std::env::temp_dir().join(format!("ps-daemon-inputs-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("inputs dir");
    let tag = name.replace(['(', ')'], "-");
    let source = dir.join(format!("{tag}.c"));
    let edl = dir.join(format!("{tag}.edl"));
    std::fs::write(&source, module.source).expect("write source");
    std::fs::write(&edl, module.edl).expect("write edl");
    (source, edl, module.entry.to_string())
}

fn analyze(source: &PathBuf, edl: &PathBuf, entry: &str, extra: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_privacyscope"))
        .arg("analyze")
        .arg(source)
        .arg(edl)
        .args(["--function", entry])
        .args(["--max-paths", "16", "--loop-bound", "2", "--workers", "1"])
        .args(extra)
        .output()
        .expect("run privacyscope")
}

/// Zeroes the wall-clock measurements, the only non-deterministic bytes
/// in a report: the JSON `"time": <micros>` stat and the rendered
/// `<float> ms` duration.
fn normalize(stdout: &[u8]) -> String {
    let text = String::from_utf8_lossy(stdout);
    let marker = "\"time\": ";
    let mut pass1 = String::with_capacity(text.len());
    let mut rest = text.as_ref();
    while let Some(pos) = rest.find(marker) {
        let (head, tail) = rest.split_at(pos + marker.len());
        pass1.push_str(head);
        pass1.push('0');
        rest = tail.trim_start_matches(|c: char| c.is_ascii_digit());
    }
    pass1.push_str(rest);

    // Digit runs are pure ASCII, so splicing them out byte-wise cannot
    // split a multi-byte character elsewhere in the report.
    let bytes = pass1.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i].is_ascii_digit() {
            let start = i;
            while i < bytes.len() && (bytes[i].is_ascii_digit() || bytes[i] == b'.') {
                i += 1;
            }
            if bytes[i..].starts_with(b" ms") {
                out.push(b'0');
            } else {
                out.extend_from_slice(&bytes[start..i]);
            }
        } else {
            out.push(bytes[i]);
            i += 1;
        }
    }
    String::from_utf8(out).expect("normalization only rewrites ASCII digit runs")
}

#[test]
fn daemon_output_matches_local_cli_at_pool_1_and_4() {
    let (source, edl, entry) = corpus_files("Kmeans");
    let local_json = analyze(&source, &edl, &entry, &["--json"]);
    let local_rendered = analyze(&source, &edl, &entry, &[]);
    // Kmeans is clean but loses paths at this budget: secure verdict,
    // degraded-completeness exit. Either secure code is acceptable here —
    // the assertions that matter are daemon == local below.
    assert!(
        matches!(local_json.status.code(), Some(0) | Some(3)),
        "kmeans is a clean module (stderr: {})",
        String::from_utf8_lossy(&local_json.stderr)
    );

    for pool in [1usize, 4] {
        let daemon = Daemon::start(pool);
        let via_daemon_json = analyze(&source, &edl, &entry, &["--json", "--daemon", &daemon.addr]);
        assert_eq!(
            via_daemon_json.status.code(),
            local_json.status.code(),
            "pool {pool}: exit code diverged (stderr: {})",
            String::from_utf8_lossy(&via_daemon_json.stderr)
        );
        assert_eq!(
            normalize(&via_daemon_json.stdout),
            normalize(&local_json.stdout),
            "pool {pool}: JSON report diverged between daemon and local runs"
        );
        let via_daemon_rendered = analyze(&source, &edl, &entry, &["--daemon", &daemon.addr]);
        assert_eq!(
            normalize(&via_daemon_rendered.stdout),
            normalize(&local_rendered.stdout),
            "pool {pool}: rendered report diverged between daemon and local runs"
        );
    }
}

#[test]
fn daemon_propagates_violation_exit_codes() {
    let (source, edl, entry) = corpus_files("Recommender");
    let local = analyze(&source, &edl, &entry, &["--json"]);
    assert_eq!(
        local.status.code(),
        Some(1),
        "the as-ported recommender leaks (stderr: {})",
        String::from_utf8_lossy(&local.stderr)
    );

    let daemon = Daemon::start(1);
    let via_daemon = analyze(&source, &edl, &entry, &["--json", "--daemon", &daemon.addr]);
    assert_eq!(
        via_daemon.status.code(),
        Some(1),
        "daemon must report the violation through the client exit code (stderr: {})",
        String::from_utf8_lossy(&via_daemon.stderr)
    );
    assert_eq!(
        normalize(&via_daemon.stdout),
        normalize(&local.stdout),
        "violation report diverged between daemon and local runs"
    );
}
