//! Service-level crash recovery, through the real journal and spool: a
//! spool left behind by a "crashed" daemon (journal written by hand, as a
//! hard kill would leave it) must be recovered by [`AnalysisService::start`]
//! into jobs that run to completion with reports byte-identical to direct
//! runs. Every damaged-spool shape — torn tail, checksum rot, stale or
//! missing checkpoint — surfaces as a typed [`RecoveryError`] in the
//! summary, never a panic or a refused start; and recovering the same
//! spool twice yields the same job set (idempotence via compaction).

use std::path::PathBuf;

use privacyscope::analyzer::{Analyzer, AnalyzerOptions};
use privacyscope::journal::{self, Journal, JournalRecord, RecoveryError};
use privacyscope::service::{AnalysisService, JobSpec, ServiceConfig};

/// Zeroes the wall-clock `"time"` stat, the only non-deterministic bytes
/// in a rendered report.
fn normalize(json: &str) -> String {
    let marker = "\"time\": ";
    let mut out = String::with_capacity(json.len());
    let mut rest = json;
    while let Some(pos) = rest.find(marker) {
        let (head, tail) = rest.split_at(pos + marker.len());
        out.push_str(head);
        out.push('0');
        rest = tail.trim_start_matches(|c: char| c.is_ascii_digit());
    }
    out.push_str(rest);
    out
}

fn spool(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ps-recovery-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("spool dir");
    dir
}

fn corpus_spec(name: &str, max_paths: usize) -> JobSpec {
    let module = mlcorpus::modules()
        .into_iter()
        .chain(std::iter::once(mlcorpus::recommender_vulnerable()))
        .find(|m| m.name == name)
        .unwrap_or_else(|| panic!("corpus has no module named `{name}`"));
    JobSpec {
        source: module.source.to_string(),
        edl: module.edl.to_string(),
        function: Some(module.entry.to_string()),
        max_paths,
        loop_bound: 2,
        workers: 1,
        ..JobSpec::default()
    }
}

fn direct_report(spec: &JobSpec) -> String {
    let options = AnalyzerOptions {
        max_paths: spec.max_paths,
        loop_bound: spec.loop_bound,
        workers: spec.workers,
        ..AnalyzerOptions::default()
    };
    let analyzer =
        Analyzer::from_sources(&spec.source, &spec.edl, options).expect("corpus module parses");
    let function = spec.function.as_deref().expect("spec names its entry");
    normalize(
        &analyzer
            .analyze(function)
            .expect("direct analysis succeeds")
            .to_json(),
    )
}

/// A crash after `Submitted` (and `Started`) but before any terminal
/// record: the restarted service must requeue the jobs, run them, and
/// produce reports byte-identical to uninterrupted direct runs.
#[test]
fn journaled_jobs_recover_and_complete_byte_identical() {
    let dir = spool("complete");
    let specs = [corpus_spec("Recommender", 12), corpus_spec("Kmeans", 12)];
    {
        let mut journal = Journal::open(&dir).expect("open journal");
        for (index, spec) in specs.iter().enumerate() {
            let id = index as u64 + 1;
            journal
                .append(&JournalRecord::Submitted {
                    id,
                    spec: spec.clone(),
                })
                .expect("append");
            // Job 1 was mid-slice when the "crash" hit; job 2 never ran.
            if id == 1 {
                journal
                    .append(&JournalRecord::Started { id })
                    .expect("append");
            }
        }
    }

    let service = AnalysisService::start(ServiceConfig {
        pool: 2,
        slice: None,
        spool: dir,
        ..ServiceConfig::default()
    })
    .expect("service recovers the spool");
    let recovery = service.recovery().clone();
    assert_eq!(recovery.requeued, 2, "both live jobs re-enter the queue");
    assert_eq!(recovery.resumed, 0);
    assert_eq!(recovery.errors, Vec::new(), "clean spool, clean recovery");

    for (index, spec) in specs.iter().enumerate() {
        let id = index as u64 + 1;
        let outcome = service
            .wait(id)
            .unwrap_or_else(|| panic!("recovered job {id} is unknown to the service"));
        assert_eq!(outcome.error, None, "recovered job {id} failed");
        assert_eq!(
            normalize(&outcome.reports[0].to_json()),
            direct_report(spec),
            "job {id}: recovered report diverged from the direct run"
        );
    }
    service.shutdown();
}

/// A torn final record (crash mid-append) must cost exactly the torn
/// record: the intact jobs recover and run, the damage is a typed
/// `TornRecord`, and the start never aborts.
#[test]
fn torn_journal_tail_recovers_intact_jobs() {
    let dir = spool("torn");
    let spec = corpus_spec("Recommender", 12);
    {
        let mut journal = Journal::open(&dir).expect("open journal");
        journal
            .append(&JournalRecord::Submitted {
                id: 1,
                spec: spec.clone(),
            })
            .expect("append");
    }
    let path = dir.join(journal::JOURNAL_FILE);
    let mut text = std::fs::read_to_string(&path).expect("read journal");
    text.push_str("0123456789abcdef 900 {\"Submitted\":{\"id\":2,\"spec\":{\"sou");
    std::fs::write(&path, text).expect("write torn tail");

    let service = AnalysisService::start(ServiceConfig {
        pool: 1,
        slice: None,
        spool: dir,
        ..ServiceConfig::default()
    })
    .expect("torn journal must not refuse the start");
    let recovery = service.recovery().clone();
    assert_eq!(recovery.requeued, 1, "the intact job survives");
    assert!(
        recovery
            .errors
            .iter()
            .any(|e| matches!(e, RecoveryError::TornRecord { .. })),
        "the torn tail is reported as typed: {:?}",
        recovery.errors
    );
    let outcome = service.wait(1).expect("job 1 recovered");
    assert_eq!(outcome.error, None);
    assert_eq!(
        normalize(&outcome.reports[0].to_json()),
        direct_report(&spec)
    );
    service.shutdown();
}

/// Interior checksum rot skips exactly the rotten record, typed.
#[test]
fn corrupt_interior_record_is_skipped_with_typed_error() {
    let dir = spool("rot");
    let keep = corpus_spec("Recommender", 12);
    {
        let mut journal = Journal::open(&dir).expect("open journal");
        journal
            .append(&JournalRecord::Submitted {
                id: 1,
                spec: corpus_spec("Recommender", 16),
            })
            .expect("append");
        journal
            .append(&JournalRecord::Submitted {
                id: 2,
                spec: keep.clone(),
            })
            .expect("append");
    }
    let path = dir.join(journal::JOURNAL_FILE);
    let text = std::fs::read_to_string(&path).expect("read journal");
    let mut lines: Vec<String> = text.lines().map(str::to_string).collect();
    lines[1] = lines[1].replace("\"id\":1", "\"id\":5");
    std::fs::write(&path, lines.join("\n") + "\n").expect("write rot");

    let service = AnalysisService::start(ServiceConfig {
        pool: 1,
        slice: None,
        spool: dir,
        ..ServiceConfig::default()
    })
    .expect("corrupt record must not refuse the start");
    let recovery = service.recovery().clone();
    assert_eq!(recovery.requeued, 1, "only the undamaged job survives");
    assert!(
        recovery
            .errors
            .iter()
            .any(|e| matches!(e, RecoveryError::ChecksumMismatch { .. })),
        "rot is typed: {:?}",
        recovery.errors
    );
    let outcome = service.wait(2).expect("job 2 recovered");
    assert_eq!(outcome.error, None);
    service.shutdown();
}

/// A suspended job whose spooled checkpoint no longer matches the
/// journaled fingerprint (stale, swapped, or rewritten by another build)
/// must restart from scratch — typed `StaleCheckpoint`, the stale file
/// garbage-collected, and the job still finishing correctly.
#[test]
fn stale_checkpoint_restarts_from_scratch_and_gcs_the_file() {
    let dir = spool("stale");
    let spec = corpus_spec("Recommender", 12);
    let ckpt = dir.join("job-1.ckpt");
    // A syntactically valid snapshot header whose fingerprint is not the
    // journaled one: `peek_fingerprint` reads it fine, recovery refuses it.
    std::fs::write(
        &ckpt,
        "privacyscope-checkpoint v1 fingerprint=00000000deadbeef checksum=0000000000000000 len=0\n",
    )
    .expect("write stale checkpoint");
    {
        let mut journal = Journal::open(&dir).expect("open journal");
        journal
            .append(&JournalRecord::Submitted {
                id: 1,
                spec: spec.clone(),
            })
            .expect("append");
        journal
            .append(&JournalRecord::Suspended {
                id: 1,
                ckpt: ckpt.display().to_string(),
                fingerprint: 0x1234,
            })
            .expect("append");
    }

    let service = AnalysisService::start(ServiceConfig {
        pool: 1,
        slice: None,
        spool: dir,
        ..ServiceConfig::default()
    })
    .expect("stale checkpoint must not refuse the start");
    let recovery = service.recovery().clone();
    assert_eq!(recovery.resumed, 0, "the stale snapshot is never resumed");
    assert_eq!(recovery.requeued, 1, "the job restarts from scratch");
    assert!(
        recovery
            .errors
            .iter()
            .any(|e| matches!(e, RecoveryError::StaleCheckpoint { job: 1, .. })),
        "staleness is typed: {:?}",
        recovery.errors
    );
    assert!(
        recovery.orphans_removed >= 1 && !ckpt.exists(),
        "the stale checkpoint is garbage-collected"
    );
    let outcome = service.wait(1).expect("job 1 recovered");
    assert_eq!(outcome.error, None, "from-scratch rerun failed");
    assert_eq!(
        normalize(&outcome.reports[0].to_json()),
        direct_report(&spec),
        "from-scratch rerun diverged"
    );
    service.shutdown();
}

/// A missing checkpoint behaves like a stale one: typed error, from-scratch
/// rerun.
#[test]
fn missing_checkpoint_restarts_from_scratch() {
    let dir = spool("missing");
    let spec = corpus_spec("Recommender", 12);
    {
        let mut journal = Journal::open(&dir).expect("open journal");
        journal
            .append(&JournalRecord::Submitted {
                id: 1,
                spec: spec.clone(),
            })
            .expect("append");
        journal
            .append(&JournalRecord::Suspended {
                id: 1,
                ckpt: dir.join("job-1.ckpt").display().to_string(),
                fingerprint: 0x1234,
            })
            .expect("append");
    }
    let service = AnalysisService::start(ServiceConfig {
        pool: 1,
        slice: None,
        spool: dir,
        ..ServiceConfig::default()
    })
    .expect("missing checkpoint must not refuse the start");
    assert!(
        service
            .recovery()
            .errors
            .iter()
            .any(|e| matches!(e, RecoveryError::MissingCheckpoint { job: 1, .. })),
        "the missing file is typed: {:?}",
        service.recovery().errors
    );
    let outcome = service.wait(1).expect("job 1 recovered");
    assert_eq!(outcome.error, None);
    service.shutdown();
}

/// Recovering twice must be idempotent: after the first service ran the
/// journaled work to completion and shut down, a second start finds a
/// compacted journal with nothing live — finished jobs never resurrect.
#[test]
fn double_recovery_does_not_resurrect_finished_jobs() {
    let dir = spool("idempotent");
    {
        let mut journal = Journal::open(&dir).expect("open journal");
        journal
            .append(&JournalRecord::Submitted {
                id: 1,
                spec: corpus_spec("Recommender", 12),
            })
            .expect("append");
    }
    let first = AnalysisService::start(ServiceConfig {
        pool: 1,
        slice: None,
        spool: dir.clone(),
        ..ServiceConfig::default()
    })
    .expect("first start");
    assert_eq!(first.recovery().requeued, 1);
    let outcome = first.wait(1).expect("job 1 recovered");
    assert_eq!(outcome.error, None);
    first.shutdown();

    let second = AnalysisService::start(ServiceConfig {
        pool: 1,
        slice: None,
        spool: dir,
        ..ServiceConfig::default()
    })
    .expect("second start");
    let recovery = second.recovery().clone();
    assert_eq!(
        (recovery.requeued, recovery.resumed),
        (0, 0),
        "a finished job must not run again: {recovery:?}"
    );
    assert_eq!(recovery.errors, Vec::new());
    second.shutdown();
}
