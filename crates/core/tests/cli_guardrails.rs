//! CLI guard rails, end to end against the real binary: flag misuse must
//! exit 2 with a pointed message before any analysis starts, and a failing
//! run must still leave valid telemetry files behind (the flush guard
//! covers every exit path, not just success).

use std::path::PathBuf;
use std::process::{Command, Output};

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_privacyscope"))
}

fn stderr(output: &Output) -> String {
    String::from_utf8_lossy(&output.stderr).into_owned()
}

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ps-cli-guard-{}-{tag}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

/// A source/EDL pair that exists on disk but would fail the frontend —
/// the guard-rail errors under test must fire before it is ever parsed.
fn unparsable_inputs(tag: &str) -> (PathBuf, PathBuf) {
    let dir = scratch(tag);
    let source = dir.join("broken.c");
    let edl = dir.join("broken.edl");
    std::fs::write(&source, "int broken( { ;;; }").expect("write source");
    std::fs::write(&edl, "enclave { trusted { public void broken(); }; };").expect("write edl");
    (source, edl)
}

#[test]
fn duplicate_flags_exit_2_before_touching_files() {
    let output = cli()
        .args([
            "analyze",
            "no-such-file.c",
            "no-such-file.edl",
            "--max-paths",
            "4",
            "--max-paths",
            "8",
        ])
        .output()
        .expect("run privacyscope");
    assert_eq!(output.status.code(), Some(2));
    let err = stderr(&output);
    assert!(
        err.contains("duplicate `--max-paths`"),
        "stderr should name the duplicated flag: {err}"
    );
    // The duplicate is caught during flag parsing, before the (missing)
    // input files are ever opened.
    assert!(
        !err.contains("cannot read"),
        "duplicate detection must precede file IO: {err}"
    );
}

#[test]
fn explicit_zero_workers_exits_2_with_a_hint() {
    let (source, edl) = unparsable_inputs("workers0");
    let output = cli()
        .args(["analyze"])
        .arg(&source)
        .arg(&edl)
        .args(["--workers", "0"])
        .output()
        .expect("run privacyscope");
    assert_eq!(output.status.code(), Some(2));
    let err = stderr(&output);
    assert!(
        err.contains("--workers 0") && err.contains("ambiguous"),
        "stderr should explain why an explicit 0 is rejected: {err}"
    );
}

#[test]
fn explicit_zero_checkpoint_every_exits_2_with_a_hint() {
    let (source, edl) = unparsable_inputs("ckpt0");
    let output = cli()
        .args(["analyze"])
        .arg(&source)
        .arg(&edl)
        .args(["--checkpoint", "unused.ckpt", "--checkpoint-every", "0"])
        .output()
        .expect("run privacyscope");
    assert_eq!(output.status.code(), Some(2));
    let err = stderr(&output);
    assert!(
        err.contains("--checkpoint-every 0") && err.contains("never snapshot"),
        "stderr should explain why an explicit 0 is rejected: {err}"
    );
}

#[test]
fn failing_run_still_writes_valid_telemetry() {
    let dir = scratch("telemetry");
    let (source, edl) = unparsable_inputs("telemetry-inputs");
    let trace = dir.join("trace.jsonl");
    let metrics = dir.join("metrics.json");
    let output = cli()
        .args(["analyze"])
        .arg(&source)
        .arg(&edl)
        .arg("--trace-out")
        .arg(&trace)
        .arg("--metrics-out")
        .arg(&metrics)
        .args(["--log-level", "info"])
        .output()
        .expect("run privacyscope");
    // The broken source makes the run fail with a usage/input error…
    assert_eq!(output.status.code(), Some(2));
    // …but the scope guard still flushes both sinks into parseable files.
    let trace_text = std::fs::read_to_string(&trace).expect("trace file exists after a failure");
    for (i, line) in trace_text.lines().filter(|l| !l.is_empty()).enumerate() {
        serde_json::parse(line)
            .unwrap_or_else(|e| panic!("trace line {i} is not valid JSON ({e}): {line}"));
    }
    let metrics_text =
        std::fs::read_to_string(&metrics).expect("metrics file exists after a failure");
    serde_json::parse(&metrics_text)
        .unwrap_or_else(|e| panic!("metrics file is not valid JSON ({e}): {metrics_text}"));
}
