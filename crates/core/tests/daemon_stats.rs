//! Fleet introspection over the real wire: a loaded `privacyscoped` must
//! answer `Stats` frames with a well-formed snapshot, and a daemon
//! restarted after `kill -9` must keep answering — with the recovered
//! jobs visible in the snapshot.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use privacyscope::protocol::{self, ClientFrame, ServerFrame};
use privacyscope::ServiceStats;

/// A running `privacyscoped`, killed when the test ends (pass or panic).
struct Daemon {
    child: Child,
    addr: String,
}

impl Daemon {
    fn start(pool: usize, spool: &PathBuf, extra: &[&str]) -> Daemon {
        let mut child = Command::new(env!("CARGO_BIN_EXE_privacyscoped"))
            .args(["--listen", "127.0.0.1:0", "--pool", &pool.to_string()])
            .arg("--spool")
            .arg(spool)
            .args(extra)
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn privacyscoped");
        let stdout = child.stdout.take().expect("daemon stdout");
        let mut line = String::new();
        BufReader::new(stdout)
            .read_line(&mut line)
            .expect("read the daemon banner");
        let addr = line
            .trim()
            .strip_prefix("privacyscoped: listening on ")
            .unwrap_or_else(|| panic!("unexpected daemon banner: {line:?}"))
            .to_string();
        Daemon { child, addr }
    }

    fn kill9(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// One NDJSON client connection.
struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(addr: &str) -> Client {
        let stream = TcpStream::connect(addr).expect("connect to daemon");
        let reader = BufReader::new(stream.try_clone().expect("clone stream"));
        Client {
            writer: stream,
            reader,
        }
    }

    fn send(&mut self, frame: &ClientFrame) {
        let line = protocol::encode(frame).expect("encode frame");
        self.writer
            .write_all(line.as_bytes())
            .and_then(|()| self.writer.write_all(b"\n"))
            .and_then(|()| self.writer.flush())
            .expect("send frame");
    }

    fn recv(&mut self) -> ServerFrame {
        loop {
            let mut line = String::new();
            let n = self.reader.read_line(&mut line).expect("read frame");
            assert!(n > 0, "daemon closed the connection unexpectedly");
            if line.trim().is_empty() {
                continue;
            }
            return protocol::decode(&line).expect("decode server frame");
        }
    }

    /// Sends `Stats` and returns the snapshot, skipping interleaved
    /// completion frames from jobs submitted on this connection.
    fn stats(&mut self) -> (ServiceStats, telemetry::MetricsSnapshot) {
        self.send(&ClientFrame::Stats);
        let deadline = Instant::now() + Duration::from_secs(30);
        loop {
            assert!(Instant::now() < deadline, "no Stats answer in 30s");
            if let ServerFrame::Stats { service, metrics } = self.recv() {
                return (service, metrics);
            }
        }
    }
}

fn spool(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ps-daemon-stats-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("spool dir");
    dir
}

fn submit_frame(module: &mlcorpus::Module, max_paths: u64) -> ClientFrame {
    ClientFrame::Submit {
        source: module.source.to_string(),
        edl: module.edl.to_string(),
        config: String::new(),
        function: module.entry.to_string(),
        max_paths,
        loop_bound: 2,
        workers: 1,
        deadline_ms: 0,
        progress: false,
    }
}

/// Structural invariants every wire snapshot must satisfy.
fn assert_well_formed(stats: &ServiceStats, context: &str) {
    assert!(
        stats.busy <= stats.pool,
        "{context}: busy {} exceeds pool {}",
        stats.busy,
        stats.pool
    );
    let mut previous = None;
    for job in &stats.jobs {
        assert!(
            previous.is_none_or(|p| p < job.id),
            "{context}: job ids not strictly increasing"
        );
        previous = Some(job.id);
        assert!(!job.state.is_empty(), "{context}: empty job state");
    }
}

/// Counter names must come out sorted-unique: the deterministic-field-order
/// contract the `top` renderer and `--stats-out` validators rely on.
fn assert_deterministic_order(metrics: &telemetry::MetricsSnapshot, context: &str) {
    let names: Vec<&str> = metrics
        .counters
        .iter()
        .map(|(name, _)| name.as_str())
        .collect();
    let mut sorted = names.clone();
    sorted.sort_unstable();
    sorted.dedup();
    assert_eq!(names, sorted, "{context}: counter names not sorted-unique");
}

#[test]
fn stats_frames_are_well_formed_mid_load_and_after_kill_and_recover() {
    let spool = spool("recover");
    let mut daemon = Daemon::start(1, &spool, &["--slice-ms", "100", "--on-disconnect", "park"]);

    // Load the single worker: a slow kmeans job plus queued fillers.
    let mut submitter = Client::connect(&daemon.addr);
    let kmeans = mlcorpus::kmeans::module();
    let filler = mlcorpus::recommender_vulnerable();
    submitter.send(&submit_frame(&kmeans, 16));
    submitter.send(&submit_frame(&filler, 12));
    submitter.send(&submit_frame(&filler, 12));
    for _ in 0..3 {
        match submitter.recv() {
            ServerFrame::Accepted { .. } => {}
            other => panic!("expected Accepted, got {other:?}"),
        }
    }

    // A second connection polls Stats while the pool is saturated.
    let mut observer = Client::connect(&daemon.addr);
    let (mid_load, metrics) = observer.stats();
    assert_well_formed(&mid_load, "mid-load");
    assert_deterministic_order(&metrics, "mid-load");
    assert_eq!(mid_load.pool, 1);
    assert_eq!(
        mid_load.jobs.len(),
        3,
        "all submitted jobs appear in the snapshot"
    );

    // Hard-kill with the work journaled, restart on the same spool: the
    // recovered daemon must answer Stats with the requeued/resumed jobs.
    daemon.kill9();
    drop(observer);
    drop(submitter);
    let daemon = Daemon::start(1, &spool, &["--slice-ms", "100"]);
    let mut observer = Client::connect(&daemon.addr);
    let (recovered, metrics) = observer.stats();
    assert_well_formed(&recovered, "after recovery");
    assert_deterministic_order(&metrics, "after recovery");
    assert!(
        !recovered.jobs.is_empty(),
        "journaled jobs must reappear after kill -9 + restart"
    );
    let recovery_counters: u64 = metrics.counter(telemetry::names::SERVICE_RECOVERY_REQUEUED)
        + metrics.counter(telemetry::names::SERVICE_RECOVERY_RESUMED);
    assert!(
        recovery_counters > 0,
        "recovery must be visible in the service.* counters"
    );

    // The recovered fleet must finish the work: poll until every job in
    // the snapshot reaches a terminal state.
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let (stats, _) = observer.stats();
        let done = stats
            .jobs
            .iter()
            .all(|job| job.state == "done" || job.state == "failed");
        if done && !stats.jobs.is_empty() {
            for job in &stats.jobs {
                assert_eq!(job.state, "done", "job {} failed after recovery", job.id);
                assert!(
                    job.steps > 0,
                    "job {}: completed jobs must report profile steps",
                    job.id
                );
            }
            break;
        }
        assert!(
            Instant::now() < deadline,
            "recovered jobs did not finish in time: {:?}",
            stats.jobs
        );
        std::thread::sleep(Duration::from_millis(100));
    }
}
