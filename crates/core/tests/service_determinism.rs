//! Service determinism: the same job run directly through [`Analyzer`]
//! and through the [`AnalysisService`] must produce byte-identical
//! reports — with a pool of 1, with a pool of 4, and across a forced
//! suspend/resume migration through the checkpoint format. A saturated
//! single-worker queue with a fair-share slice must not starve any job.

use std::path::PathBuf;
use std::time::Duration;

use privacyscope::analyzer::{Analyzer, AnalyzerOptions};
use privacyscope::service::{AnalysisService, JobSpec, ServiceConfig};

/// Zeroes the wall-clock `"time"` stat, the only non-deterministic bytes
/// in a rendered report.
fn normalize(json: &str) -> String {
    let marker = "\"time\": ";
    let mut out = String::with_capacity(json.len());
    let mut rest = json;
    while let Some(pos) = rest.find(marker) {
        let (head, tail) = rest.split_at(pos + marker.len());
        out.push_str(head);
        out.push('0');
        rest = tail.trim_start_matches(|c: char| c.is_ascii_digit());
    }
    out.push_str(rest);
    out
}

fn spool(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("ps-svc-det-{}-{tag}", std::process::id()))
}

fn corpus_spec(name: &str, max_paths: usize) -> JobSpec {
    let module = mlcorpus::modules()
        .into_iter()
        .find(|m| m.name == name)
        .unwrap_or_else(|| panic!("corpus has no module named `{name}`"));
    JobSpec {
        source: module.source.to_string(),
        edl: module.edl.to_string(),
        function: Some(module.entry.to_string()),
        max_paths,
        loop_bound: 2,
        workers: 1,
        ..JobSpec::default()
    }
}

/// The report the CLI would print for this spec, analyzing in-process
/// with no service in the picture.
fn direct_report(spec: &JobSpec) -> String {
    let options = AnalyzerOptions {
        max_paths: spec.max_paths,
        loop_bound: spec.loop_bound,
        workers: spec.workers,
        ..AnalyzerOptions::default()
    };
    let analyzer =
        Analyzer::from_sources(&spec.source, &spec.edl, options).expect("corpus module parses");
    let function = spec.function.as_deref().expect("spec names its entry");
    normalize(
        &analyzer
            .analyze(function)
            .expect("direct analysis succeeds")
            .to_json(),
    )
}

#[test]
fn pool_sizes_do_not_change_reports() {
    let spec = corpus_spec("Kmeans", 16);
    let direct = direct_report(&spec);
    for pool in [1usize, 4] {
        let service = AnalysisService::start(ServiceConfig {
            pool,
            slice: None,
            spool: spool(&format!("pool{pool}")),
            ..ServiceConfig::default()
        })
        .expect("service starts");
        let id = service
            .submit(spec.clone())
            .expect("submission is admitted");
        let outcome = service.wait(id).expect("job reaches a terminal state");
        assert_eq!(outcome.error, None, "pool {pool}: job failed");
        assert_eq!(
            outcome.reports.len(),
            1,
            "pool {pool}: one target, one report"
        );
        assert_eq!(
            normalize(&outcome.reports[0].to_json()),
            direct,
            "pool {pool}: service report diverged from the direct run"
        );
        service.shutdown();
    }
}

#[test]
fn suspend_resume_migration_is_byte_identical() {
    let spec = corpus_spec("Kmeans", 16);
    let direct = direct_report(&spec);
    let service = AnalysisService::start(ServiceConfig {
        pool: 1,
        slice: None,
        spool: spool("migrate"),
        ..ServiceConfig::default()
    })
    .expect("service starts");
    // Suspending a job that has not started yet is deterministic: its
    // first slice parks at wave 0 into the checkpoint, requeues, and the
    // second slice resumes from the spooled snapshot — a full migration
    // through the on-disk format.
    let id = service.submit(spec).expect("submission is admitted");
    assert!(
        service.suspend(id),
        "a queued job accepts a suspend request"
    );
    let outcome = service.wait(id).expect("job reaches a terminal state");
    assert_eq!(outcome.error, None, "migrated job failed");
    assert!(
        outcome.suspensions >= 1,
        "expected at least one suspension, saw {}",
        outcome.suspensions
    );
    assert_eq!(
        normalize(&outcome.reports[0].to_json()),
        direct,
        "report changed across a suspend/resume migration"
    );
    service.shutdown();
}

#[test]
fn saturated_queue_does_not_starve_any_job() {
    // Three jobs dumped at once on a single worker with a short fair-share
    // slice: every job must reach a terminal state with its own correct
    // report, and the preempted ones must match their unpreempted runs.
    let specs = [
        corpus_spec("Kmeans", 16),
        corpus_spec("Recommender", 12),
        corpus_spec("Kmeans", 12),
    ];
    let expected: Vec<String> = specs.iter().map(direct_report).collect();
    let service = AnalysisService::start(ServiceConfig {
        pool: 1,
        slice: Some(Duration::from_millis(50)),
        spool: spool("saturate"),
        ..ServiceConfig::default()
    })
    .expect("service starts");
    let ids: Vec<u64> = specs
        .iter()
        .map(|s| service.submit(s.clone()).expect("submission is admitted"))
        .collect();
    for (i, id) in ids.iter().enumerate() {
        let outcome = service
            .wait(*id)
            .unwrap_or_else(|| panic!("job {i} never reached a terminal state"));
        assert_eq!(outcome.error, None, "job {i} failed under saturation");
        assert_eq!(
            normalize(&outcome.reports[0].to_json()),
            expected[i],
            "job {i}: report diverged under a saturated queue"
        );
    }
    service.shutdown();
}
