//! The nonreversibility property (§IV of the paper), as verdict helpers
//! shared by the symbolic analyzer and the DFA baseline.
//!
//! **Noninterference** demands that varying *high* inputs never changes
//! *low*-observable outputs — which every ML training program violates, as
//! the model legitimately depends on the training data. The paper therefore
//! introduces **nonreversibility**: a program is secure if no *single* high
//! input can be deterministically recovered from the observable outputs.
//! On the taint lattice this becomes a local check:
//!
//! * ⊥ outputs reveal no secret — safe;
//! * `tᵢ` outputs are computed from exactly one secret — an attacker who
//!   sees them can invert the (deterministic) computation — **violation**;
//! * ⊤ outputs mix two or more secrets — each secret masks the others, so
//!   no single one is recoverable — safe (e.g. `l := h₁ + 4 + h₂`).
//!
//! The same trichotomy applies to the path condition π for implicit flows:
//! a branch over a single secret whose sides produce different observables
//! lets the attacker decide the branch and hence constrain that secret.

use std::fmt;

use taint::{Label, SourceId, TaintSet};

/// Which information-flow property the analyzer enforces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Property {
    /// The paper's contribution (§IV): only single-source outputs violate.
    #[default]
    Nonreversibility,
    /// Classical noninterference (§IV's strawman): *any* secret-tainted
    /// output violates. ML programs always fail this — the paper's
    /// motivation for the weaker property; exposed here so the contrast is
    /// executable.
    Noninterference,
}

impl Property {
    /// Whether a value with this taint violates the property.
    pub fn violated_by(self, taint: &TaintSet) -> bool {
        match self {
            Property::Nonreversibility => taint.is_reversible(),
            Property::Noninterference => taint.is_tainted(),
        }
    }
}

impl fmt::Display for Property {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Property::Nonreversibility => write!(f, "nonreversibility"),
            Property::Noninterference => write!(f, "noninterference"),
        }
    }
}

/// The nonreversibility verdict for one observable value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// No secret flows into the value.
    Safe,
    /// Exactly one secret flows in: the value is reversible — a violation.
    Reversible(SourceId),
    /// Two or more secrets mix: not deterministically reversible.
    Mixed(Vec<SourceId>),
}

impl Verdict {
    /// Classifies a taint set.
    pub fn of(taint: &TaintSet) -> Verdict {
        match taint.label() {
            Label::Bot => Verdict::Safe,
            Label::Src(source) => Verdict::Reversible(source),
            Label::Top => Verdict::Mixed(taint.sources().collect()),
        }
    }

    /// Whether this verdict is a nonreversibility violation.
    pub fn is_violation(&self) -> bool {
        matches!(self, Verdict::Reversible(_))
    }

    /// The leaked source, when violating.
    pub fn source(&self) -> Option<SourceId> {
        match self {
            Verdict::Reversible(source) => Some(*source),
            _ => None,
        }
    }
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Verdict::Safe => write!(f, "safe (⊥)"),
            Verdict::Reversible(source) => write!(f, "reversible ({source})"),
            Verdict::Mixed(sources) => {
                write!(f, "mixed (⊤: ")?;
                for (i, s) in sources.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{s}")?;
                }
                write!(f, ")")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verdict_trichotomy() {
        assert_eq!(Verdict::of(&TaintSet::bottom()), Verdict::Safe);
        let one = TaintSet::source(SourceId::new(3));
        assert_eq!(Verdict::of(&one), Verdict::Reversible(SourceId::new(3)));
        assert!(Verdict::of(&one).is_violation());
        assert_eq!(Verdict::of(&one).source(), Some(SourceId::new(3)));
        let two = TaintSet::from_sources([SourceId::new(1), SourceId::new(2)]);
        let v = Verdict::of(&two);
        assert!(!v.is_violation());
        assert_eq!(v.source(), None);
        assert!(matches!(v, Verdict::Mixed(ref s) if s.len() == 2));
    }

    #[test]
    fn property_verdicts() {
        let bot = TaintSet::bottom();
        let one = TaintSet::source(SourceId::new(1));
        let two = TaintSet::from_sources([SourceId::new(1), SourceId::new(2)]);
        // nonreversibility: only single-source outputs violate
        assert!(!Property::Nonreversibility.violated_by(&bot));
        assert!(Property::Nonreversibility.violated_by(&one));
        assert!(!Property::Nonreversibility.violated_by(&two));
        // noninterference: any taint violates (the strict strawman)
        assert!(!Property::Noninterference.violated_by(&bot));
        assert!(Property::Noninterference.violated_by(&one));
        assert!(Property::Noninterference.violated_by(&two));
        assert_eq!(Property::default(), Property::Nonreversibility);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Verdict::Safe.to_string(), "safe (⊥)");
        assert!(Verdict::Reversible(SourceId::new(1))
            .to_string()
            .contains("t1"));
        let two = TaintSet::from_sources([SourceId::new(1), SourceId::new(2)]);
        assert!(Verdict::of(&two).to_string().contains("⊤"));
    }
}
