//! Cross-interpreter agreement pre-flight.
//!
//! The differential oracle (see [`crate::oracle`]) is only as good as the
//! two executions it compares: if the symbolic engine's semantics and the
//! `sgx-sim` interpreter's semantics drift apart, every disagreement it
//! reports is suspect. [`check_agreement`] pins them together: it runs
//! the symbolic engine over a module, instantiates the path that the
//! concrete inputs select (by evaluating each path's branch assumptions
//! under a concrete assignment built from the engine's own symbol hints),
//! and demands that the instantiated return value, `[out]`-buffer writes,
//! and OCALL argument sequence all equal what `sgx-sim` observes for the
//! same inputs.
//!
//! For modules the engine explores exhaustively this is a hard check:
//! exactly one path must match the inputs and every observable must
//! agree. For modules whose path space outruns the budget (e.g. the
//! Kmeans case study), the concrete input's path may have been dropped —
//! [`Agreement::PathNotKept`] reports that honestly instead of vacuously
//! passing.

use std::collections::BTreeMap;
use std::time::Duration;

use symexec::concrete::{ceval, ceval_bool, CAssignment, CVal};
use symexec::engine::{region_hint, Engine, EngineConfig, ParamBinding};
use symexec::state::Channel;
use symexec::value::{Region, SVal};
use symexec::Exploration;

use edl::Prototype;
use sgx_sim::interp::{Value, Word};
use sgx_sim::{EcallArg, EcallResult, Enclave};

use crate::analyzer::DEFAULT_DECRYPT_FUNCTIONS;

/// Pre-flight tuning.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PreflightConfig {
    /// Seed for the concrete input derivation.
    pub seed: u64,
    /// Engine path budget.
    pub max_paths: usize,
    /// Engine symbolic loop bound.
    pub loop_bound: usize,
    /// Engine wall-clock deadline, if any.
    pub deadline_ms: Option<u64>,
    /// Engine value-size cap. The analyzer's production default (64)
    /// summarizes large values into opaque symbols, which the concrete
    /// instantiation cannot see through; the pre-flight raises the cap so
    /// semantic drift is not masked by abstraction. Values that *still*
    /// get summarized are counted as abstracted, not compared.
    pub max_value_size: usize,
}

impl Default for PreflightConfig {
    fn default() -> Self {
        PreflightConfig {
            seed: 0,
            max_paths: 4096,
            loop_bound: 4,
            deadline_ms: None,
            max_value_size: 4096,
        }
    }
}

/// The pre-flight verdict for one module and one concrete input.
#[derive(Debug, Clone, PartialEq)]
pub enum Agreement {
    /// The concrete input selected exactly one symbolic path and every
    /// evaluable observable agreed with `sgx-sim`.
    Match {
        /// Total paths the engine kept.
        paths: usize,
        /// Observables skipped because their symbolic value contains an
        /// abstraction symbol (summarization/widening) that no concrete
        /// input maps to. Zero means the comparison was complete.
        abstracted: usize,
    },
    /// The exploration was budget-limited and none of the kept paths is
    /// the one the concrete input takes — nothing to compare.
    PathNotKept,
    /// Observable drift between the interpreters (the reason to fail the
    /// fuzzing campaign before it starts).
    Mismatch {
        /// One line per drifting observable.
        details: Vec<String>,
    },
}

/// The concrete input derivation: buffer/scalar values assigned to the
/// ECALL parameters, kept alongside the `EcallArg`s so the symbolic side
/// can be instantiated with the same numbers.
struct ConcreteInputs {
    args: Vec<EcallArg>,
    /// `[in]` / `[in,out]` buffer contents, by parameter name.
    buffers: BTreeMap<String, Vec<CVal>>,
    /// Scalar parameter values, by name.
    scalars: BTreeMap<String, CVal>,
    /// `[out]`-only parameter names (zero-filled by the simulator).
    out_params: Vec<String>,
}

fn is_float_type(c_type: &str) -> bool {
    c_type.contains("float") || c_type.contains("double")
}

/// Deterministic input values: small non-negative integers (exact in both
/// `i64` and `f64`, and below every threshold the synthetic generator
/// plants).
fn input_value(seed: u64, ordinal: usize) -> i64 {
    (seed
        .wrapping_mul(0x9e37_79b9)
        .wrapping_add(ordinal as u64 * 11)
        % 37) as i64
}

fn derive_inputs(proto: &Prototype, seed: u64) -> Result<ConcreteInputs, String> {
    let mut inputs = ConcreteInputs {
        args: Vec::new(),
        buffers: BTreeMap::new(),
        scalars: BTreeMap::new(),
        out_params: Vec::new(),
    };
    let mut ordinal = 0usize;
    for param in &proto.params {
        if param.is_pointer() {
            let bound = param
                .attributes
                .count
                .as_ref()
                .or(param.attributes.size.as_ref())
                .ok_or_else(|| format!("parameter `{}` has no bound", param.name))?;
            let count = match bound {
                edl::ast::Bound::Const(n) => *n as usize,
                edl::ast::Bound::Param(name) => {
                    return Err(format!(
                        "parameter `{}` has non-constant bound `{name}`",
                        param.name
                    ))
                }
            };
            let float = is_float_type(&param.c_type);
            let is_in = param.attributes.is_in();
            let is_out = param.attributes.is_out();
            if is_in {
                let mut words = Vec::with_capacity(count);
                let mut cvals = Vec::with_capacity(count);
                for _ in 0..count {
                    let v = input_value(seed, ordinal);
                    ordinal += 1;
                    if float {
                        words.push(Word::Float(v as f64));
                        cvals.push(CVal::Float(v as f64));
                    } else {
                        words.push(Word::Int(v));
                        cvals.push(CVal::Int(v));
                    }
                }
                inputs.buffers.insert(param.name.clone(), cvals);
                inputs.args.push(if is_out {
                    EcallArg::InOut(words)
                } else {
                    EcallArg::In(words)
                });
            } else if is_out {
                inputs.out_params.push(param.name.clone());
                inputs.args.push(EcallArg::Out(count));
            } else {
                return Err(format!("parameter `{}` has no direction", param.name));
            }
        } else {
            let v = input_value(seed, ordinal);
            ordinal += 1;
            let cval = if is_float_type(&param.c_type) {
                inputs.args.push(EcallArg::Float(v as f64));
                CVal::Float(v as f64)
            } else {
                inputs.args.push(EcallArg::Int(v));
                CVal::Int(v)
            };
            inputs.scalars.insert(param.name.clone(), cval);
        }
    }
    Ok(inputs)
}

/// The analyzer's parameter bindings, replicated (no config overrides).
fn bindings(proto: &Prototype) -> Vec<ParamBinding> {
    proto
        .params
        .iter()
        .map(|param| {
            if param.is_pointer() {
                match (param.attributes.is_in(), param.attributes.is_out()) {
                    (true, true) => ParamBinding::InOutPointer,
                    (true, false) => ParamBinding::SecretPointer,
                    (false, true) => ParamBinding::OutPointer,
                    (false, false) => ParamBinding::Pointer,
                }
            } else {
                ParamBinding::Scalar
            }
        })
        .collect()
}

fn collect_symbols(value: &SVal, out: &mut BTreeMap<u32, String>) {
    match value {
        SVal::Sym(sym) => {
            out.insert(sym.id, sym.hint.clone());
        }
        SVal::Binary { lhs, rhs, .. } => {
            collect_symbols(lhs, out);
            collect_symbols(rhs, out);
        }
        SVal::Unary { arg, .. } => collect_symbols(arg, out),
        SVal::Call { args, .. } => {
            for arg in args {
                collect_symbols(arg, out);
            }
        }
        SVal::Int(_) | SVal::Float(_) | SVal::Loc(_) | SVal::Unknown => {}
    }
}

/// Maps a symbol hint (the engine's own naming: `pub0`, `secret[3]`,
/// `out[1]`) to the concrete value the simulator received.
fn hint_value(hint: &str, inputs: &ConcreteInputs) -> Option<CVal> {
    if let Some(v) = inputs.scalars.get(hint) {
        return Some(*v);
    }
    let (name, rest) = hint.split_once('[')?;
    let index: usize = rest.strip_suffix(']')?.parse().ok()?;
    if let Some(buffer) = inputs.buffers.get(name) {
        return buffer.get(index).copied();
    }
    // `[out]`-only slots read before any write: the simulator zero-fills.
    inputs
        .out_params
        .iter()
        .any(|p| p == name)
        .then_some(CVal::Int(0))
}

/// Builds the concrete assignment for every symbol reachable from the
/// exploration's observables and path conditions. Unmappable symbols
/// (widening, summarization, uninterpreted calls) stay unassigned and
/// make the affected evaluation indeterminate rather than wrong.
fn build_assignment(exploration: &Exploration, inputs: &ConcreteInputs) -> CAssignment {
    let mut hints = BTreeMap::new();
    for path in &exploration.paths {
        for assumption in path.state.path.assumptions() {
            collect_symbols(&assumption.cond, &mut hints);
        }
        if let Some((value, _)) = &path.return_value {
            collect_symbols(value, &mut hints);
        }
        for event in path.state.events.iter() {
            collect_symbols(&event.value, &mut hints);
        }
        for (_, base) in &exploration.out_bases {
            for (region, value) in path.state.store.regions_within(base) {
                if let Region::Element { index, .. } = region {
                    collect_symbols(index, &mut hints);
                }
                collect_symbols(value, &mut hints);
            }
        }
    }
    let mut assignment = CAssignment::new();
    for (id, hint) in hints {
        if let Some(v) = hint_value(&hint, inputs) {
            assignment.insert(id, v);
        }
    }
    assignment
}

/// Whether the concrete inputs drive execution down this path: every
/// branch assumption must evaluate, concretely, to the side taken.
fn path_matches(path: &symexec::PathOutcome, assignment: &CAssignment) -> bool {
    path.state
        .path
        .assumptions()
        .iter()
        .all(|a| ceval_bool(&a.cond, assignment) == Some(a.taken))
}

fn value_num(value: &Value) -> Option<CVal> {
    match value {
        Value::Int(v) => Some(CVal::Int(*v)),
        Value::Float(v) => Some(CVal::Float(*v)),
        Value::Ptr { .. } => None,
    }
}

fn word_num(word: &Word) -> Option<CVal> {
    match word {
        Word::Int(v) => Some(CVal::Int(*v)),
        Word::Float(v) => Some(CVal::Float(*v)),
        Word::Uninit => None,
    }
}

fn agree(a: Option<CVal>, b: Option<CVal>) -> bool {
    match (a, b) {
        (Some(a), Some(b)) => a.same_number(b),
        (None, None) => true,
        _ => false,
    }
}

fn render(v: Option<CVal>) -> String {
    match v {
        Some(CVal::Int(x)) => x.to_string(),
        Some(CVal::Float(x)) => format!("{x:?}"),
        None => "<none>".to_string(),
    }
}

/// Whether `value` references a symbol the concrete input cannot supply
/// (summarization, widening, uninterpreted calls): the value is then an
/// abstraction artifact, not comparable concretely.
fn has_unmapped(value: &SVal, assignment: &CAssignment) -> bool {
    let mut symbols = std::collections::BTreeSet::new();
    value.symbols(&mut symbols);
    symbols.iter().any(|id| !assignment.contains_key(id))
}

/// Compares the matched symbolic path's observables against the
/// simulator's, appending one line per drift; observables whose symbolic
/// value is abstracted (unmapped symbols) are counted, not compared.
fn compare_path(
    path: &symexec::PathOutcome,
    exploration: &Exploration,
    assignment: &CAssignment,
    result: &EcallResult,
    details: &mut Vec<String>,
    abstracted: &mut usize,
) {
    // Return value.
    let sim_ret = result.ret.as_ref().and_then(value_num);
    match &path.return_value {
        Some((v, _)) if has_unmapped(v, assignment) => *abstracted += 1,
        ret => {
            let engine_ret = ret.as_ref().and_then(|(v, _)| ceval(v, assignment));
            if !agree(engine_ret, sim_ret) {
                details.push(format!(
                    "return value: engine {} vs sim {}",
                    render(engine_ret),
                    render(sim_ret)
                ));
            }
        }
    }
    // `[out]` buffer writes: every slot the engine bound must hold the
    // simulator's final value (untouched slots stay zero-filled on both
    // sides by construction).
    for (name, base) in &exploration.out_bases {
        for (region, value) in path.state.store.regions_within(base) {
            let Region::Element { index, .. } = region else {
                continue;
            };
            let Some(CVal::Int(slot)) = ceval(index, assignment) else {
                continue;
            };
            let Ok(slot) = usize::try_from(slot) else {
                continue;
            };
            if has_unmapped(value, assignment) {
                *abstracted += 1;
                continue;
            }
            let engine_v = ceval(value, assignment);
            let sim_v = result
                .outs
                .get(name)
                .and_then(|words| words.get(slot))
                .and_then(word_num);
            if !agree(engine_v, sim_v) {
                details.push(format!(
                    "{}: engine {} vs sim {}",
                    region_hint(region),
                    render(engine_v),
                    render(sim_v)
                ));
            }
        }
    }
    // OCALL argument sequence, in program order. The engine logs one
    // event per (call, argument); flatten the simulator's log the same
    // way.
    let engine_calls: Vec<(String, usize, Option<CVal>, bool)> = path
        .state
        .events
        .iter()
        .filter_map(|event| match &event.channel {
            Channel::SinkCall { func, arg } => {
                let opaque = has_unmapped(&event.value, assignment);
                Some((func.clone(), *arg, ceval(&event.value, assignment), opaque))
            }
            Channel::Return | Channel::OutParam { .. } => None,
        })
        .collect();
    let sim_calls: Vec<(String, usize, Option<CVal>)> = result
        .ocalls
        .iter()
        .flat_map(|(name, args)| {
            args.iter()
                .enumerate()
                .map(|(i, v)| (name.clone(), i, value_num(v)))
        })
        .collect();
    if engine_calls.len() != sim_calls.len() {
        details.push(format!(
            "ocall sequence length: engine {} vs sim {}",
            engine_calls.len(),
            sim_calls.len()
        ));
        return;
    }
    for ((ef, ea, ev, opaque), (sf, sa, sv)) in engine_calls.iter().zip(&sim_calls) {
        if *opaque {
            *abstracted += 1;
            if ef != sf || ea != sa {
                details.push(format!("ocall position: engine {ef}#{ea} vs sim {sf}#{sa}"));
            }
            continue;
        }
        if ef != sf || ea != sa || !agree(*ev, *sv) {
            details.push(format!(
                "ocall argument: engine {ef}#{ea}={} vs sim {sf}#{sa}={}",
                render(*ev),
                render(*sv)
            ));
        }
    }
}

/// Runs the agreement check for one module under one seed.
///
/// # Errors
///
/// Returns a rendered reason when the check itself cannot run (parse
/// errors, unsupported EDL bounds, simulator faults, engine errors) —
/// distinct from [`Agreement::Mismatch`], which means the check ran and
/// the interpreters drifted.
pub fn check_agreement(
    source: &str,
    edl_text: &str,
    entry: &str,
    config: &PreflightConfig,
) -> Result<Agreement, String> {
    let unit = minic::parse(source).map_err(|e| e.to_string())?;
    let edl_file = edl::parse_edl(edl_text).map_err(|e| e.to_string())?;
    let proto = edl_file
        .ecall(entry)
        .ok_or_else(|| format!("no ECALL `{entry}`"))?
        .clone();
    let inputs = derive_inputs(&proto, config.seed)?;

    // Symbolic side, configured exactly like the analyzer.
    let mut engine_config = EngineConfig {
        loop_bound: config.loop_bound,
        max_paths: config.max_paths,
        deadline: config.deadline_ms.map(Duration::from_millis),
        max_value_size: config.max_value_size,
        ..EngineConfig::default()
    };
    for sink in edl_file.ocall_names() {
        engine_config.sink_functions.insert(sink);
    }
    for func in DEFAULT_DECRYPT_FUNCTIONS {
        engine_config.source_functions.insert((*func).to_string());
    }
    let engine = Engine::new(&unit, engine_config).with_source(source.to_string());
    let exploration = engine
        .run(entry, &bindings(&proto))
        .map_err(|e| e.to_string())?;

    // Concrete side.
    let enclave = Enclave::load(source, edl_text).map_err(|e| e.to_string())?;
    let result = enclave
        .ecall(entry, &inputs.args)
        .map_err(|e| e.to_string())?;

    let assignment = build_assignment(&exploration, &inputs);
    let complete = !exploration.exhausted && exploration.ledger.is_empty();
    let matched: Vec<_> = exploration
        .paths
        .iter()
        .filter(|p| path_matches(p, &assignment))
        .collect();
    match matched.as_slice() {
        [] if complete => Err(format!(
            "no kept path matches the concrete input despite a complete \
             exploration ({} paths)",
            exploration.paths.len()
        )),
        [] => Ok(Agreement::PathNotKept),
        [path] => {
            let mut details = Vec::new();
            let mut abstracted = 0usize;
            compare_path(
                path,
                &exploration,
                &assignment,
                &result,
                &mut details,
                &mut abstracted,
            );
            if details.is_empty() {
                Ok(Agreement::Match {
                    paths: exploration.paths.len(),
                    abstracted,
                })
            } else {
                Ok(Agreement::Mismatch { details })
            }
        }
        many => Err(format!(
            "{} paths match one concrete input — path conditions are not \
             mutually exclusive under evaluation",
            many.len()
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inputs_are_deterministic_and_small() {
        assert_eq!(input_value(3, 5), input_value(3, 5));
        for ordinal in 0..64 {
            let v = input_value(9, ordinal);
            assert!((0..37).contains(&v));
        }
    }

    #[test]
    fn hint_values_map_buffers_scalars_and_out_slots() {
        let mut inputs = ConcreteInputs {
            args: Vec::new(),
            buffers: BTreeMap::new(),
            scalars: BTreeMap::new(),
            out_params: vec!["out".to_string()],
        };
        inputs
            .buffers
            .insert("secret".to_string(), vec![CVal::Int(7), CVal::Int(9)]);
        inputs.scalars.insert("pub0".to_string(), CVal::Int(5));
        assert_eq!(hint_value("pub0", &inputs), Some(CVal::Int(5)));
        assert_eq!(hint_value("secret[1]", &inputs), Some(CVal::Int(9)));
        assert_eq!(hint_value("out[4]", &inputs), Some(CVal::Int(0)));
        assert_eq!(hint_value("secret[9]", &inputs), None);
        assert_eq!(hint_value("widened(x)", &inputs), None);
    }
}
