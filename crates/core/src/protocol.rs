//! The `privacyscoped` wire protocol: newline-delimited JSON frames over a
//! local stream (TCP on loopback or a Unix socket).
//!
//! One JSON value per line, externally tagged by variant name. Every field
//! is always present (the vendored serde shim requires complete structs),
//! which also keeps the protocol trivially greppable. The daemon never
//! reorders frames within a job: a client sees `Accepted`, then any number
//! of `Progress` frames, then exactly one `Done` or `Error`.
//!
//! Reports travel pre-rendered (`reports` = pretty JSON, `rendered` = the
//! human Box-1 text) so a client prints byte-for-byte what a local CLI run
//! would have printed, without needing to re-serialize.
//!
//! # Hardening
//!
//! The reader side is bounded: [`FrameReader`] enforces a maximum frame
//! size (default [`DEFAULT_MAX_FRAME_BYTES`]) so a single giant line
//! cannot OOM the daemon, maps socket read timeouts to a typed
//! [`FrameError::TimedOut`], and *resynchronises* after damage — an
//! oversized or malformed line is consumed up to its newline, so the
//! next valid line decodes normally. Overload and recovery outcomes are
//! first-class frames ([`ServerFrame::Rejected`],
//! [`ServerFrame::Recovery`]) rather than dropped connections.

use std::fmt;
use std::io::{BufRead, ErrorKind};

use serde::{Deserialize, Serialize};

/// Frames a client sends to the daemon.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ClientFrame {
    /// Submit an analysis job. Empty `config`/`function` mean "none";
    /// `deadline_ms` of 0 means unbounded. With `progress` set, the daemon
    /// streams the job's JSONL telemetry records as `Progress` frames.
    Submit {
        source: String,
        edl: String,
        config: String,
        function: String,
        max_paths: u64,
        loop_bound: u64,
        workers: u64,
        deadline_ms: u64,
        progress: bool,
    },
    /// Ask for a job's lifecycle state.
    Status { job: u64 },
    /// Ask for a terminal job's result: answered with `Done`/`Error` once
    /// the job finished, or `State` while it is still in flight. This is
    /// how a client re-attaches to a job that outlived its original
    /// connection (daemon restart, disconnect-park policy).
    Fetch { job: u64 },
    /// Ask what the daemon's crash-recovery pass did at startup.
    Recovery,
    /// Ask for a fleet-introspection snapshot: queue depth, per-job
    /// lifecycle + progress, pool utilization, and the daemon's telemetry
    /// counters and latency histograms. Answered with
    /// [`ServerFrame::Stats`].
    Stats,
    /// Liveness probe.
    Ping,
    /// Ask the daemon to drain gracefully and exit: stop admitting, park
    /// running jobs at their next wave boundary into the journaled spool,
    /// then exit 0. Equivalent to SIGTERM.
    Shutdown,
}

/// Frames the daemon sends back.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ServerFrame {
    /// The job was admitted to the queue.
    Accepted { job: u64 },
    /// Lifecycle state answer (`queued`, `running`, `suspended`, `done`,
    /// `failed`, or `unknown`).
    State { job: u64, state: String },
    /// One JSONL telemetry record from the running exploration.
    Progress { job: u64, record: String },
    /// Terminal success: `exit` follows the CLI convention (0 secure and
    /// complete, 1 violations, 3 secure but degraded); one entry per
    /// analyzed target in `reports` (pretty JSON) and `rendered` (text).
    Done {
        job: u64,
        exit: u64,
        reports: Vec<String>,
        rendered: Vec<String>,
    },
    /// Terminal failure (exit 2): the inputs were rejected.
    Error { job: u64, message: String },
    /// Admission control shed the submission (`job` is always 0 — no id
    /// was allocated). `code` is the stable machine class
    /// (`queue_full` / `path_budget` / `draining`), `reason` the human
    /// explanation. The connection stays open: the client may retry.
    Rejected {
        job: u64,
        code: String,
        reason: String,
    },
    /// What the daemon's crash-recovery pass did at startup, in answer to
    /// a `Recovery` query: journaled jobs re-enqueued from scratch or
    /// resumed from validated spool checkpoints, terminal records
    /// discarded, orphaned spool files removed, and every typed
    /// recovery error rendered one per entry.
    Recovery {
        requeued: u64,
        resumed: u64,
        discarded: u64,
        orphans_removed: u64,
        errors: Vec<String>,
    },
    /// Fleet-introspection snapshot, in answer to [`ClientFrame::Stats`].
    /// Field order is deterministic: `service` fields in declaration
    /// order with jobs in id order, `metrics` counters and histograms in
    /// sorted-name order — two snapshots of identical state encode
    /// byte-identically.
    Stats {
        /// Queue, pool utilization, and per-job lifecycle + progress.
        service: crate::service::ServiceStats,
        /// The daemon's telemetry registry: `service.*` / `daemon.*` /
        /// `engine.*` counters and fixed-bucket latency histograms.
        metrics: telemetry::MetricsSnapshot,
    },
    /// Answer to `Ping` (and acknowledgement of `Shutdown`).
    Pong,
}

/// Default bound on one NDJSON frame (16 MB): generous for real enclave
/// sources, small enough that a hostile or broken client cannot make the
/// daemon buffer an unbounded line.
pub const DEFAULT_MAX_FRAME_BYTES: usize = 16 * 1024 * 1024;

/// Typed failure of one bounded frame read.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// The line exceeded the reader's frame-size bound. The excess was
    /// consumed up to the next newline (or EOF), so the stream is
    /// resynchronised: the next read starts at a line boundary.
    Oversized { limit: usize },
    /// The underlying stream's read timeout elapsed mid-frame (idle
    /// client, half-open connection).
    TimedOut,
    /// Any other I/O failure; the connection is unusable.
    Io { message: String },
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Oversized { limit } => {
                write!(f, "frame exceeds the {limit}-byte limit")
            }
            FrameError::TimedOut => f.write_str("read timed out waiting for a frame"),
            FrameError::Io { message } => write!(f, "read failed: {message}"),
        }
    }
}

impl std::error::Error for FrameError {}

/// A bounded NDJSON line reader: like [`BufRead::read_line`] but it never
/// buffers more than `max_frame_bytes` of one line, maps timeouts to a
/// typed error, and skips to the next line boundary after an oversized
/// frame so the caller can keep decoding (resynchronisation).
#[derive(Debug)]
pub struct FrameReader<R> {
    reader: R,
    max_frame_bytes: usize,
}

impl<R: BufRead> FrameReader<R> {
    /// Wraps a buffered reader with the given frame-size bound
    /// (`0` = [`DEFAULT_MAX_FRAME_BYTES`]).
    pub fn new(reader: R, max_frame_bytes: usize) -> FrameReader<R> {
        FrameReader {
            reader,
            max_frame_bytes: if max_frame_bytes == 0 {
                DEFAULT_MAX_FRAME_BYTES
            } else {
                max_frame_bytes
            },
        }
    }

    /// The active frame-size bound.
    pub fn max_frame_bytes(&self) -> usize {
        self.max_frame_bytes
    }

    /// Reads the next line (without its newline). `Ok(None)` is a clean
    /// EOF at a line boundary.
    ///
    /// # Errors
    ///
    /// [`FrameError::Oversized`] when the line exceeds the bound (the
    /// rest of the line is discarded so the next call resynchronises),
    /// [`FrameError::TimedOut`] when the stream's read timeout fires, and
    /// [`FrameError::Io`] for any other failure.
    pub fn next_line(&mut self) -> Result<Option<String>, FrameError> {
        let mut line: Vec<u8> = Vec::new();
        loop {
            let available = match self.reader.fill_buf() {
                Ok(buffer) => buffer,
                Err(error) if error.kind() == ErrorKind::Interrupted => continue,
                Err(error)
                    if error.kind() == ErrorKind::WouldBlock
                        || error.kind() == ErrorKind::TimedOut =>
                {
                    return Err(FrameError::TimedOut)
                }
                Err(error) => {
                    return Err(FrameError::Io {
                        message: error.to_string(),
                    })
                }
            };
            if available.is_empty() {
                // EOF. A partial line with no newline is still delivered;
                // the decoder will classify it.
                return if line.is_empty() {
                    Ok(None)
                } else {
                    Ok(Some(String::from_utf8_lossy(&line).into_owned()))
                };
            }
            let newline = available.iter().position(|&b| b == b'\n');
            let take = newline.map_or(available.len(), |at| at);
            if line.len() + take > self.max_frame_bytes {
                let consumed = available.len().min(take + usize::from(newline.is_some()));
                self.reader.consume(consumed);
                self.discard_to_newline(newline.is_some())?;
                return Err(FrameError::Oversized {
                    limit: self.max_frame_bytes,
                });
            }
            line.extend_from_slice(&available[..take]);
            let done = newline.is_some();
            self.reader.consume(take + usize::from(done));
            if done {
                return Ok(Some(String::from_utf8_lossy(&line).into_owned()));
            }
        }
    }

    /// After an oversized frame: drop bytes until a newline (or EOF) so
    /// the stream is back at a line boundary. Already-found newlines skip
    /// the scan.
    fn discard_to_newline(&mut self, already_complete: bool) -> Result<(), FrameError> {
        if already_complete {
            return Ok(());
        }
        loop {
            let available = match self.reader.fill_buf() {
                Ok(buffer) => buffer,
                Err(error) if error.kind() == ErrorKind::Interrupted => continue,
                Err(error)
                    if error.kind() == ErrorKind::WouldBlock
                        || error.kind() == ErrorKind::TimedOut =>
                {
                    return Err(FrameError::TimedOut)
                }
                Err(error) => {
                    return Err(FrameError::Io {
                        message: error.to_string(),
                    })
                }
            };
            if available.is_empty() {
                return Ok(());
            }
            match available.iter().position(|&b| b == b'\n') {
                Some(at) => {
                    self.reader.consume(at + 1);
                    return Ok(());
                }
                None => {
                    let all = available.len();
                    self.reader.consume(all);
                }
            }
        }
    }
}

/// Encodes a frame as one NDJSON line (no trailing newline).
///
/// # Errors
///
/// Propagates the serializer error (practically unreachable for these
/// types).
pub fn encode<T: Serialize>(frame: &T) -> Result<String, String> {
    serde_json::to_string(frame).map_err(|e| e.to_string())
}

/// Decodes one NDJSON line into a frame.
///
/// # Errors
///
/// Returns a description of the malformed line.
pub fn decode<T: serde::DeserializeOwned>(line: &str) -> Result<T, String> {
    serde_json::from_str(line.trim()).map_err(|e| format!("malformed frame: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip() {
        let frames = vec![
            ClientFrame::Submit {
                source: "int f() { return 0; }".into(),
                edl: "enclave { trusted { public int f(); }; };".into(),
                config: String::new(),
                function: "f".into(),
                max_paths: 4096,
                loop_bound: 4,
                workers: 1,
                deadline_ms: 0,
                progress: true,
            },
            ClientFrame::Status { job: 7 },
            ClientFrame::Fetch { job: 7 },
            ClientFrame::Recovery,
            ClientFrame::Stats,
            ClientFrame::Ping,
            ClientFrame::Shutdown,
        ];
        for frame in frames {
            let line = encode(&frame).unwrap();
            assert!(!line.contains('\n'), "{line}");
            let back: ClientFrame = decode(&line).unwrap();
            assert_eq!(frame, back);
        }

        let frames = vec![
            ServerFrame::Accepted { job: 1 },
            ServerFrame::State {
                job: 1,
                state: "running".into(),
            },
            ServerFrame::Progress {
                job: 1,
                record: "{\"kind\":\"span\"}".into(),
            },
            ServerFrame::Done {
                job: 1,
                exit: 0,
                reports: vec!["{}".into()],
                rendered: vec!["=== report ===".into()],
            },
            ServerFrame::Error {
                job: 2,
                message: "parse error".into(),
            },
            ServerFrame::Rejected {
                job: 0,
                code: "queue_full".into(),
                reason: "queue is full (8 waiting, limit 8); retry later".into(),
            },
            ServerFrame::Recovery {
                requeued: 2,
                resumed: 1,
                discarded: 4,
                orphans_removed: 3,
                errors: vec!["journal record at line 7 torn mid-append; dropped".into()],
            },
            ServerFrame::Stats {
                service: crate::service::ServiceStats {
                    queue_depth: 3,
                    pool: 2,
                    busy: 2,
                    draining: false,
                    jobs: vec![crate::service::JobSnapshot {
                        id: 9,
                        state: "running".into(),
                        suspensions: 1,
                        waves: 4,
                        frontier: 12,
                        steps: 300,
                    }],
                },
                metrics: telemetry::MetricsSnapshot {
                    counters: vec![("service.parked".into(), 1)],
                    histograms: vec![telemetry::HistogramSnapshot {
                        name: "engine.wave_us".into(),
                        bounds_us: telemetry::BUCKET_BOUNDS_US.to_vec(),
                        counts: vec![0; telemetry::BUCKET_BOUNDS_US.len() + 1],
                        count: 0,
                        sum_us: 0,
                    }],
                },
            },
            ServerFrame::Pong,
        ];
        for frame in frames {
            let line = encode(&frame).unwrap();
            assert!(!line.contains('\n'), "{line}");
            let back: ServerFrame = decode(&line).unwrap();
            assert_eq!(frame, back);
        }
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(decode::<ClientFrame>("not json").is_err());
        assert!(decode::<ServerFrame>("{\"Nope\":{}}").is_err());
    }

    #[test]
    fn frame_reader_bounds_and_resyncs() {
        let ping = encode(&ClientFrame::Ping).expect("encode");
        let huge = "x".repeat(256);
        let input = format!("{ping}\n{huge}\n{ping}\n");
        let mut reader = FrameReader::new(std::io::Cursor::new(input.into_bytes()), 64);
        assert_eq!(reader.next_line().expect("first line"), Some(ping.clone()));
        assert_eq!(
            reader.next_line(),
            Err(FrameError::Oversized { limit: 64 }),
            "the giant line is shed, not buffered"
        );
        // Resynchronised: the next valid frame decodes normally.
        let line = reader.next_line().expect("resync").expect("third line");
        assert_eq!(decode::<ClientFrame>(&line), Ok(ClientFrame::Ping));
        assert_eq!(reader.next_line().expect("eof"), None);
    }

    #[test]
    fn frame_reader_delivers_final_unterminated_line() {
        let mut reader = FrameReader::new(std::io::Cursor::new(b"{\"Status\":{\"jo".to_vec()), 64);
        assert_eq!(
            reader.next_line().expect("partial final line"),
            Some("{\"Status\":{\"jo".to_string())
        );
        assert_eq!(reader.next_line().expect("eof"), None);
    }

    #[test]
    fn frame_reader_zero_uses_default_bound() {
        let reader = FrameReader::new(std::io::Cursor::new(Vec::new()), 0);
        assert_eq!(reader.max_frame_bytes(), DEFAULT_MAX_FRAME_BYTES);
    }

    #[test]
    fn frame_reader_oversized_straddling_buffer_chunks() {
        // A line larger than BufReader's internal buffer exercises the
        // multi-chunk discard path.
        let huge = "y".repeat(64 * 1024);
        let ping = encode(&ClientFrame::Ping).expect("encode");
        let input = format!("{huge}\n{ping}\n");
        let buffered =
            std::io::BufReader::with_capacity(512, std::io::Cursor::new(input.into_bytes()));
        let mut reader = FrameReader::new(buffered, 1024);
        assert_eq!(
            reader.next_line(),
            Err(FrameError::Oversized { limit: 1024 })
        );
        let line = reader.next_line().expect("resync").expect("next frame");
        assert_eq!(decode::<ClientFrame>(&line), Ok(ClientFrame::Ping));
    }
}
