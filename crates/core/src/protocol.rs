//! The `privacyscoped` wire protocol: newline-delimited JSON frames over a
//! local stream (TCP on loopback or a Unix socket).
//!
//! One JSON value per line, externally tagged by variant name. Every field
//! is always present (the vendored serde shim requires complete structs),
//! which also keeps the protocol trivially greppable. The daemon never
//! reorders frames within a job: a client sees `Accepted`, then any number
//! of `Progress` frames, then exactly one `Done` or `Error`.
//!
//! Reports travel pre-rendered (`reports` = pretty JSON, `rendered` = the
//! human Box-1 text) so a client prints byte-for-byte what a local CLI run
//! would have printed, without needing to re-serialize.

use serde::{Deserialize, Serialize};

/// Frames a client sends to the daemon.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ClientFrame {
    /// Submit an analysis job. Empty `config`/`function` mean "none";
    /// `deadline_ms` of 0 means unbounded. With `progress` set, the daemon
    /// streams the job's JSONL telemetry records as `Progress` frames.
    Submit {
        source: String,
        edl: String,
        config: String,
        function: String,
        max_paths: u64,
        loop_bound: u64,
        workers: u64,
        deadline_ms: u64,
        progress: bool,
    },
    /// Ask for a job's lifecycle state.
    Status { job: u64 },
    /// Liveness probe.
    Ping,
    /// Ask the daemon to exit once the connection closes.
    Shutdown,
}

/// Frames the daemon sends back.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ServerFrame {
    /// The job was admitted to the queue.
    Accepted { job: u64 },
    /// Lifecycle state answer (`queued`, `running`, `suspended`, `done`,
    /// `failed`, or `unknown`).
    State { job: u64, state: String },
    /// One JSONL telemetry record from the running exploration.
    Progress { job: u64, record: String },
    /// Terminal success: `exit` follows the CLI convention (0 secure and
    /// complete, 1 violations, 3 secure but degraded); one entry per
    /// analyzed target in `reports` (pretty JSON) and `rendered` (text).
    Done {
        job: u64,
        exit: u64,
        reports: Vec<String>,
        rendered: Vec<String>,
    },
    /// Terminal failure (exit 2): the inputs were rejected.
    Error { job: u64, message: String },
    /// Answer to `Ping` (and acknowledgement of `Shutdown`).
    Pong,
}

/// Encodes a frame as one NDJSON line (no trailing newline).
///
/// # Errors
///
/// Propagates the serializer error (practically unreachable for these
/// types).
pub fn encode<T: Serialize>(frame: &T) -> Result<String, String> {
    serde_json::to_string(frame).map_err(|e| e.to_string())
}

/// Decodes one NDJSON line into a frame.
///
/// # Errors
///
/// Returns a description of the malformed line.
pub fn decode<T: serde::DeserializeOwned>(line: &str) -> Result<T, String> {
    serde_json::from_str(line.trim()).map_err(|e| format!("malformed frame: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip() {
        let frames = vec![
            ClientFrame::Submit {
                source: "int f() { return 0; }".into(),
                edl: "enclave { trusted { public int f(); }; };".into(),
                config: String::new(),
                function: "f".into(),
                max_paths: 4096,
                loop_bound: 4,
                workers: 1,
                deadline_ms: 0,
                progress: true,
            },
            ClientFrame::Status { job: 7 },
            ClientFrame::Ping,
            ClientFrame::Shutdown,
        ];
        for frame in frames {
            let line = encode(&frame).unwrap();
            assert!(!line.contains('\n'), "{line}");
            let back: ClientFrame = decode(&line).unwrap();
            assert_eq!(frame, back);
        }

        let frames = vec![
            ServerFrame::Accepted { job: 1 },
            ServerFrame::State {
                job: 1,
                state: "running".into(),
            },
            ServerFrame::Progress {
                job: 1,
                record: "{\"kind\":\"span\"}".into(),
            },
            ServerFrame::Done {
                job: 1,
                exit: 0,
                reports: vec!["{}".into()],
                rendered: vec!["=== report ===".into()],
            },
            ServerFrame::Error {
                job: 2,
                message: "parse error".into(),
            },
            ServerFrame::Pong,
        ];
        for frame in frames {
            let line = encode(&frame).unwrap();
            assert!(!line.contains('\n'), "{line}");
            let back: ServerFrame = decode(&line).unwrap();
            assert_eq!(frame, back);
        }
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(decode::<ClientFrame>("not json").is_err());
        assert!(decode::<ServerFrame>("{\"Nope\":{}}").is_err());
    }
}
