//! The PrivacyScope command-line driver.
//!
//! ```text
//! privacyscope analyze <enclave.c> <enclave.edl> [options]
//!     --config <file.xml>   XML analysis configuration (§V-C)
//!     --function <name>     analyze one ECALL (default: all targets)
//!     --json                emit machine-readable reports
//!     --trace               print the Table-IV-style exploration table
//!     --baseline            run the path-insensitive DFA baseline instead
//!     --max-paths <n>       path budget (default 4096)
//!     --loop-bound <n>      symbolic loop bound (default 4)
//!     --workers <n>         exploration threads (0 = all cores, 1 = sequential)
//!
//! privacyscope priml <program.priml>
//!     analyze a PRIML program with the formal semantics and print the
//!     simulation table (Tables II/III style)
//! ```
//!
//! Exit code: 0 when every analyzed function satisfies nonreversibility,
//! 1 when violations were found, 2 on usage or input errors.

use std::process::ExitCode;

use privacyscope::{Analyzer, AnalyzerOptions};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(secure) => {
            if secure {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(1)
            }
        }
        Err(message) => {
            eprintln!("privacyscope: {message}");
            ExitCode::from(2)
        }
    }
}

fn run(args: &[String]) -> Result<bool, String> {
    match args.first().map(String::as_str) {
        Some("analyze") => analyze(&args[1..]),
        Some("priml") => priml_mode(&args[1..]),
        Some("--help") | Some("-h") | None => {
            print!("{}", USAGE);
            Ok(true)
        }
        Some(other) => Err(format!("unknown command `{other}`\n{USAGE}")),
    }
}

const USAGE: &str = "\
usage:
  privacyscope analyze <enclave.c> <enclave.edl> [--config <xml>] [--function <name>]
                       [--json] [--trace] [--baseline] [--max-paths <n>] [--loop-bound <n>]
                       [--workers <n>]
  privacyscope priml <program.priml>
";

struct Cli {
    positional: Vec<String>,
    flags: Vec<(String, Option<String>)>,
}

fn parse_cli(args: &[String], value_flags: &[&str], bool_flags: &[&str]) -> Result<Cli, String> {
    let mut positional = Vec::new();
    let mut flags = Vec::new();
    let mut iter = args.iter().peekable();
    while let Some(arg) = iter.next() {
        if let Some(name) = arg.strip_prefix("--") {
            if value_flags.contains(&name) {
                let value = iter
                    .next()
                    .ok_or_else(|| format!("--{name} needs a value"))?;
                flags.push((name.to_string(), Some(value.clone())));
            } else if bool_flags.contains(&name) {
                flags.push((name.to_string(), None));
            } else {
                return Err(format!("unknown option `--{name}`\n{USAGE}"));
            }
        } else {
            positional.push(arg.clone());
        }
    }
    Ok(Cli { positional, flags })
}

impl Cli {
    fn has(&self, name: &str) -> bool {
        self.flags.iter().any(|(n, _)| n == name)
    }

    fn value(&self, name: &str) -> Option<&str> {
        self.flags
            .iter()
            .find(|(n, _)| n == name)
            .and_then(|(_, v)| v.as_deref())
    }

    fn usize_value(&self, name: &str, default: usize) -> Result<usize, String> {
        match self.value(name) {
            None => Ok(default),
            Some(text) => text
                .parse()
                .map_err(|_| format!("--{name} expects a number, got `{text}`")),
        }
    }
}

fn read(path: &str) -> Result<String, String> {
    std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))
}

fn analyze(args: &[String]) -> Result<bool, String> {
    let cli = parse_cli(
        args,
        &["config", "function", "max-paths", "loop-bound", "workers"],
        &["json", "trace", "baseline"],
    )?;
    let [source_path, edl_path] = cli.positional.as_slice() else {
        return Err(format!(
            "`analyze` needs <enclave.c> and <enclave.edl>\n{USAGE}"
        ));
    };
    let source = read(source_path)?;
    let edl_text = read(edl_path)?;

    let options = AnalyzerOptions {
        max_paths: cli.usize_value("max-paths", 4096)?,
        loop_bound: cli.usize_value("loop-bound", 4)?,
        workers: cli.usize_value("workers", 0)?,
        ..AnalyzerOptions::default()
    };

    let analyzer = match cli.value("config") {
        Some(config_path) => {
            let xml = read(config_path)?;
            Analyzer::with_config(&source, &edl_text, &xml, options)
        }
        None => Analyzer::from_sources(&source, &edl_text, options),
    }
    .map_err(|e| e.to_string())?;

    let targets = match cli.value("function") {
        Some(name) => vec![name.to_string()],
        None => analyzer.targets(),
    };
    if targets.is_empty() {
        return Err("no public ECALLs to analyze (and no --function given)".into());
    }

    let mut secure = true;
    for target in &targets {
        if cli.has("baseline") {
            let report = privacyscope::baseline::analyze(&source, &edl_text, target)
                .map_err(|e| e.to_string())?;
            emit(&report, cli.has("json"));
            secure &= report.is_secure();
            continue;
        }
        if cli.has("trace") {
            let table = analyzer.trace_table(target).map_err(|e| e.to_string())?;
            println!("── exploration of `{target}` ──");
            println!("{table}");
        }
        let report = analyzer.analyze(target).map_err(|e| e.to_string())?;
        emit(&report, cli.has("json"));
        secure &= report.is_secure();
    }
    Ok(secure)
}

fn emit(report: &privacyscope::Report, json: bool) {
    if json {
        println!("{}", report.to_json());
    } else {
        println!("{report}");
    }
}

fn priml_mode(args: &[String]) -> Result<bool, String> {
    let cli = parse_cli(args, &[], &[])?;
    let [path] = cli.positional.as_slice() else {
        return Err(format!("`priml` needs a program file\n{USAGE}"));
    };
    let source = read(path)?;
    let program = priml::parse(&source).map_err(|e| e.to_string())?;
    let outcome = priml::analysis::analyze(&program);
    println!("{}", priml::analysis::render_table3(&outcome));
    for violation in &outcome.violations {
        println!("violation: {violation}");
    }
    if outcome.is_secure() {
        println!("nonreversibility holds.");
    }
    Ok(outcome.is_secure())
}
