//! The PrivacyScope command-line driver.
//!
//! ```text
//! privacyscope analyze <enclave.c> <enclave.edl> [options]
//!     --config <file.xml>   XML analysis configuration (§V-C)
//!     --function <name>     analyze one ECALL (default: all targets)
//!     --json                emit machine-readable reports
//!     --trace               print the Table-IV-style exploration table
//!     --baseline            run the path-insensitive DFA baseline instead
//!     --max-paths <n>       path budget (default 4096)
//!     --loop-bound <n>      symbolic loop bound (default 4)
//!     --workers <n>         exploration threads (0 = all cores, 1 = sequential)
//!     --deadline-ms <n>     wall-clock deadline; exploration stops at the
//!                           first wave boundary past it and the dropped
//!                           paths land in the degradation ledger
//!     --checkpoint <file>   write a crash-safe resumable snapshot when a
//!                           deadline/cancellation cuts the run (the path is
//!                           reported in the JSON report and on stderr)
//!     --checkpoint-every <n> additionally snapshot every n wave boundaries
//!                           (requires --checkpoint)
//!     --resume <file>       continue a previous run from its snapshot; the
//!                           final report is byte-identical to an
//!                           uninterrupted run at any --workers setting
//!     --trace-out <file>    write a JSONL span/event trace (wave, path-task,
//!                           analyzer-phase, checkpoint-write spans)
//!     --metrics-out <file>  write an end-of-run JSON metrics summary
//!                           (counters + fixed-bucket histograms)
//!     --log-level <level>   stderr logger: off|warn|info|debug (default off)
//!     --timings             print a per-phase timing table on stderr
//!
//! Telemetry is purely observational: reports and checkpoints are
//! byte-identical with it on or off, at any worker count.
//!
//! privacyscope priml <program.priml>
//!     analyze a PRIML program with the formal semantics and print the
//!     simulation table (Tables II/III style)
//! ```
//!
//! Exit codes: 0 when every analyzed function satisfies nonreversibility
//! and the exploration was complete, 1 when violations were found, 2 on
//! usage or input errors, 3 when every function *looks* secure but paths
//! were lost (budget/deadline/panic) — the clean verdict is a lower bound.

use std::process::ExitCode;

use privacyscope::{Analyzer, AnalyzerOptions};

/// What one CLI run concluded, before mapping onto an exit code.
struct Verdict {
    /// Every analyzed function was free of violations.
    secure: bool,
    /// At least one exploration lost paths (see `Report::is_degraded`).
    degraded: bool,
}

impl Verdict {
    fn clean() -> Verdict {
        Verdict {
            secure: true,
            degraded: false,
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(Verdict { secure: false, .. }) => ExitCode::from(1),
        Ok(Verdict {
            secure: true,
            degraded: true,
        }) => ExitCode::from(3),
        Ok(_) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("privacyscope: {message}");
            ExitCode::from(2)
        }
    }
}

fn run(args: &[String]) -> Result<Verdict, String> {
    match args.first().map(String::as_str) {
        Some("analyze") => analyze(&args[1..]),
        Some("priml") => priml_mode(&args[1..]),
        Some("--help") | Some("-h") | None => {
            print!("{}", USAGE);
            Ok(Verdict::clean())
        }
        Some(other) => Err(format!("unknown command `{other}`\n{USAGE}")),
    }
}

const USAGE: &str = "\
usage:
  privacyscope analyze <enclave.c> <enclave.edl> [--config <xml>] [--function <name>]
                       [--json] [--trace] [--baseline] [--max-paths <n>] [--loop-bound <n>]
                       [--workers <n>] [--deadline-ms <n>] [--checkpoint <file>]
                       [--checkpoint-every <n>] [--resume <file>] [--trace-out <file>]
                       [--metrics-out <file>] [--log-level off|warn|info|debug] [--timings]
  privacyscope priml <program.priml>

exit codes: 0 secure and complete, 1 violations found, 2 usage/input error,
            3 secure but paths were lost (verdict is a lower bound)
";

struct Cli {
    positional: Vec<String>,
    flags: Vec<(String, Option<String>)>,
}

fn parse_cli(args: &[String], value_flags: &[&str], bool_flags: &[&str]) -> Result<Cli, String> {
    let mut positional = Vec::new();
    let mut flags = Vec::new();
    let mut iter = args.iter().peekable();
    while let Some(arg) = iter.next() {
        if let Some(name) = arg.strip_prefix("--") {
            if value_flags.contains(&name) {
                let value = iter
                    .next()
                    .ok_or_else(|| format!("--{name} needs a value"))?;
                flags.push((name.to_string(), Some(value.clone())));
            } else if bool_flags.contains(&name) {
                flags.push((name.to_string(), None));
            } else {
                return Err(format!("unknown option `--{name}`\n{USAGE}"));
            }
        } else {
            positional.push(arg.clone());
        }
    }
    Ok(Cli { positional, flags })
}

impl Cli {
    fn has(&self, name: &str) -> bool {
        self.flags.iter().any(|(n, _)| n == name)
    }

    fn value(&self, name: &str) -> Option<&str> {
        self.flags
            .iter()
            .find(|(n, _)| n == name)
            .and_then(|(_, v)| v.as_deref())
    }

    fn usize_value(&self, name: &str, default: usize) -> Result<usize, String> {
        match self.value(name) {
            None => Ok(default),
            Some(text) => text
                .parse()
                .map_err(|_| format!("--{name} expects a number, got `{text}`")),
        }
    }

    fn u64_opt_value(&self, name: &str) -> Result<Option<u64>, String> {
        match self.value(name) {
            None => Ok(None),
            Some(text) => text
                .parse()
                .map(Some)
                .map_err(|_| format!("--{name} expects a number, got `{text}`")),
        }
    }
}

fn read(path: &str) -> Result<String, String> {
    std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))
}

fn analyze(args: &[String]) -> Result<Verdict, String> {
    let cli = parse_cli(
        args,
        &[
            "config",
            "function",
            "max-paths",
            "loop-bound",
            "workers",
            "deadline-ms",
            "checkpoint",
            "checkpoint-every",
            "resume",
            "trace-out",
            "metrics-out",
            "log-level",
        ],
        &["json", "trace", "baseline", "timings"],
    )?;
    let [source_path, edl_path] = cli.positional.as_slice() else {
        return Err(format!(
            "`analyze` needs <enclave.c> and <enclave.edl>\n{USAGE}"
        ));
    };
    let source = read(source_path)?;
    let edl_text = read(edl_path)?;

    let checkpoint = cli.value("checkpoint").map(std::path::PathBuf::from);
    let checkpoint_every = cli.usize_value("checkpoint-every", 0)?;
    let resume = cli.value("resume").map(std::path::PathBuf::from);
    if checkpoint_every > 0 && checkpoint.is_none() {
        return Err("--checkpoint-every needs --checkpoint <file>".into());
    }
    if cli.has("baseline") && (checkpoint.is_some() || resume.is_some()) {
        return Err("--checkpoint/--resume do not apply to the --baseline DFA".into());
    }

    let log_level = match cli.value("log-level") {
        None => telemetry::Level::Off,
        Some(text) => text.parse().map_err(|e| format!("{e}"))?,
    };
    let telemetry = telemetry::TelemetryConfig {
        trace_out: cli.value("trace-out").map(std::path::PathBuf::from),
        metrics_out: cli.value("metrics-out").map(std::path::PathBuf::from),
        log_level,
        timings: cli.has("timings"),
    }
    .build()
    .map_err(|e| format!("cannot open telemetry sink: {e}"))?;

    let options = AnalyzerOptions {
        max_paths: cli.usize_value("max-paths", 4096)?,
        loop_bound: cli.usize_value("loop-bound", 4)?,
        workers: cli.usize_value("workers", 0)?,
        deadline_ms: cli.u64_opt_value("deadline-ms")?,
        checkpoint,
        checkpoint_every,
        resume,
        telemetry: telemetry.clone(),
        ..AnalyzerOptions::default()
    };

    let analyzer = match cli.value("config") {
        Some(config_path) => {
            let xml = read(config_path)?;
            Analyzer::with_config(&source, &edl_text, &xml, options)
        }
        None => Analyzer::from_sources(&source, &edl_text, options),
    }
    .map_err(|e| e.to_string())?;

    let targets = match cli.value("function") {
        Some(name) => vec![name.to_string()],
        None => analyzer.targets(),
    };
    if targets.is_empty() {
        return Err("no public ECALLs to analyze (and no --function given)".into());
    }
    if targets.len() > 1 && (cli.value("checkpoint").is_some() || cli.value("resume").is_some()) {
        return Err(format!(
            "--checkpoint/--resume snapshot one exploration, but {} targets were selected; \
             pick one with --function",
            targets.len()
        ));
    }

    let mut verdict = Verdict::clean();
    for target in &targets {
        if cli.has("baseline") {
            let report = privacyscope::baseline::analyze(&source, &edl_text, target)
                .map_err(|e| e.to_string())?;
            emit(&report, cli.has("json"));
            verdict.secure &= report.is_secure();
            continue;
        }
        if cli.has("trace") {
            let table = analyzer.trace_table(target).map_err(|e| e.to_string())?;
            println!("── exploration of `{target}` ──");
            println!("{table}");
        }
        let report = analyzer.analyze(target).map_err(|e| e.to_string())?;
        emit(&report, cli.has("json"));
        if let Some(path) = &report.checkpoint {
            eprintln!(
                "privacyscope: wrote resumable checkpoint to `{path}`; \
                 continue with `--resume {path}`"
            );
        }
        verdict.secure &= report.is_secure();
        verdict.degraded |= report.is_degraded();
    }
    telemetry
        .finish()
        .map_err(|e| format!("cannot write telemetry output: {e}"))?;
    Ok(verdict)
}

fn emit(report: &privacyscope::Report, json: bool) {
    if json {
        println!("{}", report.to_json());
    } else {
        println!("{report}");
    }
}

fn priml_mode(args: &[String]) -> Result<Verdict, String> {
    let cli = parse_cli(args, &[], &[])?;
    let [path] = cli.positional.as_slice() else {
        return Err(format!("`priml` needs a program file\n{USAGE}"));
    };
    let source = read(path)?;
    let program = priml::parse(&source).map_err(|e| e.to_string())?;
    let outcome = priml::analysis::analyze(&program);
    println!("{}", priml::analysis::render_table3(&outcome));
    for violation in &outcome.violations {
        println!("violation: {violation}");
    }
    if outcome.is_secure() {
        println!("nonreversibility holds.");
    }
    Ok(Verdict {
        secure: outcome.is_secure(),
        degraded: false,
    })
}
