//! The PrivacyScope command-line driver.
//!
//! ```text
//! privacyscope analyze <enclave.c> <enclave.edl> [options]
//!     --config <file.xml>   XML analysis configuration (§V-C)
//!     --function <name>     analyze one ECALL (default: all targets)
//!     --json                emit machine-readable reports
//!     --trace               print the Table-IV-style exploration table
//!     --baseline            run the path-insensitive DFA baseline instead
//!     --max-paths <n>       path budget (default 4096)
//!     --loop-bound <n>      symbolic loop bound (default 4)
//!     --workers <n>         exploration threads (0 = all cores, 1 = sequential)
//!     --feasibility <mode>  branch-feasibility pruning tier: `syntactic`
//!                           (default, the paper's Clang-SA-style check),
//!                           `intervals` (adds the interval/congruence
//!                           abstract domain), or `full` (additionally
//!                           consults the budgeted SAT-lite solver on
//!                           domain-unknown forks). Findings are identical
//!                           across modes; stronger modes only prune
//!                           concretely-unsatisfiable paths earlier
//!     --deadline-ms <n>     wall-clock deadline; exploration stops at the
//!                           first wave boundary past it and the dropped
//!                           paths land in the degradation ledger
//!     --checkpoint <file>   write a crash-safe resumable snapshot when a
//!                           deadline/cancellation cuts the run (the path is
//!                           reported in the JSON report and on stderr)
//!     --checkpoint-every <n> additionally snapshot every n wave boundaries
//!                           (requires --checkpoint)
//!     --resume <file>       continue a previous run from its snapshot; the
//!                           final report is byte-identical to an
//!                           uninterrupted run at any --workers setting
//!     --trace-out <file>    write a JSONL span/event trace (wave, path-task,
//!                           analyzer-phase, checkpoint-write spans)
//!     --metrics-out <file>  write an end-of-run JSON metrics summary
//!                           (counters + fixed-bucket histograms)
//!     --log-level <level>   stderr logger: off|warn|info|debug (default off)
//!     --timings             print a per-phase timing table on stderr
//!     --daemon <addr>       submit the job to a running `privacyscoped`
//!                           (`host:port` or `unix:/path`) instead of
//!                           analyzing in-process; the rendered report and
//!                           exit code are byte-identical to a local run.
//!                           `--trace-out` then receives the daemon's
//!                           streamed progress records; local-only flags
//!                           (--baseline, --trace, --checkpoint*, --resume,
//!                           --metrics-out, --timings, --log-level,
//!                           --feasibility) are rejected
//!
//! Telemetry is purely observational: reports and checkpoints are
//! byte-identical with it on or off, at any worker count.
//!
//! privacyscope priml <program.priml>
//!     analyze a PRIML program with the formal semantics and print the
//!     simulation table (Tables II/III style)
//! ```
//!
//! Exit codes: 0 when every analyzed function satisfies nonreversibility
//! and the exploration was complete, 1 when violations were found, 2 on
//! usage or input errors, 3 when every function *looks* secure but paths
//! were lost (budget/deadline/panic) — the clean verdict is a lower bound.

use std::process::ExitCode;

use privacyscope::{Analyzer, AnalyzerOptions};

/// What one CLI run concluded, before mapping onto an exit code.
struct Verdict {
    /// Every analyzed function was free of violations.
    secure: bool,
    /// At least one exploration lost paths (see `Report::is_degraded`).
    degraded: bool,
}

impl Verdict {
    fn clean() -> Verdict {
        Verdict {
            secure: true,
            degraded: false,
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(Verdict { secure: false, .. }) => ExitCode::from(1),
        Ok(Verdict {
            secure: true,
            degraded: true,
        }) => ExitCode::from(3),
        Ok(_) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("privacyscope: {message}");
            ExitCode::from(2)
        }
    }
}

fn run(args: &[String]) -> Result<Verdict, String> {
    match args.first().map(String::as_str) {
        Some("analyze") => analyze(&args[1..]),
        Some("priml") => priml_mode(&args[1..]),
        Some("top") => top_mode(&args[1..]),
        Some("--help") | Some("-h") | None => {
            print!("{}", USAGE);
            Ok(Verdict::clean())
        }
        Some(other) => Err(format!("unknown command `{other}`\n{USAGE}")),
    }
}

const USAGE: &str = "\
usage:
  privacyscope analyze <enclave.c> <enclave.edl> [--config <xml>] [--function <name>]
                       [--json] [--trace] [--baseline] [--max-paths <n>] [--loop-bound <n>]
                       [--workers <n>] [--feasibility syntactic|intervals|full]
                       [--deadline-ms <n>] [--checkpoint <file>]
                       [--checkpoint-every <n>] [--resume <file>] [--trace-out <file>]
                       [--metrics-out <file>] [--log-level off|warn|info|debug] [--timings]
                       [--profile] [--profile-out <file>]
                       [--daemon <host:port | unix:/path>]
  privacyscope priml <program.priml>
  privacyscope top <host:port | unix:/path> [--interval-ms <n>] [--iterations <n>]

exit codes: 0 secure and complete, 1 violations found, 2 usage/input error,
            3 secure but paths were lost (verdict is a lower bound)
";

struct Cli {
    positional: Vec<String>,
    flags: Vec<(String, Option<String>)>,
}

fn parse_cli(args: &[String], value_flags: &[&str], bool_flags: &[&str]) -> Result<Cli, String> {
    let mut positional = Vec::new();
    let mut flags = Vec::new();
    let mut iter = args.iter().peekable();
    while let Some(arg) = iter.next() {
        if let Some(name) = arg.strip_prefix("--") {
            if flags.iter().any(|(n, _)| n == name) {
                return Err(format!(
                    "duplicate `--{name}`: pass each option at most once"
                ));
            }
            if value_flags.contains(&name) {
                let value = iter
                    .next()
                    .ok_or_else(|| format!("--{name} needs a value"))?;
                flags.push((name.to_string(), Some(value.clone())));
            } else if bool_flags.contains(&name) {
                flags.push((name.to_string(), None));
            } else {
                return Err(format!("unknown option `--{name}`\n{USAGE}"));
            }
        } else {
            positional.push(arg.clone());
        }
    }
    Ok(Cli { positional, flags })
}

impl Cli {
    fn has(&self, name: &str) -> bool {
        self.flags.iter().any(|(n, _)| n == name)
    }

    fn value(&self, name: &str) -> Option<&str> {
        self.flags
            .iter()
            .find(|(n, _)| n == name)
            .and_then(|(_, v)| v.as_deref())
    }

    fn usize_value(&self, name: &str, default: usize) -> Result<usize, String> {
        match self.value(name) {
            None => Ok(default),
            Some(text) => text
                .parse()
                .map_err(|_| format!("--{name} expects a number, got `{text}`")),
        }
    }

    /// Like [`Cli::usize_value`], but an explicit `0` is rejected with the
    /// given hint — for flags where zero silently meant something else
    /// entirely (all cores, never snapshot) instead of what it says.
    fn positive_usize_value(
        &self,
        name: &str,
        default: usize,
        zero_hint: &str,
    ) -> Result<usize, String> {
        let value = self.usize_value(name, default)?;
        if self.value(name).is_some() && value == 0 {
            return Err(format!("--{name} 0 {zero_hint}"));
        }
        Ok(value)
    }

    fn u64_opt_value(&self, name: &str) -> Result<Option<u64>, String> {
        match self.value(name) {
            None => Ok(None),
            Some(text) => text
                .parse()
                .map(Some)
                .map_err(|_| format!("--{name} expects a number, got `{text}`")),
        }
    }
}

fn read(path: &str) -> Result<String, String> {
    std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))
}

fn parse_feasibility(cli: &Cli) -> Result<privacyscope::FeasibilityMode, String> {
    match cli.value("feasibility") {
        None => Ok(privacyscope::FeasibilityMode::default()),
        Some(text) => privacyscope::FeasibilityMode::parse(text).ok_or_else(|| {
            format!("unknown --feasibility mode `{text}` (expected syntactic, intervals, or full)")
        }),
    }
}

fn analyze(args: &[String]) -> Result<Verdict, String> {
    let cli = parse_cli(
        args,
        &[
            "config",
            "function",
            "max-paths",
            "loop-bound",
            "workers",
            "feasibility",
            "deadline-ms",
            "checkpoint",
            "checkpoint-every",
            "resume",
            "trace-out",
            "metrics-out",
            "log-level",
            "daemon",
            "profile-out",
        ],
        &["json", "trace", "baseline", "timings", "profile"],
    )?;
    let [source_path, edl_path] = cli.positional.as_slice() else {
        return Err(format!(
            "`analyze` needs <enclave.c> and <enclave.edl>\n{USAGE}"
        ));
    };
    let source = read(source_path)?;
    let edl_text = read(edl_path)?;

    if let Some(addr) = cli.value("daemon") {
        return daemon_submit(&cli, addr, &source, &edl_text);
    }

    let checkpoint = cli.value("checkpoint").map(std::path::PathBuf::from);
    let checkpoint_every = cli.positive_usize_value(
        "checkpoint-every",
        0,
        "would never snapshot: omit the flag, or pass a positive wave interval",
    )?;
    let resume = cli.value("resume").map(std::path::PathBuf::from);
    if checkpoint_every > 0 && checkpoint.is_none() {
        return Err("--checkpoint-every needs --checkpoint <file>".into());
    }
    if cli.has("baseline") && (checkpoint.is_some() || resume.is_some()) {
        return Err("--checkpoint/--resume do not apply to the --baseline DFA".into());
    }
    if cli.has("baseline") && (cli.has("profile") || cli.value("profile-out").is_some()) {
        return Err(
            "--profile/--profile-out need the exploring engine and do not apply \
             to the --baseline DFA"
                .into(),
        );
    }

    let log_level = match cli.value("log-level") {
        None => telemetry::Level::Off,
        Some(text) => text.parse().map_err(|e| format!("{e}"))?,
    };
    let telemetry = telemetry::TelemetryConfig {
        trace_out: cli.value("trace-out").map(std::path::PathBuf::from),
        metrics_out: cli.value("metrics-out").map(std::path::PathBuf::from),
        log_level,
        timings: cli.has("timings"),
        collect_metrics: false,
    }
    .build()
    .map_err(|e| format!("cannot open telemetry sink: {e}"))?;
    // Flush the sinks on *every* exit path — usage errors (`?` returns
    // below) and panics included — so `--trace-out`/`--metrics-out` are
    // never left buffered or truncated. `finish` is idempotent, so the
    // explicit success-path call below still reports write errors.
    let _telemetry_flush = telemetry.flush_guard();

    let options = AnalyzerOptions {
        max_paths: cli.usize_value("max-paths", 4096)?,
        loop_bound: cli.usize_value("loop-bound", 4)?,
        workers: cli.positive_usize_value(
            "workers",
            0,
            "is ambiguous: omit the flag to use every core, or pass a positive thread count",
        )?,
        deadline_ms: cli.u64_opt_value("deadline-ms")?,
        feasibility: parse_feasibility(&cli)?,
        checkpoint,
        checkpoint_every,
        resume,
        telemetry: telemetry.clone(),
        ..AnalyzerOptions::default()
    };

    let analyzer = match cli.value("config") {
        Some(config_path) => {
            let xml = read(config_path)?;
            Analyzer::with_config(&source, &edl_text, &xml, options)
        }
        None => Analyzer::from_sources(&source, &edl_text, options),
    }
    .map_err(|e| e.to_string())?;

    let targets = match cli.value("function") {
        Some(name) => vec![name.to_string()],
        None => analyzer.targets(),
    };
    if targets.is_empty() {
        return Err("no public ECALLs to analyze (and no --function given)".into());
    }
    if targets.len() > 1 && (cli.value("checkpoint").is_some() || cli.value("resume").is_some()) {
        return Err(format!(
            "--checkpoint/--resume snapshot one exploration, but {} targets were selected; \
             pick one with --function",
            targets.len()
        ));
    }

    let mut verdict = Verdict::clean();
    let mut profiles: Vec<(String, privacyscope::SourceProfile)> = Vec::new();
    for target in &targets {
        if cli.has("baseline") {
            let report = privacyscope::baseline::analyze(&source, &edl_text, target)
                .map_err(|e| e.to_string())?;
            emit(&report, cli.has("json"));
            verdict.secure &= report.is_secure();
            continue;
        }
        if cli.has("trace") {
            let table = analyzer.trace_table(target).map_err(|e| e.to_string())?;
            println!("── exploration of `{target}` ──");
            println!("{table}");
        }
        let report = analyzer.analyze(target).map_err(|e| e.to_string())?;
        emit(&report, cli.has("json"));
        if cli.has("profile") {
            eprint!("{}", report.profile.render_table(target));
        }
        if cli.value("profile-out").is_some() {
            profiles.push((target.clone(), report.profile.clone()));
        }
        if let Some(path) = &report.checkpoint {
            eprintln!(
                "privacyscope: wrote resumable checkpoint to `{path}`; \
                 continue with `--resume {path}`"
            );
        }
        verdict.secure &= report.is_secure();
        verdict.degraded |= report.is_degraded();
    }
    if let Some(path) = cli.value("profile-out") {
        let text = render_profile_document(&profiles);
        std::fs::write(path, text)
            .map_err(|e| format!("cannot write profile output `{path}`: {e}"))?;
    }
    telemetry
        .finish()
        .map_err(|e| format!("cannot write telemetry output: {e}"))?;
    Ok(verdict)
}

fn emit(report: &privacyscope::Report, json: bool) {
    if json {
        println!("{}", report.to_json());
    } else {
        println!("{report}");
    }
}

/// The machine JSON document `--profile-out` writes:
/// `{"profiles": [{"function": ..., "rows": [...]}, ...]}`, one entry per
/// analyzed target in target order. Deterministic: profile collection is
/// worker-count-invariant and rows come out in line order.
fn render_profile_document(profiles: &[(String, privacyscope::SourceProfile)]) -> String {
    let entries = profiles
        .iter()
        .map(|(function, profile)| {
            serde_json::parse(&profile.to_json(function)).expect("profile JSON parses")
        })
        .collect();
    let document =
        serde::Value::Object(vec![("profiles".to_string(), serde::Value::Array(entries))]);
    serde_json::to_string_pretty(&document).expect("profile document serializes") + "\n"
}

/// `top <addr>`: poll the daemon's `Stats` frame and render a refreshing
/// fleet table — queue depth, pool utilization, per-job progress, service
/// counters, and latency histograms.
fn top_mode(args: &[String]) -> Result<Verdict, String> {
    use privacyscope::protocol::{self, ClientFrame, ServerFrame};
    use std::io::{BufRead, BufReader, Write};

    let cli = parse_cli(args, &["interval-ms", "iterations"], &[])?;
    let [addr] = cli.positional.as_slice() else {
        return Err(format!("`top` needs a daemon address\n{USAGE}"));
    };
    let interval =
        std::time::Duration::from_millis(cli.u64_opt_value("interval-ms")?.unwrap_or(1000));
    let iterations = cli.u64_opt_value("iterations")?.unwrap_or(0);

    let (read_half, mut write_half): (Box<dyn std::io::Read>, Box<dyn std::io::Write>) =
        if let Some(path) = addr.strip_prefix("unix:") {
            let stream = std::os::unix::net::UnixStream::connect(path)
                .map_err(|e| format!("cannot connect to daemon at `unix:{path}`: {e}"))?;
            let reader = stream
                .try_clone()
                .map_err(|e| format!("cannot clone stream: {e}"))?;
            (Box::new(reader), Box::new(stream))
        } else {
            let stream = std::net::TcpStream::connect(addr)
                .map_err(|e| format!("cannot connect to daemon at `{addr}`: {e}"))?;
            let reader = stream
                .try_clone()
                .map_err(|e| format!("cannot clone stream: {e}"))?;
            (Box::new(reader), Box::new(stream))
        };
    let mut lines = BufReader::new(read_half).lines();
    let request = protocol::encode(&ClientFrame::Stats)?;

    let mut round = 0u64;
    loop {
        round += 1;
        write_half
            .write_all(request.as_bytes())
            .and_then(|()| write_half.write_all(b"\n"))
            .and_then(|()| write_half.flush())
            .map_err(|e| format!("cannot query the daemon: {e}"))?;
        let reply = loop {
            let Some(next) = lines.next() else {
                return Err("daemon closed the connection".into());
            };
            let text = next.map_err(|e| format!("lost the daemon connection: {e}"))?;
            if text.trim().is_empty() {
                continue;
            }
            break text;
        };
        match protocol::decode::<ServerFrame>(&reply)? {
            ServerFrame::Stats { service, metrics } => {
                // Refresh in place only when watching continuously; a
                // single-shot poll (scripts, CI) stays pipe-friendly.
                if iterations != 1 {
                    print!("\x1b[2J\x1b[H");
                }
                print!("{}", render_top(&service, &metrics));
                let _ = std::io::stdout().flush();
            }
            other => return Err(format!("unexpected frame from daemon: {other:?}")),
        }
        if iterations > 0 && round >= iterations {
            return Ok(Verdict::clean());
        }
        std::thread::sleep(interval);
    }
}

/// One `top` screen: the fleet table rendered from a `Stats` answer.
fn render_top(
    service: &privacyscope::ServiceStats,
    metrics: &telemetry::MetricsSnapshot,
) -> String {
    use std::fmt::Write as _;

    let mut out = String::new();
    let _ = writeln!(
        out,
        "── privacyscoped fleet ── pool {}/{} busy · queue {} · {}",
        service.busy,
        service.pool,
        service.queue_depth,
        if service.draining {
            "draining"
        } else {
            "accepting"
        }
    );
    let _ = writeln!(
        out,
        "{:>6} {:>10} {:>6} {:>7} {:>9} {:>10}",
        "job", "state", "susp", "waves", "frontier", "steps"
    );
    for job in &service.jobs {
        let _ = writeln!(
            out,
            "{:>6} {:>10} {:>6} {:>7} {:>9} {:>10}",
            job.id, job.state, job.suspensions, job.waves, job.frontier, job.steps
        );
    }
    if !metrics.counters.is_empty() {
        let _ = writeln!(out, "── counters ──");
        for (name, value) in &metrics.counters {
            let _ = writeln!(out, "{name:<40} {value:>12}");
        }
    }
    if !metrics.histograms.is_empty() {
        let _ = writeln!(out, "── latency histograms ──");
        for histogram in &metrics.histograms {
            let mean_us = histogram.sum_us.checked_div(histogram.count).unwrap_or(0);
            let _ = writeln!(
                out,
                "{:<40} n={:<8} mean={}µs",
                histogram.name, histogram.count, mean_us
            );
        }
    }
    out
}

/// `--daemon <addr>` client mode: submit the job to a running
/// `privacyscoped` and render exactly what a local run would have printed
/// (the daemon ships reports pre-rendered in both forms).
fn daemon_submit(cli: &Cli, addr: &str, source: &str, edl_text: &str) -> Result<Verdict, String> {
    use privacyscope::protocol::{self, ClientFrame, ServerFrame};
    use std::io::{BufRead, BufReader, Write};

    for flag in [
        "baseline",
        "trace",
        "checkpoint",
        "checkpoint-every",
        "resume",
        "metrics-out",
        "timings",
        "log-level",
        "profile",
        "profile-out",
        "feasibility",
    ] {
        if cli.has(flag) {
            return Err(format!(
                "--{flag} runs locally and does not apply with --daemon \
                 (the daemon owns checkpoints and metrics)"
            ));
        }
    }

    let config = match cli.value("config") {
        Some(path) => read(path)?,
        None => String::new(),
    };
    let progress_out = cli.value("trace-out");
    let submit = ClientFrame::Submit {
        source: source.to_string(),
        edl: edl_text.to_string(),
        config,
        function: cli.value("function").unwrap_or("").to_string(),
        max_paths: cli.usize_value("max-paths", 4096)? as u64,
        loop_bound: cli.usize_value("loop-bound", 4)? as u64,
        workers: cli.positive_usize_value(
            "workers",
            0,
            "is ambiguous: omit the flag to use every core, or pass a positive thread count",
        )? as u64,
        deadline_ms: cli.u64_opt_value("deadline-ms")?.unwrap_or(0),
        progress: progress_out.is_some(),
    };

    let mut stream: Box<dyn ReadWriteStream> = if let Some(path) = addr.strip_prefix("unix:") {
        Box::new(
            std::os::unix::net::UnixStream::connect(path)
                .map_err(|e| format!("cannot connect to daemon at `unix:{path}`: {e}"))?,
        )
    } else {
        Box::new(
            std::net::TcpStream::connect(addr)
                .map_err(|e| format!("cannot connect to daemon at `{addr}`: {e}"))?,
        )
    };
    let line = protocol::encode(&submit)?;
    stream
        .write_all(line.as_bytes())
        .and_then(|()| stream.write_all(b"\n"))
        .and_then(|()| stream.flush())
        .map_err(|e| format!("cannot submit job: {e}"))?;

    let mut progress_file = match progress_out {
        Some(path) => Some(
            std::fs::File::create(path)
                .map_err(|e| format!("cannot open trace output `{path}`: {e}"))?,
        ),
        None => None,
    };

    let reader = BufReader::new(stream);
    for line in reader.lines() {
        let line = line.map_err(|e| format!("lost the daemon connection: {e}"))?;
        if line.trim().is_empty() {
            continue;
        }
        match protocol::decode::<ServerFrame>(&line)? {
            ServerFrame::Accepted { .. } | ServerFrame::State { .. } | ServerFrame::Pong => {}
            ServerFrame::Progress { record, .. } => {
                if let Some(file) = &mut progress_file {
                    writeln!(file, "{record}")
                        .map_err(|e| format!("cannot write trace output: {e}"))?;
                }
            }
            ServerFrame::Error { message, .. } => return Err(message),
            ServerFrame::Rejected { code, reason, .. } => {
                return Err(format!("daemon rejected the submission ({code}): {reason}"));
            }
            ServerFrame::Recovery { .. } | ServerFrame::Stats { .. } => {}
            ServerFrame::Done {
                exit,
                reports,
                rendered,
                ..
            } => {
                let json = cli.has("json");
                let pick = if json { &reports } else { &rendered };
                for text in pick {
                    println!("{text}");
                }
                return match exit {
                    0 => Ok(Verdict::clean()),
                    1 => Ok(Verdict {
                        secure: false,
                        degraded: false,
                    }),
                    3 => Ok(Verdict {
                        secure: true,
                        degraded: true,
                    }),
                    other => Err(format!("daemon reported unexpected exit code {other}")),
                };
            }
        }
    }
    Err("daemon closed the connection before the job finished".into())
}

/// The two local stream flavours a `--daemon` address can name.
trait ReadWriteStream: std::io::Read + std::io::Write {}
impl ReadWriteStream for std::net::TcpStream {}
impl ReadWriteStream for std::os::unix::net::UnixStream {}

fn priml_mode(args: &[String]) -> Result<Verdict, String> {
    let cli = parse_cli(args, &[], &[])?;
    let [path] = cli.positional.as_slice() else {
        return Err(format!("`priml` needs a program file\n{USAGE}"));
    };
    let source = read(path)?;
    let program = priml::parse(&source).map_err(|e| e.to_string())?;
    let outcome = priml::analysis::analyze(&program);
    println!("{}", priml::analysis::render_table3(&outcome));
    for violation in &outcome.violations {
        println!("violation: {violation}");
    }
    if outcome.is_secure() {
        println!("nonreversibility holds.");
    }
    Ok(Verdict {
        secure: outcome.is_secure(),
        degraded: false,
    })
}
