//! Differential soundness fuzzing driver.
//!
//! ```text
//! soundfuzz --seeds <a>..<b> [options]
//!     --seeds <a>..<b>        seed range, half-open (required)
//!     --vectors <n>           concrete probe vectors per question (default 3)
//!     --max-paths <n>         analyzer path budget (default 256)
//!     --loop-bound <n>        analyzer symbolic loop bound (default 4)
//!     --deadline-ms <n>       cooperative analyzer deadline per module
//!     --hard-timeout-ms <n>   hard wall-clock ceiling per analyzer run
//!                             (default 30000); a blown ceiling isolates the
//!                             run as a typed degradation
//!     --corpus <dir>          write disagreeing modules, their shrunk
//!                             reproducers, ground-truth labels, and repro
//!                             commands under <dir>/seed-<n>/
//!     --blind explicit|implicit
//!                             ablation: run the analyzer with one check
//!                             disabled (planted leaks of that kind become
//!                             missed-leak disagreements — the self-test)
//!     --feasibility syntactic|intervals|full
//!                             branch-feasibility pruning tier for the
//!                             analyzer under test (default syntactic);
//!                             stronger tiers must not change any verdict,
//!                             which is exactly what the CI differential
//!                             campaign asserts
//!     --preflight             run the cross-interpreter agreement check on
//!                             each module before the campaign and fail fast
//!                             on drift
//!     --json                  print the machine-readable campaign summary
//!                             (deterministic: same seeds, same bytes)
//! ```
//!
//! Exit codes: 0 when every module agreed, 1 when any disagreement
//! (missed-leak or false-alarm) was found, 2 on usage errors, 3 when all
//! modules agreed but at least one recorded a harness degradation — the
//! clean verdict is then a lower bound.

use std::process::ExitCode;

use privacyscope::oracle::{self, OracleConfig};
use privacyscope::preflight::{self, Agreement, PreflightConfig};

/// What one campaign concluded, before mapping onto an exit code.
struct Verdict {
    /// No disagreement of either class.
    agreed: bool,
    /// At least one module recorded a harness degradation.
    degraded: bool,
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(Verdict { agreed: false, .. }) => ExitCode::from(1),
        Ok(Verdict {
            agreed: true,
            degraded: true,
        }) => ExitCode::from(3),
        Ok(_) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("soundfuzz: {message}");
            ExitCode::from(2)
        }
    }
}

const USAGE: &str = "\
usage:
  soundfuzz --seeds <a>..<b> [--vectors <n>] [--max-paths <n>] [--loop-bound <n>]
            [--deadline-ms <n>] [--hard-timeout-ms <n>] [--corpus <dir>]
            [--blind explicit|implicit] [--feasibility syntactic|intervals|full]
            [--preflight] [--json]

exit codes: 0 all modules agreed, 1 disagreements found, 2 usage error,
            3 agreed but degraded (the verdict is a lower bound)
";

struct Cli {
    flags: Vec<(String, Option<String>)>,
}

fn parse_cli(args: &[String], value_flags: &[&str], bool_flags: &[&str]) -> Result<Cli, String> {
    let mut flags = Vec::new();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let Some(name) = arg.strip_prefix("--") else {
            return Err(format!("unexpected argument `{arg}`\n{USAGE}"));
        };
        if flags.iter().any(|(n, _)| n == name) {
            return Err(format!(
                "duplicate `--{name}`: pass each option at most once"
            ));
        }
        if value_flags.contains(&name) {
            let value = iter
                .next()
                .ok_or_else(|| format!("--{name} needs a value"))?;
            flags.push((name.to_string(), Some(value.clone())));
        } else if bool_flags.contains(&name) {
            flags.push((name.to_string(), None));
        } else {
            return Err(format!("unknown option `--{name}`\n{USAGE}"));
        }
    }
    Ok(Cli { flags })
}

impl Cli {
    fn has(&self, name: &str) -> bool {
        self.flags.iter().any(|(n, _)| n == name)
    }

    fn value(&self, name: &str) -> Option<&str> {
        self.flags
            .iter()
            .find(|(n, _)| n == name)
            .and_then(|(_, v)| v.as_deref())
    }

    fn usize_value(&self, name: &str, default: usize) -> Result<usize, String> {
        match self.value(name) {
            None => Ok(default),
            Some(text) => text
                .parse()
                .map_err(|_| format!("--{name} expects a number, got `{text}`")),
        }
    }

    fn u64_value(&self, name: &str, default: u64) -> Result<u64, String> {
        match self.value(name) {
            None => Ok(default),
            Some(text) => text
                .parse()
                .map_err(|_| format!("--{name} expects a number, got `{text}`")),
        }
    }
}

fn parse_seed_range(text: &str) -> Result<(u64, u64), String> {
    let (a, b) = text
        .split_once("..")
        .ok_or_else(|| format!("--seeds expects `<a>..<b>`, got `{text}`"))?;
    let start: u64 = a
        .parse()
        .map_err(|_| format!("--seeds start `{a}` is not a number"))?;
    let end: u64 = b
        .parse()
        .map_err(|_| format!("--seeds end `{b}` is not a number"))?;
    if end <= start {
        return Err(format!("--seeds range `{text}` is empty"));
    }
    Ok((start, end))
}

fn run(args: &[String]) -> Result<Verdict, String> {
    if matches!(
        args.first().map(String::as_str),
        Some("--help") | Some("-h")
    ) || args.is_empty()
    {
        print!("{USAGE}");
        return Ok(Verdict {
            agreed: true,
            degraded: false,
        });
    }
    let cli = parse_cli(
        args,
        &[
            "seeds",
            "vectors",
            "max-paths",
            "loop-bound",
            "deadline-ms",
            "hard-timeout-ms",
            "corpus",
            "blind",
            "feasibility",
        ],
        &["json", "preflight"],
    )?;
    let (seed_start, seed_end) = parse_seed_range(
        cli.value("seeds")
            .ok_or_else(|| format!("--seeds <a>..<b> is required\n{USAGE}"))?,
    )?;
    let mut config = OracleConfig {
        vectors: cli.usize_value("vectors", 3)?,
        max_paths: cli.usize_value("max-paths", 256)?,
        loop_bound: cli.usize_value("loop-bound", 4)?,
        hard_timeout_ms: cli.u64_value("hard-timeout-ms", 30_000)?,
        ..OracleConfig::default()
    };
    if let Some(ms) = cli.value("deadline-ms") {
        config.deadline_ms = Some(
            ms.parse()
                .map_err(|_| format!("--deadline-ms expects a number, got `{ms}`"))?,
        );
    }
    if let Some(text) = cli.value("feasibility") {
        config.feasibility = privacyscope::FeasibilityMode::parse(text).ok_or_else(|| {
            format!("--feasibility expects syntactic, intervals, or full, got `{text}`")
        })?;
    }
    match cli.value("blind") {
        None => {}
        Some("explicit") => config.check_explicit = false,
        Some("implicit") => config.check_implicit = false,
        Some(other) => {
            return Err(format!(
                "--blind expects `explicit` or `implicit`, got `{other}`"
            ))
        }
    }
    let corpus_dir = cli.value("corpus").map(std::path::PathBuf::from);

    if cli.has("preflight") {
        for seed in seed_start..seed_end {
            let module = mlcorpus::synth::generate(seed);
            let preflight_config = PreflightConfig {
                seed,
                max_paths: config.max_paths,
                loop_bound: config.loop_bound,
                deadline_ms: config.deadline_ms,
                ..PreflightConfig::default()
            };
            match preflight::check_agreement(
                &module.source,
                &module.edl,
                module.entry,
                &preflight_config,
            ) {
                Ok(Agreement::Match { .. }) | Ok(Agreement::PathNotKept) => {}
                Ok(Agreement::Mismatch { details }) => {
                    return Err(format!(
                        "interpreter drift on seed {seed}: {}",
                        details.join("; ")
                    ));
                }
                Err(reason) => {
                    return Err(format!("pre-flight failed on seed {seed}: {reason}"));
                }
            }
        }
        eprintln!("soundfuzz: pre-flight clean on seeds {seed_start}..{seed_end}");
    }

    let campaign = oracle::run_campaign(seed_start, seed_end, &config, corpus_dir.as_deref());
    if let Some(dir) = &corpus_dir {
        if !campaign.shrunk.is_empty() {
            std::fs::create_dir_all(dir)
                .and_then(|()| std::fs::write(dir.join("summary.json"), campaign.to_json()))
                .map_err(|e| format!("cannot write campaign summary: {e}"))?;
        }
    }
    if cli.has("json") {
        print!("{}", campaign.to_json());
    } else {
        render_human(&campaign);
    }
    Ok(Verdict {
        agreed: campaign.all_agreed(),
        degraded: campaign.degraded_modules() > 0,
    })
}

fn render_human(campaign: &oracle::Campaign) {
    println!(
        "soundfuzz: seeds {}..{} — {} modules, {} missed leaks, {} false alarms, {} degraded",
        campaign.seed_start,
        campaign.seed_end,
        campaign.verdicts.len(),
        campaign.missed_leaks(),
        campaign.false_alarms(),
        campaign.degraded_modules(),
    );
    for verdict in &campaign.verdicts {
        for disagreement in &verdict.disagreements {
            println!(
                "  seed {}: {} — {} channel `{}`, secret `{}`",
                verdict.seed,
                disagreement.class,
                if disagreement.explicit {
                    "explicit"
                } else {
                    "implicit"
                },
                disagreement.channel,
                disagreement.secret,
            );
        }
        for degradation in &verdict.degradations {
            println!("  seed {}: degraded — {degradation}", verdict.seed);
        }
    }
    for shrunk in &campaign.shrunk {
        let location = shrunk
            .path
            .as_ref()
            .map(|p| format!(" → {}", p.display()))
            .unwrap_or_default();
        println!(
            "  seed {}: shrunk {} reproducer {} → {} LoC{location}",
            shrunk.seed, shrunk.class, shrunk.original_loc, shrunk.loc,
        );
    }
}
