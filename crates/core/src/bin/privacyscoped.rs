//! `privacyscoped` — the PrivacyScope analysis daemon.
//!
//! ```text
//! privacyscoped [options]
//!     --listen <addr>    TCP loopback address (`host:port`, default
//!                        127.0.0.1:0 = kernel-assigned port) or a Unix
//!                        socket as `unix:<path>`
//!     --pool <n>         analysis worker threads (default 2)
//!     --slice-ms <n>     fair-share time slice: a job running longer than
//!                        this while others wait is suspended into a
//!                        checkpoint and requeued (default 0 = off)
//!     --spool <dir>      suspension checkpoint directory (default: a
//!                        per-process directory under the system temp dir)
//! ```
//!
//! On startup the daemon prints exactly one line to stdout —
//! `privacyscoped: listening on <addr>` — so scripts binding port 0 can
//! discover the actual endpoint. Clients speak the NDJSON protocol of
//! `privacyscope::protocol`; the stock client is `privacyscope analyze
//! --daemon <addr>`.
//!
//! Exit codes: 0 after a clean `Shutdown` frame, 2 on usage/bind errors.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpListener;
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use privacyscope::protocol::{self, ClientFrame, ServerFrame};
use privacyscope::service::{AnalysisService, JobSpec, ProgressFn, ServiceConfig};

const USAGE: &str = "\
usage:
  privacyscoped [--listen <host:port | unix:/path>] [--pool <n>]
                [--slice-ms <n>] [--spool <dir>]
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("privacyscoped: {message}");
            ExitCode::from(2)
        }
    }
}

/// A bidirectional local stream (TCP or Unix), cloneable so one half can
/// be read by the connection loop while workers write frames to the other.
trait Stream: std::io::Read + Write + Send {
    fn try_clone_box(&self) -> std::io::Result<Box<dyn Stream>>;
}

impl Stream for std::net::TcpStream {
    fn try_clone_box(&self) -> std::io::Result<Box<dyn Stream>> {
        Ok(Box::new(self.try_clone()?))
    }
}

impl Stream for UnixStream {
    fn try_clone_box(&self) -> std::io::Result<Box<dyn Stream>> {
        Ok(Box::new(self.try_clone()?))
    }
}

enum Listener {
    Tcp(TcpListener),
    Unix(UnixListener),
}

impl Listener {
    fn bind(addr: &str) -> Result<(Listener, String), String> {
        if let Some(path) = addr.strip_prefix("unix:") {
            let _ = std::fs::remove_file(path);
            let listener = UnixListener::bind(path)
                .map_err(|e| format!("cannot bind unix socket `{path}`: {e}"))?;
            Ok((Listener::Unix(listener), format!("unix:{path}")))
        } else {
            let listener =
                TcpListener::bind(addr).map_err(|e| format!("cannot bind `{addr}`: {e}"))?;
            let local = listener
                .local_addr()
                .map_err(|e| format!("cannot read bound address: {e}"))?;
            Ok((Listener::Tcp(listener), local.to_string()))
        }
    }

    fn accept(&self) -> std::io::Result<Box<dyn Stream>> {
        match self {
            Listener::Tcp(listener) => {
                let (stream, _) = listener.accept()?;
                Ok(Box::new(stream))
            }
            Listener::Unix(listener) => {
                let (stream, _) = listener.accept()?;
                Ok(Box::new(stream))
            }
        }
    }
}

fn parse_args(args: &[String]) -> Result<(String, usize, u64, Option<PathBuf>), String> {
    let mut listen = "127.0.0.1:0".to_string();
    let mut pool = 2usize;
    let mut slice_ms = 0u64;
    let mut spool = None;
    let mut seen: Vec<String> = Vec::new();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let name = match arg.as_str() {
            "--help" | "-h" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other => other
                .strip_prefix("--")
                .ok_or_else(|| format!("unexpected argument `{other}`\n{USAGE}"))?,
        };
        let known = ["listen", "pool", "slice-ms", "spool"];
        if !known.contains(&name) {
            return Err(format!("unknown option `--{name}`\n{USAGE}"));
        }
        if seen.iter().any(|s| s == name) {
            return Err(format!("duplicate `--{name}`: pass each option once"));
        }
        let value = iter
            .next()
            .ok_or_else(|| format!("--{name} needs a value"))?;
        match name {
            "listen" => listen = value.clone(),
            "pool" => {
                pool = value
                    .parse()
                    .map_err(|_| format!("--pool expects a number, got `{value}`"))?;
                if pool == 0 {
                    return Err("--pool 0 would run no workers; use 1 or more".into());
                }
            }
            "slice-ms" => {
                slice_ms = value
                    .parse()
                    .map_err(|_| format!("--slice-ms expects a number, got `{value}`"))?;
            }
            "spool" => spool = Some(PathBuf::from(value)),
            _ => unreachable!("filtered above"),
        }
        seen.push(name.to_string());
    }
    Ok((listen, pool, slice_ms, spool))
}

fn run(args: &[String]) -> Result<(), String> {
    let (listen, pool, slice_ms, spool) = parse_args(args)?;
    let spool = spool.unwrap_or_else(|| {
        std::env::temp_dir().join(format!("privacyscoped-spool-{}", std::process::id()))
    });
    let service = Arc::new(
        AnalysisService::start(ServiceConfig {
            pool,
            slice: (slice_ms > 0).then(|| Duration::from_millis(slice_ms)),
            spool,
        })
        .map_err(|e| format!("cannot start the analysis pool: {e}"))?,
    );

    let (listener, bound) = Listener::bind(&listen)?;
    println!("privacyscoped: listening on {bound}");
    let _ = std::io::stdout().flush();

    let shutdown = Arc::new(AtomicBool::new(false));
    loop {
        let stream = match listener.accept() {
            Ok(stream) => stream,
            Err(error) => {
                if shutdown.load(Ordering::SeqCst) {
                    return Ok(());
                }
                eprintln!("privacyscoped: accept failed: {error}");
                continue;
            }
        };
        let service = Arc::clone(&service);
        let conn_shutdown = Arc::clone(&shutdown);
        let spawned = std::thread::Builder::new()
            .name("privacyscoped-conn".to_string())
            .spawn(move || {
                if let Err(error) = serve_connection(&service, stream, &conn_shutdown) {
                    eprintln!("privacyscoped: connection error: {error}");
                }
            });
        if let Err(error) = spawned {
            eprintln!("privacyscoped: cannot spawn connection thread: {error}");
        }
        if shutdown.load(Ordering::SeqCst) {
            // A client asked us to exit; stop accepting and let in-flight
            // connection threads finish writing.
            return Ok(());
        }
    }
}

/// Serializes a frame and writes it as one NDJSON line under the lock.
fn send(writer: &Mutex<Box<dyn Stream>>, frame: &ServerFrame) {
    let Ok(line) = protocol::encode(frame) else {
        return;
    };
    let mut guard = match writer.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    };
    let _ = guard.write_all(line.as_bytes());
    let _ = guard.write_all(b"\n");
    let _ = guard.flush();
}

fn serve_connection(
    service: &Arc<AnalysisService>,
    stream: Box<dyn Stream>,
    shutdown: &Arc<AtomicBool>,
) -> Result<(), String> {
    let write_half = stream
        .try_clone_box()
        .map_err(|e| format!("cannot clone stream: {e}"))?;
    let writer = Arc::new(Mutex::new(write_half));
    let reader = BufReader::new(stream);

    for line in reader.lines() {
        let line = line.map_err(|e| format!("read failed: {e}"))?;
        if line.trim().is_empty() {
            continue;
        }
        let frame: ClientFrame = match protocol::decode(&line) {
            Ok(frame) => frame,
            Err(message) => {
                send(&writer, &ServerFrame::Error { job: 0, message });
                continue;
            }
        };
        match frame {
            ClientFrame::Ping => send(&writer, &ServerFrame::Pong),
            ClientFrame::Shutdown => {
                send(&writer, &ServerFrame::Pong);
                shutdown.store(true, Ordering::SeqCst);
                // Unblock the accept loop so the daemon can exit: poke our
                // own listener with a throwaway connection? Simpler and
                // robust across TCP/Unix: exit the process once the write
                // above is flushed. In-flight jobs are abandoned (the CI
                // resume path exists precisely to pick such work back up).
                std::process::exit(0);
            }
            ClientFrame::Status { job } => {
                let state = match service.status(job) {
                    Some(state) => state.to_string(),
                    None => "unknown".to_string(),
                };
                send(&writer, &ServerFrame::State { job, state });
            }
            ClientFrame::Submit {
                source,
                edl,
                config,
                function,
                max_paths,
                loop_bound,
                workers,
                deadline_ms,
                progress,
            } => {
                let spec = JobSpec {
                    source,
                    edl,
                    config_xml: (!config.is_empty()).then_some(config),
                    function: (!function.is_empty()).then_some(function),
                    max_paths: usize::try_from(max_paths).unwrap_or(usize::MAX),
                    loop_bound: usize::try_from(loop_bound).unwrap_or(usize::MAX),
                    workers: usize::try_from(workers).unwrap_or(usize::MAX),
                    deadline_ms: (deadline_ms > 0).then_some(deadline_ms),
                };
                let id = if progress {
                    let progress_writer = Arc::clone(&writer);
                    let forward: ProgressFn = Arc::new(move |job, record: &str| {
                        send(
                            &progress_writer,
                            &ServerFrame::Progress {
                                job,
                                record: record.to_string(),
                            },
                        );
                    });
                    service.submit_with_progress(spec, forward)
                } else {
                    service.submit(spec)
                };
                send(&writer, &ServerFrame::Accepted { job: id });

                // Completion is delivered asynchronously so the connection
                // can keep submitting/polling while jobs run.
                let waiter_service = Arc::clone(service);
                let waiter_writer = Arc::clone(&writer);
                let spawned = std::thread::Builder::new()
                    .name(format!("privacyscoped-wait-{id}"))
                    .spawn(move || {
                        let Some(outcome) = waiter_service.wait(id) else {
                            return;
                        };
                        let frame = match outcome.error {
                            Some(message) => ServerFrame::Error { job: id, message },
                            None => ServerFrame::Done {
                                job: id,
                                exit: u64::from(outcome.exit),
                                reports: outcome.reports.iter().map(|r| r.to_json()).collect(),
                                rendered: outcome.reports.iter().map(|r| r.to_string()).collect(),
                            },
                        };
                        send(&waiter_writer, &frame);
                    });
                if let Err(error) = spawned {
                    send(
                        &writer,
                        &ServerFrame::Error {
                            job: id,
                            message: format!("cannot spawn waiter: {error}"),
                        },
                    );
                }
            }
        }
    }
    Ok(())
}
