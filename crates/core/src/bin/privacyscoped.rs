//! `privacyscoped` — the PrivacyScope analysis daemon.
//!
//! ```text
//! privacyscoped [options]
//!     --listen <addr>          TCP loopback address (`host:port`, default
//!                              127.0.0.1:0 = kernel-assigned port) or a
//!                              Unix socket as `unix:<path>`
//!     --pool <n>               analysis worker threads (default 2)
//!     --slice-ms <n>           fair-share time slice: a job running longer
//!                              than this while others wait is suspended
//!                              into a checkpoint and requeued (default 0)
//!     --spool <dir>            journal + checkpoint directory (default: a
//!                              per-process directory under the system
//!                              temp dir — recovery needs a stable --spool)
//!     --max-queue <n>          admission bound on queued jobs; further
//!                              submissions get a `Rejected` frame
//!                              (default 64 × pool, 0 = unbounded)
//!     --max-job-paths <n>      reject submissions asking for more than
//!                              this many paths (default 0 = uncapped)
//!     --max-frame-bytes <n>    bound on one NDJSON request line; an
//!                              oversized line gets a typed `Error` frame
//!                              and the connection is closed
//!                              (default 16777216 = 16 MB, 0 = default)
//!     --idle-timeout-ms <n>    close a connection that sends no frame for
//!                              this long (default 0 = never)
//!     --on-disconnect <mode>   what happens to a client's unfinished jobs
//!                              when its connection ends: `cancel` (default)
//!                              or `park` (suspend into the journaled spool
//!                              for later recovery / `Fetch`)
//!     --drain-timeout-ms <n>   how long SIGTERM / `Shutdown` waits for
//!                              running jobs to park (default 30000)
//!     --trace-out <file>       JSONL span/event trace sink
//!     --metrics-out <file>     end-of-run metrics summary sink
//!     --stats-out <file>       periodic fleet snapshots, one JSONL record
//!                              per interval: `{ts_ms, service, metrics}`
//!                              with a monotone ts_ms since daemon start
//!     --stats-interval-ms <n>  how often --stats-out samples (default 1000)
//!     --log-level <level>      stderr logger: off|warn|info|debug
//! ```
//!
//! Live introspection: any client can send a `Stats` frame and gets back a
//! `ServerFrame::Stats` carrying the same `{service, metrics}` snapshot the
//! `--stats-out` sink records — queue depth, per-job lifecycle + progress,
//! pool utilization, `service.*` counters, and latency histograms, all with
//! deterministic field order. `privacyscope top <addr>` renders it live.
//!
//! On startup the daemon replays the spool journal (crash recovery: queued
//! jobs re-enqueue, suspended jobs resume from their checkpoints, orphaned
//! spool files are removed), logs a one-line recovery summary to stderr,
//! and prints exactly one line to stdout — `privacyscoped: listening on
//! <addr>` — so scripts binding port 0 can discover the actual endpoint.
//! Clients speak the NDJSON protocol of `privacyscope::protocol`; the
//! stock client is `privacyscope analyze --daemon <addr>`.
//!
//! SIGTERM and the `Shutdown` frame both drain gracefully: admission stops
//! (`Rejected { code: "draining" }`), running jobs park at their next wave
//! boundary into the journaled spool, and the daemon exits 0. A subsequent
//! start with the same `--spool` recovers and finishes the parked work.
//!
//! Exit codes: 0 after a clean drain, 2 on usage/bind errors.

use std::io::{BufReader, Write};
use std::net::TcpListener;
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use privacyscope::protocol::{self, ClientFrame, FrameError, FrameReader, ServerFrame};
use privacyscope::service::{AnalysisService, JobSpec, JobState, ProgressFn, ServiceConfig};

const USAGE: &str = "\
usage:
  privacyscoped [--listen <host:port | unix:/path>] [--pool <n>]
                [--slice-ms <n>] [--spool <dir>] [--max-queue <n>]
                [--max-job-paths <n>] [--max-frame-bytes <n>]
                [--idle-timeout-ms <n>] [--on-disconnect cancel|park]
                [--drain-timeout-ms <n>] [--trace-out <file>]
                [--metrics-out <file>] [--stats-out <file>]
                [--stats-interval-ms <n>] [--log-level off|warn|info|debug]
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("privacyscoped: {message}");
            ExitCode::from(2)
        }
    }
}

/// A bidirectional local stream (TCP or Unix), cloneable so one half can
/// be read by the connection loop while workers write frames to the other.
trait Stream: std::io::Read + Write + Send {
    fn try_clone_box(&self) -> std::io::Result<Box<dyn Stream>>;
    fn set_read_timeout_box(&self, timeout: Option<Duration>) -> std::io::Result<()>;
}

impl Stream for std::net::TcpStream {
    fn try_clone_box(&self) -> std::io::Result<Box<dyn Stream>> {
        Ok(Box::new(self.try_clone()?))
    }
    fn set_read_timeout_box(&self, timeout: Option<Duration>) -> std::io::Result<()> {
        self.set_read_timeout(timeout)
    }
}

impl Stream for UnixStream {
    fn try_clone_box(&self) -> std::io::Result<Box<dyn Stream>> {
        Ok(Box::new(self.try_clone()?))
    }
    fn set_read_timeout_box(&self, timeout: Option<Duration>) -> std::io::Result<()> {
        self.set_read_timeout(timeout)
    }
}

enum Listener {
    Tcp(TcpListener),
    Unix(UnixListener),
}

impl Listener {
    fn bind(addr: &str) -> Result<(Listener, String), String> {
        if let Some(path) = addr.strip_prefix("unix:") {
            let _ = std::fs::remove_file(path);
            let listener = UnixListener::bind(path)
                .map_err(|e| format!("cannot bind unix socket `{path}`: {e}"))?;
            Ok((Listener::Unix(listener), format!("unix:{path}")))
        } else {
            let listener =
                TcpListener::bind(addr).map_err(|e| format!("cannot bind `{addr}`: {e}"))?;
            let local = listener
                .local_addr()
                .map_err(|e| format!("cannot read bound address: {e}"))?;
            Ok((Listener::Tcp(listener), local.to_string()))
        }
    }

    fn accept(&self) -> std::io::Result<Box<dyn Stream>> {
        match self {
            Listener::Tcp(listener) => {
                let (stream, _) = listener.accept()?;
                Ok(Box::new(stream))
            }
            Listener::Unix(listener) => {
                let (stream, _) = listener.accept()?;
                Ok(Box::new(stream))
            }
        }
    }
}

/// What to do with a client's unfinished jobs when its connection ends.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum DisconnectPolicy {
    /// Cancel them: abandoned work never occupies the pool.
    Cancel,
    /// Park them into the journaled spool; a later connection (or daemon
    /// restart) can `Fetch` the result.
    Park,
}

struct Options {
    listen: String,
    pool: usize,
    slice_ms: u64,
    spool: Option<PathBuf>,
    max_queue: Option<usize>,
    max_job_paths: usize,
    max_frame_bytes: usize,
    idle_timeout_ms: u64,
    on_disconnect: DisconnectPolicy,
    drain_timeout_ms: u64,
    trace_out: Option<PathBuf>,
    metrics_out: Option<PathBuf>,
    stats_out: Option<PathBuf>,
    stats_interval_ms: u64,
    log_level: telemetry::Level,
}

impl Default for Options {
    fn default() -> Options {
        Options {
            listen: "127.0.0.1:0".to_string(),
            pool: 2,
            slice_ms: 0,
            spool: None,
            max_queue: None,
            max_job_paths: 0,
            max_frame_bytes: protocol::DEFAULT_MAX_FRAME_BYTES,
            idle_timeout_ms: 0,
            on_disconnect: DisconnectPolicy::Cancel,
            drain_timeout_ms: 30_000,
            trace_out: None,
            metrics_out: None,
            stats_out: None,
            stats_interval_ms: 1000,
            log_level: telemetry::Level::Off,
        }
    }
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options::default();
    let mut seen: Vec<String> = Vec::new();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let name = match arg.as_str() {
            "--help" | "-h" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other => other
                .strip_prefix("--")
                .ok_or_else(|| format!("unexpected argument `{other}`\n{USAGE}"))?,
        };
        let known = [
            "listen",
            "pool",
            "slice-ms",
            "spool",
            "max-queue",
            "max-job-paths",
            "max-frame-bytes",
            "idle-timeout-ms",
            "on-disconnect",
            "drain-timeout-ms",
            "trace-out",
            "metrics-out",
            "stats-out",
            "stats-interval-ms",
            "log-level",
        ];
        if !known.contains(&name) {
            return Err(format!("unknown option `--{name}`\n{USAGE}"));
        }
        if seen.iter().any(|s| s == name) {
            return Err(format!("duplicate `--{name}`: pass each option once"));
        }
        let value = iter
            .next()
            .ok_or_else(|| format!("--{name} needs a value"))?;
        let number = |what: &str| -> Result<u64, String> {
            value
                .parse()
                .map_err(|_| format!("--{what} expects a number, got `{value}`"))
        };
        match name {
            "listen" => opts.listen = value.clone(),
            "pool" => {
                opts.pool = usize::try_from(number("pool")?).unwrap_or(usize::MAX);
                if opts.pool == 0 {
                    return Err("--pool 0 would run no workers; use 1 or more".into());
                }
            }
            "slice-ms" => opts.slice_ms = number("slice-ms")?,
            "spool" => opts.spool = Some(PathBuf::from(value)),
            "max-queue" => {
                opts.max_queue = Some(usize::try_from(number("max-queue")?).unwrap_or(usize::MAX));
            }
            "max-job-paths" => {
                opts.max_job_paths =
                    usize::try_from(number("max-job-paths")?).unwrap_or(usize::MAX);
            }
            "max-frame-bytes" => {
                opts.max_frame_bytes =
                    usize::try_from(number("max-frame-bytes")?).unwrap_or(usize::MAX);
            }
            "idle-timeout-ms" => opts.idle_timeout_ms = number("idle-timeout-ms")?,
            "on-disconnect" => {
                opts.on_disconnect = match value.as_str() {
                    "cancel" => DisconnectPolicy::Cancel,
                    "park" => DisconnectPolicy::Park,
                    other => {
                        return Err(format!(
                            "--on-disconnect expects `cancel` or `park`, got `{other}`"
                        ));
                    }
                };
            }
            "drain-timeout-ms" => opts.drain_timeout_ms = number("drain-timeout-ms")?,
            "trace-out" => opts.trace_out = Some(PathBuf::from(value)),
            "metrics-out" => opts.metrics_out = Some(PathBuf::from(value)),
            "stats-out" => opts.stats_out = Some(PathBuf::from(value)),
            "stats-interval-ms" => {
                opts.stats_interval_ms = number("stats-interval-ms")?;
                if opts.stats_interval_ms == 0 {
                    return Err("--stats-interval-ms 0 would busy-loop; use 1 or more".into());
                }
            }
            "log-level" => {
                opts.log_level = value.parse().map_err(|e| format!("{e}"))?;
            }
            _ => unreachable!("filtered above"),
        }
        seen.push(name.to_string());
    }
    Ok(opts)
}

/// Everything one connection thread needs: the pool, the run options, and
/// the telemetry handle for disconnect/overload counters.
struct Daemon {
    service: AnalysisService,
    telemetry: telemetry::Telemetry,
    max_frame_bytes: usize,
    idle_timeout: Option<Duration>,
    on_disconnect: DisconnectPolicy,
    drain_timeout: Duration,
}

/// One `--stats-out` JSONL record. `ts_ms` is monotone (measured from
/// daemon start with `Instant`, never wall-clock) so downstream validators
/// can assert ordering; `service` and `metrics` serialize with the same
/// deterministic field order the `Stats` wire frame uses.
#[derive(serde::Serialize)]
struct StatsRecord {
    ts_ms: u64,
    service: privacyscope::ServiceStats,
    metrics: telemetry::MetricsSnapshot,
}

impl Daemon {
    /// One fleet snapshot — the answer to a `Stats` frame and the payload
    /// of each `--stats-out` record.
    fn stats_frame(&self) -> ServerFrame {
        ServerFrame::Stats {
            service: self.service.stats(),
            metrics: self.telemetry.metrics_snapshot(),
        }
    }

    /// Graceful shutdown: stop admitting, park running jobs at their next
    /// wave boundary (journaled for the next start to recover), flush
    /// telemetry, exit 0. Never returns.
    fn drain_and_exit(&self) -> ! {
        let drained = self.service.drain(self.drain_timeout);
        if drained {
            eprintln!("privacyscoped: drained cleanly; exiting");
        } else {
            eprintln!(
                "privacyscoped: drain timed out after {:?} with jobs still running; exiting",
                self.drain_timeout
            );
        }
        if let Err(error) = self.telemetry.finish() {
            eprintln!("privacyscoped: telemetry flush failed: {error}");
        }
        std::process::exit(0);
    }
}

/// Set by the raw SIGTERM handler; polled by the drain watcher thread.
/// A signal handler may only do async-signal-safe work, so the handler
/// just flips this flag and the watcher performs the actual drain.
static SIGTERM_RECEIVED: AtomicBool = AtomicBool::new(false);

extern "C" fn on_sigterm(_signum: i32) {
    SIGTERM_RECEIVED.store(true, Ordering::SeqCst);
}

/// Installs the SIGTERM handler via the libc `signal(2)` symbol directly —
/// the build is offline, so no `libc` crate; the two-argument ANSI
/// `signal` ABI is stable on every platform this daemon targets.
fn install_sigterm_handler() {
    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }
    const SIGTERM: i32 = 15;
    unsafe {
        signal(SIGTERM, on_sigterm);
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let opts = parse_args(args)?;
    let spool = opts.spool.clone().unwrap_or_else(|| {
        std::env::temp_dir().join(format!("privacyscoped-spool-{}", std::process::id()))
    });
    let telemetry = telemetry::TelemetryConfig {
        trace_out: opts.trace_out.clone(),
        metrics_out: opts.metrics_out.clone(),
        log_level: opts.log_level,
        timings: false,
        // Keep the metrics registry live even without file sinks so `Stats`
        // frames and `--stats-out` always answer with real counters.
        collect_metrics: true,
    }
    .build()
    .map_err(|e| format!("cannot open telemetry sink: {e}"))?;

    let service = AnalysisService::start(ServiceConfig {
        pool: opts.pool,
        slice: (opts.slice_ms > 0).then(|| Duration::from_millis(opts.slice_ms)),
        spool,
        max_queue: opts.max_queue.unwrap_or(opts.pool.saturating_mul(64)),
        max_job_paths: opts.max_job_paths,
        telemetry: telemetry.clone(),
    })
    .map_err(|e| format!("cannot start the analysis pool: {e}"))?;
    eprintln!("privacyscoped: recovery: {}", service.recovery().render());

    let daemon = Arc::new(Daemon {
        service,
        telemetry,
        max_frame_bytes: opts.max_frame_bytes,
        idle_timeout: (opts.idle_timeout_ms > 0)
            .then(|| Duration::from_millis(opts.idle_timeout_ms)),
        on_disconnect: opts.on_disconnect,
        drain_timeout: Duration::from_millis(opts.drain_timeout_ms),
    });

    if let Some(path) = opts.stats_out.clone() {
        let daemon = Arc::clone(&daemon);
        let interval = Duration::from_millis(opts.stats_interval_ms);
        let spawned = std::thread::Builder::new()
            .name("privacyscoped-stats".to_string())
            .spawn(move || {
                let started = std::time::Instant::now();
                loop {
                    std::thread::sleep(interval);
                    let record = StatsRecord {
                        ts_ms: u64::try_from(started.elapsed().as_millis()).unwrap_or(u64::MAX),
                        service: daemon.service.stats(),
                        metrics: daemon.telemetry.metrics_snapshot(),
                    };
                    let Ok(line) = serde_json::to_string(&record) else {
                        continue;
                    };
                    let appended = std::fs::OpenOptions::new()
                        .create(true)
                        .append(true)
                        .open(&path)
                        .and_then(|mut file| writeln!(file, "{line}"));
                    if let Err(error) = appended {
                        eprintln!("privacyscoped: stats sink write failed: {error}");
                    }
                }
            });
        if let Err(error) = spawned {
            eprintln!("privacyscoped: cannot spawn stats sampler: {error}");
        }
    }

    install_sigterm_handler();
    {
        let daemon = Arc::clone(&daemon);
        let spawned = std::thread::Builder::new()
            .name("privacyscoped-sigterm".to_string())
            .spawn(move || loop {
                if SIGTERM_RECEIVED.load(Ordering::SeqCst) {
                    eprintln!("privacyscoped: SIGTERM received; draining");
                    daemon.drain_and_exit();
                }
                std::thread::sleep(Duration::from_millis(50));
            });
        if let Err(error) = spawned {
            eprintln!("privacyscoped: cannot spawn SIGTERM watcher: {error}");
        }
    }

    let (listener, bound) = Listener::bind(&opts.listen)?;
    println!("privacyscoped: listening on {bound}");
    let _ = std::io::stdout().flush();

    loop {
        let stream = match listener.accept() {
            Ok(stream) => stream,
            Err(error) => {
                eprintln!("privacyscoped: accept failed: {error}");
                continue;
            }
        };
        let daemon = Arc::clone(&daemon);
        let spawned = std::thread::Builder::new()
            .name("privacyscoped-conn".to_string())
            .spawn(move || {
                if let Err(error) = serve_connection(&daemon, stream) {
                    eprintln!("privacyscoped: connection error: {error}");
                }
            });
        if let Err(error) = spawned {
            eprintln!("privacyscoped: cannot spawn connection thread: {error}");
        }
    }
}

/// Serializes a frame and writes it as one NDJSON line under the lock.
fn send(writer: &Mutex<Box<dyn Stream>>, frame: &ServerFrame) {
    let Ok(line) = protocol::encode(frame) else {
        return;
    };
    let mut guard = match writer.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    };
    let _ = guard.write_all(line.as_bytes());
    let _ = guard.write_all(b"\n");
    let _ = guard.flush();
}

/// Done/Error frame for a terminal outcome — shared by the submit waiter
/// and the `Fetch` re-attach path so both render results identically.
fn outcome_frame(job: u64, outcome: &privacyscope::JobOutcome) -> ServerFrame {
    match &outcome.error {
        Some(message) => ServerFrame::Error {
            job,
            message: message.clone(),
        },
        None => ServerFrame::Done {
            job,
            exit: u64::from(outcome.exit),
            reports: outcome.reports.iter().map(|r| r.to_json()).collect(),
            rendered: outcome.reports.iter().map(|r| r.to_string()).collect(),
        },
    }
}

fn serve_connection(daemon: &Arc<Daemon>, stream: Box<dyn Stream>) -> Result<(), String> {
    if let Some(timeout) = daemon.idle_timeout {
        stream
            .set_read_timeout_box(Some(timeout))
            .map_err(|e| format!("cannot set read timeout: {e}"))?;
    }
    let write_half = stream
        .try_clone_box()
        .map_err(|e| format!("cannot clone stream: {e}"))?;
    let writer = Arc::new(Mutex::new(write_half));
    let mut frames = FrameReader::new(BufReader::new(stream), daemon.max_frame_bytes);

    // Jobs this connection submitted; on disconnect the unfinished ones
    // get the configured policy (cancel or park) so the pool never burns
    // slices on work nobody is waiting for — unless asked to keep it.
    let mut session_jobs: Vec<u64> = Vec::new();
    let result = loop {
        let line = match frames.next_line() {
            Ok(Some(line)) => line,
            // Clean EOF: the client closed its half of the connection.
            Ok(None) => break Ok(()),
            Err(error @ FrameError::Oversized { .. }) => {
                daemon
                    .telemetry
                    .counter(telemetry::names::DAEMON_FRAME_OVERSIZED, 1);
                send(
                    &writer,
                    &ServerFrame::Error {
                        job: 0,
                        message: format!("{error} (--max-frame-bytes); closing connection"),
                    },
                );
                break Ok(());
            }
            Err(FrameError::TimedOut) => {
                daemon
                    .telemetry
                    .counter(telemetry::names::DAEMON_IDLE_TIMEOUT, 1);
                send(
                    &writer,
                    &ServerFrame::Error {
                        job: 0,
                        message: "idle timeout: no frame received in time; closing connection"
                            .to_string(),
                    },
                );
                break Ok(());
            }
            Err(FrameError::Io { message }) => break Err(format!("read failed: {message}")),
        };
        if line.trim().is_empty() {
            continue;
        }
        let frame: ClientFrame = match protocol::decode(&line) {
            Ok(frame) => frame,
            Err(message) => {
                daemon
                    .telemetry
                    .counter(telemetry::names::DAEMON_FRAME_MALFORMED, 1);
                send(&writer, &ServerFrame::Error { job: 0, message });
                continue;
            }
        };
        match frame {
            ClientFrame::Ping => send(&writer, &ServerFrame::Pong),
            ClientFrame::Stats => send(&writer, &daemon.stats_frame()),
            ClientFrame::Shutdown => {
                send(&writer, &ServerFrame::Pong);
                eprintln!("privacyscoped: Shutdown frame received; draining");
                daemon.drain_and_exit();
            }
            ClientFrame::Status { job } => {
                let state = match daemon.service.status(job) {
                    Some(state) => state.to_string(),
                    None => "unknown".to_string(),
                };
                send(&writer, &ServerFrame::State { job, state });
            }
            ClientFrame::Fetch { job } => {
                let frame = match daemon.service.outcome(job) {
                    Some(outcome) => outcome_frame(job, &outcome),
                    None => ServerFrame::State {
                        job,
                        state: match daemon.service.status(job) {
                            Some(state) => state.to_string(),
                            None => "unknown".to_string(),
                        },
                    },
                };
                send(&writer, &frame);
            }
            ClientFrame::Recovery => {
                let summary = daemon.service.recovery();
                send(
                    &writer,
                    &ServerFrame::Recovery {
                        requeued: summary.requeued,
                        resumed: summary.resumed,
                        discarded: summary.discarded,
                        orphans_removed: summary.orphans_removed,
                        errors: summary.errors.iter().map(|e| e.to_string()).collect(),
                    },
                );
            }
            ClientFrame::Submit {
                source,
                edl,
                config,
                function,
                max_paths,
                loop_bound,
                workers,
                deadline_ms,
                progress,
            } => {
                let spec = JobSpec {
                    source,
                    edl,
                    config_xml: (!config.is_empty()).then_some(config),
                    function: (!function.is_empty()).then_some(function),
                    max_paths: usize::try_from(max_paths).unwrap_or(usize::MAX),
                    loop_bound: usize::try_from(loop_bound).unwrap_or(usize::MAX),
                    workers: usize::try_from(workers).unwrap_or(usize::MAX),
                    deadline_ms: (deadline_ms > 0).then_some(deadline_ms),
                };
                let submitted = if progress {
                    let progress_writer = Arc::clone(&writer);
                    let forward: ProgressFn = Arc::new(move |job, record: &str| {
                        send(
                            &progress_writer,
                            &ServerFrame::Progress {
                                job,
                                record: record.to_string(),
                            },
                        );
                    });
                    daemon.service.submit_with_progress(spec, forward)
                } else {
                    daemon.service.submit(spec)
                };
                let id = match submitted {
                    Ok(id) => id,
                    Err(reason) => {
                        send(
                            &writer,
                            &ServerFrame::Rejected {
                                job: 0,
                                code: reason.code().to_string(),
                                reason: reason.to_string(),
                            },
                        );
                        continue;
                    }
                };
                session_jobs.push(id);
                send(&writer, &ServerFrame::Accepted { job: id });

                // Completion is delivered asynchronously so the connection
                // can keep submitting/polling while jobs run.
                let waiter_daemon = Arc::clone(daemon);
                let waiter_writer = Arc::clone(&writer);
                let spawned = std::thread::Builder::new()
                    .name(format!("privacyscoped-wait-{id}"))
                    .spawn(move || {
                        let Some(outcome) = waiter_daemon.service.wait(id) else {
                            return;
                        };
                        send(&waiter_writer, &outcome_frame(id, &outcome));
                    });
                if let Err(error) = spawned {
                    send(
                        &writer,
                        &ServerFrame::Error {
                            job: id,
                            message: format!("cannot spawn waiter: {error}"),
                        },
                    );
                }
            }
        }
    };

    // Disconnect handling: whatever ended the loop, this client is gone.
    // Apply the configured policy to its still-live jobs.
    for id in session_jobs {
        match daemon.service.status(id) {
            None | Some(JobState::Done | JobState::Failed) => {}
            Some(_) => match daemon.on_disconnect {
                DisconnectPolicy::Cancel => {
                    if daemon.service.cancel(id) {
                        daemon
                            .telemetry
                            .counter(telemetry::names::DAEMON_DISCONNECT_CANCELLED, 1);
                    }
                }
                DisconnectPolicy::Park => {
                    if daemon.service.park(id) {
                        daemon
                            .telemetry
                            .counter(telemetry::names::DAEMON_DISCONNECT_PARKED, 1);
                    }
                }
            },
        }
    }
    result
}
