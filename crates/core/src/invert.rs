//! Recovery-formula synthesis for explicit leaks.
//!
//! §V-C: "For explicit information leakage cases, the report describes how
//! program output can be used to infer its (secret) input." When the
//! escaping value is an invertible composition over a single secret symbol
//! — affine arithmetic, negation, bitwise complement, XOR with constants —
//! this module solves for the secret and renders the attacker's recovery
//! formula, e.g. `secrets[0] = (observed - 101)`.

use minic::ast::{BinOp, UnOp};
use symexec::value::SVal;

/// Attempts to symbolically invert `value = f(secret)` for the (unique)
/// secret symbol with id `secret_id`.
///
/// Returns the recovery expression in terms of `observed`, or `None` when
/// the computation is not a chain of invertible steps (the attacker would
/// need more than arithmetic — e.g. `s * s`, `s & mask`, uninterpreted
/// calls).
pub fn recovery_formula(value: &SVal, secret_id: u32) -> Option<String> {
    // Peel invertible operations off the outside, accumulating the inverse
    // applied to "observed".
    let mut current = value;
    let mut observed = String::from("observed");
    loop {
        match current {
            SVal::Sym(sym) if sym.id == secret_id => return Some(observed),
            SVal::Unary { op, arg } => {
                match op {
                    UnOp::Neg => observed = format!("-({observed})"),
                    UnOp::BitNot => observed = format!("~({observed})"),
                    // `!x` and `+x`: `!` is lossy, `+` is identity
                    UnOp::Plus => {}
                    UnOp::Not => return None,
                }
                current = arg;
            }
            SVal::Binary { op, lhs, rhs } => {
                // exactly one side must contain the secret; the other must
                // be a constant for the step to be invertible by the host
                let (secret_side, const_side, secret_on_left) =
                    match (contains(lhs, secret_id), contains(rhs, secret_id)) {
                        (true, false) => (lhs, rhs, true),
                        (false, true) => (rhs, lhs, false),
                        _ => return None,
                    };
                let constant = render_const(const_side)?;
                match (op, secret_on_left) {
                    (BinOp::Add, _) => {
                        observed = format!("({observed} - {constant})");
                    }
                    (BinOp::Sub, true) => {
                        // o = s - c  ⇒  s = o + c
                        observed = format!("({observed} + {constant})");
                    }
                    (BinOp::Sub, false) => {
                        // o = c - s  ⇒  s = c - o
                        observed = format!("({constant} - {observed})");
                    }
                    (BinOp::Mul, _) => {
                        if is_zero(const_side) {
                            return None;
                        }
                        observed = format!("({observed} / {constant})");
                    }
                    (BinOp::BitXor, _) => {
                        observed = format!("({observed} ^ {constant})");
                    }
                    // division/shift/and/or/comparisons lose information
                    _ => return None,
                }
                current = secret_side;
            }
            // anything else (constants, calls, unknowns) cannot lead to
            // the secret symbol
            _ => return None,
        }
    }
}

fn contains(value: &SVal, secret_id: u32) -> bool {
    let mut ids = std::collections::BTreeSet::new();
    value.symbols(&mut ids);
    ids.contains(&secret_id)
}

fn render_const(value: &SVal) -> Option<String> {
    match value {
        SVal::Int(v) => Some(v.to_string()),
        SVal::Float(v) => Some(v.to_string()),
        _ => None,
    }
}

fn is_zero(value: &SVal) -> bool {
    matches!(value, SVal::Int(0)) || matches!(value, SVal::Float(f) if f.0 == 0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use symexec::value::Symbol;

    fn s() -> SVal {
        SVal::Sym(Symbol::new(7, "secret"))
    }

    #[test]
    fn identity() {
        assert_eq!(recovery_formula(&s(), 7).as_deref(), Some("observed"));
    }

    #[test]
    fn affine_chain() {
        // o = (s * 2) + 101  ⇒  s = ((o - 101) / 2)
        let v = SVal::binary(
            BinOp::Add,
            SVal::binary(BinOp::Mul, s(), SVal::Int(2)),
            SVal::Int(101),
        );
        assert_eq!(
            recovery_formula(&v, 7).as_deref(),
            Some("((observed - 101) / 2)")
        );
    }

    #[test]
    fn constant_minus_secret() {
        // o = 100 - s  ⇒  s = 100 - o
        let v = SVal::binary(BinOp::Sub, SVal::Int(100), s());
        assert_eq!(recovery_formula(&v, 7).as_deref(), Some("(100 - observed)"));
    }

    #[test]
    fn negation_and_xor() {
        // o = -(s ^ 0xFF)  ⇒  s = (-(o)) ^ 0xFF
        let v = SVal::unary(UnOp::Neg, SVal::binary(BinOp::BitXor, s(), SVal::Int(255)));
        assert_eq!(
            recovery_formula(&v, 7).as_deref(),
            Some("(-(observed) ^ 255)")
        );
    }

    #[test]
    fn lossy_operations_refuse() {
        for v in [
            SVal::binary(BinOp::Mul, s(), s()), // s² — both sides secret
            SVal::binary(BinOp::BitAnd, s(), SVal::Int(1)), // mask
            SVal::binary(BinOp::Div, s(), SVal::Int(2)), // integer division
            SVal::binary(BinOp::Shr, s(), SVal::Int(3)),
            SVal::unary(UnOp::Not, s()),
            SVal::Call {
                func: "sqrt".into(),
                args: vec![s()],
            },
        ] {
            assert_eq!(recovery_formula(&v, 7), None, "{v} should be lossy");
        }
    }

    #[test]
    fn multiplication_by_zero_refuses() {
        let v = SVal::binary(BinOp::Mul, s(), SVal::Int(0));
        assert_eq!(recovery_formula(&v, 7), None);
    }

    #[test]
    fn wrong_symbol_refuses() {
        assert_eq!(recovery_formula(&s(), 8), None);
    }
}
