//! Durable job journal: the crash-recovery backbone of the analysis
//! service.
//!
//! The journal is an append-only write-ahead log (`jobs.journal` in the
//! spool directory) recording every job lifecycle transition the service
//! would need to reconstruct its queue after a crash:
//!
//! ```text
//! privacyscope-journal v1
//! <checksum:016x> <len> <json>
//! <checksum:016x> <len> <json>
//! ...
//! ```
//!
//! One [`JournalRecord`] per line. `checksum` is the FNV-1a-64 hash of the
//! JSON bytes (the same function the PR 3 checkpoint header uses) and
//! `len` their byte length, so replay can distinguish a *torn* final
//! record (crash mid-append: shorter than promised, or no trailing
//! newline) from *corruption* (full length, wrong hash). Appends write
//! the whole line in one call and fsync before returning: a record is
//! either durably on disk or recovery never sees it — there is no state
//! in between that parses.
//!
//! The recovery pass ([`replay`]) is total: every malformed byte becomes
//! a typed [`RecoveryError`] in the summary, never a panic or an abort.
//! Interior damage skips the one bad record (records are self-delimiting
//! by newline); damage on the final line is the expected crash artifact
//! and is reported as [`RecoveryError::TornRecord`]. After replay the
//! caller compacts the journal ([`compact`]): the live jobs are rewritten
//! atomically (temp + fsync + rename) as fresh `Submitted`/`Suspended`
//! records, which bounds journal growth and makes recovery idempotent —
//! recovering twice from the same spool yields the same job set.
//!
//! A `Suspended` record carries both the checkpoint path and the
//! compatibility fingerprint read from the snapshot header when the job
//! parked. Recovery re-reads the header ([`Snapshot::peek_fingerprint`])
//! and refuses to resume a stale or swapped snapshot
//! ([`RecoveryError::StaleCheckpoint`]); the job is re-enqueued from
//! scratch instead — deterministic re-execution makes that merely slower,
//! never wrong.

use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

use serde::{Deserialize, Serialize};
use symexec::checkpoint::fnv1a;
use symexec::Snapshot;

use crate::service::JobSpec;

/// Journal file name inside the spool directory.
pub const JOURNAL_FILE: &str = "jobs.journal";

const MAGIC: &str = "privacyscope-journal";
const VERSION: u32 = 1;

/// One durably journaled lifecycle transition.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum JournalRecord {
    /// The job was admitted to the queue (written *before* the job is
    /// visible to workers — WAL discipline).
    Submitted { id: u64, spec: JobSpec },
    /// A worker began (or resumed) a slice of the job.
    Started { id: u64 },
    /// The job parked into a spool checkpoint at a wave boundary.
    /// `fingerprint` is the snapshot header's compatibility fingerprint,
    /// re-checked at recovery so a stale file is never resumed.
    Suspended {
        id: u64,
        ckpt: String,
        fingerprint: u64,
    },
    /// The job finished with the CLI-convention exit code.
    Done { id: u64, exit: u64 },
    /// The analyzer rejected the job's inputs.
    Failed { id: u64, error: String },
    /// The job was cancelled (client request or disconnect policy).
    Cancelled { id: u64 },
}

impl JournalRecord {
    fn id(&self) -> u64 {
        match self {
            JournalRecord::Submitted { id, .. }
            | JournalRecord::Started { id }
            | JournalRecord::Suspended { id, .. }
            | JournalRecord::Done { id, .. }
            | JournalRecord::Failed { id, .. }
            | JournalRecord::Cancelled { id } => *id,
        }
    }
}

/// A typed, recoverable problem found while replaying the journal or
/// validating the spool. None of these abort recovery: each is recorded
/// in the [`RecoverySummary`] and the pass continues.
#[derive(Debug, Clone, PartialEq)]
pub enum RecoveryError {
    /// The journal's first line is not a supported header (wrong magic or
    /// version). The file is treated as empty and rotated aside.
    BadHeader { detail: String },
    /// The final record was cut mid-append by a crash: shorter than its
    /// declared length, missing its trailing newline, or missing its
    /// framing fields entirely. The record is dropped.
    TornRecord { line: usize },
    /// An interior record's bytes do not hash to its declared checksum
    /// (bit rot or concurrent modification). The record is skipped.
    ChecksumMismatch {
        line: usize,
        expected: u64,
        found: u64,
    },
    /// A record's JSON does not decode into a [`JournalRecord`].
    Malformed { line: usize, detail: String },
    /// A suspended job's checkpoint file is gone; the job restarts from
    /// scratch.
    MissingCheckpoint { job: u64, path: String },
    /// A suspended job's checkpoint no longer matches the fingerprint
    /// journaled when it parked (stale, swapped, or unreadable); the job
    /// restarts from scratch and the file is garbage-collected.
    StaleCheckpoint { job: u64, detail: String },
    /// A filesystem operation failed during recovery (the affected file
    /// is left in place).
    Io { path: String, message: String },
}

impl fmt::Display for RecoveryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecoveryError::BadHeader { detail } => {
                write!(f, "journal header unreadable: {detail}")
            }
            RecoveryError::TornRecord { line } => {
                write!(f, "journal record at line {line} torn mid-append; dropped")
            }
            RecoveryError::ChecksumMismatch {
                line,
                expected,
                found,
            } => write!(
                f,
                "journal record at line {line} corrupt: checksum {found:016x} != {expected:016x}; skipped"
            ),
            RecoveryError::Malformed { line, detail } => {
                write!(f, "journal record at line {line} malformed: {detail}; skipped")
            }
            RecoveryError::MissingCheckpoint { job, path } => {
                write!(f, "job {job}: checkpoint `{path}` missing; restarting from scratch")
            }
            RecoveryError::StaleCheckpoint { job, detail } => {
                write!(f, "job {job}: stale checkpoint ({detail}); restarting from scratch")
            }
            RecoveryError::Io { path, message } => {
                write!(f, "recovery I/O on `{path}`: {message}")
            }
        }
    }
}

/// A live (non-terminal) job reconstructed from the journal, ready to
/// re-enter the service queue.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveredJob {
    pub id: u64,
    pub spec: JobSpec,
    /// Validated checkpoint to resume from (`None` = run from scratch).
    pub resume_from: Option<PathBuf>,
    /// Fingerprint journaled with the checkpoint, re-recorded on compact.
    pub fingerprint: Option<u64>,
}

/// What a recovery pass did, reported through the daemon log and the
/// `Recovery` protocol frame.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RecoverySummary {
    /// Jobs re-enqueued to run from scratch.
    pub requeued: u64,
    /// Jobs re-enqueued to resume from a validated spool checkpoint.
    pub resumed: u64,
    /// Terminal jobs dropped from the journal.
    pub discarded: u64,
    /// Orphaned or stale spool files removed.
    pub orphans_removed: u64,
    /// Every typed problem encountered (empty on a clean recovery).
    pub errors: Vec<RecoveryError>,
}

impl RecoverySummary {
    /// One-line operator summary, logged at daemon start.
    pub fn render(&self) -> String {
        format!(
            "recovery: {} requeued, {} resumed, {} discarded, {} orphan(s) removed, {} error(s)",
            self.requeued,
            self.resumed,
            self.discarded,
            self.orphans_removed,
            self.errors.len()
        )
    }
}

/// Result of replaying a journal: the live job set plus the summary so
/// far (checkpoint validation and parse errors; orphan GC counts are
/// added by [`gc_orphans`]).
#[derive(Debug)]
pub struct Replay {
    pub live: Vec<RecoveredJob>,
    /// First id the service may allocate without colliding.
    pub next_id: u64,
    pub summary: RecoverySummary,
}

/// Append handle over the journal file. Every append is one `write` call
/// followed by `sync_data`, so a record is durable before the caller
/// proceeds.
#[derive(Debug)]
pub struct Journal {
    file: File,
}

impl Journal {
    /// Opens (creating if necessary) the journal for appending. A new or
    /// empty file gets the header line first.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn open(spool: &Path) -> io::Result<Journal> {
        let path = spool.join(JOURNAL_FILE);
        let mut file = OpenOptions::new().create(true).append(true).open(&path)?;
        if file.metadata()?.len() == 0 {
            file.write_all(format!("{MAGIC} v{VERSION}\n").as_bytes())?;
            file.sync_data()?;
        }
        Ok(Journal { file })
    }

    /// Durably appends one record: serialize, frame with checksum and
    /// length, single write, fsync.
    ///
    /// # Errors
    ///
    /// Returns serialization errors (practically unreachable) and
    /// filesystem errors. The service treats a failed append as a
    /// degradation (the job still runs; only crash durability is lost).
    pub fn append(&mut self, record: &JournalRecord) -> io::Result<()> {
        let json = serde_json::to_string(record)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        let line = format!("{:016x} {} {json}\n", fnv1a(json.as_bytes()), json.len());
        self.file.write_all(line.as_bytes())?;
        self.file.sync_data()
    }
}

/// Parses one framed record line (no trailing newline). `Ok(None)` means
/// the line is blank and should be ignored.
fn parse_record(
    line: &str,
    number: usize,
    torn_ok: bool,
) -> Result<Option<JournalRecord>, RecoveryError> {
    if line.is_empty() {
        return Ok(None);
    }
    let torn = |_: &str| {
        if torn_ok {
            RecoveryError::TornRecord { line: number }
        } else {
            RecoveryError::Malformed {
                line: number,
                detail: "record lacks `checksum len json` framing".into(),
            }
        }
    };
    let (checksum_raw, rest) = line.split_once(' ').ok_or_else(|| torn(line))?;
    let (len_raw, json) = rest.split_once(' ').ok_or_else(|| torn(rest))?;
    let expected = u64::from_str_radix(checksum_raw, 16).map_err(|_| torn(line))?;
    let declared: usize = len_raw.parse().map_err(|_| torn(line))?;
    if json.len() < declared {
        // Shorter than promised: the classic torn append (the final line
        // of a crashed process), regardless of position.
        return Err(RecoveryError::TornRecord { line: number });
    }
    if json.len() > declared {
        return Err(RecoveryError::Malformed {
            line: number,
            detail: format!("record longer than declared ({} > {declared})", json.len()),
        });
    }
    let found = fnv1a(json.as_bytes());
    if found != expected {
        return Err(RecoveryError::ChecksumMismatch {
            line: number,
            expected,
            found,
        });
    }
    serde_json::from_str::<JournalRecord>(json)
        .map(Some)
        .map_err(|e| RecoveryError::Malformed {
            line: number,
            detail: e.to_string(),
        })
}

/// Per-job state accumulated during replay.
struct JobTrace {
    spec: Option<JobSpec>,
    ckpt: Option<(String, u64)>,
    terminal: bool,
}

/// Replays the journal in `spool`, reconstructing the live job set. Never
/// fails: a missing journal is an empty one; every defect becomes a typed
/// entry in the summary. Checkpoints referenced by suspended jobs are
/// validated (existence + header fingerprint) before being trusted.
pub fn replay(spool: &Path) -> Replay {
    let mut summary = RecoverySummary::default();
    let path = spool.join(JOURNAL_FILE);
    let text = match std::fs::read_to_string(&path) {
        Ok(text) => text,
        Err(error) if error.kind() == io::ErrorKind::NotFound => String::new(),
        Err(error) => {
            summary.errors.push(RecoveryError::Io {
                path: path.display().to_string(),
                message: error.to_string(),
            });
            String::new()
        }
    };

    let mut jobs: Vec<(u64, JobTrace)> = Vec::new();
    let mut next_id = 1u64;
    if !text.is_empty() {
        // Header line first; anything else means the file is not ours (or
        // predates the format) — report and treat as empty.
        let (header, body) = text.split_once('\n').unwrap_or((text.as_str(), ""));
        let header_ok = {
            let mut tokens = header.split(' ');
            tokens.next() == Some(MAGIC)
                && tokens
                    .next()
                    .and_then(|t| t.strip_prefix('v'))
                    .and_then(|v| v.parse::<u32>().ok())
                    == Some(VERSION)
        };
        if !header_ok {
            summary.errors.push(RecoveryError::BadHeader {
                detail: format!("first line is `{}`", truncate_for_log(header)),
            });
        } else {
            let complete_final = body.ends_with('\n');
            let lines: Vec<&str> = body.split('\n').collect();
            // split leaves one trailing "" when the body ends in \n.
            let count = lines.len();
            for (index, line) in lines.into_iter().enumerate() {
                let number = index + 2; // 1-based, after the header
                                        // A final line with no trailing newline is the signature
                                        // of a crash mid-append: framing damage there is a torn
                                        // record, not corruption.
                let torn_frame_ok = index + 1 == count && !complete_final;
                match parse_record(line, number, torn_frame_ok) {
                    Ok(Some(record)) => {
                        let id = record.id();
                        next_id = next_id.max(id + 1);
                        let trace = match jobs.iter_mut().find(|(existing, _)| *existing == id) {
                            Some((_, trace)) => trace,
                            None => {
                                jobs.push((
                                    id,
                                    JobTrace {
                                        spec: None,
                                        ckpt: None,
                                        terminal: false,
                                    },
                                ));
                                &mut jobs.last_mut().expect("just pushed").1
                            }
                        };
                        match record {
                            JournalRecord::Submitted { spec, .. } => trace.spec = Some(spec),
                            JournalRecord::Started { .. } => {}
                            JournalRecord::Suspended {
                                ckpt, fingerprint, ..
                            } => trace.ckpt = Some((ckpt, fingerprint)),
                            JournalRecord::Done { .. }
                            | JournalRecord::Failed { .. }
                            | JournalRecord::Cancelled { .. } => trace.terminal = true,
                        }
                    }
                    Ok(None) => {}
                    Err(error) => summary.errors.push(error),
                }
            }
        }
    }

    let mut live = Vec::new();
    for (id, trace) in jobs {
        if trace.terminal {
            summary.discarded += 1;
            continue;
        }
        let Some(spec) = trace.spec else {
            // Lifecycle records without a surviving Submitted (its line was
            // damaged): nothing to re-run. The already-recorded parse error
            // explains why.
            continue;
        };
        let mut resume_from = None;
        let mut fingerprint = None;
        if let Some((ckpt, journaled)) = trace.ckpt {
            let ckpt_path = PathBuf::from(&ckpt);
            if !ckpt_path.exists() {
                summary.errors.push(RecoveryError::MissingCheckpoint {
                    job: id,
                    path: ckpt,
                });
            } else {
                match Snapshot::peek_fingerprint(&ckpt_path) {
                    Ok(found) if found == journaled => {
                        resume_from = Some(ckpt_path);
                        fingerprint = Some(journaled);
                    }
                    Ok(found) => summary.errors.push(RecoveryError::StaleCheckpoint {
                        job: id,
                        detail: format!("fingerprint {found:016x} != journaled {journaled:016x}"),
                    }),
                    Err(error) => summary.errors.push(RecoveryError::StaleCheckpoint {
                        job: id,
                        detail: error.to_string(),
                    }),
                }
            }
        }
        if resume_from.is_some() {
            summary.resumed += 1;
        } else {
            summary.requeued += 1;
        }
        live.push(RecoveredJob {
            id,
            spec,
            resume_from,
            fingerprint,
        });
    }

    Replay {
        live,
        next_id,
        summary,
    }
}

/// Removes spool files no live job references: checkpoints of finished or
/// stale jobs, and `.tmp` leftovers of interrupted atomic writes. Returns
/// how many were removed; failures become typed errors, never aborts.
pub fn gc_orphans(spool: &Path, live: &[RecoveredJob], summary: &mut RecoverySummary) {
    let keep: Vec<&Path> = live
        .iter()
        .filter_map(|job| job.resume_from.as_deref())
        .collect();
    let entries = match std::fs::read_dir(spool) {
        Ok(entries) => entries,
        Err(error) => {
            summary.errors.push(RecoveryError::Io {
                path: spool.display().to_string(),
                message: error.to_string(),
            });
            return;
        }
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if name == JOURNAL_FILE {
            continue;
        }
        let is_spool_artifact = name.ends_with(".ckpt") || name.ends_with(".tmp");
        if !is_spool_artifact || keep.iter().any(|kept| *kept == path) {
            continue;
        }
        match std::fs::remove_file(&path) {
            Ok(()) => summary.orphans_removed += 1,
            Err(error) => summary.errors.push(RecoveryError::Io {
                path: path.display().to_string(),
                message: error.to_string(),
            }),
        }
    }
}

/// Atomically rewrites the journal to contain exactly the live jobs
/// (fresh `Submitted` + `Suspended` records), via temp + fsync + rename.
/// Bounds journal growth across restarts and makes recovery idempotent.
///
/// # Errors
///
/// Propagates filesystem and (unreachable) serialization errors.
pub fn compact(spool: &Path, live: &[RecoveredJob]) -> io::Result<()> {
    let path = spool.join(JOURNAL_FILE);
    let tmp = spool.join(format!("{JOURNAL_FILE}.tmp"));
    let mut text = format!("{MAGIC} v{VERSION}\n");
    for job in live {
        let mut records = vec![JournalRecord::Submitted {
            id: job.id,
            spec: job.spec.clone(),
        }];
        if let (Some(ckpt), Some(fingerprint)) = (&job.resume_from, job.fingerprint) {
            records.push(JournalRecord::Suspended {
                id: job.id,
                ckpt: ckpt.display().to_string(),
                fingerprint,
            });
        }
        for record in &records {
            let json = serde_json::to_string(record)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
            text.push_str(&format!(
                "{:016x} {} {json}\n",
                fnv1a(json.as_bytes()),
                json.len()
            ));
        }
    }
    let mut file = File::create(&tmp)?;
    file.write_all(text.as_bytes())?;
    file.sync_all()?;
    drop(file);
    std::fs::rename(&tmp, &path)
}

/// Clips pathological header lines out of log messages.
fn truncate_for_log(line: &str) -> String {
    const LIMIT: usize = 64;
    if line.len() <= LIMIT {
        line.to_string()
    } else {
        let mut end = LIMIT;
        while !line.is_char_boundary(end) {
            end -= 1;
        }
        format!("{}…", &line[..end])
    }
}

/// Reads the whole journal text (tests and diagnostics).
///
/// # Errors
///
/// Propagates filesystem errors other than `NotFound` (missing = empty).
pub fn read_text(spool: &Path) -> io::Result<String> {
    let mut text = String::new();
    match File::open(spool.join(JOURNAL_FILE)) {
        Ok(mut file) => {
            file.read_to_string(&mut text)?;
            Ok(text)
        }
        Err(error) if error.kind() == io::ErrorKind::NotFound => Ok(text),
        Err(error) => Err(error),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spool(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("ps-journal-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("spool dir");
        dir
    }

    fn spec(tag: &str) -> JobSpec {
        JobSpec {
            source: format!("int {tag}() {{ return 0; }}"),
            edl: format!("enclave {{ trusted {{ public int {tag}(); }}; }};"),
            ..JobSpec::default()
        }
    }

    #[test]
    fn append_replay_round_trip() {
        let dir = spool("roundtrip");
        let mut journal = Journal::open(&dir).expect("open");
        journal
            .append(&JournalRecord::Submitted {
                id: 1,
                spec: spec("a"),
            })
            .expect("append");
        journal
            .append(&JournalRecord::Started { id: 1 })
            .expect("append");
        journal
            .append(&JournalRecord::Submitted {
                id: 2,
                spec: spec("b"),
            })
            .expect("append");
        journal
            .append(&JournalRecord::Done { id: 1, exit: 0 })
            .expect("append");
        let replayed = replay(&dir);
        assert_eq!(replayed.summary.errors, Vec::new());
        assert_eq!(replayed.summary.discarded, 1);
        assert_eq!(replayed.next_id, 3);
        assert_eq!(replayed.live.len(), 1);
        assert_eq!(replayed.live[0].id, 2);
        assert_eq!(replayed.live[0].spec, spec("b"));
        assert_eq!(replayed.live[0].resume_from, None);
    }

    #[test]
    fn torn_final_record_is_dropped_not_fatal() {
        let dir = spool("torn");
        let mut journal = Journal::open(&dir).expect("open");
        journal
            .append(&JournalRecord::Submitted {
                id: 1,
                spec: spec("a"),
            })
            .expect("append");
        // Simulate a crash mid-append: half a record, no newline.
        let path = dir.join(JOURNAL_FILE);
        let mut text = std::fs::read_to_string(&path).expect("read");
        text.push_str("0123456789abcdef 400 {\"Submitted\":{\"id\":9");
        std::fs::write(&path, text).expect("write");
        let replayed = replay(&dir);
        assert_eq!(replayed.live.len(), 1, "the intact record survives");
        assert!(
            replayed
                .summary
                .errors
                .iter()
                .any(|e| matches!(e, RecoveryError::TornRecord { .. })),
            "torn tail is reported: {:?}",
            replayed.summary.errors
        );
    }

    #[test]
    fn interior_checksum_mismatch_skips_one_record() {
        let dir = spool("corrupt");
        let mut journal = Journal::open(&dir).expect("open");
        journal
            .append(&JournalRecord::Submitted {
                id: 1,
                spec: spec("a"),
            })
            .expect("append");
        journal
            .append(&JournalRecord::Submitted {
                id: 2,
                spec: spec("b"),
            })
            .expect("append");
        let path = dir.join(JOURNAL_FILE);
        let text = std::fs::read_to_string(&path).expect("read");
        // Flip one payload byte of the first record (line 2).
        let mut lines: Vec<String> = text.lines().map(str::to_string).collect();
        let flipped = lines[1].replace("\"id\":1", "\"id\":7");
        assert_ne!(flipped, lines[1], "fixture edits the record");
        lines[1] = flipped;
        std::fs::write(&path, lines.join("\n") + "\n").expect("write");
        let replayed = replay(&dir);
        assert_eq!(replayed.live.len(), 1, "the undamaged record survives");
        assert_eq!(replayed.live[0].id, 2);
        assert!(
            replayed
                .summary
                .errors
                .iter()
                .any(|e| matches!(e, RecoveryError::ChecksumMismatch { line: 2, .. })),
            "corruption is typed: {:?}",
            replayed.summary.errors
        );
    }

    #[test]
    fn bad_header_is_reported_and_treated_as_empty() {
        let dir = spool("badheader");
        std::fs::write(dir.join(JOURNAL_FILE), "not a journal\n").expect("write");
        let replayed = replay(&dir);
        assert_eq!(replayed.live.len(), 0);
        assert!(matches!(
            replayed.summary.errors.as_slice(),
            [RecoveryError::BadHeader { .. }]
        ));
    }

    #[test]
    fn missing_checkpoint_restarts_from_scratch() {
        let dir = spool("missingckpt");
        let mut journal = Journal::open(&dir).expect("open");
        journal
            .append(&JournalRecord::Submitted {
                id: 1,
                spec: spec("a"),
            })
            .expect("append");
        journal
            .append(&JournalRecord::Suspended {
                id: 1,
                ckpt: dir.join("job-1.ckpt").display().to_string(),
                fingerprint: 0xabcd,
            })
            .expect("append");
        let replayed = replay(&dir);
        assert_eq!(replayed.live.len(), 1);
        assert_eq!(replayed.live[0].resume_from, None);
        assert_eq!(replayed.summary.requeued, 1);
        assert!(matches!(
            replayed.summary.errors.as_slice(),
            [RecoveryError::MissingCheckpoint { job: 1, .. }]
        ));
    }

    #[test]
    fn compact_then_replay_is_idempotent() {
        let dir = spool("idempotent");
        let mut journal = Journal::open(&dir).expect("open");
        for id in 1..=3u64 {
            journal
                .append(&JournalRecord::Submitted {
                    id,
                    spec: spec("a"),
                })
                .expect("append");
        }
        journal
            .append(&JournalRecord::Done { id: 2, exit: 0 })
            .expect("append");
        let first = replay(&dir);
        compact(&dir, &first.live).expect("compact");
        let second = replay(&dir);
        assert_eq!(first.live, second.live, "double recovery diverged");
        assert_eq!(second.summary.errors, Vec::new());
        assert_eq!(second.summary.discarded, 0, "compaction dropped terminals");
        let third = replay(&dir);
        assert_eq!(second.live, third.live);
    }
}
