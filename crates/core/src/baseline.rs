//! The DFA-style baseline the paper compares against in §II-B.
//!
//! "An alternative way to find explicit leakage is to use data flow
//! analysis frameworks. […] most data flow frameworks are path insensitive
//! and are hard to be used for finding implicit leakages." This module is
//! that alternative: a classic forward taint propagation to a fixpoint —
//! flow-sensitive but **path-insensitive** (both branch sides merge, no
//! path condition is tracked) and **coarse** (one taint source per secret
//! parameter, not per element).
//!
//! It finds the explicit leaks orders of magnitude faster than symbolic
//! execution and misses every implicit one — exactly the trade-off the
//! paper describes; the `ablation` bench quantifies it. Unlike the
//! symbolic engine, which fans live path states across worker threads
//! (see [`AnalyzerOptions::workers`](crate::AnalyzerOptions)), this
//! baseline stays a single-pass sequential fixpoint: it tracks one merged
//! abstract state, so there is nothing to parallelize over.

use std::collections::{BTreeMap, BTreeSet};

use edl::EdlFile;
use minic::ast::{Expr, ExprKind, Stmt, StmtKind, TranslationUnit};
use taint::{SourceId, TaintSet};

use crate::error::Error;
use crate::nonrev::Verdict;
use crate::report::{Finding, FindingKind, Report};

/// Runs the path-insensitive taint baseline on one ECALL.
///
/// # Errors
///
/// Returns [`Error`] if the source/EDL fail to parse or the target is not
/// a declared ECALL.
pub fn analyze(source: &str, edl_text: &str, function: &str) -> Result<Report, Error> {
    let started = std::time::Instant::now();
    let unit = minic::parse(source)?;
    let edl_file = edl::parse_edl(edl_text)?;
    let proto = edl_file
        .ecall(function)
        .ok_or_else(|| Error::UnknownTarget(function.to_string()))?;
    let func = unit
        .function(function)
        .filter(|f| f.body.is_some())
        .ok_or_else(|| Error::UnknownTarget(function.to_string()))?;

    let mut next_source = 1u32;
    let mut taints: BTreeMap<String, TaintSet> = BTreeMap::new();
    let mut source_names: BTreeMap<SourceId, String> = BTreeMap::new();
    let mut out_params: BTreeSet<String> = BTreeSet::new();
    for param in &proto.params {
        if param.attributes.is_in() {
            let id = SourceId::new(next_source);
            next_source += 1;
            source_names.insert(id, param.name.clone());
            taints.insert(param.name.clone(), TaintSet::source(id));
        }
        if param.attributes.is_out() {
            out_params.insert(param.name.clone());
        }
    }

    let mut pass = Pass {
        unit: &unit,
        edl: &edl_file,
        taints,
        out_params,
        findings: BTreeMap::new(),
        source_names,
        depth: 0,
    };
    // Iterate to a fixpoint: loop-carried taint needs at most |vars|
    // rounds on this lattice; cap generously. Findings recorded during the
    // warm-up iterations can be stale (taint still growing), so clear them
    // and take the verdicts from one final pass over the converged state.
    let body = func.body.as_ref().expect("definition");
    for _ in 0..16 {
        let before = pass.taints.clone();
        for stmt in body {
            pass.stmt(stmt);
        }
        if pass.taints == before {
            break;
        }
    }
    pass.findings.clear();
    for stmt in body {
        pass.stmt(stmt);
    }

    Ok(Report {
        function: function.to_string(),
        findings: pass.findings.into_values().collect(),
        degradations: Vec::new(),
        checkpoint: None,
        stats: crate::report::AnalysisStats {
            paths: 1,
            forks: 0,
            infeasible: 0,
            cache_hits: 0,
            cache_misses: 0,
            tier1_refuted: 0,
            tier2_refuted: 0,
            tier2_unknown: 0,
            exhausted: false,
            time: started.elapsed(),
            loc: minic::count_loc(source),
        },
        profile: symexec::profile::SourceProfile::default(),
    })
}

struct Pass<'u> {
    unit: &'u TranslationUnit,
    edl: &'u EdlFile,
    taints: BTreeMap<String, TaintSet>,
    out_params: BTreeSet<String>,
    findings: BTreeMap<(String, SourceId), Finding>,
    source_names: BTreeMap<SourceId, String>,
    depth: usize,
}

impl<'u> Pass<'u> {
    fn taint_of(&self, name: &str) -> TaintSet {
        self.taints.get(name).cloned().unwrap_or_default()
    }

    /// Taint of an expression: the join over all mentioned variables.
    fn expr_taint(&mut self, expr: &Expr) -> TaintSet {
        let mut taint = TaintSet::bottom();
        let mut calls = Vec::new();
        expr.walk(&mut |e| match &e.kind {
            ExprKind::Ident(name) => {
                taint.join_assign(&self.taint_of(name));
            }
            ExprKind::Call { callee, args } => {
                calls.push((callee.clone(), args.len()));
            }
            _ => {}
        });
        // decrypt-style calls make the result secret
        for (callee, _) in &calls {
            if crate::analyzer::DEFAULT_DECRYPT_FUNCTIONS.contains(&callee.as_str()) {
                let id = SourceId::new(900 + self.source_names.len() as u32);
                self.source_names
                    .entry(id)
                    .or_insert_with(|| format!("{callee}#out"));
                taint.join_assign(&TaintSet::source(id));
            }
        }
        taint
    }

    /// The base variable an lvalue writes through (`out[i]` → `out`).
    fn lvalue_base(expr: &Expr) -> Option<&str> {
        match &expr.kind {
            ExprKind::Ident(name) => Some(name),
            ExprKind::Index { base, .. }
            | ExprKind::Member { base, .. }
            | ExprKind::Deref(base)
            | ExprKind::Cast { expr: base, .. } => Self::lvalue_base(base),
            _ => None,
        }
    }

    fn record(&mut self, channel: &str, value: &Expr, taint: &TaintSet) {
        if let Verdict::Reversible(source) = Verdict::of(taint) {
            let secret = self
                .source_names
                .get(&source)
                .cloned()
                .unwrap_or_else(|| source.to_string());
            self.findings
                .entry((channel.to_string(), source))
                .or_insert_with(|| Finding {
                    kind: FindingKind::Explicit,
                    channel: channel.to_string(),
                    secret,
                    value: Some(minic::pretty::expr(value)),
                    recovery: None,
                    observations: Vec::new(),
                    line: None,
                });
        }
    }

    fn stmt(&mut self, stmt: &Stmt) {
        match &stmt.kind {
            StmtKind::Decl(decl) => {
                if let Some(minic::ast::Init::Expr(expr)) = &decl.init {
                    let taint = self.handle_expr(expr);
                    self.merge(decl.name.clone(), taint);
                }
            }
            StmtKind::Expr(Some(expr)) => {
                self.handle_expr(expr);
            }
            StmtKind::Expr(None) => {}
            StmtKind::Block(stmts) => {
                for s in stmts {
                    self.stmt(s);
                }
            }
            // Path-insensitive: both sides execute, results merge, and the
            // condition's taint is *dropped* — no implicit-flow tracking.
            StmtKind::If { then_s, else_s, .. } => {
                self.stmt(then_s);
                if let Some(else_s) = else_s {
                    self.stmt(else_s);
                }
            }
            StmtKind::While { body, .. } | StmtKind::DoWhile { body, .. } => {
                self.stmt(body);
            }
            StmtKind::For {
                init, step, body, ..
            } => {
                if let Some(init) = init {
                    self.stmt(init);
                }
                self.stmt(body);
                if let Some(step) = step {
                    self.handle_expr(step);
                }
            }
            StmtKind::Return(Some(expr)) => {
                let taint = self.handle_expr(expr);
                self.record("return value", expr, &taint);
            }
            StmtKind::Return(None) | StmtKind::Break | StmtKind::Continue => {}
        }
    }

    /// Processes assignments/calls inside an expression and returns its
    /// taint.
    fn handle_expr(&mut self, expr: &Expr) -> TaintSet {
        match &expr.kind {
            ExprKind::Assign { lhs, rhs, op } => {
                let mut taint = self.handle_expr(rhs);
                if op.is_some() {
                    if let Some(base) = Self::lvalue_base(lhs) {
                        taint.join_assign(&self.taint_of(base));
                    }
                }
                if let Some(base) = Self::lvalue_base(lhs) {
                    let base = base.to_string();
                    if self.out_params.contains(&base) {
                        self.record(&format!("{base}[...]"), rhs, &taint);
                    }
                    self.merge(base, taint.clone());
                }
                taint
            }
            ExprKind::Call { callee, args } => {
                let mut taint = TaintSet::bottom();
                for arg in args {
                    taint.join_assign(&self.handle_expr(arg));
                }
                // OCALLs are sinks
                if self.edl.ocall(callee).is_some() {
                    for arg in args {
                        let arg_taint = self.expr_taint(arg);
                        self.record(&format!("argument of `{callee}`"), arg, &arg_taint);
                    }
                }
                // inline user functions one level for taint transfer
                if self.depth < 4 {
                    if let Some(func) = self.unit.function(callee).filter(|f| f.body.is_some()) {
                        let func = func.clone();
                        self.depth += 1;
                        for (param, arg) in func.params.iter().zip(args) {
                            let arg_taint = self.expr_taint(arg);
                            self.merge(param.name.clone(), arg_taint);
                        }
                        for s in func.body.as_ref().expect("definition") {
                            self.stmt(s);
                        }
                        self.depth -= 1;
                    }
                }
                let expr_level = self.expr_taint(expr);
                taint.join_assign(&expr_level);
                taint
            }
            _ => {
                // recurse for nested assignments, then compute taint
                let mut nested = Vec::new();
                expr.walk(&mut |e| {
                    if matches!(e.kind, ExprKind::Assign { .. } | ExprKind::Call { .. })
                        && e.id != expr.id
                    {
                        nested.push(e.clone());
                    }
                });
                for e in nested {
                    self.handle_expr(&e);
                }
                self.expr_taint(expr)
            }
        }
    }

    fn merge(&mut self, name: String, taint: TaintSet) {
        self.taints.entry(name).or_default().join_assign(&taint);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const LISTING1: &str = r#"
int enclave_process_data(char *secrets, char *output) {
    int temporary = secrets[0] + 100;
    output[0] = temporary + 1;
    if (secrets[1] == 0)
        return 0;
    else
        return 1;
}
"#;

    const LISTING1_EDL: &str = r#"
enclave { trusted {
    public int enclave_process_data([in] char *secrets, [out] char *output);
}; };
"#;

    #[test]
    fn finds_explicit_but_misses_implicit() {
        let report = analyze(LISTING1, LISTING1_EDL, "enclave_process_data").unwrap();
        // the explicit copy-out is found…
        assert_eq!(report.explicit_findings().count(), 1);
        // …but the branch leak is invisible to a path-insensitive pass.
        assert_eq!(report.implicit_findings().count(), 0);
    }

    #[test]
    fn coarse_granularity_cannot_distinguish_elements() {
        // element-wise the sum mixes two secrets, but param-level taint
        // sees one source `secrets`, so the baseline (over-)reports — the
        // known precision gap vs the symbolic engine.
        let source = r#"
int mix(char *secrets, char *output) {
    output[0] = secrets[0] + secrets[1];
    return 0;
}
"#;
        let edl_text =
            "enclave { trusted { public int mix([in] char *secrets, [out] char *output); }; };";
        let report = analyze(source, edl_text, "mix").unwrap();
        assert_eq!(report.explicit_findings().count(), 1);
    }

    #[test]
    fn taint_transfers_through_helpers() {
        let source = r#"
int dbl(int x) { return 2 * x; }
int f(char *secrets) { return dbl(secrets[0]); }
"#;
        let edl_text = "enclave { trusted { public int f([in] char *secrets); }; };";
        let report = analyze(source, edl_text, "f").unwrap();
        assert_eq!(report.explicit_findings().count(), 1);
    }

    #[test]
    fn loop_carried_taint_reaches_fixpoint() {
        let source = r#"
int f(char *secrets, char *output) {
    int a = 0;
    int b = 0;
    for (int i = 0; i < 4; i++) {
        a = b;
        b = secrets[0];
    }
    output[0] = a;
    return 0;
}
"#;
        let edl_text =
            "enclave { trusted { public int f([in] char *secrets, [out] char *output); }; };";
        let report = analyze(source, edl_text, "f").unwrap();
        assert_eq!(report.explicit_findings().count(), 1);
    }

    #[test]
    fn ocall_sinks_are_checked() {
        let source = "void ocall_send(int v);\nvoid f(char *secrets) { ocall_send(secrets[0]); }";
        let edl_text = r#"
enclave {
    trusted { public void f([in] char *secrets); };
    untrusted { void ocall_send(int v); };
};
"#;
        let report = analyze(source, edl_text, "f").unwrap();
        assert_eq!(report.explicit_findings().count(), 1);
    }

    #[test]
    fn clean_function_is_secure() {
        let source = "int f(char *secrets) { return 7; }";
        let edl_text = "enclave { trusted { public int f([in] char *secrets); }; };";
        let report = analyze(source, edl_text, "f").unwrap();
        assert!(report.is_secure());
    }
}
