//! Warning reports (the paper's Box 1) and their JSON export.

use std::fmt;
use std::time::Duration;

use serde::{Deserialize, Serialize};
use symexec::Degradation;

/// Whether a finding is an explicit or implicit information leak.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FindingKind {
    /// Observable output carries a single-source secret directly.
    Explicit,
    /// Observable behaviour differs across branches over a single secret.
    Implicit,
    /// Execution cost differs across branches over a single secret — the
    /// §VIII-A timing-channel extension (simulated time = interpreted
    /// statements per path).
    Timing,
}

impl fmt::Display for FindingKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FindingKind::Explicit => write!(f, "EXPLICIT"),
            FindingKind::Implicit => write!(f, "IMPLICIT"),
            FindingKind::Timing => write!(f, "TIMING"),
        }
    }
}

/// One observation supporting an implicit finding: a path condition and
/// the value declassified under it.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PathObservation {
    /// The rendered path condition π.
    pub path_condition: String,
    /// The observable value on that path.
    pub value: String,
}

/// One nonreversibility violation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Finding {
    /// Explicit or implicit.
    pub kind: FindingKind,
    /// Where the value escapes: `output[0]`, `return value`, `argument 0
    /// of \`ocall_send\``.
    pub channel: String,
    /// The secret being leaked (human-readable, e.g. `secrets[0]`).
    pub secret: String,
    /// For explicit leaks: the escaping symbolic value (how to invert it).
    pub value: Option<String>,
    /// For explicit leaks of invertible computations: the attacker's
    /// concrete recovery formula in terms of `observed` (§V-C).
    pub recovery: Option<String>,
    /// For implicit leaks: the per-path observations that differ.
    pub observations: Vec<PathObservation>,
    /// 1-based source line of the responsible statement, when known.
    pub line: Option<usize>,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] {} reveals secret `{}`",
            self.kind, self.channel, self.secret
        )?;
        if let Some(line) = self.line {
            write!(f, " (line {line})")?;
        }
        writeln!(f)?;
        if let Some(value) = &self.value {
            writeln!(f, "    observable value: {value}")?;
            match &self.recovery {
                Some(formula) => writeln!(f, "    recovery: {} = {formula}", self.secret)?,
                None => writeln!(
                    f,
                    "    recovery: invert the computation over the single tainted source"
                )?,
            }
        }
        for obs in &self.observations {
            writeln!(f, "    path {}: observes {}", obs.path_condition, obs.value)?;
        }
        Ok(())
    }
}

/// Analysis statistics attached to a report.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct AnalysisStats {
    /// Paths explored to completion.
    pub paths: usize,
    /// State forks performed.
    pub forks: usize,
    /// Branches pruned as infeasible.
    pub infeasible: usize,
    /// Feasibility probes answered by the memoized probe set. Counted
    /// deterministically at wave boundaries (canonical merge order), so
    /// the value is invariant under worker count and cache capacity —
    /// it measures the *workload's* probe redundancy, not live cache
    /// occupancy (which is scheduling-dependent and goes to telemetry
    /// sinks only).
    #[serde(default)]
    pub cache_hits: usize,
    /// Feasibility probes computed fresh (first-seen keys).
    #[serde(default)]
    pub cache_misses: usize,
    /// Branch sides refuted by the Tier-1 interval/congruence domain
    /// (0 unless `--feasibility=intervals|full`).
    #[serde(default)]
    pub tier1_refuted: usize,
    /// Branch sides refuted by the Tier-2 SAT-lite solver
    /// (0 unless `--feasibility=full`).
    #[serde(default)]
    pub tier2_refuted: usize,
    /// Tier-2 probes that exhausted their deterministic budget.
    #[serde(default)]
    pub tier2_unknown: usize,
    /// Whether any exploration budget was exhausted.
    pub exhausted: bool,
    /// Wall-clock analysis time.
    #[serde(with = "duration_micros")]
    pub time: Duration,
    /// Lines of code of the analyzed unit (Table V metric).
    pub loc: usize,
}

mod duration_micros {
    use std::time::Duration;

    use serde::{Deserialize, Deserializer, Serialize, Serializer};

    pub fn serialize<S: Serializer>(d: &Duration, s: S) -> Result<S::Ok, S::Error> {
        (d.as_micros() as u64).serialize(s)
    }

    pub fn deserialize<'de, D: Deserializer<'de>>(d: D) -> Result<Duration, D::Error> {
        Ok(Duration::from_micros(u64::deserialize(d)?))
    }
}

/// The analysis report for one ECALL (Box 1 of the paper).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Report {
    /// The analyzed function.
    pub function: String,
    /// All findings, explicit first.
    pub findings: Vec<Finding>,
    /// The exploration's degradation ledger: every way the analysis fell
    /// short of a complete exploration, typed (empty = complete).
    #[serde(default)]
    pub degradations: Vec<Degradation>,
    /// Path of the last resumable snapshot the exploration wrote, if any
    /// (`--checkpoint`): pass it back via `--resume` to continue the run.
    #[serde(default)]
    pub checkpoint: Option<String>,
    /// Exploration statistics.
    pub stats: AnalysisStats,
    /// Per-source-line exploration profile (hotspot attribution), resolved
    /// against the analyzed unit. Observational and `serde(skip)`ped:
    /// report JSON and rendered bytes are identical whether or not anyone
    /// looks at the profile — `--profile-out` serializes it separately.
    #[serde(skip)]
    pub profile: symexec::profile::SourceProfile,
}

impl Report {
    /// Whether the function satisfies nonreversibility.
    pub fn is_secure(&self) -> bool {
        self.findings.is_empty()
    }

    /// Whether the exploration lost *paths* (budget, deadline, cancel or a
    /// panicked task): the leak set is then a lower bound, and a "secure"
    /// verdict is under-approximate. Precision-only degradations
    /// (widening) do not count — they keep the leak set intact.
    pub fn is_degraded(&self) -> bool {
        self.degradations.iter().any(Degradation::loses_paths)
    }

    /// The explicit findings.
    pub fn explicit_findings(&self) -> impl Iterator<Item = &Finding> {
        self.findings
            .iter()
            .filter(|f| f.kind == FindingKind::Explicit)
    }

    /// The implicit findings.
    pub fn implicit_findings(&self) -> impl Iterator<Item = &Finding> {
        self.findings
            .iter()
            .filter(|f| f.kind == FindingKind::Implicit)
    }

    /// The timing-channel findings (§VIII-A extension).
    pub fn timing_findings(&self) -> impl Iterator<Item = &Finding> {
        self.findings
            .iter()
            .filter(|f| f.kind == FindingKind::Timing)
    }

    /// Serializes to pretty JSON.
    ///
    /// # Panics
    ///
    /// Never — the report structure is always serializable.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report serializes")
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "=== PrivacyScope warning report ===")?;
        writeln!(
            f,
            "Function `{}` — {} path(s), {} finding(s), {:.3} ms{}",
            self.function,
            self.stats.paths,
            self.findings.len(),
            self.stats.time.as_secs_f64() * 1000.0,
            if self.stats.exhausted {
                " [budget exhausted: results are a lower bound]"
            } else {
                ""
            }
        )?;
        if !self.degradations.is_empty() {
            writeln!(f, "Degradations:")?;
            for degradation in &self.degradations {
                writeln!(f, "  - {degradation}")?;
            }
            if self.is_degraded() {
                writeln!(
                    f,
                    "Soundness: paths were lost — the leak set is a lower bound \
                     (a clean verdict is under-approximate)."
                )?;
            } else {
                writeln!(
                    f,
                    "Soundness: every feasible path was explored; only value \
                     precision was reduced (taint preserved) — the leak set is \
                     complete."
                )?;
            }
        }
        if let Some(path) = &self.checkpoint {
            writeln!(
                f,
                "Checkpoint: resumable snapshot at `{path}` (continue with --resume)."
            )?;
        }
        if self.findings.is_empty() {
            writeln!(f, "No nonreversibility violations detected.")?;
        }
        for finding in &self.findings {
            write!(f, "{finding}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Report {
        Report {
            function: "enclave_process_data".into(),
            findings: vec![
                Finding {
                    kind: FindingKind::Explicit,
                    channel: "output[0]".into(),
                    secret: "secrets[0]".into(),
                    value: Some("($secrets[0] + 101)".into()),
                    recovery: Some("(observed - 101)".into()),
                    observations: vec![],
                    line: Some(3),
                },
                Finding {
                    kind: FindingKind::Implicit,
                    channel: "return value".into(),
                    secret: "secrets[1]".into(),
                    value: None,
                    recovery: None,
                    observations: vec![
                        PathObservation {
                            path_condition: "($secrets[1] == 0)".into(),
                            value: "0".into(),
                        },
                        PathObservation {
                            path_condition: "!(($secrets[1] == 0))".into(),
                            value: "1".into(),
                        },
                    ],
                    line: Some(4),
                },
            ],
            degradations: vec![],
            checkpoint: None,
            stats: AnalysisStats {
                paths: 2,
                forks: 1,
                infeasible: 0,
                cache_hits: 3,
                cache_misses: 5,
                tier1_refuted: 0,
                tier2_refuted: 0,
                tier2_unknown: 0,
                exhausted: false,
                time: Duration::from_micros(1234),
                loc: 9,
            },
            profile: symexec::profile::SourceProfile::default(),
        }
    }

    #[test]
    fn rendering_is_box1_shaped() {
        let text = sample().to_string();
        assert!(text.contains("PrivacyScope warning report"));
        assert!(text.contains("[EXPLICIT] output[0] reveals secret `secrets[0]`"));
        assert!(text.contains("observable value: ($secrets[0] + 101)"));
        assert!(text.contains("recovery: secrets[0] = (observed - 101)"));
        assert!(text.contains("[IMPLICIT] return value reveals secret `secrets[1]`"));
        assert!(text.contains("path ($secrets[1] == 0): observes 0"));
    }

    #[test]
    fn json_round_trip() {
        let report = sample();
        let json = report.to_json();
        let back: Report = serde_json::from_str(&json).unwrap();
        assert_eq!(report, back);
    }

    #[test]
    fn finding_filters() {
        let report = sample();
        assert_eq!(report.explicit_findings().count(), 1);
        assert_eq!(report.implicit_findings().count(), 1);
        assert!(!report.is_secure());
    }

    #[test]
    fn secure_report_renders() {
        let report = Report {
            function: "f".into(),
            findings: vec![],
            degradations: vec![],
            checkpoint: None,
            stats: AnalysisStats::default(),
            profile: symexec::profile::SourceProfile::default(),
        };
        assert!(report.is_secure());
        assert!(!report.is_degraded());
        assert!(report
            .to_string()
            .contains("No nonreversibility violations"));
    }

    #[test]
    fn degraded_report_states_soundness() {
        let mut report = Report {
            function: "f".into(),
            findings: vec![],
            degradations: vec![Degradation::LoopWidened { count: 2 }],
            checkpoint: None,
            stats: AnalysisStats::default(),
            profile: symexec::profile::SourceProfile::default(),
        };
        // Precision-only: the leak set is still complete.
        assert!(!report.is_degraded());
        let text = report.to_string();
        assert!(text.contains("2 loop(s) havoc-widened"), "{text}");
        assert!(text.contains("the leak set is complete"), "{text}");

        report.degradations.push(Degradation::DeadlineExceeded {
            wave: 4,
            dropped: 7,
        });
        assert!(report.is_degraded());
        let text = report.to_string();
        assert!(text.contains("deadline exceeded at wave 4"), "{text}");
        assert!(text.contains("lower bound"), "{text}");
    }
}
