//! The differential soundness oracle (soundness fuzzing, ROADMAP item 3).
//!
//! For a generated [`SynthModule`] the oracle runs three executions and
//! cross-checks them:
//!
//! 1. **Symbolic**: the [`Analyzer`] over the module, crash-isolated in
//!    its own thread — a panic, cooperative-deadline blow-up, or hard
//!    wall-clock timeout becomes a typed [`HarnessDegradation`], never an
//!    aborted campaign.
//! 2. **Concrete**: the module runs in `sgx-sim` across seeded input
//!    vectors; for every channel the analyzer talks about (`return
//!    value`, OCALL arguments, `out[...]` slots) the oracle replays the
//!    run with one secret byte flipped and observes whether the channel
//!    actually changes.
//! 3. **Ground truth**: the generator's [`Expectation`] labels say which
//!    findings the analyzer *must* produce.
//!
//! Disagreements are classified by [`DisagreementClass`]:
//!
//! * **missed-leak** — an expectation has no matching finding and the
//!   exploration was complete: the analyzer is *unsound* for this module.
//!   (A degraded exploration is excluded: its leak set is an explicit
//!   lower bound, so a missing finding is a typed degradation instead.)
//! * **false-alarm** — the analyzer reported a finding that is neither
//!   labeled nor concretely reproducible: flipping the named secret never
//!   changes the named channel on any probe vector. Unlabeled findings
//!   that *do* reproduce concretely are counted (`unlabeled_confirmed`)
//!   but are not disagreements — the analyzer was right and the label was
//!   missing.
//!
//! [`run_campaign`] sweeps a seed range, auto-shrinks each disagreeing
//! module (see [`crate::shrink`]) into a corpus directory together with
//! the exact repro command, and renders a deterministic JSON summary —
//! the same seeds always produce byte-identical output.

use std::collections::BTreeSet;
use std::fmt;
use std::panic::AssertUnwindSafe;
use std::path::{Path, PathBuf};
use std::sync::mpsc;
use std::thread;
use std::time::Duration;

use edl::Prototype;
use mlcorpus::expect::{Expectation, LeakKind};
use mlcorpus::synth::{self, SynthModule};
use sgx_sim::interp::{Value, Word};
use sgx_sim::{EcallArg, EcallResult, Enclave};
use symexec::concrete::CVal;

use crate::report::{FindingKind, Report};
use crate::{Analyzer, AnalyzerOptions};

/// Oracle tuning: budgets, probe vectors, blinding, and failure-injection
/// test hooks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OracleConfig {
    /// Concrete probe vectors per (channel, secret) dependence question.
    pub vectors: usize,
    /// Analyzer path budget per module.
    pub max_paths: usize,
    /// Analyzer symbolic loop bound.
    pub loop_bound: usize,
    /// Cooperative analyzer deadline (engine stops at a wave boundary and
    /// records the cut in the degradation ledger).
    pub deadline_ms: Option<u64>,
    /// Hard wall-clock ceiling for one crash-isolated analyzer run; when
    /// it fires the runaway thread is abandoned and the module records an
    /// [`HarnessDegradation::AnalyzerTimeout`].
    pub hard_timeout_ms: u64,
    /// Ablation/blinding switch: run the analyzer without its explicit
    /// check (planted explicit leaks then become missed-leaks).
    pub check_explicit: bool,
    /// Ablation/blinding switch for the implicit check.
    pub check_implicit: bool,
    /// Test hook: panic inside the crash-isolated analyzer thread.
    pub inject_panic: bool,
    /// Test hook: stall the analyzer thread for this many milliseconds
    /// before it starts (exercises the hard timeout).
    pub inject_stall_ms: Option<u64>,
    /// Feasibility tiers the analyzer runs with (`--feasibility`). The
    /// differential soundness gate runs the same seeds under `syntactic`
    /// and `full` and asserts identical leak classifications.
    pub feasibility: symexec::FeasibilityMode,
}

impl Default for OracleConfig {
    fn default() -> Self {
        OracleConfig {
            vectors: 3,
            max_paths: 256,
            loop_bound: 4,
            deadline_ms: None,
            hard_timeout_ms: 30_000,
            check_explicit: true,
            check_implicit: true,
            inject_panic: false,
            inject_stall_ms: None,
            feasibility: symexec::FeasibilityMode::default(),
        }
    }
}

impl OracleConfig {
    /// The analyzer options this configuration induces.
    #[must_use]
    pub fn analyzer_options(&self) -> AnalyzerOptions {
        AnalyzerOptions {
            max_paths: self.max_paths,
            loop_bound: self.loop_bound,
            deadline_ms: self.deadline_ms,
            check_explicit: self.check_explicit,
            check_implicit: self.check_implicit,
            feasibility: self.feasibility,
            ..AnalyzerOptions::default()
        }
    }
}

/// How a verdict disagreement is classified.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum DisagreementClass {
    /// Ground truth says the module leaks; the analyzer (with a complete
    /// exploration) did not report it — unsoundness.
    MissedLeak,
    /// The analyzer reported a leak that is neither labeled nor
    /// concretely reproducible — imprecision.
    FalseAlarm,
}

impl fmt::Display for DisagreementClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DisagreementClass::MissedLeak => write!(f, "missed-leak"),
            DisagreementClass::FalseAlarm => write!(f, "false-alarm"),
        }
    }
}

/// What concrete execution said about a disagreement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Evidence {
    /// Flipping the secret byte changed the channel on some vector.
    Confirmed,
    /// No probe vector showed the channel depending on the secret.
    Refuted,
    /// Concrete probing was not possible (reason attached).
    Unavailable(String),
}

impl Evidence {
    fn label(&self) -> &str {
        match self {
            Evidence::Confirmed => "confirmed",
            Evidence::Refuted => "refuted",
            Evidence::Unavailable(_) => "unavailable",
        }
    }
}

/// One verdict disagreement between ground truth, analyzer, and concrete
/// execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Disagreement {
    /// Missed leak (unsoundness) or false alarm (imprecision).
    pub class: DisagreementClass,
    /// `true` when the flow at issue is explicit.
    pub explicit: bool,
    /// The channel, in the analyzer's naming scheme.
    pub channel: String,
    /// The secret, in the analyzer's naming scheme.
    pub secret: String,
    /// The ground-truth label behind a missed leak.
    pub expectation_id: Option<String>,
    /// What concrete execution said.
    pub evidence: Evidence,
}

/// A harness-level failure that was isolated instead of aborting the
/// campaign.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HarnessDegradation {
    /// The analyzer thread panicked; the payload is attached.
    AnalyzerPanic {
        /// Rendered panic payload.
        detail: String,
    },
    /// The analyzer blew through the hard wall-clock ceiling and its
    /// thread was abandoned.
    AnalyzerTimeout {
        /// The ceiling that fired, in milliseconds.
        ms: u64,
    },
    /// The analyzer returned a typed error (bad parse, unknown entry…).
    AnalyzerError {
        /// Rendered error.
        detail: String,
    },
    /// The exploration completed but lost paths (budget/deadline/panic
    /// ledger) — the leak set is a lower bound, so missing findings are
    /// not classified as missed-leaks.
    IncompleteExploration {
        /// Number of ledger entries.
        dropped: usize,
    },
    /// Concrete execution in `sgx-sim` failed.
    ConcreteError {
        /// Rendered simulator error.
        detail: String,
    },
    /// Writing the reproducer corpus failed.
    CorpusIo {
        /// Rendered I/O error.
        detail: String,
    },
}

impl HarnessDegradation {
    fn kind(&self) -> &str {
        match self {
            HarnessDegradation::AnalyzerPanic { .. } => "analyzer-panic",
            HarnessDegradation::AnalyzerTimeout { .. } => "analyzer-timeout",
            HarnessDegradation::AnalyzerError { .. } => "analyzer-error",
            HarnessDegradation::IncompleteExploration { .. } => "incomplete-exploration",
            HarnessDegradation::ConcreteError { .. } => "concrete-error",
            HarnessDegradation::CorpusIo { .. } => "corpus-io",
        }
    }

    fn detail(&self) -> String {
        match self {
            HarnessDegradation::AnalyzerPanic { detail }
            | HarnessDegradation::AnalyzerError { detail }
            | HarnessDegradation::ConcreteError { detail }
            | HarnessDegradation::CorpusIo { detail } => detail.clone(),
            HarnessDegradation::AnalyzerTimeout { ms } => format!("hard timeout after {ms} ms"),
            HarnessDegradation::IncompleteExploration { dropped } => {
                format!("{dropped} degradation ledger entries")
            }
        }
    }
}

impl fmt::Display for HarnessDegradation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.kind(), self.detail())
    }
}

/// The oracle's verdict on one module.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModuleVerdict {
    /// Module name (`Synth-<seed>`).
    pub name: String,
    /// Generator seed.
    pub seed: u64,
    /// Source LoC.
    pub loc: usize,
    /// Paths the analyzer explored (0 when the run degraded away).
    pub paths: usize,
    /// Distinct (kind, channel, secret) findings reported.
    pub findings: usize,
    /// Ground-truth labels on the module.
    pub expectations: usize,
    /// Unlabeled findings that concrete execution confirmed — counted,
    /// not disagreements.
    pub unlabeled_confirmed: usize,
    /// Classified disagreements.
    pub disagreements: Vec<Disagreement>,
    /// Isolated harness failures.
    pub degradations: Vec<HarnessDegradation>,
}

impl ModuleVerdict {
    /// Whether the three executions agreed (no disagreement of either
    /// class; degradations do not count as disagreement).
    #[must_use]
    pub fn agreed(&self) -> bool {
        self.disagreements.is_empty()
    }

    /// Missed-leak disagreements.
    pub fn missed_leaks(&self) -> impl Iterator<Item = &Disagreement> {
        self.disagreements
            .iter()
            .filter(|d| d.class == DisagreementClass::MissedLeak)
    }

    /// False-alarm disagreements.
    pub fn false_alarms(&self) -> impl Iterator<Item = &Disagreement> {
        self.disagreements
            .iter()
            .filter(|d| d.class == DisagreementClass::FalseAlarm)
    }
}

// ---- crash-isolated analyzer invocation -----------------------------------

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Runs the analyzer on `source`/`edl_text` in a dedicated thread with
/// panic capture and a hard wall-clock ceiling.
///
/// # Errors
///
/// Returns the typed [`HarnessDegradation`] describing the isolated
/// failure; the caller's campaign continues either way.
pub fn invoke_analyzer(
    source: &str,
    edl_text: &str,
    entry: &str,
    config: &OracleConfig,
) -> Result<Report, HarnessDegradation> {
    let (tx, rx) = mpsc::channel();
    let source = source.to_string();
    let edl_text = edl_text.to_string();
    let entry = entry.to_string();
    let options = config.analyzer_options();
    let inject_panic = config.inject_panic;
    let inject_stall = config.inject_stall_ms;
    let spawned = thread::Builder::new()
        .name("oracle-analyzer".to_string())
        .spawn(move || {
            let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| {
                if inject_panic {
                    panic!("oracle test hook: injected analyzer panic");
                }
                if let Some(ms) = inject_stall {
                    thread::sleep(Duration::from_millis(ms));
                }
                Analyzer::from_sources(&source, &edl_text, options)
                    .and_then(|analyzer| analyzer.analyze(&entry))
            }));
            // The receiver may have timed out and gone away; that is fine.
            let _ = tx.send(outcome);
        });
    let handle = match spawned {
        Ok(handle) => handle,
        Err(error) => {
            return Err(HarnessDegradation::AnalyzerError {
                detail: format!("could not spawn analyzer thread: {error}"),
            })
        }
    };
    match rx.recv_timeout(Duration::from_millis(config.hard_timeout_ms)) {
        Ok(Ok(Ok(report))) => {
            let _ = handle.join();
            Ok(report)
        }
        Ok(Ok(Err(error))) => {
            let _ = handle.join();
            Err(HarnessDegradation::AnalyzerError {
                detail: error.to_string(),
            })
        }
        Ok(Err(payload)) => {
            let _ = handle.join();
            Err(HarnessDegradation::AnalyzerPanic {
                detail: panic_message(payload),
            })
        }
        // The thread is abandoned, not joined: it may be stuck for good.
        Err(_) => Err(HarnessDegradation::AnalyzerTimeout {
            ms: config.hard_timeout_ms,
        }),
    }
}

// ---- concrete execution ----------------------------------------------------

/// A channel name parsed back into an observable location.
enum ChannelRef {
    Return,
    OcallArg { func: String, arg: usize },
    OutSlot { param: String, index: usize },
}

fn parse_channel(channel: &str) -> Option<ChannelRef> {
    if channel == "return value" {
        return Some(ChannelRef::Return);
    }
    if let Some(rest) = channel.strip_prefix("argument ") {
        let (arg, func) = rest.split_once(" of `")?;
        return Some(ChannelRef::OcallArg {
            func: func.strip_suffix('`')?.to_string(),
            arg: arg.parse().ok()?,
        });
    }
    let (param, rest) = channel.split_once('[')?;
    let index = rest.strip_suffix(']')?.parse().ok()?;
    Some(ChannelRef::OutSlot {
        param: param.to_string(),
        index,
    })
}

/// Parses `name[index]` secret labels.
fn parse_secret(secret: &str) -> Option<(String, usize)> {
    let (param, rest) = secret.split_once('[')?;
    let index = rest.strip_suffix(']')?.parse().ok()?;
    Some((param.to_string(), index))
}

fn is_float_type(c_type: &str) -> bool {
    c_type.contains("float") || c_type.contains("double")
}

fn bound_const(param: &edl::ast::Param) -> Option<usize> {
    let bound = param
        .attributes
        .count
        .as_ref()
        .or(param.attributes.size.as_ref())?;
    match bound {
        edl::ast::Bound::Const(n) => Some(*n as usize),
        edl::ast::Bound::Param(_) => None,
    }
}

/// The deterministic secret byte pool for one probe vector: every value
/// is below any implicit-leak threshold the generator emits, so flipping
/// a byte to 255 always crosses it.
fn probe_pool(seed: u64, vector: usize, len: usize) -> Vec<i64> {
    (0..len)
        .map(|j| {
            let mixed = seed
                .wrapping_mul(0x9e37_79b9)
                .wrapping_add(vector as u64 * 131)
                .wrapping_add(j as u64 * 7);
            (mixed % 40) as i64
        })
        .collect()
}

/// Builds ECALL arguments for `proto` from a secret pool and public
/// scalars, optionally flipping one element of one `[in]` buffer.
fn build_args(
    proto: &Prototype,
    pool: &[i64],
    pubs: &[i64],
    flip: Option<(&str, usize)>,
) -> Result<Vec<EcallArg>, String> {
    let mut args = Vec::new();
    let mut pool_i = 0usize;
    let mut pub_i = 0usize;
    for param in &proto.params {
        if param.is_pointer() {
            let count = bound_const(param)
                .ok_or_else(|| format!("parameter `{}` has no constant bound", param.name))?;
            let float = is_float_type(&param.c_type);
            let fill = |pool_i: &mut usize| -> Vec<Word> {
                (0..count)
                    .map(|k| {
                        let mut v = pool[*pool_i % pool.len()];
                        *pool_i += 1;
                        if let Some((name, index)) = flip {
                            if name == param.name && k == index {
                                v = 255;
                            }
                        }
                        if float {
                            Word::Float(v as f64)
                        } else {
                            Word::Int(v)
                        }
                    })
                    .collect()
            };
            let is_in = param.attributes.is_in();
            let is_out = param.attributes.is_out();
            args.push(match (is_in, is_out) {
                (true, true) => EcallArg::InOut(fill(&mut pool_i)),
                (true, false) => EcallArg::In(fill(&mut pool_i)),
                (false, true) => EcallArg::Out(count),
                (false, false) => {
                    return Err(format!("parameter `{}` has no direction", param.name))
                }
            });
        } else {
            let v = pubs[pub_i % pubs.len()];
            pub_i += 1;
            args.push(if is_float_type(&param.c_type) {
                EcallArg::Float(v as f64)
            } else {
                EcallArg::Int(v)
            });
        }
    }
    Ok(args)
}

fn value_num(value: &Value) -> Option<CVal> {
    match value {
        Value::Int(v) => Some(CVal::Int(*v)),
        Value::Float(v) => Some(CVal::Float(*v)),
        Value::Ptr { .. } => None,
    }
}

fn word_num(word: &Word) -> Option<CVal> {
    match word {
        Word::Int(v) => Some(CVal::Int(*v)),
        Word::Float(v) => Some(CVal::Float(*v)),
        Word::Uninit => None,
    }
}

fn nums_agree(a: Option<CVal>, b: Option<CVal>) -> bool {
    match (a, b) {
        (Some(a), Some(b)) => a.same_number(b),
        (None, None) => true,
        _ => false,
    }
}

/// What one concrete run observed on a channel.
fn observe(result: &EcallResult, channel: &ChannelRef) -> Vec<Option<CVal>> {
    match channel {
        ChannelRef::Return => vec![result.ret.as_ref().and_then(value_num)],
        ChannelRef::OcallArg { func, arg } => result
            .ocalls
            .iter()
            .filter(|(name, _)| name == func)
            .map(|(_, args)| args.get(*arg).and_then(value_num))
            .collect(),
        ChannelRef::OutSlot { param, index } => vec![result
            .outs
            .get(param)
            .and_then(|words| words.get(*index))
            .and_then(word_num)],
    }
}

fn observations_agree(a: &[Option<CVal>], b: &[Option<CVal>]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| nums_agree(*x, *y))
}

/// The fixed public scalars probe vectors use.
const PROBE_PUBS: &[i64] = &[5, 77];

/// Asks concrete execution whether `channel` depends on `secret`: the
/// module runs on seeded probe vectors, then again with the named secret
/// byte flipped to 255; any observed difference is dependence.
///
/// # Errors
///
/// Returns a rendered reason when the question cannot be answered
/// concretely (unparseable names, non-constant EDL bounds, simulator
/// faults).
pub fn concrete_dependence(
    source: &str,
    edl_text: &str,
    entry: &str,
    channel: &str,
    secret: &str,
    config: &OracleConfig,
    seed: u64,
) -> Result<bool, String> {
    let channel_ref =
        parse_channel(channel).ok_or_else(|| format!("unparseable channel `{channel}`"))?;
    let (secret_param, secret_index) =
        parse_secret(secret).ok_or_else(|| format!("unparseable secret `{secret}`"))?;
    let enclave = Enclave::load(source, edl_text).map_err(|e| e.to_string())?;
    let proto = enclave
        .edl()
        .ecall(entry)
        .ok_or_else(|| format!("no ECALL `{entry}`"))?
        .clone();
    for vector in 0..config.vectors.max(1) {
        let pool = probe_pool(seed, vector, 32);
        let base_args = build_args(&proto, &pool, PROBE_PUBS, None)?;
        let flip_args = build_args(
            &proto,
            &pool,
            PROBE_PUBS,
            Some((&secret_param, secret_index)),
        )?;
        let base = enclave
            .ecall(&proto.name, &base_args)
            .map_err(|e| e.to_string())?;
        let flipped = enclave
            .ecall(&proto.name, &flip_args)
            .map_err(|e| e.to_string())?;
        if !observations_agree(
            &observe(&base, &channel_ref),
            &observe(&flipped, &channel_ref),
        ) {
            return Ok(true);
        }
    }
    Ok(false)
}

// ---- classification --------------------------------------------------------

/// Distinct (explicit?, channel, secret) triples in a report. Timing
/// findings (off by default) are excluded — they have no ground truth.
#[must_use]
pub fn finding_keys(report: &Report) -> BTreeSet<(bool, String, String)> {
    report
        .findings
        .iter()
        .filter(|f| matches!(f.kind, FindingKind::Explicit | FindingKind::Implicit))
        .map(|f| {
            (
                f.kind == FindingKind::Explicit,
                f.channel.clone(),
                f.secret.clone(),
            )
        })
        .collect()
}

fn expectation_matched(e: &Expectation, keys: &BTreeSet<(bool, String, String)>) -> bool {
    keys.iter()
        .any(|(explicit, channel, secret)| e.matches(*explicit, channel, secret))
}

/// Cross-checks one synthetic module: analyzer vs ground truth vs
/// concrete execution. Never panics and never aborts — every harness
/// failure lands in the verdict's degradation list.
#[must_use]
pub fn check_module(module: &SynthModule, config: &OracleConfig) -> ModuleVerdict {
    let mut verdict = ModuleVerdict {
        name: module.name.clone(),
        seed: module.seed,
        loc: minic::count_loc(&module.source),
        paths: 0,
        findings: 0,
        expectations: module.expectations.len(),
        unlabeled_confirmed: 0,
        disagreements: Vec::new(),
        degradations: Vec::new(),
    };
    let report = match invoke_analyzer(&module.source, &module.edl, module.entry, config) {
        Ok(report) => report,
        Err(degradation) => {
            verdict.degradations.push(degradation);
            return verdict;
        }
    };
    verdict.paths = report.stats.paths;
    let degraded = report.is_degraded();
    if degraded {
        verdict
            .degradations
            .push(HarnessDegradation::IncompleteExploration {
                dropped: report.degradations.len(),
            });
    }
    let keys = finding_keys(&report);
    verdict.findings = keys.len();

    // Ground truth → findings: a complete exploration must report every
    // labeled leak.
    for expectation in &module.expectations {
        if expectation_matched(expectation, &keys) || degraded {
            continue;
        }
        let evidence = match concrete_dependence(
            &module.source,
            &module.edl,
            module.entry,
            &expectation.channel,
            &expectation.secret,
            config,
            module.seed,
        ) {
            Ok(true) => Evidence::Confirmed,
            Ok(false) => Evidence::Refuted,
            Err(reason) => Evidence::Unavailable(reason),
        };
        verdict.disagreements.push(Disagreement {
            class: DisagreementClass::MissedLeak,
            explicit: expectation.kind == LeakKind::Explicit,
            channel: expectation.channel.clone(),
            secret: expectation.secret.clone(),
            expectation_id: Some(expectation.id.clone()),
            evidence,
        });
    }

    // Findings → ground truth: anything unlabeled must reproduce
    // concretely, or it is a false alarm.
    for (explicit, channel, secret) in &keys {
        let labeled = module
            .expectations
            .iter()
            .any(|e| e.matches(*explicit, channel, secret));
        if labeled {
            continue;
        }
        match concrete_dependence(
            &module.source,
            &module.edl,
            module.entry,
            channel,
            secret,
            config,
            module.seed,
        ) {
            Ok(true) => verdict.unlabeled_confirmed += 1,
            Ok(false) => verdict.disagreements.push(Disagreement {
                class: DisagreementClass::FalseAlarm,
                explicit: *explicit,
                channel: channel.clone(),
                secret: secret.clone(),
                expectation_id: None,
                evidence: Evidence::Refuted,
            }),
            Err(reason) => verdict
                .degradations
                .push(HarnessDegradation::ConcreteError { detail: reason }),
        }
    }
    verdict
        .disagreements
        .sort_by(|a, b| (a.class, &a.channel, &a.secret).cmp(&(b.class, &b.channel, &b.secret)));
    verdict
}

// ---- campaign --------------------------------------------------------------

/// A shrunk reproducer written to the corpus directory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShrunkRecord {
    /// Seed of the disagreeing module.
    pub seed: u64,
    /// The disagreement the reproducer preserves.
    pub class: DisagreementClass,
    /// Channel of the preserved disagreement.
    pub channel: String,
    /// Secret of the preserved disagreement.
    pub secret: String,
    /// LoC before shrinking.
    pub original_loc: usize,
    /// LoC of the reproducer.
    pub loc: usize,
    /// Where the reproducer was written, when a corpus dir was given.
    pub path: Option<PathBuf>,
}

/// A completed seed-range campaign.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Campaign {
    /// First seed swept (inclusive).
    pub seed_start: u64,
    /// Last seed swept (exclusive).
    pub seed_end: u64,
    /// Per-module verdicts, in seed order.
    pub verdicts: Vec<ModuleVerdict>,
    /// Shrunk reproducers, in seed order.
    pub shrunk: Vec<ShrunkRecord>,
}

impl Campaign {
    /// Total missed-leak disagreements.
    #[must_use]
    pub fn missed_leaks(&self) -> usize {
        self.verdicts.iter().map(|v| v.missed_leaks().count()).sum()
    }

    /// Total false-alarm disagreements.
    #[must_use]
    pub fn false_alarms(&self) -> usize {
        self.verdicts.iter().map(|v| v.false_alarms().count()).sum()
    }

    /// Modules that recorded at least one harness degradation.
    #[must_use]
    pub fn degraded_modules(&self) -> usize {
        self.verdicts
            .iter()
            .filter(|v| !v.degradations.is_empty())
            .count()
    }

    /// Whether every module agreed (the campaign's CI gate is stricter:
    /// zero *missed leaks*).
    #[must_use]
    pub fn all_agreed(&self) -> bool {
        self.verdicts.iter().all(ModuleVerdict::agreed)
    }

    /// Renders the deterministic JSON summary: stable field order, no
    /// wall-clock values, byte-identical for identical seeds and config.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"seed_start\": {},\n", self.seed_start));
        out.push_str(&format!("  \"seed_end\": {},\n", self.seed_end));
        out.push_str(&format!("  \"modules\": {},\n", self.verdicts.len()));
        out.push_str(&format!("  \"missed_leaks\": {},\n", self.missed_leaks()));
        out.push_str(&format!("  \"false_alarms\": {},\n", self.false_alarms()));
        out.push_str(&format!(
            "  \"degraded_modules\": {},\n",
            self.degraded_modules()
        ));
        out.push_str("  \"verdicts\": [");
        for (i, v) in self.verdicts.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {");
            out.push_str(&format!("\"name\": {}, ", json_str(&v.name)));
            out.push_str(&format!("\"seed\": {}, ", v.seed));
            out.push_str(&format!("\"loc\": {}, ", v.loc));
            out.push_str(&format!("\"paths\": {}, ", v.paths));
            out.push_str(&format!("\"expectations\": {}, ", v.expectations));
            out.push_str(&format!("\"findings\": {}, ", v.findings));
            out.push_str(&format!(
                "\"unlabeled_confirmed\": {}, ",
                v.unlabeled_confirmed
            ));
            out.push_str(&format!("\"agreed\": {}, ", v.agreed()));
            out.push_str("\"disagreements\": [");
            for (j, d) in v.disagreements.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                out.push_str(&format!(
                    "{{\"class\": {}, \"explicit\": {}, \"channel\": {}, \"secret\": {}, \"expectation\": {}, \"evidence\": {}}}",
                    json_str(&d.class.to_string()),
                    d.explicit,
                    json_str(&d.channel),
                    json_str(&d.secret),
                    d.expectation_id
                        .as_deref()
                        .map_or_else(|| "null".to_string(), json_str),
                    json_str(d.evidence.label()),
                ));
            }
            out.push_str("], \"degradations\": [");
            for (j, deg) in v.degradations.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                out.push_str(&format!(
                    "{{\"kind\": {}, \"detail\": {}}}",
                    json_str(deg.kind()),
                    json_str(&deg.detail())
                ));
            }
            out.push_str("]}");
        }
        out.push_str("\n  ],\n");
        out.push_str("  \"shrunk\": [");
        for (i, s) in self.shrunk.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"seed\": {}, \"class\": {}, \"channel\": {}, \"secret\": {}, \"original_loc\": {}, \"loc\": {}}}",
                s.seed,
                json_str(&s.class.to_string()),
                json_str(&s.channel),
                json_str(&s.secret),
                s.original_loc,
                s.loc,
            ));
        }
        out.push_str("\n  ]\n}\n");
        out
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// The exact command that reproduces one module's check.
#[must_use]
pub fn repro_command(seed: u64, config: &OracleConfig) -> String {
    let mut cmd = format!(
        "cargo run --release --bin soundfuzz -- --seeds {seed}..{} --vectors {} --max-paths {}",
        seed + 1,
        config.vectors,
        config.max_paths
    );
    if !config.check_explicit {
        cmd.push_str(" --blind explicit");
    }
    if !config.check_implicit {
        cmd.push_str(" --blind implicit");
    }
    if let Some(ms) = config.deadline_ms {
        cmd.push_str(&format!(" --deadline-ms {ms}"));
    }
    cmd
}

fn expectations_json(expectations: &[Expectation]) -> String {
    let mut out = String::from("[");
    for (i, e) in expectations.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n  {{\"id\": {}, \"kind\": {}, \"secret\": {}, \"channel\": {}, \"payload\": {}}}",
            json_str(&e.id),
            json_str(&e.kind.to_string()),
            json_str(&e.secret),
            json_str(&e.channel),
            json_str(&e.payload)
        ));
    }
    out.push_str("\n]\n");
    out
}

fn write_corpus_entry(
    dir: &Path,
    module: &SynthModule,
    config: &OracleConfig,
    shrunk_source: Option<&str>,
) -> Result<PathBuf, String> {
    let entry_dir = dir.join(format!("seed-{}", module.seed));
    std::fs::create_dir_all(&entry_dir).map_err(|e| e.to_string())?;
    let write = |name: &str, contents: &str| -> Result<(), String> {
        std::fs::write(entry_dir.join(name), contents).map_err(|e| e.to_string())
    };
    write("module.c", &module.source)?;
    write("module.edl", &module.edl)?;
    write(
        "expectations.json",
        &expectations_json(&module.expectations),
    )?;
    write(
        "repro.txt",
        &format!("{}\n", repro_command(module.seed, config)),
    )?;
    if let Some(shrunk) = shrunk_source {
        write("shrunk.c", shrunk)?;
    }
    Ok(entry_dir)
}

/// Sweeps `seed_start..seed_end`, checking every generated module,
/// auto-shrinking each disagreeing one, and (when `corpus_dir` is given)
/// writing reproducers to disk. Degradations never abort the sweep.
#[must_use]
pub fn run_campaign(
    seed_start: u64,
    seed_end: u64,
    config: &OracleConfig,
    corpus_dir: Option<&Path>,
) -> Campaign {
    let mut campaign = Campaign {
        seed_start,
        seed_end,
        verdicts: Vec::new(),
        shrunk: Vec::new(),
    };
    for seed in seed_start..seed_end {
        let module = synth::generate(seed);
        let mut verdict = check_module(&module, config);
        if let Some(target) = verdict.disagreements.first().cloned() {
            let outcome = crate::shrink::shrink(&module, &target, config);
            let mut record = ShrunkRecord {
                seed,
                class: target.class,
                channel: target.channel.clone(),
                secret: target.secret.clone(),
                original_loc: outcome.original_loc,
                loc: outcome.loc,
                path: None,
            };
            if let Some(dir) = corpus_dir {
                match write_corpus_entry(dir, &module, config, Some(&outcome.source)) {
                    Ok(path) => record.path = Some(path),
                    Err(detail) => verdict
                        .degradations
                        .push(HarnessDegradation::CorpusIo { detail }),
                }
            }
            campaign.shrunk.push(record);
        }
        campaign.verdicts.push(verdict);
    }
    campaign
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn channel_parsing_roundtrips() {
        assert!(matches!(
            parse_channel("return value"),
            Some(ChannelRef::Return)
        ));
        match parse_channel("argument 1 of `ocall_sink`") {
            Some(ChannelRef::OcallArg { func, arg }) => {
                assert_eq!(func, "ocall_sink");
                assert_eq!(arg, 1);
            }
            other => panic!("bad parse: {:?}", other.is_some()),
        }
        match parse_channel("out[4]") {
            Some(ChannelRef::OutSlot { param, index }) => {
                assert_eq!(param, "out");
                assert_eq!(index, 4);
            }
            other => panic!("bad parse: {:?}", other.is_some()),
        }
        assert!(parse_channel("weird").is_none());
    }

    #[test]
    fn probe_pool_is_deterministic_and_bounded() {
        let a = probe_pool(7, 2, 32);
        assert_eq!(a, probe_pool(7, 2, 32));
        assert!(a.iter().all(|v| (0..40).contains(v)));
        assert_ne!(a, probe_pool(7, 3, 32));
    }

    #[test]
    fn injected_panic_is_isolated() {
        let module = synth::generate(0);
        let config = OracleConfig {
            inject_panic: true,
            ..OracleConfig::default()
        };
        let result = invoke_analyzer(&module.source, &module.edl, module.entry, &config);
        assert!(matches!(
            result,
            Err(HarnessDegradation::AnalyzerPanic { .. })
        ));
    }

    #[test]
    fn injected_stall_hits_the_hard_timeout() {
        let module = synth::generate(0);
        let config = OracleConfig {
            inject_stall_ms: Some(5_000),
            hard_timeout_ms: 50,
            ..OracleConfig::default()
        };
        let result = invoke_analyzer(&module.source, &module.edl, module.entry, &config);
        assert!(matches!(
            result,
            Err(HarnessDegradation::AnalyzerTimeout { ms: 50 })
        ));
    }

    #[test]
    fn bad_source_is_a_typed_analyzer_error() {
        let result = invoke_analyzer(
            "int f( {",
            "enclave { trusted { public int f(); }; };",
            "f",
            &OracleConfig::default(),
        );
        assert!(matches!(
            result,
            Err(HarnessDegradation::AnalyzerError { .. })
        ));
    }
}
