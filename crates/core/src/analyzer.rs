//! The PrivacyScope analyzer: EDL-driven symbolic exploration plus the
//! nonreversibility policy checks of §V-B/§VI-B.

use std::collections::{BTreeMap, BTreeSet};
use std::path::PathBuf;
use std::time::{Duration, Instant};

use edl::{AnalysisConfig, EdlFile, Prototype};
use minic::ast::TranslationUnit;
use symexec::degrade::{CancelToken, YieldToken};
use symexec::engine::{region_hint, Engine, EngineConfig, ParamBinding};
use symexec::state::Channel;
use taint::SourceId;
use telemetry::Telemetry;

use crate::error::Error;
use crate::invert::recovery_formula;
use crate::nonrev::Property;
use crate::report::{AnalysisStats, Finding, FindingKind, PathObservation, Report};

/// The paper's predefined decrypt-function list (§VI-B): calls to these
/// turn ciphertext into fresh secret data.
pub const DEFAULT_DECRYPT_FUNCTIONS: &[&str] = &[
    "ipp_aes_decrypt",
    "sgx_rijndael128GCM_decrypt",
    "sgx_unseal_data",
];

/// Analyzer tuning and ablation switches.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AnalyzerOptions {
    /// Symbolic loop bound (see [`EngineConfig::loop_bound`]).
    pub loop_bound: usize,
    /// Path budget.
    pub max_paths: usize,
    /// Call-inlining depth.
    pub inline_depth: usize,
    /// Record per-statement traces (Table IV).
    pub record_trace: bool,
    /// Check for explicit leaks (ablation switch).
    pub check_explicit: bool,
    /// Check for implicit leaks via the `hm` cross-path comparison
    /// (ablation switch; off reproduces what a path-sensitive engine
    /// *without* Alg. 1's hashmap would find).
    pub check_implicit: bool,
    /// Extra sink functions (beyond the EDL's OCALLs).
    pub sinks: Vec<String>,
    /// Extra decrypt-style source functions (beyond the IPP defaults).
    pub decrypt_functions: Vec<String>,
    /// Detect timing channels (the §VIII-A extension): simulate per-path
    /// execution cost as interpreted-statement counts and flag branches
    /// over a single secret whose sides cost differently. Off by default —
    /// it is future work in the paper.
    pub check_timing: bool,
    /// Which information-flow property to enforce. The default is the
    /// paper's nonreversibility; classical noninterference is available to
    /// make the paper's §IV contrast executable (ML code always fails it).
    pub property: Property,
    /// Worker threads for path exploration (see [`EngineConfig::workers`]):
    /// `0` = available parallelism, `1` = sequential. Results are
    /// byte-identical at every setting.
    pub workers: usize,
    /// Which feasibility tiers run at each fork (see
    /// [`EngineConfig::feasibility`]; CLI: `--feasibility`). Stronger
    /// modes prune more infeasible work; findings are identical across
    /// modes.
    pub feasibility: symexec::FeasibilityMode,
    /// Wall-clock deadline in milliseconds (see [`EngineConfig::deadline`]):
    /// exploration stops deterministically at the first wave boundary after
    /// the deadline, recording the dropped paths in the ledger.
    pub deadline_ms: Option<u64>,
    /// Cooperative cancellation handle shared with the engine.
    pub cancel: CancelToken,
    /// Cooperative suspension handle shared with the engine (see
    /// [`EngineConfig::yield_hook`]): requesting a yield parks the
    /// exploration at the next wave boundary into the checkpoint, from
    /// which a later run resumes byte-identically. The analysis service
    /// uses this for job migration under load.
    pub yield_hook: YieldToken,
    /// Test hook: panic when this function is called (exercises the
    /// engine's panic isolation end to end).
    pub inject_panic_on_call: Option<String>,
    /// Write a crash-safe, resumable snapshot to this path whenever the
    /// exploration is cut by a deadline or cancellation (see
    /// [`EngineConfig::checkpoint`]).
    pub checkpoint: Option<PathBuf>,
    /// Additionally snapshot every N wave boundaries (0 = only at a cut).
    /// Requires [`AnalyzerOptions::checkpoint`].
    pub checkpoint_every: usize,
    /// Resume exploration from a snapshot previously written via
    /// `checkpoint`. The snapshot must match the current source, EDL
    /// bindings and analysis options byte-for-byte — a mismatch is a typed
    /// [`Error::Checkpoint`], never a silently different result.
    pub resume: Option<PathBuf>,
    /// Observation channel for per-phase spans, engine instrumentation,
    /// metrics, and logs (CLI: `--trace-out`, `--metrics-out`,
    /// `--log-level`, `--timings`). Disabled by default; never changes any
    /// analysis result — reports and checkpoints are byte-identical with
    /// telemetry on or off.
    pub telemetry: Telemetry,
}

impl Default for AnalyzerOptions {
    fn default() -> Self {
        AnalyzerOptions {
            loop_bound: 4,
            max_paths: 4096,
            inline_depth: 8,
            record_trace: false,
            check_explicit: true,
            check_implicit: true,
            sinks: Vec::new(),
            decrypt_functions: Vec::new(),
            check_timing: false,
            property: Property::default(),
            workers: 0,
            feasibility: symexec::FeasibilityMode::default(),
            deadline_ms: None,
            cancel: CancelToken::new(),
            yield_hook: YieldToken::new(),
            inject_panic_on_call: None,
            checkpoint: None,
            checkpoint_every: 0,
            resume: None,
            telemetry: Telemetry::disabled(),
        }
    }
}

/// The configured analyzer for one enclave (source + EDL + options).
#[derive(Debug)]
pub struct Analyzer {
    unit: TranslationUnit,
    source: String,
    edl: EdlFile,
    config: AnalysisConfig,
    options: AnalyzerOptions,
}

impl Analyzer {
    /// Builds an analyzer from enclave source and EDL text.
    ///
    /// # Errors
    ///
    /// Returns [`Error`] if either input fails to parse.
    pub fn from_sources(
        source: &str,
        edl_text: &str,
        options: AnalyzerOptions,
    ) -> Result<Analyzer, Error> {
        // Frontend phases are staged explicitly (instead of one
        // `minic::parse` call) so each gets its own telemetry phase span;
        // the composition is identical to `minic::parse`.
        let telemetry = options.telemetry.clone();
        let mut unit = {
            let _span = telemetry.phase("parse", None);
            let tokens = minic::lexer::lex(source)?;
            minic::parser::parse_tokens(source, tokens)?
        };
        {
            let _span = telemetry.phase("sema", None);
            minic::sema::check(&mut unit)?;
        }
        let edl_file = {
            let _span = telemetry.phase("edl_ingest", None);
            edl::parse_edl(edl_text)?
        };
        Ok(Analyzer {
            unit,
            source: source.to_string(),
            edl: edl_file,
            config: AnalysisConfig::default(),
            options,
        })
    }

    /// Builds an analyzer that additionally honours an XML configuration
    /// file (§V-C): targets, secret/public overrides, sinks, decrypt list.
    ///
    /// # Errors
    ///
    /// Returns [`Error`] if any of the three inputs fails to parse.
    pub fn with_config(
        source: &str,
        edl_text: &str,
        config_xml: &str,
        mut options: AnalyzerOptions,
    ) -> Result<Analyzer, Error> {
        let config = AnalysisConfig::from_xml(config_xml)?;
        options.loop_bound = config.option_usize("loop-bound", options.loop_bound);
        options.max_paths = config.option_usize("max-paths", options.max_paths);
        options.inline_depth = config.option_usize("inline-depth", options.inline_depth);
        let mut analyzer = Analyzer::from_sources(source, edl_text, options)?;
        analyzer.config = config;
        Ok(analyzer)
    }

    /// The parsed enclave unit.
    pub fn unit(&self) -> &TranslationUnit {
        &self.unit
    }

    /// The target functions: the XML config's `<target>` list, or every
    /// public ECALL.
    pub fn targets(&self) -> Vec<String> {
        if !self.config.targets.is_empty() {
            return self.config.targets.clone();
        }
        self.edl
            .trusted
            .iter()
            .filter(|p| p.public)
            .map(|p| p.name.clone())
            .collect()
    }

    /// Analyzes every target, in order.
    ///
    /// # Errors
    ///
    /// Returns the first per-function error.
    pub fn analyze_all(&self) -> Result<Vec<Report>, Error> {
        self.targets()
            .iter()
            .map(|name| self.analyze(name))
            .collect()
    }

    /// Analyzes one ECALL and reports all nonreversibility violations.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownTarget`] if `function` is not a declared
    /// ECALL with a definition, or an engine error for invalid setups.
    pub fn analyze(&self, function: &str) -> Result<Report, Error> {
        let started = Instant::now();
        let telemetry = self.options.telemetry.clone();
        let mut analyze_span = telemetry.span("analyze", None);
        analyze_span.field("function", function);
        let analyze_id = analyze_span.id();
        let proto = self
            .edl
            .ecall(function)
            .ok_or_else(|| Error::UnknownTarget(function.to_string()))?;
        let bindings = self.bindings(proto);

        // The engine's wave spans nest under this phase span; the span
        // also feeds the `--timings` table as the "explore" row.
        let explore_span = telemetry.phase("explore", analyze_id);
        let mut engine_config = EngineConfig {
            telemetry: telemetry.clone(),
            telemetry_parent: explore_span.id(),
            loop_bound: self.options.loop_bound,
            max_paths: self.options.max_paths,
            inline_depth: self.options.inline_depth,
            record_trace: self.options.record_trace,
            workers: self.options.workers,
            feasibility: self.options.feasibility,
            deadline: self.options.deadline_ms.map(Duration::from_millis),
            cancel: self.options.cancel.clone(),
            yield_hook: self.options.yield_hook.clone(),
            inject_panic_on_call: self.options.inject_panic_on_call.clone(),
            checkpoint: self.options.checkpoint.clone(),
            checkpoint_every: self.options.checkpoint_every,
            ..EngineConfig::default()
        };
        for sink in self
            .edl
            .ocall_names()
            .into_iter()
            .chain(self.config.sinks.iter().cloned())
            .chain(self.options.sinks.iter().cloned())
        {
            engine_config.sink_functions.insert(sink);
        }
        for source in DEFAULT_DECRYPT_FUNCTIONS
            .iter()
            .map(|s| s.to_string())
            .chain(self.config.decrypt_functions.iter().cloned())
            .chain(self.options.decrypt_functions.iter().cloned())
        {
            engine_config.source_functions.insert(source);
        }

        let engine = Engine::new(&self.unit, engine_config).with_source(self.source.clone());
        let exploration = match &self.options.resume {
            Some(path) => {
                let snapshot = symexec::Snapshot::load(path)?;
                engine.resume(function, &bindings, snapshot)?
            }
            None => engine.run(function, &bindings)?,
        };
        explore_span.finish();
        telemetry.info(|| {
            format!(
                "explored `{function}`: {} paths, {} forks, {} events",
                exploration.paths.len(),
                exploration.stats.forks,
                exploration.events.len()
            )
        });
        let policy_span = telemetry.phase("policy", analyze_id);

        let source_name = |id: SourceId| -> String {
            exploration
                .secret_sources
                .get(&id)
                .cloned()
                .unwrap_or_else(|| id.to_string())
        };

        // (channel, source) → explicit finding
        let mut explicit: BTreeMap<(String, SourceId), Finding> = BTreeMap::new();
        // (source, channel) → value → example path condition
        let mut implicit_obs: BTreeMap<(SourceId, String), BTreeMap<String, String>> =
            BTreeMap::new();

        // Algorithm 1 runs at declassification time: the engine's global
        // event log now carries every sink *and* return observation —
        // including ones from paths later dropped by a budget — so it is
        // the single source of truth here (per-path copies would only
        // duplicate it).
        for event in exploration.events.iter() {
            let channel = match &event.channel {
                Channel::Return => "return value".to_string(),
                Channel::SinkCall { func, arg } => {
                    format!("argument {arg} of `{func}`")
                }
                Channel::OutParam { region } => region_hint(region),
            };
            let line = Some(event.span.line_col(&self.source).line);
            self.check_observation(
                &channel,
                &event.value,
                &event.taint,
                &event.pi_taint,
                &event.pi,
                line,
                &source_name,
                &exploration.source_symbols,
                &mut explicit,
                &mut implicit_obs,
            );
        }

        for path in &exploration.paths {
            let final_pi = path.state.path.to_string();
            // `[out]` buffer contents at function exit. Only *program
            // writes* count: a lazily-materialized read of never-written
            // `[out]` memory is not an observable emission.
            let written: std::collections::BTreeSet<&symexec::Region> =
                path.state.write_log.iter().collect();
            for (_, base) in &exploration.out_bases {
                for (region, value) in path.state.store.regions_within(base) {
                    if !written.contains(region) {
                        continue;
                    }
                    let channel = region_hint(region);
                    let taint = path.state.taints.get(region);
                    self.check_observation(
                        &channel,
                        value,
                        &taint,
                        &path.state.pi_taint,
                        &final_pi,
                        None,
                        &source_name,
                        &exploration.source_symbols,
                        &mut explicit,
                        &mut implicit_obs,
                    );
                }
            }
        }

        // Timing extension (§VIII-A): per-path simulated cost, compared
        // across paths whose π depends on a single secret.
        let mut timing_obs: BTreeMap<SourceId, BTreeMap<usize, String>> = BTreeMap::new();
        if self.options.check_timing {
            for path in &exploration.paths {
                if let Some(source) = path.state.pi_taint.sole_source() {
                    timing_obs
                        .entry(source)
                        .or_default()
                        .entry(path.state.steps)
                        .or_insert_with(|| path.state.path.to_string());
                }
            }
        }

        let mut findings: Vec<Finding> = explicit.into_values().collect();
        for ((source, channel), observations) in implicit_obs {
            if observations.len() < 2 {
                continue;
            }
            findings.push(Finding {
                kind: FindingKind::Implicit,
                channel,
                secret: source_name(source),
                value: None,
                recovery: None,
                observations: observations
                    .into_iter()
                    .map(|(value, path_condition)| PathObservation {
                        path_condition,
                        value,
                    })
                    .collect(),
                line: None,
            });
        }

        for (source, costs) in timing_obs {
            if costs.len() < 2 {
                continue;
            }
            findings.push(Finding {
                kind: FindingKind::Timing,
                channel: "execution time".into(),
                secret: source_name(source),
                value: None,
                recovery: None,
                observations: costs
                    .into_iter()
                    .map(|(steps, path_condition)| PathObservation {
                        path_condition,
                        value: format!("{steps} simulated steps"),
                    })
                    .collect(),
                line: None,
            });
        }
        policy_span.finish();

        let report_span = telemetry.phase("report", analyze_id);
        let report = Report {
            function: function.to_string(),
            findings,
            degradations: exploration.ledger.entries().to_vec(),
            checkpoint: exploration
                .checkpoint
                .as_ref()
                .map(|path| path.display().to_string()),
            stats: AnalysisStats {
                paths: exploration.paths.len(),
                forks: exploration.stats.forks,
                infeasible: exploration.stats.infeasible,
                cache_hits: exploration.stats.cache_hits,
                cache_misses: exploration.stats.cache_misses,
                tier1_refuted: exploration.stats.tier1_refuted,
                tier2_refuted: exploration.stats.tier2_refuted,
                tier2_unknown: exploration.stats.tier2_unknown,
                exhausted: exploration.exhausted,
                time: started.elapsed(),
                loc: minic::count_loc(&self.source),
            },
            profile: symexec::profile::SourceProfile::resolve(
                &exploration.profile,
                &self.unit,
                &self.source,
            ),
        };
        report_span.finish();
        telemetry.counter(telemetry::names::ANALYZER_TARGETS, 1);
        telemetry.counter(
            telemetry::names::ANALYZER_FINDINGS,
            report.findings.len() as u64,
        );
        analyze_span.field("findings", report.findings.len());
        analyze_span.field("paths", report.stats.paths);
        Ok(report)
    }

    /// Runs the engine with tracing enabled and renders the Table IV-style
    /// state table for `function`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Analyzer::analyze`].
    pub fn trace_table(&self, function: &str) -> Result<String, Error> {
        let proto = self
            .edl
            .ecall(function)
            .ok_or_else(|| Error::UnknownTarget(function.to_string()))?;
        let bindings = self.bindings(proto);
        let engine_config = EngineConfig {
            loop_bound: self.options.loop_bound,
            max_paths: self.options.max_paths,
            inline_depth: self.options.inline_depth,
            record_trace: true,
            workers: self.options.workers,
            feasibility: self.options.feasibility,
            deadline: self.options.deadline_ms.map(Duration::from_millis),
            cancel: self.options.cancel.clone(),
            ..EngineConfig::default()
        };
        let engine = Engine::new(&self.unit, engine_config).with_source(self.source.clone());
        let exploration = engine.run(function, &bindings)?;
        Ok(symexec::trace::render_table(&exploration.traces()))
    }

    /// Derives parameter bindings from the EDL attributes and the XML
    /// overrides — the paper's default: `[in]` buffers are secrets,
    /// `[out]` buffers are leak points.
    fn bindings(&self, proto: &Prototype) -> Vec<ParamBinding> {
        let secret_override: BTreeSet<&str> = self
            .config
            .secret_params
            .iter()
            .map(String::as_str)
            .collect();
        let public_override: BTreeSet<&str> = self
            .config
            .public_params
            .iter()
            .map(String::as_str)
            .collect();
        proto
            .params
            .iter()
            .map(|param| {
                let name = param.name.as_str();
                let forced_secret = secret_override.contains(name);
                let forced_public = public_override.contains(name);
                if param.is_pointer() {
                    let is_in = (param.attributes.is_in() || forced_secret) && !forced_public;
                    let is_out = param.attributes.is_out();
                    match (is_in, is_out) {
                        (true, true) => ParamBinding::InOutPointer,
                        (true, false) => ParamBinding::SecretPointer,
                        (false, true) => ParamBinding::OutPointer,
                        (false, false) => ParamBinding::Pointer,
                    }
                } else if forced_secret {
                    ParamBinding::SecretScalar
                } else {
                    ParamBinding::Scalar
                }
            })
            .collect()
    }

    #[allow(clippy::too_many_arguments)]
    fn check_observation(
        &self,
        channel: &str,
        value: &symexec::SVal,
        taint: &taint::TaintSet,
        pi_taint: &taint::TaintSet,
        pi_render: &str,
        line: Option<usize>,
        source_name: &dyn Fn(SourceId) -> String,
        source_symbols: &BTreeMap<SourceId, u32>,
        explicit: &mut BTreeMap<(String, SourceId), Finding>,
        implicit_obs: &mut BTreeMap<(SourceId, String), BTreeMap<String, String>>,
    ) {
        // Algorithm 1: explicit check first; only when it passes, consult
        // the path constraint. Which taints count as violations depends on
        // the enforced property: nonreversibility flags only single-source
        // values, noninterference flags any tainted value.
        let explicit_sources: Vec<SourceId> = match self.options.property {
            Property::Nonreversibility => taint.sole_source().into_iter().collect(),
            Property::Noninterference => taint.sources().collect(),
        };
        if !explicit_sources.is_empty() {
            if self.options.check_explicit {
                for source in explicit_sources {
                    let recovery = source_symbols
                        .get(&source)
                        .and_then(|sym| recovery_formula(value, *sym));
                    explicit
                        .entry((channel.to_string(), source))
                        .or_insert_with(|| Finding {
                            kind: FindingKind::Explicit,
                            channel: channel.to_string(),
                            secret: source_name(source),
                            value: Some(value.to_string()),
                            recovery,
                            observations: Vec::new(),
                            line,
                        });
                }
            }
            return;
        }
        if !self.options.check_implicit {
            return;
        }
        let pi_sources: Vec<SourceId> = match self.options.property {
            Property::Nonreversibility => pi_taint.sole_source().into_iter().collect(),
            Property::Noninterference => pi_taint.sources().collect(),
        };
        for source in pi_sources {
            implicit_obs
                .entry((source, channel.to_string()))
                .or_default()
                .entry(value.to_string())
                .or_insert_with(|| pi_render.to_string());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const LISTING1: &str = r#"
int enclave_process_data(char *secrets, char *output) {
    int temporary = secrets[0] + 100;
    output[0] = temporary + 1;
    if (secrets[1] == 0)
        return 0;
    else
        return 1;
}
"#;

    const LISTING1_EDL: &str = r#"
enclave {
    trusted {
        public int enclave_process_data([in] char *secrets, [out] char *output);
    };
};
"#;

    fn analyze(source: &str, edl_text: &str, function: &str) -> Report {
        Analyzer::from_sources(source, edl_text, AnalyzerOptions::default())
            .expect("builds")
            .analyze(function)
            .expect("analyzes")
    }

    #[test]
    fn listing1_explicit_and_implicit() {
        let report = analyze(LISTING1, LISTING1_EDL, "enclave_process_data");
        assert_eq!(report.explicit_findings().count(), 1);
        assert_eq!(report.implicit_findings().count(), 1);

        let explicit = report.explicit_findings().next().unwrap();
        assert_eq!(explicit.channel, "output[0]");
        assert_eq!(explicit.secret, "secrets[0]");
        assert!(explicit.value.as_deref().unwrap().contains("secrets[0]"));

        let implicit = report.implicit_findings().next().unwrap();
        assert_eq!(implicit.channel, "return value");
        assert_eq!(implicit.secret, "secrets[1]");
        assert_eq!(implicit.observations.len(), 2);
    }

    #[test]
    fn mixed_output_is_secure() {
        let source = r#"
int mix(char *secrets, char *output) {
    output[0] = secrets[0] + secrets[1];
    return 0;
}
"#;
        let edl_text = r#"
enclave { trusted { public int mix([in] char *secrets, [out] char *output); }; };
"#;
        let report = analyze(source, edl_text, "mix");
        assert!(report.is_secure(), "{report}");
    }

    #[test]
    fn same_value_on_both_branches_is_secure() {
        let source = r#"
int f(char *secrets) {
    if (secrets[0] > 10) return 7;
    return 7;
}
"#;
        let edl_text = "enclave { trusted { public int f([in] char *secrets); }; };";
        let report = analyze(source, edl_text, "f");
        assert!(report.is_secure(), "{report}");
    }

    #[test]
    fn sink_calls_are_checked() {
        let source = r#"
void ocall_send(int v);
void helper(char *secrets) {
    ocall_send(secrets[0] * 2);
}
"#;
        let edl_text = r#"
enclave {
    trusted { public void helper([in] char *secrets); };
    untrusted { void ocall_send(int v); };
};
"#;
        let report = analyze(source, edl_text, "helper");
        let finding = report.explicit_findings().next().expect("finds the leak");
        assert!(finding.channel.contains("ocall_send"));
        assert_eq!(finding.secret, "secrets[0]");
    }

    #[test]
    fn decrypt_output_is_secret() {
        let source = r#"
int process(char *blob, char *plain) {
    int k = ipp_aes_decrypt(plain, blob, 4);
    return k + 1;
}
"#;
        let edl_text = r#"
enclave { trusted { public int process([in] char *blob, [out] char *plain); }; };
"#;
        let report = analyze(source, edl_text, "process");
        // the decrypt status value is single-source → returning it leaks,
        assert!(
            report
                .explicit_findings()
                .any(|f| f.channel == "return value"),
            "{report}"
        );
        // and decrypting straight into an [out] buffer emits the plaintext
        // to the host — one finding per written element.
        assert_eq!(
            report
                .explicit_findings()
                .filter(|f| f.channel.starts_with("plain["))
                .count(),
            4,
            "{report}"
        );
    }

    #[test]
    fn ablation_disables_implicit() {
        let options = AnalyzerOptions {
            check_implicit: false,
            ..AnalyzerOptions::default()
        };
        let analyzer = Analyzer::from_sources(LISTING1, LISTING1_EDL, options).unwrap();
        let report = analyzer.analyze("enclave_process_data").unwrap();
        assert_eq!(report.explicit_findings().count(), 1);
        assert_eq!(report.implicit_findings().count(), 0);
    }

    #[test]
    fn xml_config_overrides() {
        let xml = r#"
<privacyscope>
  <target function="enclave_process_data"/>
  <public param="secrets"/>
  <option name="loop-bound" value="2"/>
</privacyscope>
"#;
        let analyzer =
            Analyzer::with_config(LISTING1, LISTING1_EDL, xml, AnalyzerOptions::default()).unwrap();
        assert_eq!(analyzer.targets(), vec!["enclave_process_data"]);
        // `secrets` forced public: nothing is secret, so nothing can leak.
        let report = analyzer.analyze("enclave_process_data").unwrap();
        assert!(report.is_secure(), "{report}");
    }

    #[test]
    fn unknown_target_errors() {
        let analyzer =
            Analyzer::from_sources(LISTING1, LISTING1_EDL, AnalyzerOptions::default()).unwrap();
        assert!(matches!(
            analyzer.analyze("nope"),
            Err(Error::UnknownTarget(_))
        ));
    }

    #[test]
    fn analyze_all_covers_public_ecalls() {
        let source = "int a(char *s) { return s[0]; }\nint b(char *s) { return 0; }";
        let edl_text = r#"
enclave { trusted {
    public int a([in] char *s);
    public int b([in] char *s);
}; };
"#;
        let analyzer =
            Analyzer::from_sources(source, edl_text, AnalyzerOptions::default()).unwrap();
        let reports = analyzer.analyze_all().unwrap();
        assert_eq!(reports.len(), 2);
        assert!(!reports[0].is_secure());
        assert!(reports[1].is_secure());
    }

    #[test]
    fn trace_table_renders_listing1() {
        let analyzer =
            Analyzer::from_sources(LISTING1, LISTING1_EDL, AnalyzerOptions::default()).unwrap();
        let table = analyzer.trace_table("enclave_process_data").unwrap();
        assert!(table.contains("secrets[0]"), "{table}");
        assert!(table.contains("SymRegion"), "{table}");
    }

    #[test]
    fn loop_accumulator_that_mixes_is_secure() {
        // The ML pattern: a model aggregates many secret points — ⊤, safe.
        let source = r#"
double train(double *data, int n, double *model) {
    double acc = 0.0;
    for (int i = 0; i < 8; i++) {
        acc = acc + data[i];
    }
    model[0] = acc / 8.0;
    return model[0];
}
"#;
        let edl_text = r#"
enclave { trusted { public double train([in] double *data, int n, [out] double *model); }; };
"#;
        let report = analyze(source, edl_text, "train");
        assert!(report.is_secure(), "{report}");
    }

    #[test]
    fn single_element_copy_in_loop_is_flagged() {
        let source = r#"
void copy(double *data, double *out) {
    for (int i = 0; i < 4; i++) {
        out[i] = data[i];
    }
}
"#;
        let edl_text = r#"
enclave { trusted { public void copy([in] double *data, [out] double *out); }; };
"#;
        let report = analyze(source, edl_text, "copy");
        // every out[i] is a single-source leak
        assert_eq!(report.explicit_findings().count(), 4, "{report}");
    }
}
